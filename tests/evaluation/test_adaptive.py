"""Adaptive reorderer tests (paper §VII future-work extension)."""

import pytest

from repro.evaluation.adaptive import AdaptiveReorderer
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import block_bunch, cyclic_scatter


@pytest.fixture(scope="module")
def evaluator(mid_cluster):
    return AllgatherEvaluator(mid_cluster, rng=0)


class TestDecisions:
    def test_never_worse_than_default(self, evaluator, mid_cluster):
        for layout_fn in (block_bunch, cyclic_scatter):
            L = layout_fn(mid_cluster, 64)
            ad = AdaptiveReorderer(evaluator, L)
            for bb in (64, 1024, 1 << 14, 1 << 17):
                decision = ad.decide(bb)
                assert decision.seconds <= decision.default_seconds

    def test_uses_reordered_when_it_wins(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        ad = AdaptiveReorderer(evaluator, L)
        assert ad.decide(1 << 16).use_reordered

    def test_decision_cached_per_bucket(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        ad = AdaptiveReorderer(evaluator, L)
        d1 = ad.decide(1000)
        d2 = ad.decide(1023)  # same power-of-two bucket
        assert d1 is d2

    def test_bad_size_rejected(self, evaluator, mid_cluster):
        ad = AdaptiveReorderer(evaluator, block_bunch(mid_cluster, 64))
        with pytest.raises(ValueError):
            ad.decide(0)

    def test_predicted_gain_sign(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        d = AdaptiveReorderer(evaluator, L).decide(1 << 16)
        assert d.predicted_gain_pct > 0


class TestLatencyRouting:
    def test_latency_matches_choice(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        ad = AdaptiveReorderer(evaluator, L)
        d = ad.decide(1 << 16)
        rep = ad.latency(1 << 16)
        if d.use_reordered:
            assert rep.mapper != "none"
        else:
            assert rep.mapper == "none"
