"""AllgatherEvaluator tests — the §VI measurement pipeline."""

import numpy as np
import pytest

from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import block_bunch, cyclic_scatter, make_layout
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def evaluator(mid_cluster):
    return AllgatherEvaluator(mid_cluster, rng=0)


class TestDefaultLatency:
    def test_algorithm_selection_by_size(self, evaluator, mid_cluster):
        L = block_bunch(mid_cluster, 64)
        small = evaluator.default_latency(L, 256)
        large = evaluator.default_latency(L, 1 << 16)
        assert small.algorithm == "recursive-doubling"
        assert large.algorithm == "ring"
        assert small.seconds > 0 and large.seconds > small.seconds

    def test_hierarchical_algorithm(self, evaluator, mid_cluster):
        L = block_bunch(mid_cluster, 64)
        rep = evaluator.default_latency(L, 256, hierarchical=True)
        assert rep.algorithm.startswith("hierarchical")

    def test_no_restore_cost(self, evaluator, mid_cluster):
        rep = evaluator.default_latency(block_bunch(mid_cluster, 64), 256)
        assert rep.restore_seconds == 0.0
        assert rep.strategy == "none"


class TestReorderedLatency:
    def test_cyclic_ring_improves_big_time(self, evaluator, mid_cluster):
        """The paper's headline effect: reordering rescues cyclic ring."""
        L = cyclic_scatter(mid_cluster, 64)
        base = evaluator.default_latency(L, 1 << 16)
        tuned = evaluator.reordered_latency(L, 1 << 16, "heuristic", "initcomm")
        assert tuned.seconds < 0.7 * base.seconds

    def test_block_ring_no_harm(self, evaluator, mid_cluster):
        """Paper goal 2: no degradation when the layout is already good."""
        L = block_bunch(mid_cluster, 64)
        base = evaluator.default_latency(L, 1 << 16)
        tuned = evaluator.reordered_latency(L, 1 << 16, "heuristic", "initcomm")
        assert tuned.seconds <= base.seconds * 1.05

    def test_ring_pays_no_restore(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        rep = evaluator.reordered_latency(L, 1 << 16, "heuristic", "initcomm")
        assert rep.strategy in ("inline", "none")
        assert rep.restore_seconds == 0.0

    def test_rd_pays_restore(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        ic = evaluator.reordered_latency(L, 256, "heuristic", "initcomm")
        es = evaluator.reordered_latency(L, 256, "heuristic", "endshfl")
        assert ic.strategy == "initcomm" and ic.restore_seconds > 0
        assert es.strategy == "endshfl" and es.restore_seconds > 0
        assert ic.collective_seconds == pytest.approx(es.collective_seconds)

    def test_reorder_overhead_reported(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        rep = evaluator.reordered_latency(L, 256, "heuristic", "initcomm")
        assert rep.reorder_seconds > 0.0
        assert rep.mapper == "rdmh"

    def test_caching_is_stable(self, mid_cluster):
        ev = AllgatherEvaluator(mid_cluster, rng=0)
        L = cyclic_scatter(mid_cluster, 64)
        a = ev.reordered_latency(L, 256, "heuristic", "initcomm")
        b = ev.reordered_latency(L, 256, "heuristic", "initcomm")
        assert a.seconds == b.seconds  # cached reordering reused

    @pytest.mark.parametrize("kind", ["scotch", "greedy"])
    def test_baseline_mappers_run(self, evaluator, mid_cluster, kind):
        L = cyclic_scatter(mid_cluster, 64)
        rep = evaluator.reordered_latency(L, 256, kind, "initcomm")
        assert rep.seconds > 0


class TestHierarchicalReordered:
    @pytest.mark.parametrize("intra", ["binomial", "linear"])
    def test_runs_and_reports(self, evaluator, mid_cluster, intra):
        L = make_layout("block-scatter", mid_cluster, 64)
        rep = evaluator.reordered_latency(
            L, 256, "heuristic", "initcomm", hierarchical=True, intra=intra
        )
        assert rep.algorithm.startswith("hierarchical")
        assert rep.seconds > 0

    def test_hier_collective_no_harm(self, evaluator, mid_cluster):
        """The reordered hierarchical collective itself is never slower;
        at this miniature scale the one-round initComm cost can outweigh
        the gain, so only the collective part is asserted."""
        L = make_layout("block-scatter", mid_cluster, 64)
        base = evaluator.default_latency(L, 64, hierarchical=True)
        tuned = evaluator.reordered_latency(L, 64, "heuristic", "initcomm", hierarchical=True)
        assert tuned.collective_seconds <= base.collective_seconds * 1.05
        assert tuned.restore_seconds < base.seconds  # restore is one cheap round

    def test_world_mapping_is_valid_reordering(self, evaluator, mid_cluster):
        L = make_layout("block-scatter", mid_cluster, 64)
        ro, groups, overhead = evaluator._hierarchical_reordering(
            L, "heuristic", "binomial", "recursive-doubling", rng=0
        )
        assert sorted(ro.mapping.tolist()) == sorted(L.tolist())
        assert [len(g) for g in groups] == [8] * 8
        # groups stay node-aligned: each new group's cores share a node
        for g in groups:
            nodes = set(int(mid_cluster.node_of(ro.mapping[r])) for r in g)
            assert len(nodes) == 1
        assert overhead > 0


class TestGroupsFromLayout:
    def test_block_layout_groups(self, evaluator, mid_cluster):
        groups = evaluator.groups_from_layout(block_bunch(mid_cluster, 64))
        assert groups == [list(range(g * 8, (g + 1) * 8)) for g in range(8)]

    def test_cyclic_layout_groups(self, evaluator, mid_cluster):
        groups = evaluator.groups_from_layout(cyclic_scatter(mid_cluster, 64))
        assert groups[0] == list(range(0, 64, 8))


class TestImprovementPct:
    def test_sign_convention(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        pct = evaluator.improvement_pct(L, 1 << 16)
        assert pct > 0  # reordering helps => positive improvement


class TestIntraHeuristicChoice:
    def test_bbmh_option_runs(self, mid_cluster):
        ev = AllgatherEvaluator(mid_cluster, intra_heuristic="bbmh", rng=0)
        L = make_layout("block-scatter", mid_cluster, 64)
        rep = ev.reordered_latency(L, 64, "heuristic", "initcomm", hierarchical=True)
        assert rep.seconds > 0

    def test_invalid_choice_rejected(self, mid_cluster):
        with pytest.raises(ValueError, match="intra_heuristic"):
            AllgatherEvaluator(mid_cluster, intra_heuristic="rdmh")

    def test_choices_can_differ(self, mid_cluster):
        import numpy as np

        rng = make_rng(3)
        L = make_layout("block-bunch", mid_cluster, 64).reshape(8, 8)
        for row in L:
            rng.shuffle(row)
        L = L.reshape(-1)
        a = AllgatherEvaluator(mid_cluster, intra_heuristic="bgmh", rng=0)
        b = AllgatherEvaluator(mid_cluster, intra_heuristic="bbmh", rng=0)
        ra, _, _ = a._hierarchical_reordering(L, "heuristic", "binomial", "recursive-doubling", rng=0)
        rb, _, _ = b._hierarchical_reordering(L, "heuristic", "binomial", "recursive-doubling", rng=0)
        # both valid; orders may differ (same tie-break seeds could coincide)
        assert sorted(ra.mapping.tolist()) == sorted(rb.mapping.tolist())


class TestNonPowerOfTwo:
    def test_bruck_path_with_bruckmh(self, mid_cluster):
        """Non-power-of-two communicators route small messages through
        Bruck and the BruckMH heuristic (the §VII extension)."""
        ev = AllgatherEvaluator(mid_cluster, rng=0)
        L = cyclic_scatter(mid_cluster, 48)
        base = ev.default_latency(L, 256)
        tuned = ev.reordered_latency(L, 256, "heuristic", "endshfl")
        assert base.algorithm == "bruck"
        assert tuned.mapper == "bruckmh"
        assert tuned.collective_seconds < base.seconds

    def test_ring_path_any_p(self, mid_cluster):
        ev = AllgatherEvaluator(mid_cluster, rng=0)
        L = cyclic_scatter(mid_cluster, 48)
        rep = ev.reordered_latency(L, 1 << 16, "heuristic", "initcomm")
        assert rep.mapper == "rmh"
