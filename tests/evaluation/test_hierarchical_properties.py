"""Property tests of the hierarchical reordering composition (§VI-A2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import block_bunch, block_scatter
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def evaluator(mid_cluster):
    return AllgatherEvaluator(mid_cluster, rng=0)


class TestComposition:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6), kind=st.sampled_from(["heuristic", "greedy"]))
    def test_world_mapping_invariants(self, evaluator, mid_cluster, seed, kind):
        """For any block-style layout the composed hierarchical mapping is
        (a) a permutation of the layout's cores, (b) node-aligned groups,
        (c) leaders are group heads."""
        rng = make_rng(seed)
        # block layout with per-node random intra order (a realistic pinning)
        L = block_bunch(mid_cluster, 64).reshape(8, 8)
        for row in L:
            rng.shuffle(row)
        L = L.reshape(-1)
        ro, groups, overhead = evaluator._hierarchical_reordering(
            L, kind, "binomial", "recursive-doubling", rng=seed
        )
        assert sorted(ro.mapping.tolist()) == sorted(L.tolist())
        for g in groups:
            nodes = {int(mid_cluster.node_of(ro.mapping[r])) for r in g}
            assert len(nodes) == 1
            assert g[0] == min(g)  # leader is the first new rank of the group
        assert overhead >= 0

    def test_linear_intra_keeps_local_order(self, evaluator, mid_cluster):
        """With linear phases there is nothing to reorder inside nodes —
        each node keeps its cores in layout order."""
        L = block_scatter(mid_cluster, 64)
        ro, groups, _ = evaluator._hierarchical_reordering(
            L, "heuristic", "linear", "recursive-doubling", rng=0
        )
        groups_old = evaluator.groups_from_layout(L)
        # per-node core multiset AND order preserved (modulo group order)
        old_sequences = {tuple(L[np.asarray(g)]) for g in groups_old}
        new_sequences = {tuple(ro.mapping[np.asarray(g)]) for g in groups}
        assert new_sequences == old_sequences

    def test_leader_pattern_matches_message_regime(self, evaluator, mid_cluster):
        L = block_scatter(mid_cluster, 64)
        small = evaluator.reordered_latency(L, 64, "heuristic", "initcomm", hierarchical=True)
        large = evaluator.reordered_latency(L, 1 << 16, "heuristic", "initcomm", hierarchical=True)
        assert "rd" in small.algorithm
        assert "ring" in large.algorithm

    def test_cache_distinguishes_intra_modes(self, mid_cluster):
        ev = AllgatherEvaluator(mid_cluster, rng=0)
        L = block_scatter(mid_cluster, 64)
        a = ev.reordered_latency(L, 64, "heuristic", "initcomm", hierarchical=True, intra="binomial")
        b = ev.reordered_latency(L, 64, "heuristic", "initcomm", hierarchical=True, intra="linear")
        assert a.algorithm != b.algorithm


class TestPartialNodes:
    def test_undersubscribed_last_node(self, evaluator, mid_cluster):
        """p not divisible by cores-per-node: the last group is smaller
        but the pipeline still runs end to end (ring leaders)."""
        L = block_bunch(mid_cluster, 60)  # 7 full nodes + 4 cores
        base = evaluator.default_latency(L, 1 << 14, hierarchical=True)
        tuned = evaluator.reordered_latency(L, 1 << 14, "heuristic", "initcomm", hierarchical=True)
        assert base.seconds > 0 and tuned.seconds > 0
        groups = evaluator.groups_from_layout(L)
        assert [len(g) for g in groups] == [8] * 7 + [4]
