"""Broadcast evaluator tests."""

import pytest

from repro.collectives.bcast_binomial import BinomialBroadcast
from repro.collectives.scatter_allgather import ScatterAllgatherBroadcast
from repro.evaluation.bcast import BcastEvaluator, select_bcast
from repro.mapping.initial import block_bunch, cyclic_scatter


@pytest.fixture(scope="module")
def evaluator(mid_cluster):
    return BcastEvaluator(mid_cluster, rng=0)


class TestSelection:
    def test_small_uses_tree(self):
        assert isinstance(select_bcast(64, 1024), BinomialBroadcast)

    def test_large_uses_scatter_allgather(self):
        alg = select_bcast(64, 1 << 20)
        assert isinstance(alg, ScatterAllgatherBroadcast)
        assert alg.allgather_kind == "rd" or True  # pow2 -> rd phase
        assert select_bcast(48, 1 << 20).allgather_kind == "ring"

    def test_tiny_comm_rejected(self):
        with pytest.raises(ValueError):
            select_bcast(1, 64)


class TestLatency:
    def test_default_reports_algorithm(self, evaluator, mid_cluster):
        L = block_bunch(mid_cluster, 64)
        small = evaluator.default_latency(L, 1024)
        large = evaluator.default_latency(L, 1 << 20)
        assert small.algorithm == "binomial-bcast"
        assert large.algorithm.startswith("scatter-allgather")
        assert 0 < small.seconds < large.seconds

    def test_bbmh_improves_scattered_tree_bcast(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        base = evaluator.default_latency(L, 4096)
        tuned = evaluator.reordered_latency(L, 4096, "heuristic")
        assert tuned.mapper == "bbmh"
        assert tuned.seconds < base.seconds

    def test_scatter_allgather_uses_allgather_heuristic(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        tuned = evaluator.reordered_latency(L, 1 << 21, "heuristic")
        # per-slice size 32 KiB > threshold -> ring pattern -> RMH
        assert tuned.mapper == "rmh"

    def test_large_bcast_improvement_on_cyclic(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        assert evaluator.improvement_pct(L, 1 << 21) > 10

    def test_no_harm_on_block(self, evaluator, mid_cluster):
        L = block_bunch(mid_cluster, 64)
        assert evaluator.improvement_pct(L, 1 << 21) > -10

    def test_reordering_cached(self, mid_cluster):
        ev = BcastEvaluator(mid_cluster, rng=0)
        L = cyclic_scatter(mid_cluster, 64)
        a = ev.reordered_latency(L, 4096)
        b = ev.reordered_latency(L, 4096)
        assert a.seconds == b.seconds

    def test_scotch_kind_supported(self, evaluator, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        rep = evaluator.reordered_latency(L, 4096, "scotch")
        assert rep.mapper == "scotch-like"
        assert rep.seconds > 0
