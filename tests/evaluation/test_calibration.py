"""Cost-model calibration probe tests."""

import pytest

from repro.evaluation.calibration import calibrate, calibration_report
from repro.simmpi.costmodel import CostModel
from repro.topology.cluster import LinkClass
from repro.topology.gpc import single_node_cluster


class TestCalibrate:
    def test_all_channels_present(self, mid_cluster):
        probes = calibrate(mid_cluster)
        assert set(probes) == {"smem", "qpi", "internode"}

    def test_documented_behaviour_table(self, mid_cluster):
        """The table in costmodel.py's docstring actually holds."""
        probes = calibrate(mid_cluster)
        # per-pair bandwidths near the calibrated constants
        assert probes["smem"].pair_bandwidth_gbs == pytest.approx(3.0, rel=0.1)
        assert probes["qpi"].pair_bandwidth_gbs == pytest.approx(2.2, rel=0.1)
        assert probes["internode"].pair_bandwidth_gbs == pytest.approx(2.7, rel=0.1)
        # the HCA is the big serialisation point: 8 streams share it
        assert probes["internode"].loaded_bandwidth_gbs < 0.5
        # intra-node channels degrade far less under load
        assert probes["smem"].loaded_bandwidth_gbs > 1.5
        assert probes["qpi"].loaded_bandwidth_gbs > 1.5

    def test_latency_ordering(self, mid_cluster):
        probes = calibrate(mid_cluster)
        assert (
            probes["smem"].latency_us
            < probes["qpi"].latency_us
            < probes["internode"].latency_us
        )

    def test_single_node_skips_internode(self):
        probes = calibrate(single_node_cluster())
        assert "internode" not in probes
        assert "smem" in probes and "qpi" in probes

    def test_custom_cost_model_respected(self, mid_cluster):
        fast_net = CostModel(beta={LinkClass.HCA: 1.0 / 10e9,
                                   LinkClass.LEAF_LINE: 1.0 / 10e9,
                                   LinkClass.LINE_SPINE: 1.0 / 10e9})
        probes = calibrate(mid_cluster, fast_net)
        default = calibrate(mid_cluster)
        assert (
            probes["internode"].pair_bandwidth_gbs
            > default["internode"].pair_bandwidth_gbs
        )

    def test_report_format(self, mid_cluster):
        text = calibration_report(calibrate(mid_cluster))
        assert "channel" in text
        assert "internode" in text
