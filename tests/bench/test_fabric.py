"""Distributed sweep fabric tests: planner, leases, workers, merge."""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro.bench.fabric as fabric_mod
from repro.bench.fabric import (
    FabricFingerprintError,
    FabricIncompleteError,
    FabricWorker,
    ShardPlan,
    ensure_plan,
    fabric_merge,
    fabric_status,
    plan_shards,
    release_lease,
    renew_lease,
    run_fabric_worker,
    static_cell_cost,
    try_acquire_lease,
)
from repro.bench.runner import CELL_DELAY_ENV, CheckpointedSweep, SweepSpec, compute_cell

SPEC = SweepSpec(
    n_nodes=2,
    layouts=("block-bunch", "cyclic-scatter"),
    sizes=(64, 4096, 65536),
    mappers=("heuristic",),
    strategies=("initcomm", "endshfl"),
)


# ----------------------------------------------------------------------
# shard planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_covers_grid_exactly_once(self):
        plan = plan_shards(SPEC)
        planned = [c for s in plan.shards for c in s.cells]
        assert sorted(planned) == sorted(SPEC.cells())
        assert len(planned) == len(set(planned))

    def test_deterministic(self):
        assert plan_shards(SPEC) == plan_shards(SPEC)

    def test_fingerprint_stamped_per_shard(self):
        plan = plan_shards(SPEC)
        assert plan.fingerprint == SPEC.fingerprint()
        assert all(s.fingerprint == SPEC.fingerprint() for s in plan.shards)

    def test_static_costs_weight_tuned_cells(self):
        assert static_cell_cost(SPEC, "tuned::block-bunch::heuristic") > (
            static_cell_cost(SPEC, "base::block-bunch")
        )

    def test_measured_costs_balance_shards(self):
        # one pathologically expensive cell must sit alone in its shard
        cells = SPEC.cells()
        costs = {c: 1.0 for c in cells}
        heavy = cells[0]
        costs[heavy] = 100.0
        plan = plan_shards(SPEC, n_shards=2, cell_costs=costs)
        heavy_shard = next(s for s in plan.shards if heavy in s.cells)
        assert heavy_shard.cells == (heavy,)
        light_shard = next(s for s in plan.shards if heavy not in s.cells)
        assert len(light_shard.cells) == len(cells) - 1

    def test_n_shards_clamped_to_cells(self):
        plan = plan_shards(SPEC, n_shards=99)
        assert len(plan.shards) == len(SPEC.cells())

    def test_roundtrip(self):
        plan = plan_shards(SPEC)
        assert ShardPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan

    def test_ensure_plan_create_then_join(self, tmp_path):
        first = ensure_plan(SPEC, tmp_path)
        again = ensure_plan(SPEC, tmp_path)
        assert first == again
        assert (tmp_path / "shards.json").is_file()

    def test_ensure_plan_rejects_other_spec(self, tmp_path):
        ensure_plan(SPEC, tmp_path)
        with pytest.raises(FabricFingerprintError, match="fingerprint"):
            ensure_plan(SweepSpec(n_nodes=4), tmp_path)

    def test_ensure_plan_balances_by_journaled_cost(self, tmp_path, monkeypatch):
        # journal the grid first, then blow up one cell's recorded cost:
        # replanning must isolate that cell
        CheckpointedSweep(SPEC, tmp_path).run()
        heavy = SPEC.cells()[-1]
        cs = CheckpointedSweep(SPEC, tmp_path)
        path = cs._cell_path(heavy)
        payload = json.loads(path.read_text())
        payload["compute_seconds"] = 1e6
        path.write_text(json.dumps(payload))
        plan = ensure_plan(SPEC, tmp_path, n_shards=2)
        heavy_shard = next(s for s in plan.shards if heavy in s.cells)
        assert heavy_shard.cells == (heavy,)


# ----------------------------------------------------------------------
# lease protocol
# ----------------------------------------------------------------------
class TestLeases:
    def setup_method(self):
        pass

    def test_exactly_one_winner(self, tmp_path):
        (tmp_path / "leases").mkdir()
        results = {}
        barrier = threading.Barrier(8)

        def race(owner):
            barrier.wait()
            acquired, stolen, _ = try_acquire_lease(tmp_path, "s000", owner, ttl=60)
            results[owner] = acquired

        threads = [
            threading.Thread(target=race, args=(f"w{i}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(results.values()) == 1

    def test_live_lease_not_stealable(self, tmp_path):
        (tmp_path / "leases").mkdir()
        assert try_acquire_lease(tmp_path, "s000", "w1", ttl=60)[0]
        acquired, stolen, contended = try_acquire_lease(tmp_path, "s000", "w2", ttl=60)
        assert not acquired and contended

    def test_expired_lease_stolen(self, tmp_path):
        (tmp_path / "leases").mkdir()
        assert try_acquire_lease(tmp_path, "s000", "w1", ttl=0.05)[0]
        time.sleep(0.15)
        acquired, stolen, _ = try_acquire_lease(tmp_path, "s000", "w2", ttl=0.05)
        assert acquired and stolen
        # the original owner's heartbeat now fails: it lost the lease
        assert not renew_lease(tmp_path, "s000", "w1")
        assert renew_lease(tmp_path, "s000", "w2")

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        (tmp_path / "leases").mkdir()
        assert try_acquire_lease(tmp_path, "s000", "w1", ttl=0.3)[0]
        for _ in range(3):
            time.sleep(0.15)
            assert renew_lease(tmp_path, "s000", "w1")
        acquired, _, _ = try_acquire_lease(tmp_path, "s000", "w2", ttl=0.3)
        assert not acquired

    def test_release_only_by_owner(self, tmp_path):
        (tmp_path / "leases").mkdir()
        assert try_acquire_lease(tmp_path, "s000", "w1", ttl=60)[0]
        assert not release_lease(tmp_path, "s000", "w2")
        assert release_lease(tmp_path, "s000", "w1")
        assert try_acquire_lease(tmp_path, "s000", "w2", ttl=60)[0]


# ----------------------------------------------------------------------
# workers + merge
# ----------------------------------------------------------------------
class TestFabricRun:
    def test_single_worker_matches_serial_bytes(self, tmp_path):
        serial = CheckpointedSweep(SPEC, tmp_path / "s").run()
        stats = FabricWorker(
            tmp_path / "f", spec=SPEC, worker_id="w1", lease_ttl=5.0
        ).run()
        assert stats.cells_computed == len(SPEC.cells())
        merged = fabric_merge(tmp_path / "f")
        assert merged.points == serial.points
        assert (tmp_path / "f" / "sweep.json").read_bytes() == (
            tmp_path / "s" / "sweep.json"
        ).read_bytes()

    def test_two_workers_race_one_shard_exactly_one_computes(self, tmp_path):
        # a single 1-cell shard: both workers race the lease; the loser
        # must skip (coverage check or lease contention), never recompute
        spec = SweepSpec(n_nodes=2, layouts=("block-bunch",), sizes=(64,), mappers=())
        assert len(spec.cells()) == 1
        out = tmp_path / "f"
        barrier = threading.Barrier(2)
        stats = {}

        def work(wid):
            worker = FabricWorker(
                out, spec=spec, worker_id=wid, lease_ttl=10.0, poll_interval=0.05
            )
            barrier.wait()
            stats[wid] = worker.run()

        threads = [threading.Thread(target=work, args=(f"w{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        computed = [s.cells_computed for s in stats.values()]
        assert sorted(computed) == [0, 1]
        merged = fabric_merge(out)
        assert merged.n_cells == 1

    def test_three_processes_bit_identical(self, tmp_path):
        serial = CheckpointedSweep(SPEC, tmp_path / "s").run()
        out = tmp_path / "f"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(
                target=run_fabric_worker,
                args=(str(out),),
                kwargs={
                    "spec": SPEC,
                    "worker_id": f"w{i}",
                    "lease_ttl": 10.0,
                    "poll_interval": 0.05,
                },
            )
            for i in range(3)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert [proc.exitcode for proc in procs] == [0, 0, 0]
        merged = fabric_merge(out)
        assert merged.points == serial.points
        assert (out / "sweep.json").read_bytes() == (
            tmp_path / "s" / "sweep.json"
        ).read_bytes()
        assert len(merged.workers) == 3
        assert sum(w["cells_computed"] for w in merged.workers) == len(SPEC.cells())

    def test_expired_lease_reclaimed_and_work_stolen(self, tmp_path):
        # hold a lease on one shard without heartbeating, as a SIGKILLed
        # worker would; a live worker must steal it after the TTL
        out = tmp_path / "f"
        worker = FabricWorker(
            out, spec=SPEC, worker_id="thief", lease_ttl=0.3, poll_interval=0.05
        )
        plan = worker._prepare()
        victim_shard = plan.shards[0].shard_id
        assert try_acquire_lease(out, victim_shard, "dead-worker", ttl=0.3)[0]
        time.sleep(0.4)  # let the dead worker's lease expire
        stats = worker.run()
        assert stats.cells_computed == len(SPEC.cells())
        assert stats.steals >= 1
        serial = CheckpointedSweep(SPEC, tmp_path / "s").run()
        assert fabric_merge(out).points == serial.points

    def test_quarantined_cell_not_fatal(self, tmp_path, monkeypatch):
        real = compute_cell

        def broken(spec, cell):
            if cell == "tuned::cyclic-scatter::heuristic":
                raise RuntimeError("cursed cell")
            return real(spec, cell)

        monkeypatch.setattr(fabric_mod, "compute_cell", broken)
        stats = FabricWorker(
            tmp_path / "f", spec=SPEC, worker_id="w1", lease_ttl=5.0,
            max_retries=1, backoff_seconds=0.01,
        ).run()
        assert stats.cells_quarantined == 1
        merged = fabric_merge(tmp_path / "f")
        assert list(merged.quarantined) == ["tuned::cyclic-scatter::heuristic"]
        assert "cursed cell" in merged.quarantined["tuned::cyclic-scatter::heuristic"]
        assert {p.layout for p in merged.points} == {"block-bunch"}
        quarantine = json.loads((tmp_path / "f" / "quarantine.json").read_text())
        assert "tuned::cyclic-scatter::heuristic" in quarantine

    def test_merge_refuses_incomplete_journal(self, tmp_path):
        worker = FabricWorker(tmp_path / "f", spec=SPEC, worker_id="w1")
        worker._prepare()
        with pytest.raises(FabricIncompleteError, match="neither journaled"):
            fabric_merge(tmp_path / "f")

    def test_merge_rejects_foreign_worker_record(self, tmp_path):
        FabricWorker(tmp_path / "f", spec=SPEC, worker_id="w1", lease_ttl=5.0).run()
        rogue = tmp_path / "f" / "workers" / "rogue.json"
        rogue.write_text(json.dumps({"worker_id": "rogue", "fingerprint": "f" * 16}))
        with pytest.raises(FabricFingerprintError, match="rogue"):
            fabric_merge(tmp_path / "f")

    def test_merge_rejects_wrong_spec_cells(self, tmp_path):
        # a cell journaled under another spec is recomputed, not merged
        FabricWorker(tmp_path / "f", spec=SPEC, worker_id="w1", lease_ttl=5.0).run()
        cs = CheckpointedSweep(SPEC, tmp_path / "f")
        victim = cs._cell_path(SPEC.cells()[0])
        payload = json.loads(victim.read_text())
        payload["fingerprint"] = "0" * 16
        victim.write_text(json.dumps(payload))
        with pytest.raises(FabricIncompleteError):
            fabric_merge(tmp_path / "f")

    def test_worker_join_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            FabricWorker(tmp_path / "nope")

    def test_lease_ttl_validated(self, tmp_path):
        with pytest.raises(ValueError, match="lease_ttl"):
            FabricWorker(tmp_path, spec=SPEC, lease_ttl=0)


# ----------------------------------------------------------------------
# status inspector
# ----------------------------------------------------------------------
class TestStatus:
    def test_solo_journal_status(self, tmp_path):
        CheckpointedSweep(SPEC, tmp_path / "j").run()
        status = fabric_status(tmp_path / "j")
        assert status.n_done == len(SPEC.cells()) and status.n_pending == 0
        assert status.cell_seconds
        assert "solo journal" in status.format()

    def test_fabric_status_live_lease_table(self, tmp_path):
        out = tmp_path / "f"
        worker = FabricWorker(out, spec=SPEC, worker_id="w1", lease_ttl=60.0)
        plan = worker._prepare()
        assert try_acquire_lease(out, plan.shards[0].shard_id, "w9", ttl=60.0)[0]
        status = fabric_status(out, lease_ttl=60.0)
        states = {s.shard_id: s.state for s in status.shards}
        assert states[plan.shards[0].shard_id] == "leased"
        assert set(states.values()) == {"leased", "unleased"}
        leased = next(s for s in status.shards if s.state == "leased")
        assert leased.owner == "w9" and leased.heartbeat_age is not None
        text = status.format(lease_ttl=60.0)
        assert "w9" in text and "unleased" in text

    def test_status_is_read_only(self, tmp_path):
        out = tmp_path / "j"
        CheckpointedSweep(SPEC, out).run()
        before = sorted(p.name for p in out.rglob("*"))
        fabric_status(out)
        assert sorted(p.name for p in out.rglob("*")) == before

    def test_status_after_merge_all_done(self, tmp_path):
        FabricWorker(tmp_path / "f", spec=SPEC, worker_id="w1", lease_ttl=5.0).run()
        fabric_merge(tmp_path / "f")
        status = fabric_status(tmp_path / "f")
        assert all(s.state == "done" for s in status.shards)


# ----------------------------------------------------------------------
# the SIGKILL drill: kill a real worker process mid-cell, let its lease
# expire, and require the reclaimed fabric to merge bit-identically.
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSigkillRecovery:
    def test_sigkilled_worker_lease_reclaimed_bit_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        fabric_dir = tmp_path / "fabric"
        args = [
            sys.executable, "-m", "repro", "sweep",
            "--nodes", "2",
            "--layouts", "block-bunch", "cyclic-scatter",
            "--mappers", "heuristic",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")

        ref = subprocess.run(
            args + ["--out-dir", str(serial_dir)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert ref.returncode == 0, ref.stderr

        # victim: slow cells, so SIGKILL lands mid-shard with leases held
        env_slow = dict(env)
        env_slow[CELL_DELAY_ENV] = "0.4"
        victim = subprocess.Popen(
            args + ["--fabric", str(fabric_dir), "--worker-id", "victim",
                    "--lease-ttl", "2.0"],
            env=env_slow, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.time() + 30
        cells = fabric_dir / "cells"
        while time.time() < deadline:
            if cells.is_dir() and any(cells.glob("*.json")):
                break
            time.sleep(0.05)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        assert not (fabric_dir / "sweep.json").exists()
        n_before = len(list(cells.glob("*.json")))
        assert 1 <= n_before < 4
        leases = sorted((fabric_dir / "leases").glob("*.lease"))
        assert leases, "victim died without a lease on disk"

        # survivor: must wait out the victim's TTL, steal, and finish
        res = subprocess.run(
            args + ["--fabric", str(fabric_dir), "--worker-id", "survivor",
                    "--lease-ttl", "2.0"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert res.returncode == 0, res.stderr

        merge = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--merge", str(fabric_dir)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert merge.returncode == 0, merge.stderr
        assert (fabric_dir / "sweep.json").read_bytes() == (
            serial_dir / "sweep.json"
        ).read_bytes()
        stats = json.loads(
            (fabric_dir / "workers" / "survivor.json").read_text()
        )
        assert stats["cells_computed"] == 4 - n_before
        assert stats["steals"] >= 1
