"""ASCII chart tests."""

import pytest

from repro.bench.ascii_plot import bar_chart, line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart(
            {"a": [0, 10, 20, 30], "b": [30, 20, 10, 0]},
            x_labels=["1", "2", "3", "4"],
            title="demo",
        )
        assert "demo" in out
        assert "o=a" in out and "x=b" in out
        assert "30" in out  # max label

    def test_zero_line_drawn(self):
        out = line_chart({"a": [-10, 0, 10]}, ["x", "y", "z"])
        assert "-" in out

    def test_flat_series_ok(self):
        out = line_chart({"a": [5, 5, 5]}, ["1", "2", "3"])
        assert "o" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            line_chart({"a": [1, 2]}, ["x"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, ["x"])
        with pytest.raises(ValueError):
            line_chart({"a": [1]}, ["x"], height=1)

    def test_marker_positions_monotone(self):
        """An increasing series places markers in increasing rows."""
        out = line_chart({"a": [0, 50, 100]}, ["1", "2", "3"], height=5)
        rows = [i for i, line in enumerate(out.splitlines()) if "o" in line]
        assert rows == sorted(rows)  # top of chart first


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart({"default": 1.0, "Hrstc": 0.52}, title="fig5", unit="x")
        assert "fig5" in out
        assert out.count("#") > 0
        assert "0.52x" in out

    def test_longest_bar_is_max(self):
        out = bar_chart({"a": 2.0, "b": 1.0})
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=2)

    def test_zero_values_ok(self):
        out = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in out
