"""Crash-safe checkpointed sweep runner tests (journal, resume, SIGKILL)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.bench.runner as runner_mod
from repro.bench.microbench import sweep_nonhierarchical
from repro.bench.runner import CheckpointedSweep, SweepSpec, compute_cell
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.topology.gpc import gpc_cluster

SPEC = SweepSpec(
    n_nodes=2,
    layouts=("block-bunch", "cyclic-scatter"),
    sizes=(64, 4096, 65536),
    mappers=("heuristic",),
    strategies=("initcomm", "endshfl"),
)


class TestSweepSpec:
    def test_cells_canonical_order(self):
        assert SPEC.cells() == [
            "base::block-bunch",
            "base::cyclic-scatter",
            "tuned::block-bunch::heuristic",
            "tuned::cyclic-scatter::heuristic",
        ]

    def test_fingerprint_content_derived(self):
        assert SPEC.fingerprint() == SweepSpec(
            n_nodes=2,
            layouts=("block-bunch", "cyclic-scatter"),
            sizes=(64, 4096, 65536),
            mappers=("heuristic",),
        ).fingerprint()
        assert SPEC.fingerprint() != SweepSpec(n_nodes=4).fingerprint()

    def test_roundtrip(self):
        from dataclasses import asdict

        assert SweepSpec.from_dict(json.loads(json.dumps(asdict(SPEC)))) == SPEC


class TestCheckpointedRun:
    def test_serial_matches_plain_sweep(self, tmp_path):
        """The journaled runner reproduces the PR-2 sweep exactly."""
        result = CheckpointedSweep(SPEC, tmp_path / "j").run()
        ev = AllgatherEvaluator(gpc_cluster(2), rng=0)
        plain = sweep_nonhierarchical(
            ev,
            ev.cluster.n_cores,
            layouts=list(SPEC.layouts),
            sizes=list(SPEC.sizes),
            mappers=list(SPEC.mappers),
            strategies=list(SPEC.strategies),
        )
        assert result.points == plain
        assert result.n_computed == 4 and result.n_resumed == 0
        assert not result.quarantined and not result.degraded_to_serial

    def test_journal_layout(self, tmp_path):
        out = tmp_path / "j"
        CheckpointedSweep(SPEC, out).run()
        assert (out / "manifest.json").is_file()
        assert (out / "sweep.json").is_file()
        assert len(list((out / "cells").glob("*.json"))) == 4
        assert not any(out.rglob("*.tmp"))  # atomic writes left no temps

    def test_resume_skips_completed_cells(self, tmp_path):
        out = tmp_path / "j"
        first = CheckpointedSweep(SPEC, out).run()
        mtimes = {p.name: p.stat().st_mtime_ns for p in sorted((out / "cells").iterdir())}
        again = CheckpointedSweep.resume(out).run()
        assert again.n_resumed == 4 and again.n_computed == 0
        assert again.points == first.points
        # completed cells were not rewritten
        assert mtimes == {
            p.name: p.stat().st_mtime_ns for p in sorted((out / "cells").iterdir())
        }

    def test_torn_cell_recomputed(self, tmp_path):
        out = tmp_path / "j"
        CheckpointedSweep(SPEC, out).run()
        reference = (out / "sweep.json").read_bytes()
        victim = sorted((out / "cells").iterdir())[0]
        victim.write_text(victim.read_text()[: 40])  # torn write
        result = CheckpointedSweep.resume(out).run()
        assert result.n_resumed == 3 and result.n_computed == 1
        assert (out / "sweep.json").read_bytes() == reference

    def test_parallel_matches_serial(self, tmp_path):
        serial = CheckpointedSweep(SPEC, tmp_path / "s").run()
        parallel = CheckpointedSweep(SPEC, tmp_path / "p", workers=2).run()
        assert parallel.points == serial.points
        assert (tmp_path / "s" / "sweep.json").read_bytes() == (
            tmp_path / "p" / "sweep.json"
        ).read_bytes()

    def test_different_spec_same_dir_rejected(self, tmp_path):
        out = tmp_path / "j"
        CheckpointedSweep(SPEC, out).run()
        with pytest.raises(ValueError, match="different sweep"):
            CheckpointedSweep(SweepSpec(n_nodes=4), out).run()

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            CheckpointedSweep.resume(tmp_path)

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_retries"):
            CheckpointedSweep(SPEC, tmp_path, max_retries=-1)
        with pytest.raises(ValueError, match="cell_timeout"):
            CheckpointedSweep(SPEC, tmp_path, cell_timeout=0)


class TestFailureHandling:
    def test_flaky_cell_retried(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        real = compute_cell

        def flaky(spec, cell):
            if cell.startswith("tuned") and calls["n"] == 0:
                calls["n"] += 1
                raise RuntimeError("transient")
            return real(spec, cell)

        monkeypatch.setattr(runner_mod, "compute_cell", flaky)
        result = CheckpointedSweep(
            SPEC, tmp_path / "j", max_retries=2, backoff_seconds=0.01
        ).run()
        assert not result.quarantined
        assert len(result.points) == 3 * 1 * 2 * 2  # sizes x mappers x strats x layouts

    def test_persistent_failure_quarantined_not_fatal(self, tmp_path, monkeypatch):
        real = compute_cell

        def broken(spec, cell):
            if cell == "tuned::cyclic-scatter::heuristic":
                raise RuntimeError("cursed cell")
            return real(spec, cell)

        monkeypatch.setattr(runner_mod, "compute_cell", broken)
        result = CheckpointedSweep(
            SPEC, tmp_path / "j", max_retries=1, backoff_seconds=0.01
        ).run()
        assert list(result.quarantined) == ["tuned::cyclic-scatter::heuristic"]
        assert "cursed cell" in result.quarantined["tuned::cyclic-scatter::heuristic"]
        # the healthy layout's points survived
        assert {p.layout for p in result.points} == {"block-bunch"}
        quarantine = json.loads((tmp_path / "j" / "quarantine.json").read_text())
        assert "tuned::cyclic-scatter::heuristic" in quarantine

    def test_broken_pool_degrades_to_serial(self, tmp_path, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        def dead_pool(self, cells, done, attempts):
            raise BrokenProcessPool("the pool is gone")

        monkeypatch.setattr(CheckpointedSweep, "_round_parallel", dead_pool)
        result = CheckpointedSweep(SPEC, tmp_path / "j", workers=2).run()
        assert result.degraded_to_serial
        assert len(result.points) == 12
        serial = CheckpointedSweep(SPEC, tmp_path / "s").run()
        assert result.points == serial.points

    def test_cell_timeout_quarantines(self, tmp_path, monkeypatch):
        monkeypatch.setenv(runner_mod.CELL_DELAY_ENV, "5")
        spec = SweepSpec(
            n_nodes=2, layouts=("block-bunch",), sizes=(64,), mappers=()
        )
        result = CheckpointedSweep(
            spec, tmp_path / "j", workers=2, max_retries=0, cell_timeout=0.2
        ).run()
        assert list(result.quarantined) == ["base::block-bunch"]
        assert "timeout" in result.quarantined["base::block-bunch"]
        assert result.points == []


@pytest.mark.slow
class TestSigkillResume:
    def test_sigkill_midflight_then_resume_bit_identical(self, tmp_path):
        """Kill -9 a sweep mid-cell; --resume must finish it to the byte."""
        reference_dir = tmp_path / "uninterrupted"
        killed_dir = tmp_path / "killed"
        args = [
            sys.executable, "-m", "repro", "sweep",
            "--nodes", "2",
            "--layouts", "block-bunch", "cyclic-scatter",
            "--mappers", "heuristic",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")

        ref = subprocess.run(
            args + ["--out-dir", str(reference_dir)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert ref.returncode == 0, ref.stderr

        env_slow = dict(env)
        env_slow[runner_mod.CELL_DELAY_ENV] = "0.4"
        proc = subprocess.Popen(
            args + ["--out-dir", str(killed_dir)],
            env=env_slow, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # let it journal at least one cell, then kill it the hard way
        deadline = time.time() + 30
        while time.time() < deadline:
            cells = killed_dir / "cells"
            if cells.is_dir() and any(cells.glob("*.json")):
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert not (killed_dir / "sweep.json").exists()  # died mid-flight
        n_checkpointed = len(list((killed_dir / "cells").glob("*.json")))
        assert 1 <= n_checkpointed < 4

        res = subprocess.run(
            args + ["--resume", str(killed_dir)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert res.returncode == 0, res.stderr
        assert (killed_dir / "sweep.json").read_bytes() == (
            reference_dir / "sweep.json"
        ).read_bytes()
        assert f"resumed {n_checkpointed}" in res.stdout


class TestCellCosts:
    def test_compute_cell_stamps_cost_and_fingerprint(self):
        payload = compute_cell(SPEC, "base::block-bunch")
        assert payload["fingerprint"] == SPEC.fingerprint()
        assert payload["compute_seconds"] > 0

    def test_run_result_collects_cell_seconds(self, tmp_path):
        result = CheckpointedSweep(SPEC, tmp_path / "j").run()
        assert sorted(result.cell_seconds) == sorted(SPEC.cells())
        assert all(v > 0 for v in result.cell_seconds.values())

    def test_cost_histogram_counts_every_cell(self, tmp_path):
        result = CheckpointedSweep(SPEC, tmp_path / "j").run()
        hist = result.cost_histogram(bins=4)
        assert len(hist) == 4
        assert sum(b["count"] for b in hist) == len(SPEC.cells())
        assert all(b["lo"] <= b["hi"] for b in hist)

    def test_cost_histogram_edge_cases(self):
        from repro.bench.runner import SweepRunResult

        empty = SweepRunResult(points=[], out_dir=Path("."))
        assert empty.cost_histogram() == []
        with pytest.raises(ValueError, match="bins"):
            empty.cost_histogram(bins=0)
        flat = SweepRunResult(
            points=[], out_dir=Path("."), cell_seconds={"a": 1.0, "b": 1.0}
        )
        hist = flat.cost_histogram(bins=2)
        assert sum(b["count"] for b in hist) == 2

    def test_wrong_fingerprint_checkpoint_recomputed(self, tmp_path):
        out = tmp_path / "j"
        cs = CheckpointedSweep(SPEC, out)
        cs.run()
        victim = cs._cell_path("base::block-bunch")
        payload = json.loads(victim.read_text())
        payload["fingerprint"] = "0" * 16
        victim.write_text(json.dumps(payload))
        result = CheckpointedSweep(SPEC, out).run()
        assert result.n_computed == 1 and result.n_resumed == 3
