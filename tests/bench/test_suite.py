"""Reproduction-suite runner tests."""

import pytest

from repro.bench.suite import run_suite


@pytest.fixture(scope="module")
def suite_result():
    return run_suite(n_nodes=4, mappers=("heuristic",))


class TestRunSuite:
    def test_all_artefacts_present(self, suite_result):
        assert set(suite_result.reports) == {
            "fig3_nonhierarchical",
            "fig4_hierarchical",
            "fig5_application",
            "fig7_overheads",
        }
        assert suite_result.scale_p == 32
        assert suite_result.seconds > 0

    def test_reports_have_content(self, suite_result):
        assert "block-bunch" in suite_result.reports["fig3_nonhierarchical"]
        assert "hierarchical" in suite_result.reports["fig4_hierarchical"]
        assert "nbody" in suite_result.reports["fig5_application"]
        assert "extraction" in suite_result.reports["fig7_overheads"]

    def test_write(self, suite_result, tmp_path):
        paths = suite_result.write(tmp_path)
        assert len(paths) == 4
        for p in paths:
            assert p.exists()
            assert p.read_text().strip()

    def test_summary(self, suite_result):
        text = suite_result.summary()
        assert "p=32" in text
        assert "4 artefacts" in text

    def test_separate_app_scale(self):
        result = run_suite(n_nodes=4, app_nodes=2, mappers=("heuristic",))
        assert "p=16" in result.reports["fig5_application"]


class TestCliReproduce:
    def test_cli(self, capsys, tmp_path):
        from repro.cli import main

        rc = main(["reproduce", "--nodes", "2", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reproduction suite" in out
        assert (tmp_path / "fig3_nonhierarchical.txt").exists()
