"""Perf harness tests: batched-vs-naive equivalence and the report file."""

import json

import pytest

from repro.bench.microbench import _sweep, sweep_nonhierarchical
from repro.bench.perf import PerfReport, naive_sweep, run_perf
from repro.evaluation.evaluator import AllgatherEvaluator


@pytest.fixture(scope="module")
def evaluator(mid_cluster):
    return AllgatherEvaluator(mid_cluster, rng=0)


SMALL = dict(
    layouts=["block-bunch", "cyclic-scatter"],
    sizes=[1, 1024, 4096, 65536],
    mappers=["heuristic"],
    strategies=["initcomm", "endshfl"],
)


class TestEquivalence:
    def test_batched_matches_naive_pointwise(self, evaluator):
        """Same grid through both pipelines: same points, same latencies."""
        naive = naive_sweep(evaluator, 64, **SMALL)
        batched = _sweep(
            evaluator, 64, SMALL["layouts"], SMALL["sizes"], SMALL["mappers"],
            SMALL["strategies"], False, "binomial", None,
        )
        assert len(naive) == len(batched)
        for a, b in zip(naive, batched):
            assert (a.layout, a.block_bytes, a.mapper, a.strategy) == (
                b.layout, b.block_bytes, b.mapper, b.strategy
            )
            assert a.algorithm == b.algorithm
            assert b.base_us == pytest.approx(a.base_us, rel=1e-9)
            assert b.tuned_us == pytest.approx(a.tuned_us, rel=1e-9)

    def test_workers_sweep_matches_serial(self, evaluator):
        """The process-pool fan-out reproduces the serial sweep exactly."""
        serial = sweep_nonhierarchical(evaluator, 64, **SMALL)
        parallel = sweep_nonhierarchical(evaluator, 64, workers=2, **SMALL)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a == b  # frozen dataclasses: full field equality


class TestRunPerf:
    def test_quick_report_and_json(self, tmp_path):
        out = tmp_path / "bench.json"
        report = run_perf(
            n_nodes=4,
            sizes=[1, 1024, 65536],
            layouts=["block-bunch"],
            mappers=["heuristic"],
            strategies=["initcomm"],
            quick=True,
            out_path=out,
        )
        assert report.p == 32
        assert report.n_points == 3
        assert report.max_rel_diff <= 1e-9
        assert report.naive_seconds > 0 and report.batched_seconds > 0
        data = json.loads(out.read_text())
        assert data["p"] == 32
        assert data["speedup"] == pytest.approx(report.speedup)
        assert data["sizes"] == [1, 1024, 65536]

    def test_summary_mentions_speedup(self):
        rep = PerfReport(
            p=256, n_nodes=32, n_points=10, naive_seconds=1.0,
            batched_seconds=0.1, speedup=10.0, points_per_sec_naive=10.0,
            points_per_sec_batched=100.0, max_rel_diff=0.0,
        )
        text = rep.summary()
        assert "10.00x" in text
        assert "p=256" in text
        assert "hotspots" not in text  # no profile section without --profile

    def test_profile_records_hotspots(self, tmp_path):
        out = tmp_path / "bench.json"
        report = run_perf(
            n_nodes=4,
            sizes=[1, 65536],
            layouts=["block-bunch"],
            mappers=["heuristic"],
            strategies=["initcomm"],
            quick=True,
            profile=True,
            out_path=out,
        )
        assert report.profile_top
        assert len(report.profile_top) <= 20
        for h in report.profile_top:
            assert {"ncalls", "tottime", "cumtime", "function"} <= set(h)
        assert "hotspots" in report.summary()
        data = json.loads(out.read_text())
        assert data["profile_top"] == report.profile_top


class TestRunMappingPerf:
    def test_small_run_identical_and_persisted(self, tmp_path):
        from repro.bench.perf import run_mapping_perf

        out = tmp_path / "mappings.json"
        report = run_mapping_perf(p_values=[16, 64], repeats=1, out_path=out)
        assert [c.p for c in report.cases] == [16, 64]
        for case in report.cases:
            assert case.mismatches == 0
            assert case.naive_seconds > 0 and case.vectorized_seconds > 0
            assert case.jit_seconds > 0 and case.jit_speedup > 0
            assert case.speedup_baseline == "naive"
            assert set(case.naive_map_seconds) == set(report.heuristics)
            assert set(case.jit_map_seconds) == set(report.heuristics)
        data = json.loads(out.read_text())
        assert [c["p"] for c in data["cases"]] == [16, 64]
        assert data["heuristics"] == sorted(data["heuristics"])
        assert "p" in report.summary() and "mismatches" in report.summary()

    def test_naive_cutoff_skips_naive_tier(self):
        from repro.bench.perf import run_mapping_perf

        report = run_mapping_perf(
            p_values=[16, 64], repeats=1, naive_max_p=16, out_path=None
        )
        below, above = report.cases
        assert below.naive_seconds > 0 and below.speedup_baseline == "naive"
        assert above.naive_seconds is None
        assert above.naive_map_seconds is None
        assert above.speedup_baseline == "vectorized"
        assert above.speedup == pytest.approx(above.jit_speedup)
        assert above.mismatches == 0  # jit-vs-vectorized still checked
        # the JSON row records null, not a number
        import dataclasses

        row = dataclasses.asdict(above)
        assert row["naive_seconds"] is None
        assert "-" in report.summary()

    def test_quick_mode_shrinks_grid(self):
        from repro.bench.perf import run_mapping_perf

        report = run_mapping_perf(p_values=[16, 64, 4096], quick=True, out_path=None)
        assert [c.p for c in report.cases] == [256]
        assert report.quick and report.repeats <= 2

    def test_unknown_pattern_rejected(self):
        from repro.bench.perf import run_mapping_perf

        with pytest.raises(KeyError, match="nope"):
            run_mapping_perf(p_values=[16], patterns=["nope"], out_path=None)
