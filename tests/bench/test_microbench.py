"""Sweep harness and reporting tests."""

import pytest

from repro.bench.microbench import OSU_SIZES, SweepPoint, sweep_hierarchical, sweep_nonhierarchical
from repro.bench.report import format_series_csv, format_sweep_table, size_label
from repro.evaluation.evaluator import AllgatherEvaluator


@pytest.fixture(scope="module")
def evaluator(mid_cluster):
    return AllgatherEvaluator(mid_cluster, rng=0)


class TestSizes:
    def test_osu_range(self):
        assert OSU_SIZES[0] == 1
        assert OSU_SIZES[-1] == 256 * 1024
        assert len(OSU_SIZES) == 19

    def test_size_label(self):
        assert size_label(1) == "1"
        assert size_label(512) == "512"
        assert size_label(1024) == "1K"
        assert size_label(256 * 1024) == "256K"
        assert size_label(1 << 20) == "1M"


class TestSweeps:
    def test_nonhierarchical_point_count(self, evaluator):
        pts = sweep_nonhierarchical(
            evaluator, 64, layouts=["block-bunch", "cyclic-bunch"],
            sizes=[64, 1 << 14], mappers=["heuristic"], strategies=["initcomm"],
        )
        assert len(pts) == 2 * 2
        assert {p.layout for p in pts} == {"block-bunch", "cyclic-bunch"}

    def test_series_labels(self, evaluator):
        pts = sweep_nonhierarchical(
            evaluator, 64, layouts=["block-bunch"], sizes=[64],
            mappers=["heuristic", "scotch"], strategies=["initcomm", "endshfl"],
        )
        assert {p.series for p in pts} == {
            "Hrstc+initComm", "Hrstc+endShfl", "Scotch+initComm", "Scotch+endShfl",
        }

    def test_hierarchical_sweep(self, evaluator):
        pts = sweep_hierarchical(
            evaluator, 64, layouts=["block-scatter"], sizes=[64],
            mappers=["heuristic"], strategies=["initcomm"], intra="linear",
        )
        assert all(p.hierarchical for p in pts)
        assert all(p.intra == "linear" for p in pts)

    def test_improvement_math(self):
        pt = SweepPoint("l", 64, "heuristic", "initcomm", False, "binomial", "ring", 100.0, 75.0)
        assert pt.improvement_pct == pytest.approx(25.0)


class TestReport:
    def test_table_contains_panels_and_sizes(self, evaluator):
        pts = sweep_nonhierarchical(
            evaluator, 64, layouts=["cyclic-bunch"], sizes=[1024, 1 << 14],
            mappers=["heuristic"], strategies=["initcomm"],
        )
        text = format_sweep_table(pts, title="Fig test")
        assert "Fig test" in text
        assert "cyclic-bunch" in text
        assert "1K" in text and "16K" in text
        assert "Hrstc+initComm" in text

    def test_csv(self, evaluator):
        pts = sweep_nonhierarchical(
            evaluator, 64, layouts=["block-bunch"], sizes=[64],
            mappers=["heuristic"], strategies=["initcomm"],
        )
        csv = format_series_csv(pts)
        assert csv.splitlines()[0].startswith("layout,")
        assert len(csv.splitlines()) == 2
