"""Mapping-quality metric tests."""

import numpy as np

from repro.mapping.initial import block_bunch, cyclic_scatter
from repro.mapping.metrics import (
    MappingQuality,
    dilation_stats,
    hop_bytes,
    quality,
    schedule_max_congestion,
)
from repro.mapping.patterns import PatternGraph, build_pattern


class TestHopBytes:
    def test_manual_example(self):
        D = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [5.0, 5.0, 0.0]])
        g = PatternGraph(3, np.array([0, 1]), np.array([1, 2]), np.array([10.0, 2.0]))
        M = np.array([0, 1, 2])
        assert hop_bytes(g, M, D) == 10 * 1 + 2 * 5

    def test_remap_changes_value(self):
        D = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [5.0, 5.0, 0.0]])
        g = PatternGraph(3, np.array([0]), np.array([1]), np.array([10.0]))
        assert hop_bytes(g, [0, 2, 1], D) == 50.0

    def test_empty_graph(self):
        g = PatternGraph(3, np.empty(0), np.empty(0), np.empty(0))
        assert hop_bytes(g, [0, 1, 2], np.zeros((3, 3))) == 0.0


class TestDilation:
    def test_stats(self):
        D = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [5.0, 5.0, 0.0]])
        g = PatternGraph(3, np.array([0, 1]), np.array([1, 2]), np.array([1.0, 1.0]))
        mean, worst = dilation_stats(g, [0, 1, 2], D)
        assert mean == 3.0
        assert worst == 5.0


class TestQuality:
    def test_bundle(self, mid_cluster, mid_D):
        g = build_pattern("ring", 16)
        q = quality(g, block_bunch(mid_cluster, 16), mid_D)
        assert isinstance(q, MappingQuality)
        assert q.hop_bytes > 0
        assert q.max_dilation >= q.mean_dilation
        assert "hop-bytes" in str(q)

    def test_block_beats_cyclic_for_ring(self, mid_cluster, mid_D):
        g = build_pattern("ring", 64)
        q_block = quality(g, block_bunch(mid_cluster, 64), mid_D)
        q_cyclic = quality(g, cyclic_scatter(mid_cluster, 64), mid_D)
        assert q_block.hop_bytes < q_cyclic.hop_bytes


class TestScheduleCongestion:
    def test_cyclic_relieves_rd_hotspots(self, tiny_engine, tiny_cluster):
        """For recursive doubling, cyclic keeps the heavy late stages
        inside nodes, halving the worst link load vs block (paper §VI-A1:
        'an initial cyclic mapping is better than block for the recursive
        doubling algorithm')."""
        from repro.collectives.allgather_rd import RecursiveDoublingAllgather

        sched = RecursiveDoublingAllgather().schedule(16)
        block = schedule_max_congestion(
            tiny_engine, sched, block_bunch(tiny_cluster, 16), 1024.0
        )
        cyclic = schedule_max_congestion(
            tiny_engine, sched, cyclic_scatter(tiny_cluster, 16), 1024.0
        )
        assert 0 < cyclic < block
