"""Batched multi-heuristic driver: reorder_all vs. sequential reorder_ranks.

The batched driver must be a pure amortisation — identical mappings,
identical cache entries (a sequential caller later hits what the batch
stored and vice versa), identical rng-stream consumption for shared
Generators — or the evaluator, the sweep cells and fault recovery would
diverge from the per-pattern reference paths they replaced.
"""

import numpy as np
import pytest

from repro.mapping.cache import MappingCache
from repro.mapping.initial import make_layout
from repro.mapping.reorder import HEURISTICS, reorder_all, reorder_ranks
from repro.util.rng import make_rng


class TestReorderAllEquality:
    def test_matches_sequential_int_seed(self, mid_cluster):
        impl = mid_cluster.implicit_distances()
        L = make_layout("cyclic-bunch", mid_cluster, 64)
        batch = reorder_all(L, impl, rng=3, cache="off")
        assert list(batch) == list(HEURISTICS)
        for pattern in HEURISTICS:
            solo = reorder_ranks(pattern, L, impl, rng=3, cache="off")
            assert np.array_equal(batch[pattern].mapping, solo.mapping), pattern
            assert batch[pattern].pattern == pattern
            assert batch[pattern].mapper_name == solo.mapper_name
            assert batch[pattern].graph_seconds == 0.0

    def test_matches_sequential_shared_generator(self, mid_cluster):
        """A live Generator is consumed in pattern order, exactly as the
        equivalent sequence of solo calls would consume it."""
        impl = mid_cluster.implicit_distances()
        L = make_layout("block-scatter", mid_cluster, 64)
        patterns = sorted(HEURISTICS)
        g_batch = make_rng(11)
        g_solo = make_rng(11)
        batch = reorder_all(L, impl, patterns=patterns, rng=g_batch, cache="off")
        for pattern in patterns:
            solo = reorder_ranks(pattern, L, impl, rng=g_solo, cache="off")
            assert np.array_equal(batch[pattern].mapping, solo.mapping), pattern
        assert g_batch.integers(1 << 30) == g_solo.integers(1 << 30)

    def test_per_pattern_rng_mapping(self, mid_cluster):
        impl = mid_cluster.implicit_distances()
        L = make_layout("cyclic-scatter", mid_cluster, 32)
        patterns = ["ring", "bruck"]
        seeds = {"ring": 5, "bruck": 17}
        batch = reorder_all(L, impl, patterns=patterns, rng=seeds, cache="off")
        for pattern in patterns:
            solo = reorder_ranks(pattern, L, impl, rng=seeds[pattern], cache="off")
            assert np.array_equal(batch[pattern].mapping, solo.mapping), pattern

    def test_rng_mapping_missing_pattern(self, mid_cluster):
        impl = mid_cluster.implicit_distances()
        L = make_layout("block-bunch", mid_cluster, 16)
        with pytest.raises(KeyError, match="rng mapping lacks"):
            reorder_all(L, impl, patterns=["ring", "bruck"], rng={"ring": 1})

    def test_unknown_pattern(self, mid_cluster):
        impl = mid_cluster.implicit_distances()
        L = make_layout("block-bunch", mid_cluster, 16)
        with pytest.raises(KeyError, match="nope"):
            reorder_all(L, impl, patterns=["nope"])


class TestReorderAllCache:
    def test_batch_entries_hit_from_sequential_path(self, mid_cluster):
        """Entries stored by the batch are exactly what solo calls look up."""
        impl = mid_cluster.implicit_distances()
        L = make_layout("cyclic-bunch", mid_cluster, 64)
        cache = MappingCache()
        batch = reorder_all(L, impl, rng=0, cache=cache)
        assert all(not r.cached for r in batch.values())
        assert cache.misses == len(HEURISTICS)
        for pattern in HEURISTICS:
            solo = reorder_ranks(pattern, L, impl, rng=0, cache=cache)
            assert solo.cached, pattern
            assert np.array_equal(solo.mapping, batch[pattern].mapping)

    def test_sequential_entries_hit_from_batch_path(self, mid_cluster):
        impl = mid_cluster.implicit_distances()
        L = make_layout("block-bunch", mid_cluster, 64)
        cache = MappingCache()
        solos = {
            pt: reorder_ranks(pt, L, impl, rng=4, cache=cache) for pt in HEURISTICS
        }
        hits_before = cache.hits
        batch = reorder_all(L, impl, rng=4, cache=cache)
        assert cache.hits == hits_before + len(HEURISTICS)
        for pattern in HEURISTICS:
            assert batch[pattern].cached, pattern
            assert np.array_equal(batch[pattern].mapping, solos[pattern].mapping)

    def test_mixed_hits_and_misses(self, mid_cluster):
        """A batch with a partial cache maps only the missing patterns."""
        impl = mid_cluster.implicit_distances()
        L = make_layout("cyclic-scatter", mid_cluster, 64)
        cache = MappingCache()
        reorder_ranks("ring", L, impl, rng=2, cache=cache)
        batch = reorder_all(L, impl, patterns=["ring", "bruck"], rng=2, cache=cache)
        assert batch["ring"].cached
        assert not batch["bruck"].cached
        solo = reorder_ranks("bruck", L, impl, rng=2, cache="off")
        assert np.array_equal(batch["bruck"].mapping, solo.mapping)

    def test_generator_rng_bypasses_cache(self, mid_cluster):
        impl = mid_cluster.implicit_distances()
        L = make_layout("block-bunch", mid_cluster, 32)
        cache = MappingCache()
        reorder_all(L, impl, patterns=["ring"], rng=make_rng(0), cache=cache)
        assert cache.hits == 0 and cache.misses == 0
