"""Optimality-gap tests: the heuristics vs the exhaustive optimum."""

import numpy as np
import pytest

from repro.mapping.bbmh import BBMH
from repro.mapping.bgmh import BGMH
from repro.mapping.metrics import hop_bytes
from repro.mapping.optimal import OptimalMapper
from repro.mapping.patterns import build_pattern
from repro.mapping.rdmh import RDMH
from repro.mapping.rmh import RMH
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def D8(one_node):
    """One GPC node: 8 cores, 2 sockets — the intra-node mapping setting."""
    return one_node.distance_matrix()


class TestExhaustiveSearch:
    def test_rejects_big_instances(self):
        with pytest.raises(ValueError, match="exhaustive"):
            OptimalMapper(build_pattern("ring", 16))

    def test_contract(self, D8):
        g = build_pattern("ring", 8)
        layout = np.array([3, 5, 1, 7, 0, 2, 6, 4])
        M = OptimalMapper(g).map(layout, D8)
        assert sorted(M.tolist()) == sorted(layout.tolist())
        assert M[0] == layout[0]

    def test_never_worse_than_any_heuristic(self, D8):
        rng = make_rng(0)
        for pattern, heuristic in [
            ("ring", RMH(tie_break="first")),
            ("recursive-doubling", RDMH(tie_break="first")),
            ("binomial-bcast", BBMH(tie_break="first")),
            ("binomial-gather", BGMH(tie_break="first")),
        ]:
            g = build_pattern(pattern, 8)
            opt = OptimalMapper(g)
            for _ in range(3):
                layout = rng.permutation(8)
                c_opt = hop_bytes(g, opt.map(layout, D8), D8)
                c_h = hop_bytes(g, heuristic.map(layout, D8, rng=0), D8)
                assert c_opt <= c_h + 1e-9, pattern

    def test_finds_known_optimum_for_ring(self, D8):
        """For the ring on one 2-socket node the optimum keeps all but two
        edges intra-socket: hop-bytes = 7 * (6 intra + 2 cross edges)."""
        g = build_pattern("ring", 8)
        layout = np.arange(8)
        cost = OptimalMapper(g).optimal_cost(layout, D8)
        # weights are p-1=7 per edge; distances: intra-socket 1, cross 3
        assert cost == pytest.approx(7 * (6 * 1 + 2 * 3))


class TestHeuristicOptimalityGap:
    @pytest.mark.parametrize(
        "pattern,heuristic_cls",
        [("ring", RMH), ("recursive-doubling", RDMH), ("binomial-gather", BGMH)],
        ids=["rmh", "rdmh", "bgmh"],
    )
    def test_gap_is_small_intra_node(self, D8, pattern, heuristic_cls):
        """On one node the paper's heuristics stay within 25% of optimal
        hop-bytes from arbitrary placements."""
        rng = make_rng(7)
        g = build_pattern(pattern, 8)
        opt = OptimalMapper(g)
        gaps = []
        for _ in range(5):
            layout = rng.permutation(8)
            c_opt = opt.optimal_cost(layout, D8)
            c_h = hop_bytes(g, heuristic_cls(tie_break="first").map(layout, D8, rng=0), D8)
            gaps.append(c_h / c_opt)
        assert max(gaps) <= 1.25, gaps
