"""Initial layout tests (paper §VI-A block/cyclic x bunch/scatter)."""

import pytest

from repro.mapping.initial import (
    INITIAL_LAYOUTS,
    block_bunch,
    block_scatter,
    cyclic_bunch,
    cyclic_scatter,
    make_layout,
)


class TestDefinitions:
    """Explicit expected placements on the tiny cluster:
    4 nodes x (2 sockets x 2 cores); cores 0-3 on node 0, sockets {0,1},{2,3}.
    """

    def test_block_bunch_is_identity(self, tiny_cluster):
        assert block_bunch(tiny_cluster, 8).tolist() == list(range(8))

    def test_block_scatter_alternates_sockets(self, tiny_cluster):
        # within node 0: rank 0 -> core 0 (s0), rank 1 -> core 2 (s1), ...
        assert block_scatter(tiny_cluster, 8).tolist() == [0, 2, 1, 3, 4, 6, 5, 7]

    def test_cyclic_bunch_round_robins_nodes(self, tiny_cluster):
        # p=16 uses all 4 nodes; ranks round-robin across them
        L = cyclic_bunch(tiny_cluster, 16)
        assert L.tolist() == [0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]
        assert tiny_cluster.node_of(L[:4]).tolist() == [0, 1, 2, 3]

    def test_cyclic_allocates_only_needed_nodes(self, tiny_cluster):
        # 8 ranks need only 2 nodes; cyclic round-robins over those two
        L = cyclic_bunch(tiny_cluster, 8)
        assert L.tolist() == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_cyclic_scatter(self, tiny_cluster):
        L = cyclic_scatter(tiny_cluster, 16)
        # rank 4 is the second rank on node 0 -> other socket (core 2)
        assert L[4] == 2
        assert tiny_cluster.node_of(L[:4]).tolist() == [0, 1, 2, 3]


class TestContract:
    @pytest.mark.parametrize("name", sorted(INITIAL_LAYOUTS))
    @pytest.mark.parametrize("p", [1, 5, 8, 16])
    def test_valid_injective_layouts(self, name, p, tiny_cluster):
        L = make_layout(name, tiny_cluster, p)
        assert L.shape == (p,)
        assert len(set(L.tolist())) == p
        assert L.min() >= 0 and L.max() < tiny_cluster.n_cores

    @pytest.mark.parametrize("name", sorted(INITIAL_LAYOUTS))
    def test_full_subscription_same_core_set(self, name, tiny_cluster):
        """All four layouts occupy exactly the same cores when full."""
        L = make_layout(name, tiny_cluster, 16)
        assert sorted(L.tolist()) == list(range(16))

    def test_block_fills_nodes_in_order(self, mid_cluster):
        L = block_bunch(mid_cluster, 24)
        nodes = mid_cluster.node_of(L)
        assert nodes.tolist() == [0] * 8 + [1] * 8 + [2] * 8

    def test_oversubscription_rejected(self, tiny_cluster):
        with pytest.raises(ValueError, match="exceeds"):
            block_bunch(tiny_cluster, 17)

    def test_nonpositive_rejected(self, tiny_cluster):
        with pytest.raises(ValueError):
            block_bunch(tiny_cluster, 0)

    def test_unknown_name(self, tiny_cluster):
        with pytest.raises(KeyError, match="unknown layout"):
            make_layout("spiral", tiny_cluster, 8)
