"""Jit-tier placement identity: compiled kernel vs. the naive reference.

``engine='jit'`` must be bit-identical to ``engine='naive'`` — same
cores, same rng stream (the kernel replays numpy's bounded-integer draws
through a PCG64/Lemire replica), both tie-break modes, shrink survivor
pools included.  Without numba the product path delegates to the
vectorised parent (already covered by test_driver.py); these tests
additionally force the pure-python twin of the kernel so the kernel
algorithm and the rng replica are exercised end to end in every
environment.
"""

import numpy as np
import pytest

import repro.mapping.jitkernel as jk
from repro.mapping.base import PLACEMENT_ENGINES
from repro.mapping.bbmh import BBMH
from repro.mapping.bgmh import BGMH
from repro.mapping.bruckmh import BruckMH
from repro.mapping.initial import make_layout
from repro.mapping.jitkernel import (
    JitFreePool,
    is_pcg64_generator,
    pcg64_state_words,
    write_pcg64_state_words,
)
from repro.mapping.rdmh import RDMH
from repro.mapping.rmh import RMH
from repro.util.jit import HAS_NUMBA
from repro.util.rng import make_rng

HEURISTICS = [RMH, RDMH, BBMH, BGMH, BruckMH]
#: Heuristics without a power-of-two constraint on p.
ANY_P_HEURISTICS = [RMH, BGMH, BruckMH]


@pytest.fixture()
def forced_python_kernel(monkeypatch):
    """Route every ``engine='jit'`` pool through the python kernel twin.

    The mapper's ``_open_pool`` imports :class:`JitFreePool` from the
    jitkernel module at call time, so patching the module attribute is
    enough to force the kernel path without numba installed.
    """

    class ForcedJitFreePool(JitFreePool):
        def __init__(self, *args, **kwargs):
            kwargs.setdefault("force_python_kernel", True)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(jk, "JitFreePool", ForcedJitFreePool)
    return ForcedJitFreePool


def _maps(cls, cluster, L, tie_break, rng_naive, rng_jit):
    naive = cls(tie_break=tie_break, engine="naive").map(
        L, cluster.distance_matrix(), rng=rng_naive
    )
    jit = cls(tie_break=tie_break, engine="jit").map(
        L, cluster.implicit_distances(), rng=rng_jit
    )
    return naive, jit


class TestPcg64Replica:
    def test_state_words_round_trip(self):
        rng = make_rng(1234)
        rng.integers(1000)  # populate the 32-bit buffer
        words = pcg64_state_words(rng)
        other = make_rng(0)
        write_pcg64_state_words(other, words)
        assert np.array_equal(pcg64_state_words(other), words)
        assert other.integers(1 << 20) == rng.integers(1 << 20)

    @pytest.mark.parametrize("seed", [0, 1, 42, 2**31])
    def test_python_kernel_matches_numpy_draws(self, seed):
        """The Lemire replica reproduces Generator.integers draw by draw."""
        rng = make_rng(seed)
        words = pcg64_state_words(rng)
        w = [int(x) for x in words]
        for k in (1, 2, 3, 7, 100, 2**31):
            expected = int(rng.integers(k))
            got = 0 if k == 1 else jk._py_bounded32(w, k - 1)
            assert got == expected, (seed, k)
        # the replica's final state must match the generator's
        assert [int(x) for x in pcg64_state_words(rng)] == w

    def test_non_pcg64_detection(self):
        mt = np.random.Generator(np.random.MT19937(3))  # noqa: REP001
        assert not is_pcg64_generator(mt)
        assert is_pcg64_generator(make_rng(3))


class TestJitPlacementIdentity:
    @pytest.mark.parametrize("cls", HEURISTICS)
    @pytest.mark.parametrize("tie_break", ["random", "first"])
    def test_forced_python_kernel_bit_identical(
        self, mid_cluster, forced_python_kernel, cls, tie_break
    ):
        for p in (16, 64):
            for lname in ("block-bunch", "cyclic-scatter"):
                L = make_layout(lname, mid_cluster, p)
                for seed in (0, 7):
                    naive, jit = _maps(cls, mid_cluster, L, tie_break, seed, seed)
                    assert np.array_equal(naive, jit), (cls.name, p, lname, seed)

    @pytest.mark.parametrize("cls", HEURISTICS)
    def test_rng_stream_identical_after_map(
        self, mid_cluster, forced_python_kernel, cls
    ):
        """Shared-Generator callers see the exact same stream afterwards."""
        L = make_layout("cyclic-bunch", mid_cluster, 64)
        g1 = make_rng(99)
        g2 = make_rng(99)
        naive, jit = _maps(cls, mid_cluster, L, "random", g1, g2)
        assert np.array_equal(naive, jit)
        assert np.array_equal(pcg64_state_words(g1), pcg64_state_words(g2))
        assert g1.integers(1 << 30) == g2.integers(1 << 30)

    @pytest.mark.parametrize("cls", ANY_P_HEURISTICS)
    def test_shrink_survivor_pools(self, mid_cluster, forced_python_kernel, cls):
        """Non-contiguous survivor layouts (post-shrink) stay identical."""
        survivors = mid_cluster.shrink([2, 5])
        assert survivors.size == 48
        partial = mid_cluster.shrink([1, 6])[:32]
        for L in (survivors, partial):
            for seed in (0, 3):
                naive, jit = _maps(cls, mid_cluster, L, "random", seed, seed)
                assert np.array_equal(naive, jit), (cls.name, L.size, seed)

    def test_non_pcg64_generator_falls_back(self, mid_cluster, forced_python_kernel):
        """A random tie-break with an MT19937 Generator cannot use the
        kernel replica; the pool must degrade to the vectorised loop and
        still match the naive engine draw for draw."""
        L = make_layout("block-bunch", mid_cluster, 32)
        g1 = np.random.Generator(np.random.MT19937(5))  # noqa: REP001
        g2 = np.random.Generator(np.random.MT19937(5))  # noqa: REP001
        naive, jit = _maps(RMH, mid_cluster, L, "random", g1, g2)
        assert np.array_equal(naive, jit)
        assert g1.integers(1 << 30) == g2.integers(1 << 30)

    def test_kernel_mode_reporting(self, mid_cluster):
        impl = mid_cluster.implicit_distances()
        L = make_layout("block-bunch", mid_cluster, 16)
        plain = JitFreePool(impl, L, rng=0, tie_break="first")
        forced = JitFreePool(
            impl, L, rng=0, tie_break="first", force_python_kernel=True
        )
        if HAS_NUMBA:
            assert plain.kernel_mode == "numba"
        else:
            assert plain.kernel_mode is None
            assert forced.kernel_mode == "python"
        mt = np.random.Generator(np.random.MT19937(1))  # noqa: REP001
        off = JitFreePool(impl, L, rng=mt, tie_break="random")
        assert off.kernel_mode is None

    def test_jit_engine_registered(self):
        assert "jit" in PLACEMENT_ENGINES

    def test_jit_requires_vectorizable_backend(self, mid_cluster):
        L = make_layout("block-bunch", mid_cluster, 16)
        with pytest.raises(ValueError, match="ImplicitDistances"):
            RMH(engine="jit").map(L, mid_cluster.distance_matrix(), rng=0)

    def test_auto_prefers_jit_on_implicit_backend(self, mid_cluster):
        """engine='auto' must route implicit backends through the jit pool."""
        mapper = RMH(engine="auto")
        pool = mapper._open_pool(
            mid_cluster.implicit_distances(),
            make_layout("block-bunch", mid_cluster, 16),
            0,
        )
        assert isinstance(pool, JitFreePool)


class TestPoolExhaustion:
    def test_exhaustion_error_matches_reference(
        self, mid_cluster, forced_python_kernel
    ):
        """A program that places more ranks than there are cores must
        raise the same PoolExhaustedError either way."""
        from repro.mapping.base import PoolExhaustedError

        impl = mid_cluster.implicit_distances()
        n = mid_cluster.n_cores
        L = np.arange(n, dtype=np.int64)
        pool = jk.JitFreePool(
            impl, L, rng=0, tie_break="first", force_python_kernel=True
        )
        M = [-1] * (n + 1)
        M[0] = 0
        pool.take(0)
        program = ((i, 0) for i in range(1, n + 1))
        with pytest.raises(PoolExhaustedError):
            pool.execute_program(program, M)
