"""Swap-refinement tests."""

import numpy as np
import pytest

from repro.mapping.metrics import hop_bytes
from repro.mapping.patterns import PatternGraph, build_pattern
from repro.mapping.refine import SwapRefiner
from repro.mapping.rdmh import RDMH
from repro.mapping.initial import block_bunch, cyclic_scatter
from repro.util.rng import make_rng


class TestSwapRefiner:
    def test_never_worse(self, mid_cluster, mid_D):
        g = build_pattern("ring", 64)
        refiner = SwapRefiner(g)
        for layout_fn in (block_bunch, cyclic_scatter):
            L = layout_fn(mid_cluster, 64)
            res = refiner.refine(L, mid_D, rng=0)
            assert res.final_hop_bytes <= res.initial_hop_bytes
            assert res.final_hop_bytes == pytest.approx(hop_bytes(g, res.mapping, mid_D))

    def test_preserves_permutation(self, mid_cluster, mid_D):
        g = build_pattern("recursive-doubling", 64)
        L = cyclic_scatter(mid_cluster, 64)
        res = SwapRefiner(g).refine(L, mid_D, rng=0)
        assert sorted(res.mapping.tolist()) == sorted(L.tolist())

    def test_improves_random_mapping(self, mid_cluster, mid_D):
        rng = make_rng(1)
        L = rng.permutation(64)
        g = build_pattern("ring", 64)
        res = SwapRefiner(g, max_passes=6).refine(L, mid_D, rng=0)
        assert res.final_hop_bytes < res.initial_hop_bytes
        assert res.improvement_pct > 0
        assert res.swaps > 0

    def test_input_not_mutated(self, mid_cluster, mid_D):
        L = cyclic_scatter(mid_cluster, 64)
        before = L.copy()
        SwapRefiner(build_pattern("ring", 64)).refine(L, mid_D, rng=0)
        assert np.array_equal(L, before)

    def test_empty_graph(self, mid_D):
        g = PatternGraph(4, np.empty(0), np.empty(0), np.empty(0))
        res = SwapRefiner(g).refine(np.arange(4), mid_D, rng=0)
        assert res.swaps == 0
        assert res.improvement_pct == 0.0

    def test_validation(self):
        g = build_pattern("ring", 8)
        with pytest.raises(ValueError):
            SwapRefiner(g, max_passes=0)
        with pytest.raises(ValueError):
            SwapRefiner(g, candidates_per_pass=0)

    def test_on_top_of_heuristic(self, mid_cluster, mid_D):
        """Refinement composes with RDMH and cannot undo its quality."""
        L = block_bunch(mid_cluster, 64)
        M = RDMH(tie_break="first").map(L, mid_D, rng=0)
        g = build_pattern("recursive-doubling", 64)
        res = SwapRefiner(g).refine(M, mid_D, rng=0)
        assert res.final_hop_bytes <= hop_bytes(g, M, mid_D)
