"""reorder_ranks entry-point tests (paper §IV flow + Fig. 7b overheads)."""

import numpy as np
import pytest

from repro.mapping.initial import block_bunch, cyclic_scatter
from repro.mapping.reorder import HEURISTICS, reorder_ranks


class TestDispatch:
    def test_heuristics_registry_complete(self):
        assert set(HEURISTICS) == {
            "recursive-doubling",
            "ring",
            "binomial-bcast",
            "binomial-gather",
            "bruck",
        }

    @pytest.mark.parametrize("pattern", sorted(HEURISTICS))
    def test_heuristic_kind(self, pattern, mid_cluster, mid_D):
        layout = cyclic_scatter(mid_cluster, 32)
        res = reorder_ranks(pattern, layout, mid_D, kind="heuristic", rng=0)
        assert res.pattern == pattern
        assert res.graph_seconds == 0.0          # no pattern graph built
        assert res.map_seconds > 0.0
        assert sorted(res.mapping.tolist()) == sorted(layout.tolist())

    @pytest.mark.parametrize("kind", ["scotch", "greedy"])
    def test_graph_based_kinds(self, kind, mid_cluster, mid_D):
        layout = block_bunch(mid_cluster, 32)
        res = reorder_ranks("ring", layout, mid_D, kind=kind, rng=0)
        assert res.graph_seconds > 0.0           # graph construction timed
        assert res.total_seconds == pytest.approx(res.map_seconds + res.graph_seconds)

    def test_unknown_kind(self, mid_D):
        with pytest.raises(ValueError, match="kind"):
            reorder_ranks("ring", np.arange(8), mid_D, kind="magic")

    def test_unknown_pattern(self, mid_D):
        with pytest.raises(KeyError, match="heuristic"):
            reorder_ranks("alltoall", np.arange(8), mid_D)

    def test_mapper_kwargs_forwarded(self, mid_cluster, mid_D):
        layout = cyclic_scatter(mid_cluster, 16)
        a = reorder_ranks("binomial-bcast", layout, mid_D, tie_break="first", traversal="bft")
        b = reorder_ranks("binomial-bcast", layout, mid_D, tie_break="first", traversal="bft")
        assert np.array_equal(a.mapping, b.mapping)


class TestOverheadOrdering:
    def test_heuristic_cheaper_than_scotch(self, mid_cluster, mid_D):
        """Fig. 7(b): fine-tuned heuristics cost far less than Scotch,
        which must also build the pattern graph first."""
        layout = cyclic_scatter(mid_cluster, 64)
        h = reorder_ranks("recursive-doubling", layout, mid_D, kind="heuristic", rng=0)
        s = reorder_ranks("recursive-doubling", layout, mid_D, kind="scotch", rng=0)
        assert h.total_seconds < s.total_seconds


class TestReorderingObject:
    def test_bijection_fields(self, mid_cluster, mid_D):
        layout = cyclic_scatter(mid_cluster, 16)
        res = reorder_ranks("ring", layout, mid_D, rng=0)
        ro = res.reordering
        assert np.array_equal(np.sort(ro.old_of_new), np.arange(16))
        assert np.array_equal(ro.new_of_old[ro.old_of_new], np.arange(16))
