"""General-purpose baseline mappers: Scotch-like and Hoefler-Snir greedy."""

import numpy as np
import pytest

from repro.mapping.greedy import GreedyGraphMapper
from repro.mapping.initial import block_bunch, cyclic_scatter
from repro.mapping.metrics import hop_bytes
from repro.mapping.patterns import build_pattern
from repro.mapping.scotch import ScotchLikeMapper


class TestScotchLike:
    def test_permutation_output(self, mid_cluster, mid_D):
        g = build_pattern("ring", 32)
        layout = cyclic_scatter(mid_cluster, 32)
        M = ScotchLikeMapper(g).map(layout, mid_D, rng=0)
        assert sorted(M.tolist()) == sorted(layout.tolist())

    def test_improves_scattered_ring(self, mid_cluster, mid_D):
        g = build_pattern("ring", 64)
        layout = cyclic_scatter(mid_cluster, 64)
        M = ScotchLikeMapper(g).map(layout, mid_D, rng=0)
        assert hop_bytes(g, M, mid_D) < hop_bytes(g, layout, mid_D)

    def test_size_mismatch_rejected(self, mid_D):
        g = build_pattern("ring", 8)
        with pytest.raises(ValueError, match="pattern graph"):
            ScotchLikeMapper(g).map(np.arange(16), mid_D)

    def test_refine_passes_validation(self):
        g = build_pattern("ring", 8)
        with pytest.raises(ValueError):
            ScotchLikeMapper(g, refine_passes=-1)

    def test_zero_passes_still_valid(self, mid_cluster, mid_D):
        g = build_pattern("recursive-doubling", 16)
        layout = block_bunch(mid_cluster, 16)
        M = ScotchLikeMapper(g, refine_passes=0).map(layout, mid_D, rng=0)
        assert sorted(M.tolist()) == sorted(layout.tolist())

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 17, 32])
    def test_odd_sizes(self, p, mid_cluster, mid_D):
        g = build_pattern("ring", p)
        layout = block_bunch(mid_cluster, p)
        M = ScotchLikeMapper(g).map(layout, mid_D, rng=1)
        assert sorted(M.tolist()) == sorted(layout.tolist())


class TestGreedy:
    def test_permutation_output(self, mid_cluster, mid_D):
        g = build_pattern("binomial-gather", 32)
        layout = cyclic_scatter(mid_cluster, 32)
        M = GreedyGraphMapper(g).map(layout, mid_D, rng=0)
        assert sorted(M.tolist()) == sorted(layout.tolist())
        assert M[0] == layout[0]  # greedy fixes rank 0 like the heuristics

    def test_improves_scattered_gather(self, mid_cluster, mid_D):
        g = build_pattern("binomial-gather", 64)
        layout = cyclic_scatter(mid_cluster, 64)
        M = GreedyGraphMapper(g).map(layout, mid_D, rng=0)
        assert hop_bytes(g, M, mid_D) <= hop_bytes(g, layout, mid_D)

    def test_size_mismatch_rejected(self, mid_D):
        g = build_pattern("ring", 8)
        with pytest.raises(ValueError):
            GreedyGraphMapper(g).map(np.arange(4), mid_D)
