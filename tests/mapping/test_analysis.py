"""Stage-locality analysis tests — the paper's stage-wise claims, checked."""

import pytest

from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.mapping.analysis import locality_table, stage_locality
from repro.mapping.initial import block_bunch, cyclic_bunch, cyclic_scatter
from repro.mapping.rdmh import RDMH
from repro.mapping.rmh import RMH


class TestStageLocality:
    def test_counts_partition_messages(self, mid_cluster):
        sched = RecursiveDoublingAllgather().schedule(64)
        rows = stage_locality(sched, block_bunch(mid_cluster, 64), mid_cluster)
        assert len(rows) == 6
        for r in rows:
            assert r.n_messages == 64
            assert sum(r.counts.values()) == 64

    def test_block_rd_early_stages_local(self, mid_cluster):
        """Under block-bunch the small early RD stages stay in the node
        and the big late ones all cross — the Fig. 3(a) pathology."""
        sched = RecursiveDoublingAllgather().schedule(64)
        rows = stage_locality(sched, block_bunch(mid_cluster, 64), mid_cluster)
        assert rows[0].intra_node_fraction == 1.0   # xor 1: same socket
        assert rows[2].intra_node_fraction == 1.0   # xor 4: same node
        assert rows[3].intra_node_fraction == 0.0   # xor 8: all cross
        assert rows[5].intra_node_fraction == 0.0

    def test_cyclic_rd_late_stages_local(self, mid_cluster):
        """Cyclic inverts it: the three largest stages become node-local
        ('an initial cyclic mapping is better than block for recursive
        doubling', §VI-A1)."""
        sched = RecursiveDoublingAllgather().schedule(64)
        rows = stage_locality(sched, cyclic_bunch(mid_cluster, 64), mid_cluster)
        assert rows[5].intra_node_fraction == 1.0
        assert rows[4].intra_node_fraction == 1.0
        assert rows[3].intra_node_fraction == 1.0
        assert rows[0].intra_node_fraction == 0.0

    def test_rdmh_recovers_late_stage_locality(self, mid_cluster, mid_D):
        """THE paper claim: from a block layout RDMH re-localises the
        largest-message stages."""
        sched = RecursiveDoublingAllgather().schedule(64)
        M = RDMH(tie_break="first").map(block_bunch(mid_cluster, 64), mid_D, rng=0)
        rows = stage_locality(sched, M, mid_cluster)
        assert rows[5].intra_node_fraction == 1.0
        assert rows[4].intra_node_fraction == 1.0
        assert rows[3].intra_node_fraction == 1.0

    def test_rmh_localises_the_ring(self, mid_cluster, mid_D):
        sched = RingAllgather().schedule(64)
        before = stage_locality(sched, cyclic_scatter(mid_cluster, 64), mid_cluster)[0]
        M = RMH(tie_break="first").map(cyclic_scatter(mid_cluster, 64), mid_D, rng=0)
        after = stage_locality(sched, M, mid_cluster)[0]
        assert before.intra_node_fraction == 0.0
        assert after.intra_node_fraction > 0.8   # only node-boundary hops remain

    def test_unit_fraction_weights_by_volume(self, mid_cluster):
        sched = RecursiveDoublingAllgather().schedule(64)
        rows = stage_locality(sched, block_bunch(mid_cluster, 64), mid_cluster)
        # per-stage sizes are uniform, so unit and message fractions agree
        for r in rows:
            assert r.intra_node_unit_fraction == pytest.approx(r.intra_node_fraction)

    def test_table_renders(self, mid_cluster):
        sched = RingAllgather().schedule(64)
        text = locality_table(sched, block_bunch(mid_cluster, 64), mid_cluster)
        assert "local%" in text
        assert "ring:stage*" in text
