"""Content-addressed mapping cache tests (memory tier, disk tier, wiring)."""

import json

import numpy as np
import pytest

from repro.mapping.cache import (
    MAPPING_CACHE_ENV,
    MappingCache,
    global_mapping_cache,
    mapping_cache_key,
)
from repro.mapping.initial import make_layout
from repro.mapping.reorder import reorder_ranks
from repro.util.rng import make_rng


def _entry(layout):
    return {
        "mapping": list(reversed(layout)),
        "layout": list(layout),
        "mapper_name": "test",
        "map_seconds": 0.01,
        "graph_seconds": 0.0,
    }


class TestCacheKey:
    def test_deterministic(self):
        L = np.arange(8, dtype=np.int64)
        a = mapping_cache_key("fp", "ring", "heuristic", L, 0, {"tie_break": "first"})
        b = mapping_cache_key("fp", "ring", "heuristic", L, 0, {"tie_break": "first"})
        assert a == b

    @pytest.mark.parametrize(
        "change",
        [
            {"fingerprint": "other"},
            {"pattern": "bruck"},
            {"kind": "scotch"},
            {"seed": 1},
            {"layout": np.arange(1, 9)},
            {"kwargs": {"tie_break": "random"}},
        ],
    )
    def test_every_field_is_content(self, change):
        base = dict(
            fingerprint="fp",
            pattern="ring",
            kind="heuristic",
            layout=np.arange(8),
            seed=0,
            kwargs={"tie_break": "first"},
        )
        a = mapping_cache_key(
            base["fingerprint"], base["pattern"], base["kind"],
            base["layout"], base["seed"], base["kwargs"],
        )
        base.update(change)
        b = mapping_cache_key(
            base["fingerprint"], base["pattern"], base["kind"],
            base["layout"], base["seed"], base["kwargs"],
        )
        assert a != b

    def test_engine_kwarg_is_not_content(self):
        # Both engines are bit-identical by contract, so a mapping
        # computed by one must be a hit for the other.
        L = np.arange(8)
        keys = {
            mapping_cache_key("fp", "ring", "heuristic", L, 0, kw)
            for kw in ({}, {"engine": "naive"}, {"engine": "vectorized"})
        }
        assert len(keys) == 1


class TestMappingCache:
    def test_memory_roundtrip_and_stats(self):
        cache = MappingCache()
        assert cache.get("k") is None
        cache.put("k", _entry([3, 1, 2]))
        assert cache.get("k")["mapping"] == [2, 1, 3]
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_bound(self):
        cache = MappingCache(max_memory_entries=2)
        for i in range(3):
            cache.put(f"k{i}", _entry([i, i + 1]))
        assert len(cache) == 2
        assert cache.get("k0") is None  # evicted oldest

    def test_invalid_entry_rejected(self):
        cache = MappingCache()
        with pytest.raises(ValueError, match="invalid"):
            cache.put("k", {"mapping": [0, 1], "layout": [5, 6]})

    def test_disk_tier_warm_across_instances(self, tmp_path):
        a = MappingCache(directory=tmp_path)
        a.put("deadbeef", _entry([0, 1, 2, 3]))
        b = MappingCache(directory=tmp_path)
        assert b.get("deadbeef")["mapping"] == [3, 2, 1, 0]

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = MappingCache(directory=tmp_path)
        cache.put("k", _entry([0, 1]))
        (tmp_path / "k.json").write_text("{ torn")
        cache.clear()
        assert cache.get("k") is None

    def test_tampered_disk_entry_is_a_miss(self, tmp_path):
        cache = MappingCache(directory=tmp_path)
        cache.put("k", _entry([0, 1]))
        bad = _entry([0, 1])
        bad["mapping"] = [0, 7]  # not a permutation of the layout
        (tmp_path / "k.json").write_text(json.dumps(bad))
        cache.clear()
        assert cache.get("k") is None


class TestGlobalCache:
    def test_follows_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(MAPPING_CACHE_ENV, raising=False)
        assert global_mapping_cache().directory is None
        monkeypatch.setenv(MAPPING_CACHE_ENV, str(tmp_path))
        assert global_mapping_cache().directory == tmp_path
        monkeypatch.delenv(MAPPING_CACHE_ENV)
        assert global_mapping_cache().directory is None


class TestReorderRanksCaching:
    def test_hit_reproduces_mapping(self, mid_cluster):
        cache = MappingCache()
        L = make_layout("cyclic-bunch", mid_cluster, 16)
        impl = mid_cluster.implicit_distances()
        first = reorder_ranks("ring", L, impl, rng=4, cache=cache)
        again = reorder_ranks("ring", L, impl, rng=4, cache=cache)
        assert not first.cached and again.cached
        assert np.array_equal(first.mapping, again.mapping)
        assert again.mapper_name == first.mapper_name

    def test_engines_share_entries(self, mid_cluster):
        cache = MappingCache()
        L = make_layout("block-bunch", mid_cluster, 16)
        impl = mid_cluster.implicit_distances()
        reorder_ranks("ring", L, impl, rng=1, cache=cache, engine="vectorized")
        hit = reorder_ranks("ring", L, impl, rng=1, cache=cache, engine="naive")
        assert hit.cached

    def test_dense_matrix_bypasses_cache(self, mid_cluster, mid_D):
        # No fingerprint on a plain ndarray -> nothing content-addressable.
        cache = MappingCache()
        L = make_layout("block-bunch", mid_cluster, 16)
        res = reorder_ranks("ring", L, mid_D, rng=0, cache=cache)
        assert not res.cached and len(cache) == 0

    def test_generator_rng_bypasses_cache(self, mid_cluster):
        cache = MappingCache()
        L = make_layout("block-bunch", mid_cluster, 16)
        impl = mid_cluster.implicit_distances()
        res = reorder_ranks("ring", L, impl, rng=make_rng(0), cache=cache)
        assert not res.cached and len(cache) == 0

    def test_cache_off_and_bad_value(self, mid_cluster):
        L = make_layout("block-bunch", mid_cluster, 16)
        impl = mid_cluster.implicit_distances()
        res = reorder_ranks("ring", L, impl, rng=0, cache="off")
        assert not res.cached
        with pytest.raises(ValueError, match="cache"):
            reorder_ranks("ring", L, impl, rng=0, cache=42)

    def test_disk_hit_across_processes_shape(self, tmp_path, mid_cluster):
        # Same directory, fresh cache object — models a pool worker
        # inheriting REPRO_MAPPING_CACHE from the sweep driver.
        L = make_layout("cyclic-scatter", mid_cluster, 32)
        impl = mid_cluster.implicit_distances()
        first = reorder_ranks(
            "bruck", L, impl, rng=9, cache=MappingCache(directory=tmp_path)
        )
        again = reorder_ranks(
            "bruck", L, impl, rng=9, cache=MappingCache(directory=tmp_path)
        )
        assert not first.cached and again.cached
        assert np.array_equal(first.mapping, again.mapping)
        assert len(list(tmp_path.glob("*.json"))) == 1
