"""CorePool and Mapper plumbing tests."""

import numpy as np
import pytest

from repro.mapping.base import CorePool, Mapper


class TestCorePool:
    def test_take_and_free_count(self, tiny_D):
        pool = CorePool(tiny_D, [0, 1, 2, 3])
        assert pool.n_free == 4
        pool.take(2)
        assert pool.n_free == 3
        assert not pool.is_free(2)

    def test_double_take_rejected(self, tiny_D):
        pool = CorePool(tiny_D, [0, 1])
        pool.take(0)
        with pytest.raises(ValueError, match="already taken"):
            pool.take(0)

    def test_foreign_core_rejected(self, tiny_D):
        pool = CorePool(tiny_D, [0, 1])
        with pytest.raises(KeyError):
            pool.take(5)

    def test_duplicates_rejected(self, tiny_D):
        with pytest.raises(ValueError, match="duplicate"):
            CorePool(tiny_D, [0, 0, 1])

    def test_empty_rejected(self, tiny_D):
        with pytest.raises(ValueError, match="empty"):
            CorePool(tiny_D, [])

    def test_closest_free_prefers_same_socket(self, tiny_cluster, tiny_D):
        # cores 0,1 same socket; 2,3 same node other socket; 4+ other nodes
        pool = CorePool(tiny_D, list(range(16)), tie_break="first")
        pool.take(0)
        assert pool.closest_free(0) == 1

    def test_closest_skips_taken(self, tiny_D):
        pool = CorePool(tiny_D, list(range(16)), tie_break="first")
        pool.take(0)
        pool.take(1)
        # next closest to core 0 is its cross-socket neighbours 2, 3
        assert pool.closest_free(0) == 2

    def test_random_tie_break_uses_rng(self, tiny_D):
        picks = set()
        for seed in range(20):
            pool = CorePool(tiny_D, list(range(16)), rng=seed, tie_break="random")
            pool.take(0)
            pool.take(1)
            picks.add(pool.closest_free(0))  # 2 and 3 tie
        assert picks == {2, 3}

    def test_exhaustion_raises(self, tiny_D):
        pool = CorePool(tiny_D, [0])
        pool.take(0)
        with pytest.raises(RuntimeError, match="no free cores"):
            pool.closest_free(0)

    def test_bad_tie_break(self, tiny_D):
        with pytest.raises(ValueError):
            CorePool(tiny_D, [0], tie_break="nope")


class TestMapperPlumbing:
    def test_setup_fixes_rank0(self, tiny_D):
        layout = np.array([3, 1, 2, 0])
        L, M, pool = Mapper._setup(layout, tiny_D, 0, "first")
        assert M[0] == 3
        assert not pool.is_free(3)
        assert pool.n_free == 3

    def test_finish_detects_unmapped(self, tiny_D):
        layout = np.arange(4)
        M = np.array([0, 1, -1, 3])
        with pytest.raises(RuntimeError, match="unmapped"):
            Mapper._finish(M, layout)

    def test_finish_detects_foreign_cores(self):
        layout = np.arange(4)
        M = np.array([0, 1, 2, 7])
        with pytest.raises(RuntimeError, match="outside"):
            Mapper._finish(M, layout)
