"""CorePool and Mapper plumbing tests."""

import numpy as np
import pytest

from repro.mapping.base import CorePool, Mapper, PoolExhaustedError
from repro.util.rng import make_rng


class _NaiveCorePool:
    """Reference replica of the pre-optimisation ``closest_free``.

    Rebuilds the free-core array and gathers distances from the full
    matrix on every query — the behaviour the cached masked-scan version
    must reproduce placement-for-placement.
    """

    def __init__(self, D, cores, rng=0, tie_break="random"):
        self.D = np.asarray(D)
        self.cores = np.asarray(cores, dtype=np.int64)
        self.free = np.ones(self.cores.size, dtype=bool)
        self.rng = make_rng(rng)
        self.tie_break = tie_break

    def take(self, core):
        self.free[int(np.flatnonzero(self.cores == core)[0])] = False

    def closest_free(self, ref_core):
        free_cores = self.cores[self.free]
        d = self.D[int(ref_core), free_cores]
        if self.tie_break == "first":
            return int(free_cores[int(np.argmin(d))])
        candidates = free_cores[d == d.min()]
        return int(candidates[self.rng.integers(candidates.size)])


class TestCorePool:
    def test_take_and_free_count(self, tiny_D):
        pool = CorePool(tiny_D, [0, 1, 2, 3])
        assert pool.n_free == 4
        pool.take(2)
        assert pool.n_free == 3
        assert not pool.is_free(2)

    def test_double_take_rejected(self, tiny_D):
        pool = CorePool(tiny_D, [0, 1])
        pool.take(0)
        with pytest.raises(ValueError, match="already taken"):
            pool.take(0)

    def test_foreign_core_rejected(self, tiny_D):
        pool = CorePool(tiny_D, [0, 1])
        with pytest.raises(KeyError):
            pool.take(5)

    def test_duplicates_rejected(self, tiny_D):
        with pytest.raises(ValueError, match="duplicate"):
            CorePool(tiny_D, [0, 0, 1])

    def test_empty_rejected(self, tiny_D):
        with pytest.raises(ValueError, match="empty"):
            CorePool(tiny_D, [])

    def test_closest_free_prefers_same_socket(self, tiny_cluster, tiny_D):
        # cores 0,1 same socket; 2,3 same node other socket; 4+ other nodes
        pool = CorePool(tiny_D, list(range(16)), tie_break="first")
        pool.take(0)
        assert pool.closest_free(0) == 1

    def test_closest_skips_taken(self, tiny_D):
        pool = CorePool(tiny_D, list(range(16)), tie_break="first")
        pool.take(0)
        pool.take(1)
        # next closest to core 0 is its cross-socket neighbours 2, 3
        assert pool.closest_free(0) == 2

    def test_random_tie_break_uses_rng(self, tiny_D):
        picks = set()
        for seed in range(20):
            pool = CorePool(tiny_D, list(range(16)), rng=seed, tie_break="random")
            pool.take(0)
            pool.take(1)
            picks.add(pool.closest_free(0))  # 2 and 3 tie
        assert picks == {2, 3}

    def test_exhaustion_raises(self, tiny_D):
        pool = CorePool(tiny_D, [0])
        pool.take(0)
        with pytest.raises(RuntimeError, match="no free cores"):
            pool.closest_free(0)

    def test_exhaustion_error_is_typed(self, tiny_D):
        # PoolExhaustedError subclasses RuntimeError, so the older
        # ``except RuntimeError`` call sites keep working.
        pool = CorePool(tiny_D, [0, 1])
        pool.take(0)
        pool.take(1)
        with pytest.raises(PoolExhaustedError, match="no free cores"):
            pool.place_closest(0)
        assert issubclass(PoolExhaustedError, RuntimeError)

    def test_bad_tie_break(self, tiny_D):
        with pytest.raises(ValueError):
            CorePool(tiny_D, [0], tie_break="nope")

    @pytest.mark.parametrize("tie_break", ["random", "first"])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_pins_naive_placements(self, mid_D, tie_break, seed):
        """The cached masked-scan query yields *identical* placement
        sequences (and rng consumption) to the naive rebuild-per-query
        reference, in both tie-break modes."""
        rng = make_rng(seed)
        cores = rng.permutation(mid_D.shape[0])[:48]
        fast = CorePool(mid_D, cores, rng=seed, tie_break=tie_break)
        slow = _NaiveCorePool(mid_D, cores, rng=seed, tie_break=tie_break)
        # greedy chain: each placement becomes the next reference core,
        # like the paper heuristics walk their priority queues
        ref = int(cores[0])
        fast.take(ref)
        slow.take(ref)
        for _ in range(cores.size - 1):
            a = fast.closest_free(ref)
            b = slow.closest_free(ref)
            assert a == b
            fast.take(a)
            slow.take(a)
            ref = a

    def test_external_reference_core(self, mid_D):
        """Reference cores outside the pool still work (direct gather)."""
        pool = CorePool(mid_D, list(range(8, 24)), tie_break="first")
        naive = _NaiveCorePool(mid_D, list(range(8, 24)), tie_break="first")
        for ref in (0, 40, 63):
            assert pool.closest_free(ref) == naive.closest_free(ref)


class TestMapperPlumbing:
    def test_setup_fixes_rank0(self, tiny_D):
        layout = np.array([3, 1, 2, 0])
        L, M, pool = Mapper._setup(layout, tiny_D, 0, "first")
        assert M[0] == 3
        assert not pool.is_free(3)
        assert pool.n_free == 3

    def test_finish_detects_unmapped(self, tiny_D):
        layout = np.arange(4)
        M = np.array([0, 1, -1, 3])
        with pytest.raises(RuntimeError, match="unmapped"):
            Mapper._finish(M, layout)

    def test_finish_detects_foreign_cores(self):
        layout = np.arange(4)
        M = np.array([0, 1, 2, 7])
        with pytest.raises(RuntimeError, match="outside"):
            Mapper._finish(M, layout)
