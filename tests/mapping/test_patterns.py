"""Pattern-graph builder tests (including the paper's Fig. 1 structure)."""

import numpy as np
import pytest

from repro.mapping.patterns import (
    PATTERN_BUILDERS,
    PatternGraph,
    binomial_bcast_pattern,
    binomial_gather_pattern,
    bruck_pattern,
    build_pattern,
    recursive_doubling_pattern,
    ring_pattern,
)


class TestRecursiveDoublingPattern:
    def test_fig1_eight_processes(self):
        """Paper Fig. 1: 8 processes, 3 stages of pairwise exchanges."""
        g = recursive_doubling_pattern(8)
        assert g.n_edges == 8 * 3 // 2  # p/2 pairs per stage, 3 stages
        edges = {(int(u), int(v)): w for u, v, w in zip(g.src, g.dst, g.weight)}
        assert edges[(0, 1)] == 1.0    # stage 0 (red)
        assert edges[(0, 2)] == 2.0    # stage 1 (blue)
        assert edges[(0, 4)] == 4.0    # stage 2 (green)
        assert (0, 3) not in edges

    def test_total_weight(self):
        # p/2 edges of weight 2^s per stage s
        g = recursive_doubling_pattern(16)
        assert g.total_weight() == 8 * (1 + 2 + 4 + 8)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            recursive_doubling_pattern(12)


class TestRingPattern:
    def test_cycle(self):
        g = ring_pattern(5)
        assert g.n_edges == 5
        assert np.all(g.weight == 4.0)

    def test_small(self):
        assert ring_pattern(2).n_edges == 1
        with pytest.raises(ValueError):
            ring_pattern(1)


class TestBinomialPatterns:
    def test_bcast_unit_weights(self):
        g = binomial_bcast_pattern(16)
        assert g.n_edges == 15  # spanning tree
        assert np.all(g.weight == 1.0)

    def test_gather_subtree_weights(self):
        g = binomial_gather_pattern(8)
        edges = {(int(u), int(v)): w for u, v, w in zip(g.src, g.dst, g.weight)}
        assert edges[(0, 4)] == 4.0
        assert edges[(0, 2)] == 2.0
        assert edges[(0, 1)] == 1.0
        assert edges[(4, 6)] == 2.0


class TestBruckPattern:
    def test_edge_weights(self):
        g = bruck_pattern(8)
        edges = {(int(u), int(v)): w for u, v, w in zip(g.src, g.dst, g.weight)}
        assert edges[(0, 7)] == 1.0          # stage 0 shift
        # stage 2: 0 sends 4 blocks to 4 AND 4 sends 4 blocks to 0
        assert edges[(0, 4)] == 8.0
        assert g.n_edges > 0

    def test_non_pow2_ok(self):
        g = bruck_pattern(6)
        assert g.p == 6


class TestGraphUtilities:
    def test_adjacency_symmetric(self):
        g = ring_pattern(4)
        adj = g.adjacency()
        assert (1, 3.0) in adj[0]
        assert (0, 3.0) in adj[1]

    def test_degree_weights(self):
        g = ring_pattern(4)
        assert np.all(g.degree_weights() == 6.0)  # two incident edges of w=3

    def test_validation(self):
        with pytest.raises(ValueError):
            PatternGraph(2, np.array([0]), np.array([5]), np.array([1.0]))
        with pytest.raises(ValueError):
            PatternGraph(2, np.array([0]), np.array([1]), np.array([1.0, 2.0]))


class TestBuildPattern:
    def test_all_builders_reachable(self):
        for name in PATTERN_BUILDERS:
            g = build_pattern(name, 8)
            assert g.p == 8

    def test_unknown_pattern(self):
        with pytest.raises(KeyError, match="unknown pattern"):
            build_pattern("butterfly", 8)
