"""Placement-identity tests: naive CorePool vs. the vectorised driver.

The vectorised engine (:class:`repro.mapping.base.HierarchicalFreePool`
driven by ``execute_program``) must reproduce the naive per-query
reference *bit for bit* — same cores, same rng stream, both tie-break
modes — otherwise cached mappings and benchmark cross-checks would
silently drift between engines.
"""

import numpy as np
import pytest

from repro.mapping.base import (
    HierarchicalFreePool,
    PoolExhaustedError,
    PLACEMENT_ENGINES,
)
from repro.mapping.bbmh import BBMH
from repro.mapping.bgmh import BGMH
from repro.mapping.bruckmh import BruckMH
from repro.mapping.initial import make_layout
from repro.mapping.rdmh import RDMH
from repro.mapping.rmh import RMH
from repro.topology.cluster import (
    DEFAULT_DISTANCE_WEIGHTS,
    ClusterTopology,
    LinkClass,
)
from repro.topology.gpc import gpc_cluster
from repro.util.rng import make_rng

HEURISTICS = [RMH, RDMH, BBMH, BGMH, BruckMH]
#: Heuristics without a power-of-two constraint on p.
ANY_P_HEURISTICS = [RMH, BGMH, BruckMH]


@pytest.fixture(scope="module")
def big_cluster():
    """32 nodes x 8 cores = 256 cores, spanning two leaf switches."""
    return gpc_cluster(n_nodes=32)


def _both_engines(cls, cluster, layout, tie_break, seed):
    naive = cls(tie_break=tie_break, engine="naive").map(
        layout, cluster.distance_matrix(), rng=seed
    )
    vect = cls(tie_break=tie_break, engine="vectorized").map(
        layout, cluster.implicit_distances(), rng=seed
    )
    return naive, vect


class TestPlacementIdentity:
    @pytest.mark.parametrize("cls", HEURISTICS)
    @pytest.mark.parametrize("p", [4, 16, 64])
    @pytest.mark.parametrize("tie_break", ["random", "first"])
    def test_engines_bit_identical_small(self, mid_cluster, cls, p, tie_break):
        for lname in ("block-bunch", "cyclic-scatter"):
            L = make_layout(lname, mid_cluster, p)
            for seed in (0, 7):
                naive, vect = _both_engines(cls, mid_cluster, L, tie_break, seed)
                assert np.array_equal(naive, vect), (cls.__name__, lname, seed)

    @pytest.mark.parametrize("cls", HEURISTICS)
    @pytest.mark.parametrize("tie_break", ["random", "first"])
    def test_engines_bit_identical_p256(self, big_cluster, cls, tie_break):
        L = make_layout("block-bunch", big_cluster, 256)
        naive, vect = _both_engines(cls, big_cluster, L, tie_break, 3)
        assert np.array_equal(naive, vect)

    @pytest.mark.parametrize("cls", ANY_P_HEURISTICS)
    @pytest.mark.parametrize("tie_break", ["random", "first"])
    def test_engines_bit_identical_after_shrink(self, mid_cluster, cls, tie_break):
        # Post-failure pools are irregular: whole nodes missing, free
        # groups of uneven size — exactly where the hierarchical
        # bookkeeping could diverge from the reference.
        survivors = mid_cluster.shrink([2, 5])
        assert survivors.size == 48
        naive, vect = _both_engines(cls, mid_cluster, survivors, tie_break, 11)
        assert np.array_equal(naive, vect)

    @pytest.mark.parametrize("cls", HEURISTICS)
    def test_engines_bit_identical_partial_survivors(self, mid_cluster, cls):
        # Power-of-two slice of the survivor pool, so RDMH/BBMH join in.
        survivors = mid_cluster.shrink([1, 6])[:32]
        naive, vect = _both_engines(cls, mid_cluster, survivors, "random", 5)
        assert np.array_equal(naive, vect)


class TestEngineSelection:
    def test_engine_validated_at_construction(self):
        with pytest.raises(ValueError, match="engine"):
            RMH(engine="bogus")
        assert "vectorized" in PLACEMENT_ENGINES

    def test_vectorized_rejects_dense_matrix(self, mid_cluster):
        L = make_layout("block-bunch", mid_cluster, 16)
        with pytest.raises(ValueError, match="vectorized"):
            RMH(engine="vectorized").map(L, mid_cluster.distance_matrix(), rng=0)

    def test_auto_falls_back_on_collapsed_ladder(self):
        # Zero LEAF_LINE weight collapses the same-leaf and same-line
        # levels: the implicit backend advertises no vectorised support,
        # and engine="auto" must quietly fall back to the naive pool.
        weights = dict(DEFAULT_DISTANCE_WEIGHTS)
        weights[LinkClass.LEAF_LINE] = 0.0
        cluster = ClusterTopology(n_nodes=8, distance_weights=weights)
        impl = cluster.implicit_distances()
        assert not impl.supports_vectorized_placement
        L = make_layout("block-bunch", cluster, 16)
        via_auto = RMH(engine="auto").map(L, impl, rng=2)
        via_naive = RMH(engine="naive").map(L, cluster.distance_matrix(), rng=2)
        assert np.array_equal(via_auto, via_naive)
        with pytest.raises(ValueError, match="vectorized"):
            RMH(engine="vectorized").map(L, impl, rng=2)


class TestHierarchicalFreePool:
    def test_exhaustion_raises_typed_error(self, mid_cluster):
        pool = HierarchicalFreePool(
            mid_cluster.implicit_distances(), np.arange(4), rng=0
        )
        for core in range(4):
            pool.take(core)
        with pytest.raises(PoolExhaustedError, match="no free cores"):
            pool.closest_free(0)
        with pytest.raises(PoolExhaustedError):
            pool.place_closest(0)

    def test_closest_free_matches_reference(self, mid_cluster, mid_D):
        from repro.mapping.base import CorePool

        cores = np.arange(24)
        a = CorePool(mid_D, cores, rng=0)
        b = HierarchicalFreePool(mid_cluster.implicit_distances(), cores, rng=0)
        rng = make_rng(123)
        for _ in range(20):
            ref = int(rng.integers(24))
            ca, cb = a.closest_free(ref), b.closest_free(ref)
            assert ca == cb
            a.take(ca)
            b.take(cb)
