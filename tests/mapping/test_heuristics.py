"""Tests of the four paper heuristics (RDMH, RMH, BBMH, BGMH) + BruckMH.

Common contract (paper Algorithm 1): the output is a permutation of the
layout's cores with rank 0 fixed on its current core.  Each heuristic is
additionally checked against its pattern-specific placement goal and the
paper's two stated requirements: improve bad initial mappings, and do no
harm to good ones (§I).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.bbmh import BBMH
from repro.mapping.bgmh import BGMH
from repro.mapping.bruckmh import BruckMH
from repro.mapping.initial import block_bunch, cyclic_bunch, cyclic_scatter
from repro.mapping.metrics import hop_bytes
from repro.mapping.patterns import build_pattern
from repro.mapping.rdmh import RDMH
from repro.mapping.rmh import RMH
from repro.util.rng import make_rng

ALL_HEURISTICS = [RDMH(), RMH(), BBMH(), BGMH(), BruckMH()]


def check_contract(mapper, layout, D):
    M = mapper.map(layout, D, rng=0)
    assert sorted(M.tolist()) == sorted(np.asarray(layout).tolist())
    assert M[0] == layout[0]
    return M


class TestCommonContract:
    @pytest.mark.parametrize("mapper", ALL_HEURISTICS, ids=lambda m: m.name)
    def test_permutation_and_fixed_rank0(self, mapper, mid_cluster, mid_D):
        layout = cyclic_bunch(mid_cluster, 64)
        check_contract(mapper, layout, mid_D)

    @pytest.mark.parametrize("mapper", [RMH(), BBMH(), BGMH(), BruckMH()], ids=lambda m: m.name)
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 7, 12, 16, 33])
    def test_any_p(self, mapper, mid_cluster, mid_D, p):
        layout = block_bunch(mid_cluster, p)
        check_contract(mapper, layout, mid_D)

    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32, 64])
    def test_rdmh_pow2(self, mid_cluster, mid_D, p):
        layout = cyclic_bunch(mid_cluster, p)
        check_contract(RDMH(), layout, mid_D)

    def test_rdmh_rejects_non_pow2(self, mid_cluster, mid_D):
        with pytest.raises(ValueError, match="power-of-two"):
            RDMH().map(block_bunch(mid_cluster, 12), mid_D)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_random_layouts(self, mid_cluster, mid_D, seed):
        """Contract holds from arbitrary initial placements."""
        rng = make_rng(seed)
        layout = rng.permutation(32)
        for mapper in (RDMH(), RMH(), BGMH()):
            check_contract(mapper, layout, mid_D)

    def test_deterministic_with_first_tiebreak(self, mid_cluster, mid_D):
        layout = cyclic_bunch(mid_cluster, 32)
        for cls in (RDMH, RMH, BBMH, BGMH, BruckMH):
            a = cls(tie_break="first").map(layout, mid_D, rng=0)
            b = cls(tie_break="first").map(layout, mid_D, rng=99)
            assert np.array_equal(a, b)


class TestImproveAndDoNoHarm:
    """Paper §I: fix bad initial mappings, never break good ones."""

    @pytest.mark.parametrize(
        "mapper,pattern,bad_layout",
        [
            (RDMH(), "recursive-doubling", block_bunch),   # block is bad for RD
            (RMH(), "ring", cyclic_scatter),               # cyclic is bad for ring
            (BruckMH(), "bruck", block_bunch),             # heavy shifts cross nodes
        ],
        ids=["rdmh", "rmh", "bruckmh"],
    )
    def test_improves_bad_layout(self, mapper, pattern, bad_layout, mid_cluster, mid_D):
        layout = bad_layout(mid_cluster, 64)
        M = mapper.map(layout, mid_D, rng=0)
        g = build_pattern(pattern, 64)
        assert hop_bytes(g, M, mid_D) < hop_bytes(g, layout, mid_D)

    @pytest.mark.parametrize(
        "mapper,pattern",
        [(RDMH(), "recursive-doubling"), (BruckMH(), "bruck")],
        ids=["rdmh", "bruckmh"],
    )
    def test_no_harm_on_cyclic(self, mapper, pattern, mid_cluster, mid_D):
        """cyclic already co-locates the heavy late-stage pairs; the
        heuristics must not make it worse."""
        layout = cyclic_scatter(mid_cluster, 64)
        M = mapper.map(layout, mid_D, rng=0)
        g = build_pattern(pattern, 64)
        assert hop_bytes(g, M, mid_D) <= hop_bytes(g, layout, mid_D) * 1.0001

    def test_rmh_no_harm_on_block(self, mid_cluster, mid_D):
        """block-bunch is already ideal for the ring; RMH must keep it so."""
        layout = block_bunch(mid_cluster, 64)
        M = RMH(tie_break="first").map(layout, mid_D, rng=0)
        g = build_pattern("ring", 64)
        assert hop_bytes(g, M, mid_D) <= hop_bytes(g, layout, mid_D) * 1.0001

    @pytest.mark.parametrize(
        "mapper,pattern",
        [(BBMH(), "binomial-bcast"), (BGMH(), "binomial-gather")],
        ids=["bbmh", "bgmh"],
    )
    def test_tree_heuristics_improve_scattered(self, mapper, pattern, mid_cluster, mid_D):
        layout = cyclic_scatter(mid_cluster, 64)
        M = mapper.map(layout, mid_D, rng=0)
        g = build_pattern(pattern, 64)
        assert hop_bytes(g, M, mid_D) <= hop_bytes(g, layout, mid_D)


class TestRDMHSpecifics:
    def test_last_stage_partners_colocated(self, mid_cluster, mid_D):
        """RDMH pulls the largest-message partners onto the same node."""
        p = 64
        layout = cyclic_bunch(mid_cluster, p)
        M = RDMH(tie_break="first").map(layout, mid_D, rng=0)
        node = mid_cluster.node_of(M)
        same = sum(int(node[i] == node[i ^ (p // 2)]) for i in range(p))
        assert same == p  # every last-stage pair shares a node

    def test_update_after_variants_valid(self, mid_cluster, mid_D):
        layout = cyclic_bunch(mid_cluster, 32)
        for ua in (1, 2, 4):
            M = RDMH(update_after=ua).map(layout, mid_D, rng=0)
            assert sorted(M.tolist()) == sorted(layout.tolist())

    def test_bad_update_after(self):
        with pytest.raises(ValueError):
            RDMH(update_after=0)


class TestRMHSpecifics:
    def test_chain_is_greedy_nearest(self, mid_cluster, mid_D):
        """Each successive rank sits on the free core nearest its predecessor."""
        layout = cyclic_bunch(mid_cluster, 16)
        M = RMH(tie_break="first").map(layout, mid_D, rng=0)
        free = set(layout.tolist())
        free.discard(int(M[0]))
        for r in range(1, 16):
            dists = {c: mid_D[int(M[r - 1]), c] for c in free}
            assert mid_D[int(M[r - 1]), int(M[r])] == min(dists.values())
            free.discard(int(M[r]))


class TestBBMHSpecifics:
    @pytest.mark.parametrize("traversal", ["small-first", "large-first", "bft"])
    def test_traversals_valid(self, traversal, mid_cluster, mid_D):
        layout = cyclic_scatter(mid_cluster, 32)
        M = BBMH(traversal=traversal).map(layout, mid_D, rng=0)
        assert sorted(M.tolist()) == sorted(layout.tolist())

    def test_unknown_traversal(self):
        with pytest.raises(ValueError):
            BBMH(traversal="zigzag")

    def test_first_child_next_to_root(self, mid_cluster, mid_D):
        """small-first: rank 1 (the last-stage partner of the root) is the
        first placement and lands as close to rank 0 as possible."""
        layout = cyclic_scatter(mid_cluster, 32)
        M = BBMH(tie_break="first").map(layout, mid_D, rng=0)
        d01 = mid_D[int(M[0]), int(M[1])]
        others = [mid_D[int(M[0]), c] for c in layout if c != M[0]]
        assert d01 == min(others)


class TestBGMHSpecifics:
    def test_heaviest_edge_first(self, mid_cluster, mid_D):
        """Rank p/2 (the heaviest gather edge) is placed right next to the
        root, before anything else."""
        layout = cyclic_scatter(mid_cluster, 32)
        M = BGMH(tie_break="first").map(layout, mid_D, rng=0)
        d = mid_D[int(M[0]), int(M[16])]
        others = [mid_D[int(M[0]), c] for c in layout if c != M[0]]
        assert d == min(others)

    def test_non_pow2(self, mid_cluster, mid_D):
        layout = block_bunch(mid_cluster, 11)
        M = BGMH().map(layout, mid_D, rng=0)
        assert sorted(M.tolist()) == sorted(layout.tolist())
