"""Shared fixtures: small clusters and cached distance matrices."""

import pytest

from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine
from repro.topology.gpc import gpc_cluster, single_node_cluster, small_cluster


@pytest.fixture(scope="session")
def tiny_cluster():
    """4 nodes x (2 sockets x 2 cores) = 16 cores on 2 leaves."""
    return small_cluster()


@pytest.fixture(scope="session")
def tiny_D(tiny_cluster):
    return tiny_cluster.distance_matrix()


@pytest.fixture(scope="session")
def mid_cluster():
    """8 nodes x (2 sockets x 4 cores) = 64 cores — GPC-shaped, small."""
    return gpc_cluster(n_nodes=8)


@pytest.fixture(scope="session")
def mid_D(mid_cluster):
    return mid_cluster.distance_matrix()


@pytest.fixture(scope="session")
def one_node():
    return single_node_cluster()


@pytest.fixture(scope="session")
def tiny_engine(tiny_cluster):
    return TimingEngine(tiny_cluster, CostModel())


@pytest.fixture(scope="session")
def mid_engine(mid_cluster):
    return TimingEngine(mid_cluster, CostModel())
