"""Synthetic workload generator + pipeline fuzz tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.synthetic import SyntheticTraceConfig, generate_trace, generate_traces
from repro.apps.trace import AppRunner
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import cyclic_scatter


@pytest.fixture(scope="module")
def evaluator(mid_cluster):
    return AllgatherEvaluator(mid_cluster, rng=0)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_trace(rng=7)
        b = generate_trace(rng=7)
        assert [(p.n_steps, p.block_bytes, p.collective) for p in a.phases] == [
            (p.n_steps, p.block_bytes, p.collective) for p in b.phases
        ]

    def test_seeds_differ(self):
        a = generate_trace(rng=1)
        b = generate_trace(rng=2)
        assert [p.block_bytes for p in a.phases] != [p.block_bytes for p in b.phases]

    def test_sizes_within_bounds(self):
        cfg = SyntheticTraceConfig(min_bytes=64, max_bytes=4096, n_phases=20)
        trace = generate_trace(cfg, rng=3)
        for ph in trace.phases:
            assert 64 <= ph.block_bytes <= 4096

    def test_bcast_mixing(self):
        cfg = SyntheticTraceConfig(n_phases=50, bcast_probability=0.5)
        trace = generate_trace(cfg, rng=5)
        kinds = {ph.collective for ph in trace.phases}
        assert kinds == {"allgather", "bcast"}

    def test_pure_allgather(self):
        cfg = SyntheticTraceConfig(n_phases=20, bcast_probability=0.0)
        trace = generate_trace(cfg, rng=5)
        assert all(ph.collective == "allgather" for ph in trace.phases)

    def test_family(self):
        traces = generate_traces(5, rng=0)
        assert len(traces) == 5
        assert len({t.name for t in traces}) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(n_phases=0)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(min_bytes=100, max_bytes=10)
        with pytest.raises(ValueError):
            SyntheticTraceConfig(bcast_probability=1.5)
        with pytest.raises(ValueError):
            generate_traces(-1)


class TestPipelineFuzz:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_runner_handles_any_trace(self, evaluator, mid_cluster, seed):
        """Every generated workload prices cleanly under every regime and
        the heuristic never loses catastrophically."""
        trace = generate_trace(SyntheticTraceConfig(n_phases=3), rng=seed)
        runner = AppRunner(evaluator, cyclic_scatter(mid_cluster, 64))
        base = runner.run(trace, mode="default")
        tuned = runner.run(trace, mode="heuristic")
        assert base.total_seconds > 0 and tuned.total_seconds > 0
        assert tuned.comm_seconds <= base.comm_seconds * 1.35

    def test_mean_improvement_over_family(self, evaluator, mid_cluster):
        """Across a workload family on a cyclic layout, reordering helps
        in aggregate (communication time, overheads excluded)."""
        runner = AppRunner(evaluator, cyclic_scatter(mid_cluster, 64))
        ratios = []
        for trace in generate_traces(8, rng=1):
            base = runner.run(trace, mode="default")
            tuned = runner.run(trace, mode="heuristic")
            ratios.append(tuned.comm_seconds / base.comm_seconds)
        assert np.mean(ratios) < 1.0
