"""Application trace and runner tests (paper §VI-B substrate)."""

import pytest

from repro.apps.matvec import MatVecApp
from repro.apps.nbody import NBodyApp
from repro.apps.trace import AppPhase, AppRunner, AppTrace
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import block_bunch, cyclic_scatter


@pytest.fixture(scope="module")
def evaluator(mid_cluster):
    return AllgatherEvaluator(mid_cluster, rng=0)


class TestAppPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            AppPhase(n_steps=-1, block_bytes=8, compute_seconds=0)
        with pytest.raises(ValueError):
            AppPhase(n_steps=1, block_bytes=0, compute_seconds=0)
        with pytest.raises(ValueError):
            AppPhase(n_steps=1, block_bytes=8, compute_seconds=-1)


class TestNBody:
    def test_paper_call_count(self):
        assert NBodyApp().steps == 358
        assert NBodyApp().trace().n_allgathers == 358

    def test_block_bytes(self):
        app = NBodyApp(particles_per_rank=512, bytes_per_particle=16)
        assert app.block_bytes == 8192

    def test_compute_model(self):
        app = NBodyApp(particles_per_rank=100, neighbours=10, flops_per_interaction=2, flops_rate=1e3)
        assert app.compute_seconds_per_step == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NBodyApp(particles_per_rank=0)
        with pytest.raises(ValueError):
            NBodyApp(flops_rate=-1)


class TestMatVec:
    def test_sizes(self):
        app = MatVecApp(rows_per_rank=128, n_processes=64)
        assert app.n == 8192
        assert app.block_bytes == 1024

    def test_compute_model(self):
        app = MatVecApp(rows_per_rank=10, n_processes=10, flops_rate=1e3)
        assert app.compute_seconds_per_iteration == pytest.approx(2 * 10 * 100 / 1e3)


class TestRunner:
    def test_default_run_decomposition(self, evaluator, mid_cluster):
        app = NBodyApp(steps=10)
        runner = AppRunner(evaluator, block_bunch(mid_cluster, 64))
        res = runner.run(app.trace(), mode="default")
        assert res.total_seconds == pytest.approx(res.compute_seconds + res.comm_seconds)
        assert res.reorder_seconds == 0.0
        assert res.n_allgathers == 10

    def test_reordered_counts_overhead_once(self, evaluator, mid_cluster):
        trace = AppTrace(
            name="two-phase",
            phases=[
                AppPhase(5, 8192.0, 0.001),
                AppPhase(5, 8192.0, 0.001),   # same allgather config
            ],
        )
        runner = AppRunner(evaluator, cyclic_scatter(mid_cluster, 64))
        res = runner.run(trace, mode="heuristic")
        single = runner.run(
            AppTrace(name="one", phases=[AppPhase(10, 8192.0, 0.001)]), mode="heuristic"
        )
        assert res.reorder_seconds == pytest.approx(single.reorder_seconds, rel=0.9)

    def test_reordering_helps_cyclic(self, evaluator, mid_cluster):
        """Fig. 5 shape: reordering cuts app time under cyclic layouts."""
        app = NBodyApp(steps=50)
        runner = AppRunner(evaluator, cyclic_scatter(mid_cluster, 64))
        base = runner.run(app.trace(), mode="default")
        tuned = runner.run(app.trace(), mode="heuristic")
        assert tuned.total_seconds < base.total_seconds
        assert tuned.normalized_to(base) < 1.0

    def test_no_harm_on_block(self, evaluator, mid_cluster):
        """Fig. 5(a) shape: block-bunch already ideal; same execution time."""
        app = NBodyApp(steps=50)
        runner = AppRunner(evaluator, block_bunch(mid_cluster, 64))
        base = runner.run(app.trace(), mode="default")
        tuned = runner.run(app.trace(), mode="heuristic")
        assert tuned.total_seconds <= base.total_seconds * 1.1

    def test_hierarchical_mode(self, evaluator, mid_cluster):
        app = MatVecApp(rows_per_rank=32, n_processes=64, iterations=5)
        runner = AppRunner(evaluator, block_bunch(mid_cluster, 64))
        res = runner.run(app.trace(), mode="heuristic", hierarchical=True)
        assert res.total_seconds > 0

    def test_result_str(self, evaluator, mid_cluster):
        app = NBodyApp(steps=2)
        runner = AppRunner(evaluator, block_bunch(mid_cluster, 64))
        text = str(runner.run(app.trace(), mode="default"))
        assert "nbody" in text and "allgathers" in text


class TestMixedCollectiveTraces:
    def test_bcast_phase_validation(self):
        with pytest.raises(ValueError, match="collective"):
            AppPhase(1, 64, 0.0, collective="alltoall")
        AppPhase(1, 64, 0.0, collective="bcast")  # valid

    def test_mixed_trace_runs(self, evaluator, mid_cluster):
        trace = AppTrace(
            name="solver",
            phases=[
                AppPhase(5, 4096.0, 0.001),                       # allgather steps
                AppPhase(5, 1 << 20, 0.001, collective="bcast"),  # parameter bcast
            ],
        )
        runner = AppRunner(evaluator, cyclic_scatter(mid_cluster, 64))
        base = runner.run(trace, mode="default")
        tuned = runner.run(trace, mode="heuristic")
        assert base.comm_seconds > 0
        # the allgather phases improve a lot; the bcast phase is close to
        # neutral and its random tie-breaking can wobble slightly
        assert tuned.total_seconds < base.total_seconds * 1.02

    def test_reorder_overhead_counted_per_collective(self, evaluator, mid_cluster):
        mixed = AppTrace(
            name="m",
            phases=[
                AppPhase(2, 4096.0, 0.0),
                AppPhase(2, 1024.0, 0.0, collective="bcast"),
            ],
        )
        only_ag = AppTrace(name="a", phases=[AppPhase(2, 4096.0, 0.0)])
        runner = AppRunner(evaluator, cyclic_scatter(mid_cluster, 64))
        r_mixed = runner.run(mixed, mode="heuristic")
        r_ag = runner.run(only_ag, mode="heuristic")
        # the mixed trace pays for two reordered communicators
        assert r_mixed.reorder_seconds > r_ag.reorder_seconds


class TestIterativeSolver:
    def test_trace_structure(self):
        from repro.apps.solver import IterativeSolverApp

        app = IterativeSolverApp(iterations=90, restart=30)
        trace = app.trace()
        bcasts = [ph for ph in trace.phases if ph.collective == "bcast"]
        ags = [ph for ph in trace.phases if ph.collective == "allgather"]
        assert len(bcasts) == 3
        assert sum(ph.n_steps for ph in ags) == 90

    def test_tail_iterations_kept(self):
        from repro.apps.solver import IterativeSolverApp

        app = IterativeSolverApp(iterations=100, restart=30)
        ags = [ph for ph in app.trace().phases if ph.collective == "allgather"]
        assert sum(ph.n_steps for ph in ags) == 100

    def test_validation(self):
        from repro.apps.solver import IterativeSolverApp

        import pytest as _pytest

        with _pytest.raises(ValueError):
            IterativeSolverApp(restart=0)

    def test_runs_and_benefits_from_reordering(self, evaluator, mid_cluster):
        from repro.apps.solver import IterativeSolverApp

        app = IterativeSolverApp(n_processes=64, iterations=30, restart=10)
        runner = AppRunner(evaluator, cyclic_scatter(mid_cluster, 64))
        base = runner.run(app.trace(), mode="default")
        tuned = runner.run(app.trace(), mode="heuristic")
        assert tuned.total_seconds <= base.total_seconds * 1.05
