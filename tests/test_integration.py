"""End-to-end integration tests: the paper's pipeline at miniature scale."""

import pytest

from repro import (
    AllgatherEvaluator,
    DistanceExtractor,
    Session,
    gpc_cluster,
    make_layout,
    reorder_ranks,
)
from repro.apps import AppRunner, NBodyApp
from repro.bench import format_sweep_table, sweep_hierarchical, sweep_nonhierarchical


@pytest.fixture(scope="module")
def cluster():
    return gpc_cluster(n_nodes=16)  # 128 processes — a mini GPC


@pytest.fixture(scope="module")
def evaluator(cluster):
    return AllgatherEvaluator(cluster, rng=0)


class TestMiniFig3(object):
    """The non-hierarchical sweep reproduces the paper's qualitative claims."""

    def test_headline_shapes(self, evaluator):
        pts = sweep_nonhierarchical(
            evaluator,
            128,
            layouts=["block-bunch", "cyclic-scatter"],
            sizes=[256, 1 << 16],
            mappers=["heuristic"],
            strategies=["initcomm"],
        )
        table = {(p.layout, p.block_bytes): p.improvement_pct for p in pts}
        # cyclic + ring (large): the big win
        assert table[("cyclic-scatter", 1 << 16)] > 30
        # block + ring (large): no harm
        assert table[("block-bunch", 1 << 16)] > -5
        # block + RD (small): clear improvement
        assert table[("block-bunch", 256)] > 10

    def test_heuristic_beats_or_ties_scotch(self, evaluator):
        pts = sweep_nonhierarchical(
            evaluator,
            128,
            layouts=["cyclic-bunch"],
            sizes=[256, 1 << 16],
            mappers=["heuristic", "scotch"],
            strategies=["initcomm"],
        )
        by = {(p.mapper, p.block_bytes): p.tuned_us for p in pts}
        for bb in (256, 1 << 16):
            assert by[("heuristic", bb)] <= by[("scotch", bb)] * 1.05

    def test_table_renders(self, evaluator):
        pts = sweep_nonhierarchical(
            evaluator, 128, layouts=["block-bunch"], sizes=[256],
            mappers=["heuristic"], strategies=["initcomm"],
        )
        assert "block-bunch" in format_sweep_table(pts)


class TestMiniFig4:
    def test_hierarchical_sweep_runs(self, evaluator):
        pts = sweep_hierarchical(
            evaluator, 128, layouts=["block-scatter"], sizes=[64, 1 << 15],
            mappers=["heuristic"], strategies=["initcomm"], intra="binomial",
        )
        assert len(pts) == 2
        # small-message leader reordering must not hurt
        small = next(p for p in pts if p.block_bytes == 64)
        assert small.improvement_pct > -10


class TestMiniFig5:
    def test_app_normalized_times(self, evaluator, cluster):
        app = NBodyApp(steps=20)
        results = {}
        for lname in ("block-bunch", "cyclic-scatter"):
            runner = AppRunner(evaluator, make_layout(lname, cluster, 128))
            base = runner.run(app.trace(), "default")
            tuned = runner.run(app.trace(), "heuristic")
            results[lname] = tuned.normalized_to(base)
        assert results["cyclic-scatter"] < 0.95   # visible gain
        assert results["block-bunch"] < 1.10      # no meaningful harm


class TestMiniFig7:
    def test_overhead_ordering(self, cluster, evaluator):
        D, report = DistanceExtractor(cluster).extract()
        assert report.seconds > 0
        L = make_layout("cyclic-bunch", cluster, 128)
        h = reorder_ranks("recursive-doubling", L, D, kind="heuristic", rng=0)
        s = reorder_ranks("recursive-doubling", L, D, kind="scotch", rng=0)
        assert h.total_seconds < s.total_seconds


class TestSessionWorkflow:
    def test_paper_usage_pattern(self, cluster):
        """§IV: reorder once, reuse for every subsequent call."""
        sess = Session(cluster, layout="cyclic-bunch")
        world = sess.comm_world()
        ring = world.reordered("ring")
        t_base = world.allgather_latency(1 << 16)
        t1 = ring.allgather_latency(1 << 16)
        t2 = ring.allgather_latency(1 << 16)
        assert t1 == t2 <= t_base
