"""Full-scale smoke test: one pass at the paper's 4096-process scale.

The figure benches run the complete sweeps; this test keeps one
paper-scale configuration inside the regular test suite so a performance
or memory regression in the vectorised paths (route tables, distance
matrix, heuristics at p=4096) cannot hide until bench time.
"""

import time

import pytest

from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import make_layout
from repro.topology.gpc import gpc_cluster


@pytest.fixture(scope="module")
def paper_scale():
    t0 = time.perf_counter()
    cluster = gpc_cluster(512)
    ev = AllgatherEvaluator(cluster, rng=0)
    build = time.perf_counter() - t0
    return cluster, ev, build


class TestPaperScale:
    def test_cluster_shape(self, paper_scale):
        cluster, _, _ = paper_scale
        assert cluster.n_cores == 4096

    def test_construction_cost_bounded(self, paper_scale):
        """Distance matrix + evaluator setup stays interactive (< 30 s)."""
        _, _, build = paper_scale
        assert build < 30.0

    def test_headline_cell(self, paper_scale):
        """The Fig. 3(c) 64 KiB cell at full scale, end to end."""
        cluster, ev, _ = paper_scale
        L = make_layout("cyclic-bunch", cluster, 4096)
        t0 = time.perf_counter()
        base = ev.default_latency(L, 1 << 16)
        tuned = ev.reordered_latency(L, 1 << 16, "heuristic", "initcomm")
        elapsed = time.perf_counter() - t0
        gain = 100 * (base.seconds - tuned.seconds) / base.seconds
        assert 70 < gain < 95          # the paper's 78% neighbourhood
        assert elapsed < 30.0          # evaluation stays fast at scale

    def test_rd_cell(self, paper_scale):
        cluster, ev, _ = paper_scale
        L = make_layout("block-bunch", cluster, 4096)
        base = ev.default_latency(L, 1024)
        tuned = ev.reordered_latency(L, 1024, "heuristic", "initcomm")
        assert tuned.seconds < 0.3 * base.seconds

    def test_mapping_overhead_at_scale(self, paper_scale):
        """Fig. 7(b)'s heuristic point: well under a second in Python."""
        cluster, ev, _ = paper_scale
        L = make_layout("cyclic-bunch", cluster, 4096)
        rep = ev.reordered_latency(L, 1024, "heuristic", "initcomm")
        assert rep.reorder_seconds < 2.0
