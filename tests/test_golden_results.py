"""Golden-number regression tests.

The whole pipeline is deterministic under fixed seeds and
``tie_break="first"``, so key end-to-end numbers can be pinned exactly.
These tests freeze a handful of them — a change here means the model's
*semantics* changed (routes, cost constants, heuristic order), which
should be a conscious decision, reflected in EXPERIMENTS.md, not an
accident of refactoring.

If an intentional model change lands, regenerate the constants with:

    python -m pytest tests/test_golden_results.py --collect-only  # find names
    python - <<'PY'
    ...copy the fixture code, print the fresh values...
    PY
"""

import pytest

from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import make_layout
from repro.mapping.metrics import hop_bytes
from repro.mapping.patterns import build_pattern
from repro.mapping.rdmh import RDMH
from repro.mapping.rmh import RMH
from repro.topology.gpc import gpc_cluster


@pytest.fixture(scope="module")
def golden_cluster():
    return gpc_cluster(n_nodes=8)  # 64 cores


@pytest.fixture(scope="module")
def golden_evaluator(golden_cluster):
    return AllgatherEvaluator(golden_cluster, rng=0)


class TestGoldenDistances:
    def test_distance_ladder_values(self, golden_cluster):
        row = golden_cluster.distance_row(0)
        assert row[1] == 1.0
        assert row[4] == 3.0
        assert row[8] == 5.0

    def test_distance_matrix_checksum(self, golden_cluster):
        D = golden_cluster.distance_matrix()
        assert float(D.sum()) == pytest.approx(18880.0)


class TestGoldenLatencies:
    """Exact simulated latencies (microseconds) at 64 processes."""

    CASES = {
        # (layout, block_bytes, algorithm): expected_us
        ("block-bunch", 1024, "rd"): 180.591793,
        ("cyclic-scatter", 1024, "rd"): 57.010519,
        ("block-bunch", 65536, "ring"): 2177.784135,
        ("cyclic-scatter", 65536, "ring"): 12346.786742,
    }

    @pytest.mark.parametrize("key", sorted(CASES), ids=lambda k: f"{k[0]}-{k[1]}")
    def test_default_latency(self, golden_evaluator, golden_cluster, key):
        layout_name, bb, _alg = key
        L = make_layout(layout_name, golden_cluster, 64)
        rep = golden_evaluator.default_latency(L, bb)
        assert rep.seconds * 1e6 == pytest.approx(self.CASES[key], rel=1e-5)


class TestGoldenMappings:
    def test_rmh_mapping_prefix(self, golden_cluster):
        """RMH from cyclic-bunch walks the first node's cores in order."""
        D = golden_cluster.distance_matrix()
        L = make_layout("cyclic-bunch", golden_cluster, 64)
        M = RMH(tie_break="first").map(L, D, rng=0)
        assert M[:8].tolist() == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_rdmh_hop_bytes(self, golden_cluster):
        D = golden_cluster.distance_matrix()
        L = make_layout("block-bunch", golden_cluster, 64)
        M = RDMH(tie_break="first").map(L, D, rng=0)
        g = build_pattern("recursive-doubling", 64)
        assert hop_bytes(g, M, D) == pytest.approx(3424.0)

    def test_ring_hop_bytes_after_rmh(self, golden_cluster):
        D = golden_cluster.distance_matrix()
        L = make_layout("cyclic-scatter", golden_cluster, 64)
        M = RMH(tie_break="first").map(L, D, rng=0)
        g = build_pattern("ring", 64)
        assert hop_bytes(g, M, D) == pytest.approx(7056.0)
