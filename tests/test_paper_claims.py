"""The claims ledger: quotable paper statements, asserted mechanically.

Each test quotes one sentence from the paper and checks the library
exhibits it.  This is the reproduction's table of contents in executable
form — distinct from the figure benches (which sweep and report) in that
each claim here is a single, pinned behaviour.
"""

import numpy as np
import pytest

from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.correctness import RankReordering, execute_reordered_allgather
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import block_bunch, cyclic_bunch, cyclic_scatter
from repro.mapping.rdmh import RDMH
from repro.mapping.reorder import reorder_ranks
from repro.topology.gpc import gpc_cluster
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def cluster():
    return gpc_cluster(n_nodes=16)  # 128 processes


@pytest.fixture(scope="module")
def ev(cluster):
    return AllgatherEvaluator(cluster, rng=0)


class TestSectionII:
    def test_rd_stage_structure(self):
        """'At each stage s ... rank i exchanges data with rank i xor 2^s'
        and 'the volume of the exchanged messages is doubled at each
        stage'."""
        stages = list(RecursiveDoublingAllgather().stages(8))
        for s, stage in enumerate(stages):
            assert np.array_equal(stage.dst, stage.src ^ (1 << s))
            assert np.all(stage.units == float(1 << s))

    def test_ring_runs_n_minus_1_stages(self):
        """'With N processes, the algorithm runs for N-1 stages.'"""
        assert RingAllgather().schedule(37).n_stages() == 36

    def test_inter_node_slower_than_intra(self, ev, cluster):
        """'Inter-node communications are generally slower than the
        intra-node communications that use the shared memory.'"""
        from repro.collectives.schedule import Schedule, Stage

        M = np.arange(cluster.n_cores)
        intra = Schedule(p=2, stages=[Stage(np.array([0]), np.array([1]), np.ones(1))])
        inter = Schedule(p=9, stages=[Stage(np.array([0]), np.array([8]), np.ones(1))])
        assert (
            ev.engine.evaluate(intra, M, 4096).total_seconds
            < ev.engine.evaluate(inter, M, 4096).total_seconds
        )

    def test_more_links_more_latency(self):
        """'Messages that pass across a larger number of links suffer
        more in terms of latency.'"""
        from repro.collectives.schedule import Schedule, Stage
        from repro.simmpi.engine import TimingEngine

        wide = gpc_cluster(n_nodes=64)  # spans 3 leaf switches
        engine = TimingEngine(wide)
        M = np.arange(wide.n_cores)
        # same leaf (node 1) vs a spine crossing (node 31, other leaf/line)
        same_leaf = Schedule(p=9, stages=[Stage(np.array([0]), np.array([8]), np.ones(1))])
        cross = Schedule(
            p=31 * 8 + 1, stages=[Stage(np.array([0]), np.array([31 * 8]), np.ones(1))]
        )
        assert wide.channel_of(0, 8) == "leaf"
        assert wide.channel_of(0, 31 * 8) == "spine"
        assert (
            engine.evaluate(same_leaf, M, 8).total_seconds
            < engine.evaluate(cross, M, 8).total_seconds
        )


class TestSectionIV:
    def test_algorithms_kept_intact(self, ev, cluster):
        """'We keep collective algorithms intact, and reorder the ranks.'
        — the same schedule object serves every mapping."""
        sched = RingAllgather().schedule(128)
        L = cyclic_bunch(cluster, 128)
        res = reorder_ranks("ring", L, ev.D, rng=0)
        t1 = ev.engine.evaluate(sched, L, 65536).total_seconds
        t2 = ev.engine.evaluate(sched, res.mapping, 65536).total_seconds
        assert t2 < t1  # only the binding changed, and it was enough

    def test_performance_changes_under_mappings(self, ev, cluster):
        """'The performance of a given collective can significantly
        change under different mappings of processes.'"""
        sched = RingAllgather().schedule(128)
        t_block = ev.engine.evaluate(sched, block_bunch(cluster, 128), 65536).total_seconds
        t_cyclic = ev.engine.evaluate(sched, cyclic_bunch(cluster, 128), 65536).total_seconds
        assert t_cyclic > 2 * t_block


class TestSectionV:
    def test_rank0_fixed(self, ev, cluster):
        """'The process with rank 0 is fixed on the core already hosting
        it' (Algorithm 1, step 1)."""
        for pattern in ("recursive-doubling", "ring", "binomial-bcast", "binomial-gather"):
            L = cyclic_scatter(cluster, 128)
            res = reorder_ranks(pattern, L, ev.D, rng=3)
            assert res.mapping[0] == L[0], pattern

    def test_rdmh_prioritises_last_stage(self, ev, cluster):
        """'We start with the pairs of communications that fall in the
        last stage': the first placement after rank 0 is rank p/2 = 0 xor
        p/2, as close to rank 0 as possible."""
        p = 128
        L = cyclic_scatter(cluster, p)
        M = RDMH(tie_break="first").map(L, ev.D, rng=0)
        d = ev.D[int(M[0]), int(M[p // 2])]
        others = [ev.D[int(M[0]), int(c)] for c in L if c != M[0]]
        assert d == min(others)

    def test_output_order_preserved(self):
        """'The elements of this vector should appear in a correct order'
        — under every restoration mechanism (§V-B)."""
        rng = make_rng(0)
        ro = RankReordering(layout=np.arange(16), mapping=rng.permutation(16))
        expected = np.arange(16) * 1000003 + 7
        for alg, strat in [
            (RecursiveDoublingAllgather(), "initcomm"),
            (RecursiveDoublingAllgather(), "endshfl"),
            (RingAllgather(), "inline"),
        ]:
            out = execute_reordered_allgather(alg, ro, strat)
            assert np.array_equal(out, np.broadcast_to(expected, (16, 16)))

    def test_ring_needs_no_mechanism(self, ev, cluster):
        """'For the ring ... we will not have any extra overheads in
        terms of preserving the correct order of the output vector.'"""
        L = cyclic_bunch(cluster, 128)
        rep = ev.reordered_latency(L, 65536, "heuristic", "initcomm")
        assert rep.restore_seconds == 0.0


class TestSectionVI:
    def test_goal_one_fix_bad_mappings(self, ev, cluster):
        """Goal 1: 'capable of modifying the initial layout ... even if
        the initial mapping is quite far from ideal.'"""
        L = cyclic_scatter(cluster, 128)
        assert ev.improvement_pct(L, 65536) > 40

    def test_goal_two_no_harm(self, ev, cluster):
        """Goal 2: 'should not cause performance degradation if the
        initial layout ... is already a good match.'"""
        L = block_bunch(cluster, 128)
        assert ev.improvement_pct(L, 65536) > -2

    def test_poor_mapping_for_one_algorithm_good_for_another(self, ev, cluster):
        """'A poor initial mapping for one algorithm can be relatively
        better for another' — cyclic loses the ring but wins recursive
        doubling."""
        blk, cyc = block_bunch(cluster, 128), cyclic_bunch(cluster, 128)
        ring = RingAllgather().schedule(128)
        rd = RecursiveDoublingAllgather().schedule(128)
        assert (
            ev.engine.evaluate(ring, blk, 65536).total_seconds
            < ev.engine.evaluate(ring, cyc, 65536).total_seconds
        )
        assert (
            ev.engine.evaluate(rd, cyc, 1024).total_seconds
            < ev.engine.evaluate(rd, blk, 1024).total_seconds
        )

    def test_reordering_happens_once(self, ev, cluster):
        """'The whole rank reordering process happens only once at
        run-time' — the evaluator caches per (pattern, layout, mapper)."""
        L = cyclic_bunch(cluster, 128)
        a = ev.reordered_latency(L, 65536, "heuristic", "initcomm")
        cached = ev._reorder_cache
        b = ev.reordered_latency(L, 65536, "heuristic", "initcomm")
        assert ev._reorder_cache is cached and a.seconds == b.seconds

    def test_heuristic_overhead_below_scotch(self, ev, cluster):
        """'The proposed heuristics ... a significantly lower overhead
        compared to Scotch.'"""
        L = cyclic_bunch(cluster, 128)
        h = reorder_ranks("ring", L, ev.D, kind="heuristic", rng=0)
        s = reorder_ranks("ring", L, ev.D, kind="scotch", rng=0)
        assert h.total_seconds < s.total_seconds
