"""Concurrency-lint tests: one positive and one negative case per PAR rule."""

import textwrap

from repro.analysis.par import check_concurrency_paths, check_concurrency_source, main


def codes(source, path="src/repro/bench/somewhere.py"):
    return [d.code for d in check_concurrency_source(textwrap.dedent(source), path)]


_POOL_PREAMBLE = "from concurrent.futures import ProcessPoolExecutor\n"


class TestPar001GlobalMutation:
    def test_global_assignment_flagged(self):
        src = _POOL_PREAMBLE + textwrap.dedent(
            """
            _CACHE = None

            def warm(x):
                global _CACHE
                _CACHE = x
            """
        )
        assert codes(src) == ["PAR001"]

    def test_global_read_only_clean(self):
        src = _POOL_PREAMBLE + textwrap.dedent(
            """
            LIMIT = 4

            def f():
                return LIMIT
            """
        )
        assert codes(src) == []

    def test_no_executor_module_clean(self):
        src = """
        _CACHE = None

        def warm(x):
            global _CACHE
            _CACHE = x
        """
        assert codes(src) == []

    def test_justified_noqa_suppresses(self):
        src = _POOL_PREAMBLE + textwrap.dedent(
            """
            _CACHE = None

            def warm(x):
                global _CACHE  # noqa: PAR001
                _CACHE = x
            """
        )
        assert codes(src) == []


class TestPar002NonAtomicWrites:
    def test_open_write_mode_flagged(self):
        src = """
        def save(path, text):
            with open(path, "w") as fh:
                fh.write(text)
        """
        assert codes(src) == ["PAR002"]

    def test_write_text_flagged(self):
        assert codes("path.write_text(data)\n") == ["PAR002"]

    def test_json_dump_flagged(self):
        assert codes("json.dump(payload, fh)\n") == ["PAR002"]

    def test_open_read_mode_clean(self):
        src = """
        def load(path):
            with open(path, "r") as fh:
                return fh.read()
        """
        assert codes(src) == []

    def test_non_persistence_package_clean(self):
        assert codes("path.write_text(data)\n", path="src/repro/util/report.py") == []

    def test_repo_persistence_writes_are_atomic(self):
        report = check_concurrency_paths(["src"])
        assert [str(d) for d in report.diagnostics if d.code == "PAR002"] == []


class TestPar003ForkCaptures:
    def test_lambda_submit_flagged(self):
        src = _POOL_PREAMBLE + textwrap.dedent(
            """
            def run(pool, x):
                return pool.submit(lambda: x + 1)
            """
        )
        assert codes(src) == ["PAR003"]

    def test_nested_function_submit_flagged(self):
        src = _POOL_PREAMBLE + textwrap.dedent(
            """
            def run(pool, xs):
                def work(x):
                    return x + 1
                return pool.map(work, xs)
            """
        )
        assert codes(src) == ["PAR003"]

    def test_lambda_initializer_flagged(self):
        src = _POOL_PREAMBLE + textwrap.dedent(
            """
            def run(ev):
                return ProcessPoolExecutor(2, initializer=lambda: ev)
            """
        )
        assert codes(src) == ["PAR003"]

    def test_os_fork_flagged(self):
        assert codes("import os\npid = os.fork()\n") == ["PAR003"]

    def test_module_level_worker_clean(self):
        src = _POOL_PREAMBLE + textwrap.dedent(
            """
            def work(x):
                return x + 1

            def run(pool, xs):
                return pool.map(work, xs)
            """
        )
        assert codes(src) == []


class TestSuppression:
    def test_noqa_code_suppresses(self):
        assert codes("path.write_text(data)  # noqa: PAR002\n") == []

    def test_other_code_does_not_suppress(self):
        assert codes("path.write_text(data)  # noqa: PAR001\n") == ["PAR002"]


class TestDriver:
    def test_repo_src_is_clean(self):
        report = check_concurrency_paths(["src"])
        assert [str(d) for d in report.diagnostics] == []

    def test_main_exit_codes(self, tmp_path):
        bad = tmp_path / "repro" / "bench" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("path.write_text(data)\n")
        assert main([str(bad)]) == 1
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
