"""AST lint-pass tests: one positive and one negative case per REP rule."""

import textwrap

from repro.analysis.lint import lint_paths, lint_source, main


def codes(source, path="src/repro/somewhere.py"):
    return [d.code for d in lint_source(textwrap.dedent(source), path)]


class TestRep001Randomness:
    def test_import_random_flagged(self):
        assert codes("import random\n") == ["REP001"]

    def test_from_numpy_random_flagged(self):
        assert codes("from numpy.random import default_rng\n") == ["REP001"]

    def test_direct_call_flagged(self):
        src = """
        import numpy as np

        def f():
            return np.random.default_rng(0)
        """
        assert codes(src) == ["REP001"]

    def test_rng_module_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert codes(src, path="src/repro/util/rng.py") == []

    def test_annotation_not_flagged(self):
        src = """
        import numpy as np

        def f(rng: np.random.Generator) -> None:
            pass
        """
        assert codes(src) == []

    def test_noqa_suppresses(self):
        assert codes("import random  # noqa: REP001\n") == []
        assert codes("import random  # noqa\n") == []


class TestRep002Registration:
    def test_default_name_flagged(self):
        src = """
        class Mystery(CollectiveAlgorithm):
            pass
        """
        assert codes(src) == ["REP002"]

    def test_unregistered_name_flagged(self):
        src = """
        class Mystery(CollectiveAlgorithm):
            name = "not-a-registered-pattern"
        """
        assert codes(src) == ["REP002"]

    def test_registered_name_clean(self):
        src = """
        class Ring(CollectiveAlgorithm):
            name = "ring"
        """
        assert codes(src) == []

    def test_marker_exempts(self):
        src = """
        class Mystery(CollectiveAlgorithm):
            name = "not-a-registered-pattern"  # lint: unregistered-ok
        """
        assert codes(src) == []


MAPPING_PATH = "src/repro/mapping/fake.py"


class TestRep003MatrixMutation:
    def test_subscript_assignment_flagged(self):
        src = """
        def heuristic(D):
            D[0, 0] = 1.0
        """
        assert codes(src, MAPPING_PATH) == ["REP003"]

    def test_fill_diagonal_flagged(self):
        src = """
        import numpy as np

        def heuristic(D):
            np.fill_diagonal(D, 9.0)
        """
        assert codes(src, MAPPING_PATH) == ["REP003"]

    def test_augmented_assignment_flagged(self):
        src = """
        def heuristic(D):
            D += 1.0
        """
        assert codes(src, MAPPING_PATH) == ["REP003"]

    def test_copy_is_clean(self):
        src = """
        def heuristic(D):
            E = D.copy()
            E[0, 0] = 1.0
            return E
        """
        assert codes(src, MAPPING_PATH) == []

    def test_outside_mapping_pkg_not_flagged(self):
        src = """
        def f(D):
            D[0, 0] = 1.0
        """
        assert codes(src, "src/repro/topology/fake.py") == []


class TestRep004MapperValidation:
    def test_unvalidated_map_flagged(self):
        src = """
        class Greedy(Mapper):
            def map(self, layout, D):
                return layout
        """
        assert codes(src, MAPPING_PATH) == ["REP004"]

    def test_finish_is_accepted(self):
        src = """
        class Greedy(Mapper):
            def map(self, layout, D):
                return self._finish(layout, layout)
        """
        assert codes(src, MAPPING_PATH) == []

    def test_check_permutation_is_accepted(self):
        src = """
        class Greedy(Mapper):
            def map(self, layout, D):
                check_permutation(layout, len(layout))
                return layout
        """
        assert codes(src, MAPPING_PATH) == []

    def test_abstract_map_skipped(self):
        src = """
        class Base(Mapper):
            def map(self, layout, D):
                raise NotImplementedError
        """
        assert codes(src, MAPPING_PATH) == []


class TestDriver:
    def test_syntax_error_reported(self):
        assert codes("def broken(:\n") == ["REP000"]

    def test_repo_source_tree_is_clean(self):
        report = lint_paths(["src"])
        assert len(report) == 0, report.format()

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "1 finding(s)" in out
