"""Fault-plan verifier tests: one positive and one negative case per FLT rule."""

import pytest

from repro.analysis.flt import verify_fault_plan
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    cable_degradation,
    hca_retrain,
    single_node_failure,
)
from repro.topology.gpc import gpc_cluster


@pytest.fixture(scope="module")
def cluster():
    return gpc_cluster(n_nodes=4)


@pytest.fixture(scope="module")
def schedule(cluster):
    return RecursiveDoublingAllgather().schedule(cluster.n_cores)


class TestFlt001RoundClock:
    def test_onset_beyond_schedule_flagged(self, schedule):
        plan = single_node_failure(0, onset_stage=schedule.n_stages())
        report = verify_fault_plan(plan, schedule=schedule)
        assert report.codes() == ["FLT001"]

    def test_last_round_onset_clean(self, schedule):
        plan = hca_retrain(0, factor=2.0, onset_stage=schedule.n_stages() - 1)
        report = verify_fault_plan(plan, schedule=schedule)
        assert not report.has("FLT001")

    def test_repeat_expansion_is_the_clock(self, cluster):
        from repro.collectives.registry import make_algorithm

        ring = make_algorithm("ring").schedule(cluster.n_cores)
        assert ring.n_stages() > len(ring.stages)  # repeats expanded
        plan = hca_retrain(0, factor=2.0, onset_stage=len(ring.stages) + 1)
        assert not verify_fault_plan(plan, schedule=ring).has("FLT001")


class TestFlt002Targets:
    def test_missing_node_flagged(self, cluster, schedule):
        plan = single_node_failure(cluster.n_nodes, onset_stage=1)
        report = verify_fault_plan(plan, schedule=schedule, cluster=cluster)
        assert report.has("FLT002")

    def test_missing_link_flagged(self, cluster):
        plan = cable_degradation([cluster.n_links], factor=2.0)
        assert verify_fault_plan(plan, cluster=cluster).has("FLT002")

    def test_unsurvivable_plan_flagged(self, cluster):
        plan = FaultPlan(
            tuple(
                FaultEvent(kind="node-fail", node=n, onset_stage=1)
                for n in range(cluster.n_nodes - 1)
            )
        )
        report = verify_fault_plan(plan, cluster=cluster)
        assert report.has("FLT002")

    def test_valid_targets_clean(self, cluster, schedule):
        plan = single_node_failure(cluster.n_nodes - 1, onset_stage=1)
        report = verify_fault_plan(plan, schedule=schedule, cluster=cluster)
        assert not report.has("FLT002")


class TestFlt003Pow2:
    def test_pow2_loss_warned(self, cluster, schedule):
        plan = single_node_failure(1, onset_stage=1)
        report = verify_fault_plan(plan, schedule=schedule, cluster=cluster)
        assert report.has("FLT003")
        assert all(d.severity == "warning" for d in report.diagnostics
                   if d.code == "FLT003")
        assert report.ok()  # warnings do not gate

    def test_degradation_only_plan_no_warning(self, cluster):
        plan = hca_retrain(0, factor=2.0, onset_stage=1)
        assert not verify_fault_plan(plan, cluster=cluster).has("FLT003")


class TestFlt004FactorRange:
    def test_noop_factor_flagged(self):
        plan = hca_retrain(0, factor=1.0, onset_stage=1)
        assert verify_fault_plan(plan).codes() == ["FLT004"]

    def test_infinite_factor_flagged(self):
        plan = cable_degradation([0], factor=float("inf"), onset_stage=1)
        assert verify_fault_plan(plan).codes() == ["FLT004"]

    def test_absurd_factor_flagged(self):
        plan = hca_retrain(0, factor=1e9, onset_stage=1)
        assert verify_fault_plan(plan).codes() == ["FLT004"]

    def test_physical_factor_clean(self):
        plan = hca_retrain(0, factor=4.0, onset_stage=1)
        assert not verify_fault_plan(plan).has("FLT004")


class TestFlt005ClockAgreement:
    def test_disagreeing_clocks_flagged(self):
        plan = FaultPlan(
            (
                FaultEvent(kind="hca-retrain", node=0, factor=2.0,
                           onset_stage=1, onset_seconds=5.0),
                FaultEvent(kind="cable-degrade", links=(0,), factor=2.0,
                           onset_stage=3, onset_seconds=1.0),
            )
        )
        assert verify_fault_plan(plan).has("FLT005")

    def test_agreeing_clocks_clean(self):
        plan = FaultPlan(
            (
                FaultEvent(kind="hca-retrain", node=0, factor=2.0,
                           onset_stage=1, onset_seconds=1.0),
                FaultEvent(kind="cable-degrade", links=(0,), factor=2.0,
                           onset_stage=3, onset_seconds=5.0),
            )
        )
        assert not verify_fault_plan(plan).has("FLT005")

    def test_stage_only_events_not_compared(self):
        plan = FaultPlan(
            (
                FaultEvent(kind="hca-retrain", node=0, factor=2.0, onset_stage=1),
                FaultEvent(kind="cable-degrade", links=(0,), factor=2.0,
                           onset_stage=3, onset_seconds=1.0),
            )
        )
        assert not verify_fault_plan(plan).has("FLT005")


class TestSuppression:
    def test_ignore_exact_code(self, cluster, schedule):
        plan = single_node_failure(1, onset_stage=1)
        report = verify_fault_plan(
            plan, schedule=schedule, cluster=cluster, ignore=("FLT003",)
        )
        assert not report.has("FLT003")

    def test_ignore_family_prefix(self):
        plan = hca_retrain(0, factor=1.0, onset_stage=1)
        assert verify_fault_plan(plan, ignore=("FLT",)).diagnostics == []


class TestRoundTrip:
    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            (
                FaultEvent(kind="node-fail", node=2, onset_stage=3),
                FaultEvent(kind="cable-degrade", links=(1, 4), factor=2.5,
                           onset_seconds=0.25),
            )
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_revalidates(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"events": [{"kind": "node-fail"}]})
