"""Opt-in REPRO_VERIFY runtime guard tests."""

import numpy as np
import pytest

from repro.analysis import (
    REPRO_VERIFY_ENV,
    ScheduleVerificationError,
    verification_enabled,
)
from repro.collectives.schedule import Schedule, make_stage


def broken_schedule():
    """Valid at construction, corrupted afterwards (rank 8 with p=2)."""
    sched = Schedule(p=9, stages=[make_stage([(0, 8, (0,))])], name="bad")
    sched.p = 2
    return sched


class TestSwitch:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(REPRO_VERIFY_ENV, raising=False)
        assert not verification_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "ON", "yes"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(REPRO_VERIFY_ENV, value)
        assert verification_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "", "no"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(REPRO_VERIFY_ENV, value)
        assert not verification_enabled()


class TestEngineGuard:
    def test_engine_rejects_broken_schedule(self, monkeypatch, mid_engine, mid_cluster):
        monkeypatch.setenv(REPRO_VERIFY_ENV, "1")
        M = np.arange(mid_cluster.n_cores)
        with pytest.raises(ScheduleVerificationError, match="SCH002"):
            mid_engine.evaluate(broken_schedule(), M, 64)

    def test_engine_accepts_clean_schedule(self, monkeypatch, mid_engine, mid_cluster):
        monkeypatch.setenv(REPRO_VERIFY_ENV, "1")
        M = np.arange(mid_cluster.n_cores)
        sched = Schedule(p=2, stages=[make_stage([(0, 1, (0,))])])
        assert mid_engine.evaluate(sched, M, 64).total_seconds > 0

    def test_guard_off_means_no_check(self, monkeypatch, mid_engine, mid_cluster):
        monkeypatch.delenv(REPRO_VERIFY_ENV, raising=False)
        M = np.arange(mid_cluster.n_cores)
        # The corrupt schedule still prices: the guard really is opt-in.
        assert mid_engine.evaluate(broken_schedule(), M, 64).total_seconds > 0

    def test_error_carries_report(self, monkeypatch, mid_engine, mid_cluster):
        monkeypatch.setenv(REPRO_VERIFY_ENV, "1")
        M = np.arange(mid_cluster.n_cores)
        with pytest.raises(ScheduleVerificationError) as excinfo:
            mid_engine.evaluate(broken_schedule(), M, 64)
        assert excinfo.value.report.has("SCH002")
