"""Pricing-invariant tests: one positive and one negative case per PRC rule."""

import numpy as np
import pytest

from repro.analysis.prc import check_pricing, probe_pricing_identity
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.simmpi.engine import StagePricing, TimingEngine
from repro.topology.gpc import gpc_cluster


@pytest.fixture(scope="module")
def pricing():
    cluster = gpc_cluster(n_nodes=2)
    engine = TimingEngine(cluster)
    schedule = RecursiveDoublingAllgather().schedule(cluster.n_cores)
    return engine.pricing(schedule, np.arange(cluster.n_cores, dtype=np.int64))


def _doctor(pricing, stage_index=0, **overrides):
    """A shallow clone of ``pricing`` with one stage's fields replaced."""
    import copy

    clone = copy.copy(pricing)
    clone.stages = list(pricing.stages)
    stage = clone.stages[stage_index]
    fields = {
        "label": stage.label,
        "repeat": stage.repeat,
        "n_messages": stage.n_messages,
        "env_alpha": stage.env_alpha,
        "env_drain": stage.env_drain,
        "unit_load_max": stage.unit_load_max,
    }
    fields.update(overrides)
    clone.stages[stage_index] = StagePricing(**fields)
    return clone


class TestPrc001Monotonicity:
    def test_real_pricing_is_monotone(self, pricing):
        assert not check_pricing(pricing).has("PRC001")

    def test_negative_drain_caught_structurally_first(self, pricing):
        bad = _doctor(
            pricing,
            env_alpha=np.asarray([1e-6]),
            env_drain=np.asarray([-1e-9]),
        )
        # a corrupt drain is caught structurally (PRC002) before the
        # behavioural probe runs, so the probe never sees garbage tables
        assert check_pricing(bad).has("PRC002")

    def test_non_monotone_behaviour_flagged(self, pricing):
        outer = pricing

        class NonMonotone:
            schedule_name = outer.schedule_name
            p = outer.p
            local_copy_units = outer.local_copy_units
            stages = outer.stages

            def evaluate_sizes(self, sizes, extra_copy_bytes=0.0):
                result = outer.evaluate_sizes(sizes, extra_copy_bytes)
                result.total_seconds = result.total_seconds[::-1].copy()
                return result

        assert check_pricing(NonMonotone()).codes() == ["PRC001"]


class TestPrc002TermSanity:
    def test_real_terms_are_sane(self, pricing):
        assert not check_pricing(pricing).has("PRC002")

    def test_negative_alpha_flagged(self, pricing):
        bad = _doctor(pricing, env_alpha=-np.abs(pricing.stages[0].env_alpha))
        assert check_pricing(bad).has("PRC002")

    def test_nan_drain_flagged(self, pricing):
        drain = pricing.stages[0].env_drain.copy()
        drain[0] = np.nan
        assert check_pricing(_doctor(pricing, env_drain=drain)).has("PRC002")

    def test_negative_unit_load_flagged(self, pricing):
        assert check_pricing(_doctor(pricing, unit_load_max=-1.0)).has("PRC002")


class TestPrc003Envelope:
    def test_real_envelope_is_valid(self, pricing):
        assert not check_pricing(pricing).has("PRC003")

    def test_duplicate_drain_flagged(self, pricing):
        stage = pricing.stages[0]
        drain = np.repeat(stage.env_drain[:1], 2)
        alpha = np.repeat(stage.env_alpha[:1], 2)
        assert check_pricing(
            _doctor(pricing, env_drain=drain, env_alpha=alpha)
        ).has("PRC003")

    def test_dominated_line_flagged(self, pricing):
        stage = pricing.stages[0]
        base_a = float(stage.env_alpha[0])
        base_d = float(stage.env_drain[0])
        # second line has larger drain AND larger alpha: dominates the
        # first, so the first should have been dropped by the sweep
        alpha = np.asarray([base_a, base_a * 2 + 1e-9])
        drain = np.asarray([base_d, base_d * 2 + 1e-12])
        assert check_pricing(
            _doctor(pricing, env_alpha=alpha, env_drain=drain)
        ).has("PRC003")

    def test_shape_mismatch_flagged(self, pricing):
        stage = pricing.stages[0]
        assert check_pricing(
            _doctor(pricing, env_alpha=np.append(stage.env_alpha, 1.0))
        ).has("PRC003")

    def test_empty_envelope_with_messages_flagged(self, pricing):
        assert check_pricing(
            _doctor(
                pricing,
                env_alpha=np.asarray([]),
                env_drain=np.asarray([]),
            )
        ).has("PRC003")


class TestPrc004Structure:
    def test_real_structure_is_valid(self, pricing):
        assert not check_pricing(pricing).has("PRC004")

    def test_zero_repeat_flagged(self, pricing):
        assert check_pricing(_doctor(pricing, repeat=0)).has("PRC004")

    def test_negative_message_count_flagged(self, pricing):
        assert check_pricing(_doctor(pricing, n_messages=-1)).has("PRC004")

    def test_negative_copy_units_flagged(self, pricing):
        import copy

        bad = copy.copy(pricing)
        bad.local_copy_units = -1.0
        assert check_pricing(bad).has("PRC004")


class TestPrc005BatchedIdentity:
    def test_default_probe_is_clean(self):
        report = probe_pricing_identity()
        assert [str(d) for d in report.diagnostics] == []

    def test_injected_disagreement_is_caught(self, pricing):
        class LyingPricing:
            schedule_name = pricing.schedule_name
            p = pricing.p

            def evaluate_sizes(self, sizes, extra_copy_bytes=0.0):
                real = pricing.evaluate_sizes(sizes, extra_copy_bytes)
                real.total_seconds = real.total_seconds * 1.5
                return real

        class LyingEngine:
            def pricing(self, schedule, mapping):
                return LyingPricing()

            def evaluate(self, schedule, mapping, block_bytes):
                cluster = gpc_cluster(n_nodes=2)
                return TimingEngine(cluster).evaluate(schedule, mapping, block_bytes)

        report = probe_pricing_identity(
            engine=LyingEngine(),
            schedule=RecursiveDoublingAllgather().schedule(pricing.p),
        )
        assert report.codes() == ["PRC005"]


class TestSuppression:
    def test_ignore_family_prefix(self, pricing):
        report = check_pricing(_doctor(pricing, repeat=0), ignore=("PRC",))
        assert report.diagnostics == []

    def test_ignore_exact_code_keeps_others(self, pricing):
        bad = _doctor(pricing, repeat=0, n_messages=-1)
        report = check_pricing(bad, ignore=("PRC001",))
        assert report.has("PRC004")
