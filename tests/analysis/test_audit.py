"""Audit-driver tests: orchestration, artifacts, SARIF, registry discipline."""

import json
from pathlib import Path

import pytest

from repro.analysis.audit import AUDIT_SIZES, main, run_audit
from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.registry import FAMILIES, RULES, is_registered, rules_for_family
from repro.analysis.sarif import SARIF_VERSION, to_sarif

#: Probe sections (they build clusters/engines) — skipped in the fast
#: filesystem-focused tests; their behaviour is covered per-family.
PROBE_SECTIONS = ("schedule", "mapping", "cch", "flt", "prc")


@pytest.fixture()
def dirty_tree(tmp_path):
    pkg = tmp_path / "repro" / "bench"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(
        "import random\n"                        # REP001
        "for x in {1, 2}:\n    pass\n"           # DET002
        "path.write_text(data)\n"                # PAR002
    )
    return tmp_path


class TestRunAudit:
    def test_ast_sections_catch_seeded_findings(self, dirty_tree):
        result = run_audit(paths=[str(dirty_tree)], skip=PROBE_SECTIONS)
        assert not result.ok()
        assert result.sections["lint"].has("REP001")
        assert result.sections["det"].has("DET002")
        assert result.sections["par"].has("PAR002")

    def test_skip_by_family_prefix(self, dirty_tree):
        result = run_audit(paths=[str(dirty_tree)], skip=PROBE_SECTIONS + ("DET",))
        assert "det" not in result.sections

    def test_ignore_globs_filter_every_section(self, dirty_tree):
        result = run_audit(
            paths=[str(dirty_tree)],
            skip=PROBE_SECTIONS,
            ignore=("REP", "DET002", "PAR002"),
        )
        assert result.ok() and result.diagnostics == []

    def test_clean_tree_is_ok(self, tmp_path):
        (tmp_path / "fine.py").write_text("x = 1\n")
        result = run_audit(paths=[str(tmp_path)], skip=PROBE_SECTIONS)
        assert result.ok()

    def test_probe_sections_pass_on_repo(self):
        result = run_audit(paths=[], skip=("lint", "det", "par"))
        assert [str(d) for d in result.diagnostics] == []
        assert set(result.sections) == set(PROBE_SECTIONS)


class TestArtifacts:
    def test_bad_fault_plan_artifact_flagged(self, tmp_path):
        (tmp_path / "beyond.json").write_text(
            json.dumps({"events": [{"kind": "hca-retrain", "node": 0,
                                    "factor": 2.0, "onset_stage": 10_000}]})
        )
        result = run_audit(
            paths=[],
            artifacts=str(tmp_path),
            skip=("schedule", "mapping", "lint", "det", "par", "cch", "prc"),
        )
        assert result.sections["flt"].has("FLT001")
        assert any("beyond.json" in (d.path or "") for d in result.diagnostics)

    def test_unloadable_artifact_flagged(self, tmp_path):
        (tmp_path / "torn.json").write_text('{"events": [')
        result = run_audit(
            paths=[],
            artifacts=str(tmp_path),
            skip=("schedule", "mapping", "lint", "det", "par", "cch", "prc"),
        )
        assert result.sections["flt"].has("FLT002")

    def test_good_artifact_clean(self, tmp_path):
        from repro.faults.plan import hca_retrain

        plan = hca_retrain(0, factor=2.0, onset_stage=1)
        (tmp_path / "good.json").write_text(json.dumps(plan.to_dict()))
        result = run_audit(
            paths=[],
            artifacts=str(tmp_path),
            skip=("schedule", "mapping", "lint", "det", "par", "cch", "prc"),
        )
        assert result.ok()

    def test_cache_dir_scanned(self, tmp_path):
        (tmp_path / "foreign.json").write_text("{}")
        result = run_audit(
            paths=[],
            cache_dir=str(tmp_path),
            skip=("schedule", "mapping", "lint", "det", "par", "flt", "prc"),
        )
        assert result.sections["cch"].has("CCH004")


class TestReports:
    def test_json_shape(self, dirty_tree):
        payload = run_audit(paths=[str(dirty_tree)], skip=PROBE_SECTIONS).to_json()
        assert payload["ok"] is False and payload["errors"] >= 3
        assert set(payload["sections"]) == {"lint", "det", "par"}
        assert all("code" in d and "message" in d for d in payload["diagnostics"])

    def test_sarif_shape(self, dirty_tree):
        doc = run_audit(paths=[str(dirty_tree)], skip=PROBE_SECTIONS).to_sarif()
        assert doc["version"] == SARIF_VERSION
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(RULES) <= rule_ids  # full catalogue published
        results = run["results"]
        assert results
        for res in results:
            assert res["ruleId"] in rule_ids
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith("dirty.py")
            assert loc["region"]["startLine"] >= 1

    def test_sarif_logical_location_for_object_findings(self):
        report = DiagnosticReport()
        report.add("FLT001", "never activates", message_index=2)
        doc = to_sarif(report.diagnostics)
        loc = doc["runs"][0]["results"][0]["locations"][0]
        assert "physicalLocation" not in loc
        assert loc["logicalLocations"][0]["fullyQualifiedName"] == "msg 2"

    def test_format_lists_sections(self, dirty_tree):
        text = run_audit(paths=[str(dirty_tree)], skip=PROBE_SECTIONS).format()
        assert "[lint]" in text and "[det]" in text and "[par]" in text
        assert "audit:" in text


class TestMain:
    def test_exit_one_on_findings_and_writes_reports(self, dirty_tree):
        json_out = dirty_tree / "audit.json"
        sarif_out = dirty_tree / "audit.sarif"
        code = main(
            [str(dirty_tree / "repro"),
             "--skip-family", "schedule", "--skip-family", "mapping",
             "--skip-family", "cch", "--skip-family", "flt",
             "--skip-family", "prc",
             "--json", str(json_out), "--sarif", str(sarif_out)]
        )
        assert code == 1
        assert json.loads(json_out.read_text())["ok"] is False
        assert json.loads(sarif_out.read_text())["version"] == SARIF_VERSION

    def test_exit_zero_on_clean_tree(self, tmp_path):
        (tmp_path / "fine.py").write_text("x = 1\n")
        args = [str(tmp_path)]
        for section in PROBE_SECTIONS:
            args += ["--skip-family", section]
        assert main(args) == 0


class TestRegistryDiscipline:
    def test_every_family_has_rules(self):
        for family in FAMILIES:
            assert rules_for_family(family), family

    def test_rule_codes_match_family_prefix(self):
        for code, rule in RULES.items():
            assert code.startswith(rule.family)

    def test_is_registered(self):
        assert is_registered("DET004") and not is_registered("XXX999")

    def test_unregistered_code_reported(self, monkeypatch):
        bogus = DiagnosticReport()
        bogus.add("ZZZ001", "made up")
        monkeypatch.setattr(
            "repro.analysis.audit._audit_mappings", lambda nodes: bogus
        )
        result = run_audit(
            paths=[], skip=("schedule", "lint", "det", "par", "cch", "flt", "prc")
        )
        assert "registry" in result.sections
        assert result.sections["registry"].has("REP000")

    def test_docs_catalogue_in_sync(self):
        text = Path("docs/static_analysis.md").read_text()
        missing = [code for code in RULES if code not in text]
        assert missing == [], f"codes missing from docs: {missing}"

    def test_audit_sizes_are_modest(self):
        assert max(AUDIT_SIZES) <= 32  # keep the default audit fast
