"""Determinism-lint tests: one positive and one negative case per DET rule."""

import textwrap

from repro.analysis.det import check_determinism_paths, check_determinism_source, main


def codes(source, path="src/repro/somewhere.py"):
    return [d.code for d in check_determinism_source(textwrap.dedent(source), path)]


class TestDet001UnseededRng:
    def test_make_rng_none_flagged(self):
        src = """
        from repro.util.rng import make_rng

        def f():
            return make_rng(None)
        """
        assert codes(src) == ["DET001"]

    def test_seed_kwarg_none_flagged(self):
        assert codes("rng = make_rng(seed=None)\n") == ["DET001"]

    def test_global_seed_flagged(self):
        assert codes("import random\nrandom.seed(3)\n", path="x.py") == ["DET001"]
        assert codes("np.random.seed(3)\n", path="x.py") == ["DET001"]

    def test_explicit_seed_clean(self):
        assert codes("rng = make_rng(0)\n") == []

    def test_rng_module_exempt(self):
        assert codes("rng = make_rng(None)\n", path="src/repro/util/rng.py") == []


class TestDet002SetIteration:
    def test_for_over_set_literal_flagged(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["DET002"]

    def test_for_over_set_call_flagged(self):
        assert codes("for x in set(items):\n    pass\n") == ["DET002"]

    def test_comprehension_over_setcomp_flagged(self):
        assert codes("out = [f(x) for x in {a for a in y}]\n") == ["DET002"]

    def test_list_of_set_flagged(self):
        assert codes("out = list({1, 2})\n") == ["DET002"]

    def test_sorted_set_clean(self):
        assert codes("for x in sorted({1, 2, 3}):\n    pass\n") == []

    def test_membership_clean(self):
        assert codes("ok = x in {1, 2, 3}\n") == []


class TestDet003WallClock:
    def test_wallclock_in_fingerprint_func_flagged(self):
        src = """
        import time

        def topology_fingerprint():
            return f"{time.time()}"
        """
        assert codes(src) == ["DET003"]

    def test_wallclock_in_cache_key_func_flagged(self):
        src = """
        import time

        def mapping_cache_key():
            return time.time()
        """
        assert codes(src) == ["DET003"]

    def test_wallclock_into_hash_flagged(self):
        src = """
        import hashlib, time

        def f():
            return hashlib.sha256(time.time())
        """
        assert codes(src) == ["DET003"]

    def test_wallclock_in_benchmark_metadata_clean(self):
        src = """
        import time

        def run_bench():
            return {"timestamp": time.time()}
        """
        assert codes(src) == []


class TestDet004UnsortedScan:
    def test_bare_listdir_flagged(self):
        assert codes("for f in os.listdir(d):\n    pass\n") == ["DET004"]

    def test_bare_glob_method_flagged(self):
        assert codes("names = [p.name for p in root.glob('*.json')]\n") == ["DET004"]

    def test_sorted_scan_clean(self):
        assert codes("for f in sorted(os.listdir(d)):\n    pass\n") == []

    def test_sorted_generator_over_scan_clean(self):
        assert codes("names = sorted(p.name for p in root.iterdir())\n") == []

    def test_order_insensitive_reducers_clean(self):
        assert codes("n = len(list(root.glob('*.json')))\n") == []
        assert codes("present = any(root.rglob('*.tmp'))\n") == []


class TestDet005CompletionOrder:
    def test_as_completed_flagged(self):
        src = """
        from concurrent.futures import as_completed

        def drain(futs):
            return [f.result() for f in as_completed(futs)]
        """
        assert codes(src) == ["DET005"]

    def test_imap_unordered_flagged(self):
        assert codes("for r in pool.imap_unordered(f, xs):\n    pass\n") == ["DET005"]

    def test_ordered_map_clean(self):
        assert codes("results = list(pool.map(f, xs))\n") == []


class TestSuppression:
    def test_noqa_code_suppresses(self):
        assert codes("for x in {1, 2}:  # noqa: DET002\n    pass\n") == []

    def test_bare_noqa_suppresses(self):
        assert codes("rng = make_rng(None)  # noqa\n") == []

    def test_other_code_does_not_suppress(self):
        assert codes("for x in {1, 2}:  # noqa: DET001\n    pass\n") == ["DET002"]


class TestDriver:
    def test_repo_src_is_clean(self):
        report = check_determinism_paths(["src"])
        assert [str(d) for d in report.diagnostics] == []

    def test_syntax_error_reported(self):
        assert codes("def broken(:\n") == ["REP000"]

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("for x in {1, 2}:\n    pass\n")
        assert main([str(bad)]) == 1
        good = tmp_path / "good.py"
        good.write_text("for x in sorted({1, 2}):\n    pass\n")
        assert main([str(good)]) == 0
