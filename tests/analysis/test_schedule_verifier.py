"""Schedule-verifier tests: the registry sweep plus one negative test
per SCH diagnostic code."""

import pytest

import numpy as np

from repro.analysis import (
    allgather_semantics,
    semantics_for,
    verify_algorithm,
    verify_schedule,
)
from repro.collectives.registry import make_algorithm, registered_algorithm_names
from repro.collectives.schedule import Schedule, Stage, make_stage

# Acceptance sweep from ISSUE: powers of two, odd sizes, non-powers.
P_SWEEP = [2, 3, 4, 7, 8, 16, 17, 32, 64]


def supported(alg, p):
    try:
        alg.validate_p(p)
    except ValueError:
        return False
    return True


class TestRegistrySweep:
    @pytest.mark.parametrize("name", registered_algorithm_names())
    @pytest.mark.parametrize("p", P_SWEEP)
    def test_registered_algorithms_verify_clean(self, name, p):
        """Every registered collective is verifier-clean at every
        supported communicator size (the ISSUE acceptance criterion)."""
        alg = make_algorithm(name)
        if not supported(alg, p):
            pytest.skip(f"{name} does not support p={p}")
        report = verify_algorithm(alg, p)
        assert report.ok(), report.format()
        assert not report.warnings, report.format()

    def test_semantics_known_for_all_registered(self):
        for name in registered_algorithm_names():
            # Must not raise: every registered name has a contract entry
            # (None is fine — it means structural-only).
            semantics_for(make_algorithm(name))

    def test_unknown_algorithm_semantics_rejected(self):
        class Mystery:
            name = "totally-unknown"

        with pytest.raises(KeyError, match="totally-unknown"):
            semantics_for(Mystery())


def one_block_schedule(p=2):
    """Minimal valid allgather-shaped schedule: 0 <-> 1 exchange."""
    return Schedule(
        p=p,
        stages=[make_stage([(0, 1, (0,)), (1, 0, (1,))])],
        name="pair",
    )


class TestNegativeSchedules:
    """Each SCH code must be reachable (constructed via post-construction
    mutation where Schedule.__post_init__ would reject the input)."""

    def test_sch001_zero_stages(self):
        sched = one_block_schedule()
        sched.stages = []  # bypass the constructor guard
        report = verify_schedule(sched)
        assert report.has("SCH001")
        assert not report.ok()

    def test_sch001_tiny_communicator(self):
        sched = one_block_schedule()
        sched.p = 1
        assert verify_schedule(sched).has("SCH001")

    def test_sch002_rank_out_of_bounds(self):
        sched = Schedule(p=9, stages=[make_stage([(0, 8, (0,))])])
        sched.p = 2  # now rank 8 is out of range
        report = verify_schedule(sched)
        assert report.has("SCH002")

    def test_sch003_units_blocks_mismatch(self):
        stage = Stage(
            src=np.array([0]),
            dst=np.array([1]),
            units=np.array([2.0]),
            blocks=[(0,)],  # 1 block but units=2
        )
        sched = Schedule(p=2, stages=[stage])
        assert verify_schedule(sched).has("SCH003")

    def test_sch004_causality_violation(self):
        # Rank 0 forwards rank 1's block before ever receiving it.
        sched = Schedule(p=2, stages=[make_stage([(0, 1, (1,))])])
        report = verify_schedule(sched, allgather_semantics())
        assert report.has("SCH004")

    def test_sch005_port_contention(self):
        sched = Schedule(
            p=3, stages=[make_stage([(0, 1, (0,)), (0, 2, (0,))])]
        )
        report = verify_schedule(sched)
        assert report.has("SCH005")
        assert verify_schedule(sched, allow_multi_port=True).ok()

    def test_sch006_duplicate_transfer(self):
        sched = Schedule(
            p=2, stages=[make_stage([(0, 1, (0,)), (0, 1, (0,))])]
        )
        report = verify_schedule(sched, allow_multi_port=True)
        assert report.has("SCH006")

    def test_sch007_redundant_transfer_is_warning(self):
        sched = Schedule(
            p=2,
            stages=[
                make_stage([(0, 1, (0,)), (1, 0, (1,))]),
                make_stage([(0, 1, (0,)), (1, 0, (1,))]),  # repeats stage 1
            ],
        )
        report = verify_schedule(sched, allgather_semantics())
        assert report.has("SCH007")
        assert report.ok()  # warnings do not fail verification
        assert not verify_schedule(
            sched, allgather_semantics(), flag_redundant=False
        ).has("SCH007")

    def test_sch008_incomplete_collective(self):
        # Only 0 -> 1; rank 0 never receives block 1.
        sched = Schedule(p=2, stages=[make_stage([(0, 1, (0,))])])
        report = verify_schedule(sched, allgather_semantics())
        assert report.has("SCH008")
        missing = [d for d in report.diagnostics if d.code == "SCH008"]
        assert missing[0].rank == 0

    def test_structural_only_without_blocks(self):
        # No block lists -> dataflow checks silently skipped even with
        # semantics (the compressed timing view case).
        stage = Stage(src=np.array([0]), dst=np.array([1]), units=np.ones(1))
        sched = Schedule(p=2, stages=[stage])
        report = verify_schedule(sched, allgather_semantics())
        assert report.ok()
        assert not report.has("SCH008")
