"""Mapping / distance-matrix / cluster invariant checker tests."""

import numpy as np
import pytest

from repro.analysis import (
    check_cluster,
    check_core_mapping,
    check_distance_matrix,
    check_rank_permutation,
)
from repro.topology.gpc import gpc_cluster


class TestRankPermutation:
    def test_identity_clean(self):
        assert check_rank_permutation(np.arange(8), 8).ok()

    def test_map001_repeat(self):
        report = check_rank_permutation([0, 0, 2], 3)
        assert report.has("MAP001")

    def test_map001_wrong_length(self):
        assert check_rank_permutation([0, 1], 3).has("MAP001")


class TestCoreMapping:
    def test_valid_bijection(self):
        layout = np.array([4, 5, 6, 7])
        assert check_core_mapping([7, 4, 6, 5], layout).ok()

    def test_map001_duplicate_core(self):
        report = check_core_mapping([4, 4, 6, 7], [4, 5, 6, 7])
        assert report.has("MAP001")
        assert "multiple ranks" in report.diagnostics[0].message

    def test_map001_stray_core(self):
        report = check_core_mapping([4, 5, 6, 99], [4, 5, 6, 7])
        assert report.has("MAP001")
        assert "outside the layout" in report.diagnostics[0].message

    def test_map001_shape_mismatch(self):
        assert check_core_mapping([4, 5], [4, 5, 6]).has("MAP001")


def ladder_matrix():
    """A well-formed 3x3 distance matrix."""
    return np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 1.0, 0.0]])


class TestDistanceMatrix:
    def test_clean(self):
        assert check_distance_matrix(ladder_matrix(), triangle=True).ok()

    def test_map002_not_square(self):
        report = check_distance_matrix(np.zeros((2, 3)))
        assert report.codes() == ["MAP002"]  # early exit: nothing else checked

    def test_map003_asymmetric(self):
        D = ladder_matrix()
        D[0, 1] = 5.0
        assert check_distance_matrix(D).has("MAP003")

    def test_map004_nonzero_diagonal(self):
        D = ladder_matrix()
        D[1, 1] = 0.5
        assert check_distance_matrix(D).has("MAP004")

    def test_map005_negative_entry(self):
        D = ladder_matrix()
        D[0, 2] = D[2, 0] = -1.0
        assert check_distance_matrix(D).has("MAP005")

    def test_map006_triangle_violation_is_warning(self):
        D = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
        report = check_distance_matrix(D, triangle=True)
        assert report.has("MAP006")
        assert report.ok()  # audit finding, not an error
        assert not check_distance_matrix(D).has("MAP006")  # opt-in only


class _Corrupt:
    """Attribute-override proxy for probing cluster invariants."""

    def __init__(self, cluster, **overrides):
        self._cluster = cluster
        self._overrides = overrides

    def __getattr__(self, name):
        if name in self._overrides:
            return self._overrides[name]
        return getattr(self._cluster, name)


class TestCluster:
    @pytest.fixture(scope="class")
    def cluster(self):
        return gpc_cluster(n_nodes=4)

    def test_real_cluster_clean(self, cluster):
        report = check_cluster(cluster, triangle=True)
        assert report.ok(), report.format()

    def test_top001_core_arithmetic(self, cluster):
        bad = _Corrupt(cluster, n_cores=cluster.n_cores + 1)
        assert check_cluster(bad).has("TOP001")

    def test_top003_capacity_exceeded(self, cluster):
        cfg = cluster.network.config
        small_cfg = _Corrupt(cfg, max_nodes=cluster.n_nodes - 1)
        bad = _Corrupt(cluster, network=_Corrupt(cluster.network, config=small_cfg))
        assert check_cluster(bad).has("TOP003")

    def test_top002_negative_distances(self, cluster):
        bad = _Corrupt(cluster, distance_matrix=lambda: -cluster.distance_matrix())
        report = check_cluster(bad)
        assert report.has("TOP002")
        assert any("MAP005" in d.message for d in report.diagnostics)

    def test_top002_flat_ladder(self, cluster):
        n = cluster.n_cores
        flat = np.ones((n, n)) - np.eye(n)
        bad = _Corrupt(
            cluster,
            distance_matrix=lambda: flat,
            distance=lambda i, j: flat[i, j],
        )
        report = check_cluster(bad)
        assert report.has("TOP002")
        assert any("ladder" in d.message for d in report.diagnostics)
