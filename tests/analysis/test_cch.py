"""Cache-key soundness tests: one positive and one negative case per CCH rule.

The seeded-omission cases are the point of this family: a doctored
``reorder_ranks`` twin gains a result-influencing parameter that the key
payload does not cover, and the checker must catch it.
"""

import hashlib
import json

from repro.analysis.cch import (
    DOCUMENTED_KWARG_EXCLUSIONS,
    check_cache_dir,
    check_cache_keys,
    check_pricing_fingerprint_coverage,
    check_reorder_key_coverage,
    probe_engine_identity,
)


# ----------------------------------------------------------------------
# doctored twins for the seeded-omission tests
# ----------------------------------------------------------------------
def _doctored_reorder(pattern, layout, D, kind="heuristic", rng=0, cache="auto",
                      normalize=True, **mapper_kwargs):
    """Like reorder_ranks, but with a result-influencing param the
    sha256 payload knows nothing about."""


def _doctored_key_extra_exclusion(fingerprint, pattern, kind, layout, seed,
                                  mapper_kwargs):
    payload = {k: v for k, v in mapper_kwargs.items()
               if k != "engine" and k != "tie_break"}
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def _doctored_key_no_exclusion(fingerprint, pattern, kind, layout, seed,
                               mapper_kwargs):
    return hashlib.sha256(repr(mapper_kwargs).encode()).hexdigest()


def _doctored_key_missing_param(fingerprint, pattern, kind, layout, seed):
    if seed != "engine":  # keep the exclusion contract satisfied
        pass
    return hashlib.sha256(repr((fingerprint, pattern)).encode()).hexdigest()


class TestCch001ParameterCoverage:
    def test_real_reorder_ranks_is_covered(self):
        report = check_reorder_key_coverage()
        assert [str(d) for d in report.diagnostics] == []

    def test_seeded_omission_is_caught(self):
        report = check_reorder_key_coverage(func=_doctored_reorder)
        assert report.codes() == ["CCH001"]
        assert "normalize" in report.diagnostics[0].message

    def test_finding_is_anchored_to_the_def_line(self):
        report = check_reorder_key_coverage(func=_doctored_reorder)
        assert report.diagnostics[0].path.endswith("test_cch.py")
        assert report.diagnostics[0].line


class TestCch002ContractDrift:
    def test_undeclared_exclusion_is_caught(self):
        report = check_reorder_key_coverage(key_func=_doctored_key_extra_exclusion)
        assert "CCH002" in report.codes()
        assert "tie_break" in "".join(d.message for d in report.diagnostics)

    def test_dropped_exclusion_is_caught(self):
        report = check_reorder_key_coverage(key_func=_doctored_key_no_exclusion)
        assert "CCH002" in report.codes()
        assert "engine" in "".join(d.message for d in report.diagnostics)

    def test_missing_payload_param_is_caught(self):
        report = check_reorder_key_coverage(key_func=_doctored_key_missing_param)
        assert "CCH002" in report.codes()

    def test_documented_exclusions_are_the_contract(self):
        assert DOCUMENTED_KWARG_EXCLUSIONS == frozenset({"engine"})


class TestCch003EngineIdentity:
    def test_real_engines_are_bit_identical(self):
        report = probe_engine_identity(n_nodes=2)
        assert [str(d) for d in report.diagnostics] == []

    def test_probe_covers_jit_engine(self, monkeypatch):
        """The probe must flag a jit tier that drifts from naive."""
        import repro.mapping.reorder as reorder_mod

        real = reorder_mod.reorder_ranks

        def doctored(pattern, layout, D, **kwargs):
            res = real(pattern, layout, D, **kwargs)
            if kwargs.get("engine") == "jit":
                m = res.mapping.copy()
                m[0], m[1] = m[1], m[0]
                res.reordering.mapping[:] = m
            return res

        monkeypatch.setattr(reorder_mod, "reorder_ranks", doctored)
        report = probe_engine_identity(n_nodes=2)
        assert any("jit" in str(d) for d in report.diagnostics)


class TestCch004DiskTier:
    KEY = "0" * 64

    def _entry(self):
        return {"mapping": [1, 0, 2], "layout": [0, 1, 2], "pattern": "ring"}

    def test_valid_tier_is_clean(self, tmp_path):
        (tmp_path / f"{self.KEY}.json").write_text(json.dumps(self._entry()))
        assert check_cache_dir(tmp_path).diagnostics == []

    def test_foreign_filename_flagged(self, tmp_path):
        (tmp_path / "notes.json").write_text(json.dumps(self._entry()))
        assert check_cache_dir(tmp_path).codes() == ["CCH004"]

    def test_torn_entry_flagged(self, tmp_path):
        (tmp_path / f"{self.KEY}.json").write_text('{"mapping": [1,')
        assert check_cache_dir(tmp_path).codes() == ["CCH004"]

    def test_non_permutation_entry_flagged(self, tmp_path):
        (tmp_path / f"{self.KEY}.json").write_text(
            json.dumps({"mapping": [0, 0], "layout": [0, 1]})
        )
        assert check_cache_dir(tmp_path).codes() == ["CCH004"]

    def test_missing_directory_is_clean(self, tmp_path):
        assert check_cache_dir(tmp_path / "absent").diagnostics == []


class TestCch005PricingFingerprint:
    def test_real_fingerprint_covers_the_ir(self):
        report = check_pricing_fingerprint_coverage()
        assert [str(d) for d in report.diagnostics] == []

    def test_seeded_field_omission_is_caught(self):
        def partial_fingerprint(schedule):
            h = hashlib.sha1(f"{schedule.p}|{schedule.name}".encode())
            h.update(str(schedule.local_copy_units).encode())
            for s in schedule.stages:
                h.update(s.src.tobytes() + s.dst.tobytes())
                h.update(str(s.repeat).encode())
                # note: s.units is never hashed
            return h.digest()

        report = check_pricing_fingerprint_coverage(
            fingerprint_func=partial_fingerprint
        )
        assert report.codes() == ["CCH005"]
        assert "units" in report.diagnostics[0].message

    def test_irrelevant_fields_are_declared_not_silent(self):
        def minimal_fingerprint(schedule):
            return b""

        report = check_pricing_fingerprint_coverage(
            fingerprint_func=minimal_fingerprint
        )
        # every non-irrelevant field of Schedule + Stage must be reported
        assert report.codes() == ["CCH005"]
        messages = "".join(d.message for d in report.diagnostics)
        for field in ("p", "stages", "units", "repeat"):
            assert field in messages
        for declared_irrelevant in ("blocks", "label"):
            assert f".{declared_irrelevant} " not in messages


class TestSuppression:
    def test_ignore_glob_suppresses_family(self):
        from repro.analysis.suppress import apply_suppressions

        report = check_reorder_key_coverage(func=_doctored_reorder)
        assert report.diagnostics  # sanity: there is something to suppress
        assert apply_suppressions(report, ("CCH",)).diagnostics == []

    def test_noqa_on_def_line_suppresses(self, tmp_path):
        mod = tmp_path / "doctored.py"
        mod.write_text(
            "def reorder(pattern, layout, D, kind='h',  # noqa: CCH001\n"
            "            rng=0, cache='auto', normalize=True, **kw):\n"
            "    pass\n"
        )
        import importlib.util

        spec = importlib.util.spec_from_file_location("doctored", mod)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        report = check_reorder_key_coverage(func=module.reorder)
        assert report.diagnostics == []


class TestFullCheck:
    def test_repo_cache_keys_are_sound(self):
        report = check_cache_keys(probe_engines=True, n_nodes=2)
        assert [str(d) for d in report.diagnostics] == []
