"""Timing-engine tests: message costs, congestion, stage semantics."""

import numpy as np
import pytest

from repro.collectives.schedule import Schedule, Stage
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine
from repro.topology.cluster import LinkClass


def one_stage(src, dst, units=None, repeat=1):
    src = np.asarray(src)
    units = np.ones(src.size) if units is None else np.asarray(units, dtype=float)
    return Stage(src=src, dst=np.asarray(dst), units=units, repeat=repeat, label="t")


class TestSingleMessage:
    def test_alpha_beta_decomposition(self, mid_cluster):
        """One intra-socket message: cost = route alphas + bytes * worst beta."""
        cm = CostModel(stage_overhead=0.0)
        eng = TimingEngine(mid_cluster, cm)
        M = np.arange(mid_cluster.n_cores)
        t = eng.stage_time(one_stage([0], [1]), M, 8192.0)
        route = mid_cluster.route(0, 1)
        alpha = sum(cm.alpha[LinkClass(mid_cluster.link_class[l])] for l in route)
        # worst link: the memory bus is crossed twice (2x load)
        worst = max(
            cm.beta[LinkClass(mid_cluster.link_class[l])]
            * (2 if LinkClass(mid_cluster.link_class[l]) == LinkClass.MEM else 1)
            for l in route
        )
        assert t.seconds == pytest.approx(alpha + 8192.0 * worst)

    def test_latency_grows_with_hierarchy(self, mid_engine, mid_cluster):
        """Small messages: intra-socket < cross-socket < inter-node."""
        M = np.arange(mid_cluster.n_cores)
        intra = mid_engine.stage_time(one_stage([0], [1]), M, 8.0).seconds
        cross = mid_engine.stage_time(one_stage([0], [5]), M, 8.0).seconds
        inter = mid_engine.stage_time(one_stage([0], [9]), M, 8.0).seconds
        assert intra < cross < inter

    def test_full_node_streams_favour_staying_local(self, mid_engine, mid_cluster):
        """8 concurrent large streams: intra-node wins big (shared HCA).

        This is the effect the paper's reordering exploits — the single
        QDR adapter serialises a node's traffic, while intra-node pairs
        use (mostly) private copy paths.
        """
        M = np.arange(mid_cluster.n_cores)
        cores = np.arange(8)
        intra = mid_engine.stage_time(one_stage(cores, cores ^ 1), M, 1 << 20).seconds
        inter = mid_engine.stage_time(one_stage(cores, cores + 8), M, 1 << 20).seconds
        assert inter > 2.0 * intra


class TestCongestion:
    def test_hca_sharing_scales_drain(self, mid_engine, mid_cluster):
        """k node-exiting streams take ~k times longer (shared HCA)."""
        M = np.arange(mid_cluster.n_cores)
        nbytes = 1 << 20
        one = mid_engine.stage_time(one_stage([0], [8]), M, nbytes).seconds
        four = mid_engine.stage_time(one_stage([0, 1, 2, 3], [8, 9, 10, 11]), M, nbytes).seconds
        assert four > 3.0 * one * 0.9
        assert four < 5.0 * one

    def test_disjoint_messages_do_not_interact(self, mid_engine, mid_cluster):
        """Concurrent transfers on disjoint resources cost like one."""
        M = np.arange(mid_cluster.n_cores)
        one = mid_engine.stage_time(one_stage([0], [1]), M, 65536.0).seconds
        two = mid_engine.stage_time(one_stage([0, 10], [1, 11]), M, 65536.0).seconds
        assert two == pytest.approx(one, rel=0.05)

    def test_link_loads(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        loads = mid_engine.link_loads(one_stage([0, 1], [8, 9]), M, 1000.0)
        hca = int(mid_cluster.hca_up(0))
        assert loads[hca] == pytest.approx(2000.0)


class TestScheduleEvaluation:
    def test_repeat_multiplies(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        s1 = Schedule(p=2, stages=[one_stage([0], [1])], name="a")
        s5 = Schedule(p=2, stages=[one_stage([0], [1], repeat=5)], name="b")
        t1 = mid_engine.evaluate(s1, M, 4096).total_seconds
        t5 = mid_engine.evaluate(s5, M, 4096).total_seconds
        assert t5 == pytest.approx(5 * t1)

    def test_local_copy_accounted(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        s = Schedule(p=2, stages=[one_stage([0], [1])], local_copy_units=4.0)
        base = Schedule(p=2, stages=[one_stage([0], [1])])
        extra = (
            mid_engine.evaluate(s, M, 1024).total_seconds
            - mid_engine.evaluate(base, M, 1024).total_seconds
        )
        assert extra == pytest.approx(mid_engine.cost.copy_cost(4096.0))

    def test_mapping_validation(self, mid_engine, mid_cluster):
        s = Schedule(p=4, stages=[one_stage([0, 2], [1, 3])])
        with pytest.raises(ValueError, match="mapping covers only"):
            mid_engine.evaluate(s, np.arange(2), 64)
        bad = np.array([0, 1, 2, mid_cluster.n_cores])
        with pytest.raises(ValueError, match="outside the cluster"):
            mid_engine.evaluate(s, bad, 64)
        with pytest.raises(ValueError):
            mid_engine.evaluate(s, np.arange(4), 0)

    def test_units_scale_bytes(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        small = mid_engine.evaluate(
            Schedule(p=9, stages=[one_stage([0], [8], units=[1.0])]), M, 1 << 20
        ).total_seconds
        big = mid_engine.evaluate(
            Schedule(p=9, stages=[one_stage([0], [8], units=[4.0])]), M, 1 << 20
        ).total_seconds
        assert big > 2.5 * small

    def test_breakdown_text(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        res = mid_engine.evaluate(Schedule(p=2, stages=[one_stage([0], [1])], name="x"), M, 64)
        assert "x" in res.breakdown()
        assert "us" in res.breakdown()


class TestMappingEffect:
    def test_remapping_changes_cost(self, mid_engine, mid_cluster):
        """The same schedule is cheaper when ranks land on close cores."""
        s = Schedule(p=2, stages=[one_stage([0], [1])])
        near = np.arange(mid_cluster.n_cores)           # ranks 0,1 same socket
        far = near.copy()
        far[1] = 8                                      # rank 1 on another node
        t_near = mid_engine.evaluate(s, near, 65536).total_seconds
        t_far = mid_engine.evaluate(s, far, 65536).total_seconds
        assert t_near < t_far
