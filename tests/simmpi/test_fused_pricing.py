"""Fused single-pass pricing vs. the per-stage reference walk.

``SchedulePricing.evaluate_sizes`` evaluates every stage's Pareto
envelope in one stage-concatenated broadcast + segmented max; it must be
bit-identical to ``evaluate_sizes_reference`` (the per-stage loop it
replaced) for every registered algorithm, since downstream figure
pipelines compare latencies across runs with exact equality.
"""

import numpy as np
import pytest

from repro.collectives.registry import make_algorithm, registered_algorithm_names
from repro.simmpi.engine import TimingEngine

SIZES = [1.0, 17.0, 1024.0, 2048.0, 65536.0, float(1 << 20)]


def _schedules(cluster):
    for name in registered_algorithm_names():
        for p in (16, 24, cluster.n_cores):
            try:
                alg = make_algorithm(name)
                alg.validate_p(p)
                yield name, p, alg.schedule(p)
            except (ValueError, TypeError):
                continue


class TestFusedPricingIdentity:
    def test_bit_identical_across_registry(self, mid_cluster, mid_engine):
        checked = 0
        for name, p, sched in _schedules(mid_cluster):
            M = np.arange(mid_cluster.n_cores, dtype=np.int64)[:p]
            pricing = mid_engine.pricing(sched, M)
            assert pricing._fused_alpha is not None, (name, p)
            fused = pricing.evaluate_sizes(SIZES)
            ref = pricing.evaluate_sizes_reference(SIZES)
            assert np.array_equal(fused.total_seconds, ref.total_seconds), (name, p)
            assert np.array_equal(
                fused.local_copy_seconds, ref.local_copy_seconds
            ), (name, p)
            checked += 1
        assert checked >= 10  # the registry actually got swept

    def test_bit_identical_with_extra_copy_bytes(self, mid_cluster, mid_engine):
        sched = make_algorithm("ring").schedule(32)
        M = np.arange(32, dtype=np.int64)
        pricing = mid_engine.pricing(sched, M)
        fused = pricing.evaluate_sizes(SIZES, extra_copy_bytes=4096.0)
        ref = pricing.evaluate_sizes_reference(SIZES, extra_copy_bytes=4096.0)
        assert np.array_equal(fused.total_seconds, ref.total_seconds)

    def test_bit_identical_under_reordered_mapping(self, mid_cluster, mid_engine):
        from repro.mapping.initial import make_layout
        from repro.mapping.reorder import reorder_ranks

        L = make_layout("cyclic-scatter", mid_cluster, 64)
        res = reorder_ranks("bruck", L, mid_cluster.implicit_distances(), rng=0)
        sched = make_algorithm("bruck").schedule(64)
        pricing = mid_engine.pricing(sched, res.mapping)
        fused = pricing.evaluate_sizes(SIZES)
        ref = pricing.evaluate_sizes_reference(SIZES)
        assert np.array_equal(fused.total_seconds, ref.total_seconds)

    def test_fused_tables_shape(self, mid_cluster, mid_engine):
        sched = make_algorithm("recursive-doubling").schedule(64)
        M = np.arange(64, dtype=np.int64)
        pricing = mid_engine.pricing(sched, M)
        n_env = sum(s.env_alpha.size for s in pricing.stages)
        assert pricing._fused_alpha.size == n_env
        assert pricing._fused_drain.size == n_env
        assert pricing._fused_starts.size == len(pricing.stages)
        assert pricing._fused_starts[0] == 0

    def test_validation_preserved(self, mid_cluster, mid_engine):
        sched = make_algorithm("ring").schedule(16)
        pricing = mid_engine.pricing(sched, np.arange(16, dtype=np.int64))
        with pytest.raises(ValueError, match="non-empty"):
            pricing.evaluate_sizes([])
        with pytest.raises(ValueError, match="positive"):
            pricing.evaluate_sizes([1.0, -2.0])
        with pytest.raises(ValueError, match="non-empty"):
            pricing.evaluate_sizes_reference([])
