"""Cost-model tests."""

import pytest

from repro.simmpi.costmodel import CostModel, DEFAULT_BETA
from repro.topology.cluster import LinkClass


class TestDefaults:
    def test_all_classes_covered(self):
        cm = CostModel()
        for cls in LinkClass:
            assert cls in cm.alpha
            assert cls in cm.beta

    def test_channel_ordering(self):
        """Intra-socket per-pair bandwidth beats QPI; latency grows with
        hierarchy level.  (A single cross-socket pair may legitimately be
        slower than a single QDR pair — the 2009-hardware reality; the
        decisive inter-node penalty is the *shared* HCA, tested in the
        engine suite.)"""
        cm = CostModel()
        assert cm.beta[LinkClass.SMEM] < cm.beta[LinkClass.QPI]
        assert cm.beta[LinkClass.SMEM] < cm.beta[LinkClass.HCA]
        assert cm.alpha[LinkClass.SMEM] < cm.alpha[LinkClass.QPI] < cm.alpha[LinkClass.HCA]

    def test_dense_tables(self):
        cm = CostModel()
        a = cm.alpha_by_class()
        b = cm.beta_by_class()
        for cls in LinkClass:
            assert a[int(cls)] == cm.alpha[cls]
            assert b[int(cls)] == cm.beta[cls]


class TestOverrides:
    def test_partial_override_merges(self):
        cm = CostModel(beta={LinkClass.HCA: 1.0 / 1e9})
        assert cm.beta[LinkClass.HCA] == 1.0 / 1e9
        assert cm.beta[LinkClass.SMEM] == DEFAULT_BETA[LinkClass.SMEM]

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            CostModel(beta={LinkClass.HCA: 0.0})
        with pytest.raises(ValueError):
            CostModel(alpha={LinkClass.HCA: -1.0})
        with pytest.raises(ValueError):
            CostModel(copy_beta=-1.0)


class TestCopyCost:
    def test_zero_bytes_free(self):
        assert CostModel().copy_cost(0) == 0.0

    def test_linear_in_bytes(self):
        cm = CostModel()
        c1 = cm.copy_cost(1024)
        c2 = cm.copy_cost(2048)
        assert c2 - c1 == pytest.approx(1024 * cm.copy_beta)

    def test_describe_mentions_all_classes(self):
        text = CostModel().describe()
        for cls in LinkClass:
            assert cls.name in text
        assert "memcpy" in text
