"""Event-driven engine tests and barrier-engine cross-checks."""

import numpy as np
import pytest

from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.hierarchical import HierarchicalAllgather, contiguous_groups
from repro.collectives.linear import LinearGather
from repro.collectives.schedule import Schedule, Stage
from repro.mapping.initial import block_bunch, cyclic_scatter
from repro.simmpi.engine import TimingEngine
from repro.simmpi.eventsim import EventDrivenEngine, MAX_MESSAGE_OPS


@pytest.fixture(scope="module")
def engines(mid_cluster):
    return TimingEngine(mid_cluster), EventDrivenEngine(mid_cluster)


def one_stage(src, dst, units=None):
    src = np.asarray(src)
    units = np.ones(src.size) if units is None else np.asarray(units, dtype=float)
    return Stage(src=src, dst=dst, units=units)


class TestSingleMessageAgreement:
    def test_uncontended_message_costs_match(self, engines, mid_cluster):
        """With no sharing the two engines agree exactly."""
        barrier, event = engines
        M = np.arange(mid_cluster.n_cores)
        for dst in (1, 5, 9, 40):
            sched = Schedule(p=dst + 1, stages=[one_stage([0], [dst])])
            tb = barrier.evaluate(sched, M, 8192).total_seconds
            te = event.evaluate(sched, M, 8192).total_seconds
            assert te == pytest.approx(tb)

    def test_disjoint_messages_match(self, engines, mid_cluster):
        barrier, event = engines
        M = np.arange(mid_cluster.n_cores)
        sched = Schedule(p=18, stages=[one_stage([0, 16], [1, 17])])
        tb = barrier.evaluate(sched, M, 8192).total_seconds
        te = event.evaluate(sched, M, 8192).total_seconds
        assert te == pytest.approx(tb)


class TestPipelining:
    def test_engines_agree_within_sharing_bracket(self, engines, mid_cluster):
        """The engines differ only in sharing semantics (fair-share vs
        FIFO-serial), so totals stay within a small factor of each other
        — never orders of magnitude apart."""
        barrier, event = engines
        M = block_bunch(mid_cluster, 64)
        for alg in (RingAllgather(), RecursiveDoublingAllgather()):
            sched = alg.schedule(64)
            tb = barrier.evaluate(sched, M, 4096).total_seconds
            te = event.evaluate(sched, M, 4096).total_seconds
            assert 0.2 * tb <= te <= 5.0 * tb

    def test_linear_gather_serialises_identically(self, engines, mid_cluster):
        """All of a linear gather's messages share the root's links, so
        serial (event) and fair-share (barrier) end at a similar time."""
        barrier, event = engines
        M = block_bunch(mid_cluster, 8)
        sched = Schedule(p=8, stages=list(LinearGather().stages(8)))
        tb = barrier.evaluate(sched, M, 1 << 20).total_seconds
        te = event.evaluate(sched, M, 1 << 20).total_seconds
        assert te == pytest.approx(tb, rel=0.25)

    def test_finish_spread_positive_for_rings(self, engines, mid_cluster):
        _, event = engines
        M = block_bunch(mid_cluster, 64)
        res = event.evaluate(RingAllgather().schedule(64), M, 4096)
        assert res.finish_spread >= 0.0
        assert res.n_messages == 63 * 64


class TestConclusionsInvariant:
    def test_reordering_wins_under_both_engines(self, engines, mid_cluster):
        """The paper's headline result does not depend on the engine."""
        from repro.mapping.reorder import reorder_ranks

        barrier, event = engines
        D = mid_cluster.distance_matrix()
        L = cyclic_scatter(mid_cluster, 64)
        res = reorder_ranks("ring", L, D, rng=0)
        sched = RingAllgather().schedule(64)
        for eng in (barrier, event):
            base = eng.evaluate(sched, L, 1 << 16).total_seconds
            tuned = eng.evaluate(sched, res.mapping, 1 << 16).total_seconds
            assert tuned < base

    def test_hierarchical_supported(self, engines, mid_cluster):
        _, event = engines
        M = block_bunch(mid_cluster, 64)
        alg = HierarchicalAllgather(contiguous_groups(64, 8), "rd", "binomial")
        res = event.evaluate(alg.schedule(64), M, 1024)
        assert res.total_seconds > 0


class TestGuards:
    def test_op_limit(self, mid_cluster):
        event = EventDrivenEngine(mid_cluster)
        huge = Schedule(
            p=2,
            stages=[Stage(np.array([0]), np.array([1]), np.ones(1), repeat=MAX_MESSAGE_OPS + 1)],
        )
        with pytest.raises(ValueError, match="limit"):
            event.evaluate(huge, np.arange(2), 64)

    def test_mapping_length_checked(self, mid_cluster):
        event = EventDrivenEngine(mid_cluster)
        sched = Schedule(p=4, stages=[one_stage([0, 2], [1, 3])])
        with pytest.raises(ValueError):
            event.evaluate(sched, np.arange(2), 64)

    def test_bad_block_bytes(self, mid_cluster):
        event = EventDrivenEngine(mid_cluster)
        sched = Schedule(p=2, stages=[one_stage([0], [1])])
        with pytest.raises(ValueError):
            event.evaluate(sched, np.arange(2), 0)
