"""Property-based tests of the timing engine's cost-model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.schedule import Schedule, Stage
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine
from repro.topology.gpc import gpc_cluster
from repro.util.rng import make_rng

CLUSTER = gpc_cluster(8)  # 64 cores
ENGINE = TimingEngine(CLUSTER, CostModel())
RANKS = np.arange(CLUSTER.n_cores)


def random_stage(rng: np.random.Generator, n_msgs: int) -> Stage:
    src = rng.choice(CLUSTER.n_cores, size=n_msgs, replace=False)
    # derange destinations so no self-messages appear
    dst = np.roll(src, 1) if n_msgs > 1 else np.array([(src[0] + 1) % CLUSTER.n_cores])
    units = rng.integers(1, 8, size=n_msgs).astype(float)
    return Stage(src=src, dst=dst, units=units)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 24))
def test_more_bytes_never_faster(seed, n):
    """Message cost is monotone in the block size."""
    rng = make_rng(seed)
    stage = random_stage(rng, n)
    t_small = ENGINE.stage_time(stage, RANKS, 64.0).seconds
    t_big = ENGINE.stage_time(stage, RANKS, 4096.0).seconds
    assert t_big >= t_small


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 20))
def test_adding_messages_never_faster(seed, n):
    """A superset of messages can only increase (or keep) the stage time."""
    rng = make_rng(seed)
    stage = random_stage(rng, n + 2)
    sub = Stage(src=stage.src[:n], dst=stage.dst[:n], units=stage.units[:n])
    t_sub = ENGINE.stage_time(sub, RANKS, 1024.0).seconds
    t_all = ENGINE.stage_time(stage, RANKS, 1024.0).seconds
    assert t_all >= t_sub - 1e-15


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 20))
def test_cost_positive_and_finite(seed, n):
    rng = make_rng(seed)
    stage = random_stage(rng, n)
    t = ENGINE.stage_time(stage, RANKS, 1.0).seconds
    assert np.isfinite(t)
    assert t > 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_splitting_a_stage_never_slower_per_round(seed):
    """Two stages of half the messages each cost at least the single
    merged stage (the merged stage shares no more, and pays one overhead
    instead of two)."""
    rng = make_rng(seed)
    stage = random_stage(rng, 16)
    merged = ENGINE.stage_time(stage, RANKS, 2048.0).seconds
    a = Stage(src=stage.src[:8], dst=stage.dst[:8], units=stage.units[:8])
    b = Stage(src=stage.src[8:], dst=stage.dst[8:], units=stage.units[8:])
    split = (
        ENGINE.stage_time(a, RANKS, 2048.0).seconds
        + ENGINE.stage_time(b, RANKS, 2048.0).seconds
    )
    assert split >= merged - 1e-12


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6), k=st.integers(1, 6))
def test_repeat_equals_explicit_stages(seed, k):
    """`repeat=k` prices exactly like k identical stages in sequence."""
    rng = make_rng(seed)
    stage = random_stage(rng, 8)
    repeated = Stage(src=stage.src, dst=stage.dst, units=stage.units, repeat=k)
    sched_rep = Schedule(p=CLUSTER.n_cores, stages=[repeated])
    sched_exp = Schedule(
        p=CLUSTER.n_cores,
        stages=[Stage(src=stage.src, dst=stage.dst, units=stage.units) for _ in range(k)],
    )
    t_rep = ENGINE.evaluate(sched_rep, RANKS, 512.0).total_seconds
    t_exp = ENGINE.evaluate(sched_exp, RANKS, 512.0).total_seconds
    assert t_rep == pytest.approx(t_exp)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_node_translation_invariance(seed):
    """Shifting every message by a whole node (within one leaf) leaves the
    cost unchanged — nodes are identical and so are their attachments."""
    rng = make_rng(seed)
    cpn = CLUSTER.cores_per_node
    # build a stage confined to nodes 0..2, then shift to nodes 3..5
    src = rng.choice(3 * cpn, size=6, replace=False)
    dst = np.roll(src, 1)
    stage = Stage(src=src, dst=dst, units=np.ones(6))
    shifted = Stage(src=src + 3 * cpn, dst=dst + 3 * cpn, units=np.ones(6))
    t0 = ENGINE.stage_time(stage, RANKS, 4096.0).seconds
    t1 = ENGINE.stage_time(shifted, RANKS, 4096.0).seconds
    assert t0 == pytest.approx(t1)
