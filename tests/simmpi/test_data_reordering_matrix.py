"""Exhaustive small-scale reordering matrix: every algorithm x strategy.

The correctness suite property-tests individual combinations; this module
sweeps the full compatibility matrix at several communicator sizes so a
regression in any (algorithm, restoration) pairing is caught by name.
"""

import numpy as np
import pytest

from repro.collectives.allgather_bruck import BruckAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_rd_nonpow2 import FoldedRecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.correctness import RankReordering, execute_reordered_allgather
from repro.collectives.hierarchical import HierarchicalAllgather, contiguous_groups
from repro.collectives.multilevel import MultiLevelAllgather, socket_groups_for
from repro.util.rng import make_rng

EXPECTED = {
    "recursive-doubling": {"initcomm", "endshfl"},
    "recursive-doubling-folded": {"initcomm", "endshfl"},
    "bruck": {"initcomm", "endshfl"},
    "ring": {"initcomm", "endshfl", "inline"},
}


def make_alg(name, p):
    return {
        "recursive-doubling": RecursiveDoublingAllgather,
        "recursive-doubling-folded": FoldedRecursiveDoublingAllgather,
        "bruck": BruckAllgather,
        "ring": RingAllgather,
    }[name]()


def perm_reordering(p, seed):
    rng = make_rng(seed)
    return RankReordering(layout=np.arange(p), mapping=rng.permutation(p))


class TestCompatibilityMatrix:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    @pytest.mark.parametrize("strategy", ["initcomm", "endshfl", "inline"])
    @pytest.mark.parametrize("p", [8, 12])
    def test_cell(self, name, strategy, p):
        if name in ("recursive-doubling",) and p != 8:
            pytest.skip("power-of-two only")
        alg = make_alg(name, p)
        ro = perm_reordering(p, seed=p * 131 + len(name))
        expected = np.arange(p) * 1000003 + 7
        if strategy in EXPECTED[name]:
            out = execute_reordered_allgather(alg, ro, strategy)
            assert np.array_equal(out, np.broadcast_to(expected, (p, p)))
        else:
            with pytest.raises(ValueError):
                execute_reordered_allgather(alg, ro, strategy)

    @pytest.mark.parametrize("strategy", ["initcomm", "endshfl"])
    @pytest.mark.parametrize(
        "maker",
        [
            lambda p: HierarchicalAllgather(contiguous_groups(p, 4), "rd", "binomial"),
            lambda p: HierarchicalAllgather(contiguous_groups(p, 4), "ring", "linear"),
            lambda p: MultiLevelAllgather(socket_groups_for(p, 8, 4), "rd", "binomial"),
        ],
        ids=["hier-rd-binomial", "hier-ring-linear", "multilevel"],
    )
    def test_leader_schemes(self, strategy, maker):
        p = 16
        alg = maker(p)
        ro = perm_reordering(p, seed=17)
        out = execute_reordered_allgather(alg, ro, strategy)
        expected = np.arange(p) * 1000003 + 7
        assert np.array_equal(out, np.broadcast_to(expected, (p, p)))

    def test_identity_reordering_all_strategies(self):
        """The identity permutation is valid under every strategy."""
        ro = RankReordering.identity(np.arange(8))
        expected = np.arange(8) * 1000003 + 7
        for strategy in ("initcomm", "endshfl", "none"):
            out = execute_reordered_allgather(RecursiveDoublingAllgather(), ro, strategy)
            assert np.array_equal(out, np.broadcast_to(expected, (8, 8)))
