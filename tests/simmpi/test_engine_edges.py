"""Remaining engine edge paths: copies, breakdowns, degenerate inputs."""

import numpy as np
import pytest

from repro.collectives.schedule import Schedule, Stage
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine


def msg(src, dst, units=1.0):
    return Stage(src=np.array([src]), dst=np.array([dst]), units=np.array([units]))


class TestExtraCopyBytes:
    def test_extra_copy_added(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        sched = Schedule(p=2, stages=[msg(0, 1)])
        base = mid_engine.evaluate(sched, M, 1024).total_seconds
        with_copy = mid_engine.evaluate(sched, M, 1024, extra_copy_bytes=1 << 20).total_seconds
        assert with_copy - base == pytest.approx(
            mid_engine.cost.copy_cost(float(1 << 20)), rel=1e-9
        )

    def test_zero_copy_free(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        sched = Schedule(p=2, stages=[msg(0, 1)])
        a = mid_engine.evaluate(sched, M, 1024).total_seconds
        b = mid_engine.evaluate(sched, M, 1024, extra_copy_bytes=0.0).total_seconds
        assert a == b


class TestStageOverhead:
    def test_overhead_is_per_stage(self, mid_cluster):
        loud = TimingEngine(mid_cluster, CostModel(stage_overhead=1e-3))
        quiet = TimingEngine(mid_cluster, CostModel(stage_overhead=0.0))
        M = np.arange(mid_cluster.n_cores)
        sched = Schedule(p=2, stages=[msg(0, 1), msg(1, 0)])
        gap = (
            loud.evaluate(sched, M, 64).total_seconds
            - quiet.evaluate(sched, M, 64).total_seconds
        )
        assert gap == pytest.approx(2e-3)


class TestFractionalUnits:
    def test_rabenseifner_fractions_priced(self, mid_engine, mid_cluster):
        """Fractional units (Rabenseifner's halving) scale the bytes."""
        M = np.arange(mid_cluster.n_cores)
        half = Schedule(p=9, stages=[msg(0, 8, units=0.5)])
        full = Schedule(p=9, stages=[msg(0, 8, units=1.0)])
        t_half = mid_engine.evaluate(half, M, 1 << 20).total_seconds
        t_full = mid_engine.evaluate(full, M, 1 << 20).total_seconds
        assert t_half < t_full
        # the bandwidth component halves exactly
        cm = mid_engine.cost
        assert (t_full - t_half) == pytest.approx(
            (1 << 19) / 2.7e9, rel=0.05
        )


class TestResultObjects:
    def test_stage_timing_totals(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        sched = Schedule(
            p=2,
            stages=[Stage(np.array([0]), np.array([1]), np.ones(1), repeat=7, label="x")],
        )
        res = mid_engine.evaluate(sched, M, 64)
        st = res.stage_timings[0]
        assert st.total_seconds == pytest.approx(st.seconds * 7)
        assert st.repeat == 7
        assert res.total_seconds == pytest.approx(st.total_seconds)

    def test_max_link_load_reported(self, mid_engine, mid_cluster):
        M = np.arange(mid_cluster.n_cores)
        sched = Schedule(p=12, stages=[Stage(np.arange(4), np.arange(4) + 8, np.ones(4))])
        res = mid_engine.evaluate(sched, M, 1000)
        assert res.stage_timings[0].max_link_load_bytes == pytest.approx(4000.0)
