"""Data-executor invariant tests."""

import numpy as np
import pytest

from repro.collectives.schedule import make_stage
from repro.simmpi.data import DataExecutor, EMPTY, ScheduleExecutionError


class TestFill:
    def test_fill_and_slot(self):
        exe = DataExecutor(4)
        exe.fill(1, 2, 42)
        assert exe.slot(1, 2) == 42

    def test_empty_slot_raises(self):
        exe = DataExecutor(4)
        with pytest.raises(ScheduleExecutionError, match="never filled"):
            exe.slot(0, 0)

    def test_sentinel_payload_rejected(self):
        exe = DataExecutor(4)
        with pytest.raises(ValueError):
            exe.fill(0, 0, int(EMPTY))

    def test_fill_identity(self):
        exe = DataExecutor(3)
        exe.fill_identity()
        for r in range(3):
            assert exe.owned(r).sum() == 1
            assert exe.slot(r, r) == r * 1000003 + 7


class TestRunStage:
    def test_simple_copy(self):
        exe = DataExecutor(2)
        exe.fill_identity()
        exe.run_stage(make_stage([(0, 1, (0,)), (1, 0, (1,))]))
        assert exe.all_full()

    def test_unowned_send_raises(self):
        exe = DataExecutor(3)
        exe.fill_identity()
        with pytest.raises(ScheduleExecutionError, match="unowned"):
            exe.run_stage(make_stage([(0, 1, (2,))]))

    def test_corruption_raises(self):
        exe = DataExecutor(3)
        exe.fill(0, 0, 5)
        exe.fill(1, 0, 6)  # different value in the same slot id
        exe.fill(2, 2, 7)
        with pytest.raises(ScheduleExecutionError, match="corrupted"):
            exe.run_stage(make_stage([(0, 1, (0,))]))

    def test_consistent_redelivery_ok(self):
        exe = DataExecutor(3)
        exe.fill_identity()
        exe.run_stage(make_stage([(0, 1, (0,))]))
        exe.run_stage(make_stage([(0, 1, (0,))]))  # same value again: fine
        assert exe.slot(1, 0) == exe.slot(0, 0)

    def test_stage_snapshot_semantics(self):
        """A rank cannot forward data it receives in the same stage."""
        exe = DataExecutor(3)
        exe.fill_identity()
        with pytest.raises(ScheduleExecutionError, match="unowned"):
            exe.run_stage(make_stage([(0, 1, (0,)), (1, 2, (0,))]))

    def test_blockless_stage_rejected(self):
        from repro.collectives.schedule import Stage

        exe = DataExecutor(2)
        exe.fill_identity()
        stage = Stage(src=np.array([0]), dst=np.array([1]), units=np.array([1.0]))
        with pytest.raises(ScheduleExecutionError, match="no block lists"):
            exe.run_stage(stage)


class TestPostconditions:
    def test_assert_allgather_complete_detects_gap(self):
        exe = DataExecutor(2)
        exe.fill_identity()
        with pytest.raises(ScheduleExecutionError):
            exe.assert_allgather_complete()

    def test_assert_allgather_complete_passes(self):
        exe = DataExecutor(2)
        exe.fill_identity()
        exe.run_stage(make_stage([(0, 1, (0,)), (1, 0, (1,))]))
        exe.assert_allgather_complete()

    def test_custom_slot_count(self):
        exe = DataExecutor(4, n_slots=1)
        exe.fill(0, 0, 99)
        exe.run(iter([make_stage([(0, r, (0,)) for r in range(1, 4)])]))
        assert all(exe.slot(r, 0) == 99 for r in range(4))
