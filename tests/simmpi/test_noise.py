"""Failure-injection and jitter-robustness tests."""

import numpy as np
import pytest

from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.schedule import Schedule, Stage
from repro.mapping.initial import block_bunch, cyclic_scatter
from repro.mapping.reorder import reorder_ranks
from repro.simmpi.engine import TimingEngine
from repro.simmpi.noise import (
    JitterResult,
    degrade_links,
    degrade_node_hca,
    degrade_random_cables,
    evaluate_with_jitter,
    no_degradation,
)


def one_msg(src, dst):
    p = max(src, dst) + 1
    return Schedule(p=p, stages=[Stage(np.array([src]), np.array([dst]), np.ones(1))])


class TestDegradationBuilders:
    def test_identity(self, mid_cluster):
        scale = no_degradation(mid_cluster)
        assert scale.shape == (mid_cluster.n_links,)
        assert np.all(scale == 1.0)

    def test_degrade_specific_links(self, mid_cluster):
        scale = degrade_links(mid_cluster, [3, 7], 4.0)
        assert scale[3] == 4.0 and scale[7] == 4.0
        assert scale.sum() == mid_cluster.n_links + 2 * 3.0

    def test_validation(self, mid_cluster):
        with pytest.raises(ValueError):
            degrade_links(mid_cluster, [0], 0.5)
        with pytest.raises(ValueError):
            degrade_links(mid_cluster, [mid_cluster.n_links], 2.0)
        with pytest.raises(ValueError):
            degrade_node_hca(mid_cluster, [99], 2.0)
        with pytest.raises(ValueError):
            degrade_random_cables(mid_cluster, 1.5, 2.0)

    def test_random_cables_only_touch_network(self, mid_cluster):
        scale = degrade_random_cables(mid_cluster, 0.25, 3.0, rng=1)
        degraded = np.flatnonzero(scale > 1.0)
        assert degraded.size > 0
        assert degraded.max() < mid_cluster.network.n_links

    def test_numpy_integer_inputs_accepted(self, mid_cluster):
        """Link/node ids and link counts often arrive as numpy scalars."""
        ids = np.array([3, 7], dtype=np.int64)
        scale = degrade_links(mid_cluster, ids, 4.0)
        assert scale[3] == 4.0 and scale[7] == 4.0
        nodes = np.array([1], dtype=np.int32)
        scale = degrade_node_hca(mid_cluster, nodes, 2.0)
        assert np.flatnonzero(scale > 1.0).size == 2

    def test_random_cables_numpy_link_count(self, mid_cluster, monkeypatch):
        """n_links as a numpy integer must not break Generator.choice."""
        monkeypatch.setattr(
            mid_cluster.network, "n_links", np.int64(mid_cluster.network.n_links)
        )
        scale = degrade_random_cables(mid_cluster, 0.25, 3.0, rng=1)
        assert np.flatnonzero(scale > 1.0).size > 0

    def test_seed_reproducibility(self, mid_cluster):
        """Same seed, same degradation vector — for every builder."""
        for build in (
            lambda r: degrade_random_cables(mid_cluster, 0.3, 2.5, rng=r),
            lambda r: degrade_links(mid_cluster, [1, 2], 2.0),
            lambda r: degrade_node_hca(mid_cluster, [2], 3.0),
        ):
            assert np.array_equal(build(7), build(7))
        a = degrade_random_cables(mid_cluster, 0.3, 2.5, rng=7)
        b = degrade_random_cables(mid_cluster, 0.3, 2.5, rng=8)
        assert not np.array_equal(a, b)

    def test_range_errors(self, mid_cluster):
        with pytest.raises(ValueError, match="out of range"):
            degrade_node_hca(mid_cluster, [mid_cluster.n_nodes], 2.0)
        with pytest.raises(ValueError, match="out of range"):
            degrade_node_hca(mid_cluster, [-1], 2.0)
        with pytest.raises(ValueError, match="factor"):
            degrade_node_hca(mid_cluster, [0], 0.25)
        with pytest.raises(ValueError, match="fraction"):
            degrade_random_cables(mid_cluster, -0.1, 2.0)
        with pytest.raises(ValueError, match="factor"):
            degrade_random_cables(mid_cluster, 0.5, 0.5)


class TestDegradedEngine:
    def test_degraded_hca_slows_that_node(self, mid_cluster):
        scale = degrade_node_hca(mid_cluster, [1], 8.0)
        clean = TimingEngine(mid_cluster)
        hurt = TimingEngine(mid_cluster, link_beta_scale=scale)
        M = np.arange(mid_cluster.n_cores)
        # traffic into node 1 slows 8x (bandwidth regime)
        t_clean = clean.evaluate(one_msg(0, 8), M, 1 << 20).total_seconds
        t_hurt = hurt.evaluate(one_msg(0, 8), M, 1 << 20).total_seconds
        assert t_hurt > 4 * t_clean
        # unrelated traffic is untouched
        t2c = clean.evaluate(one_msg(16, 24), M, 1 << 20).total_seconds
        t2h = hurt.evaluate(one_msg(16, 24), M, 1 << 20).total_seconds
        assert t2h == pytest.approx(t2c)

    def test_scale_shape_checked(self, mid_cluster):
        with pytest.raises(ValueError, match="shape"):
            TimingEngine(mid_cluster, link_beta_scale=np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            TimingEngine(mid_cluster, link_beta_scale=np.zeros(mid_cluster.n_links))

    def test_straggler_node_drags_the_collective(self, mid_cluster):
        """One retrained HCA slows the whole barrier-model allgather —
        the classic straggler effect."""
        scale = degrade_node_hca(mid_cluster, [3], 8.0)
        clean = TimingEngine(mid_cluster)
        hurt = TimingEngine(mid_cluster, link_beta_scale=scale)
        M = block_bunch(mid_cluster, 64)
        sched = RecursiveDoublingAllgather().schedule(64)
        assert (
            hurt.evaluate(sched, M, 4096).total_seconds
            > 1.5 * clean.evaluate(sched, M, 4096).total_seconds
        )


class TestJitter:
    def test_zero_sigma_is_deterministic(self, mid_engine, mid_cluster):
        sched = RingAllgather().schedule(16)
        M = block_bunch(mid_cluster, 16)
        res = evaluate_with_jitter(mid_engine, sched, M, 1024, sigma=0.0, n_trials=5)
        exact = mid_engine.evaluate(sched, M, 1024).total_seconds
        assert res.std_seconds == pytest.approx(0.0, abs=1e-15)
        # sigma=0 reproduces the deterministic total up to the per-stage
        # overhead bookkeeping
        assert res.mean_seconds == pytest.approx(exact, rel=0.05)

    def test_distribution_fields(self, mid_engine, mid_cluster):
        sched = RingAllgather().schedule(16)
        M = block_bunch(mid_cluster, 16)
        res = evaluate_with_jitter(mid_engine, sched, M, 1024, sigma=0.3, n_trials=20, rng=1)
        assert isinstance(res, JitterResult)
        assert res.min_seconds <= res.mean_seconds <= res.max_seconds
        assert res.std_seconds > 0
        assert res.n_trials == 20

    def test_validation(self, mid_engine, mid_cluster):
        sched = RingAllgather().schedule(8)
        M = block_bunch(mid_cluster, 8)
        with pytest.raises(ValueError):
            evaluate_with_jitter(mid_engine, sched, M, 64, sigma=-1)
        with pytest.raises(ValueError):
            evaluate_with_jitter(mid_engine, sched, M, 64, n_trials=0)

    def test_fixed_seed_determinism(self, mid_engine, mid_cluster):
        sched = RingAllgather().schedule(16)
        M = block_bunch(mid_cluster, 16)
        a = evaluate_with_jitter(mid_engine, sched, M, 1024, sigma=0.3, n_trials=15, rng=5)
        b = evaluate_with_jitter(mid_engine, sched, M, 1024, sigma=0.3, n_trials=15, rng=5)
        assert a == b  # frozen dataclass: full field-wise equality
        c = evaluate_with_jitter(mid_engine, sched, M, 1024, sigma=0.3, n_trials=15, rng=6)
        assert a != c

    def test_zero_sigma_collapses_to_engine_latency(self, mid_engine, mid_cluster):
        """sigma=0 makes every trial the deterministic engine latency."""
        sched = RingAllgather().schedule(16)
        M = block_bunch(mid_cluster, 16)
        res = evaluate_with_jitter(mid_engine, sched, M, 1024, sigma=0.0, n_trials=3)
        exact = mid_engine.evaluate(sched, M, 1024).total_seconds
        assert res.min_seconds == res.max_seconds == pytest.approx(res.mean_seconds)
        # per-stage resummation only changes float associativity
        assert res.mean_seconds == pytest.approx(exact, rel=1e-12)

    def test_spread_widens_with_sigma(self, mid_engine, mid_cluster):
        """max - min spread is non-decreasing in sigma at a fixed seed."""
        sched = RingAllgather().schedule(16)
        M = block_bunch(mid_cluster, 16)
        spreads = []
        for sigma in (0.0, 0.1, 0.3, 0.6):
            res = evaluate_with_jitter(
                mid_engine, sched, M, 1024, sigma=sigma, n_trials=25, rng=4
            )
            spreads.append(res.max_seconds - res.min_seconds)
        assert spreads == sorted(spreads)
        assert spreads[0] == pytest.approx(0.0, abs=1e-15)
        assert spreads[-1] > spreads[1] > 0

    def test_reordering_win_survives_noise(self, mid_engine, mid_cluster, mid_D):
        """The paper's cyclic+ring win is far outside timing variance."""
        L = cyclic_scatter(mid_cluster, 64)
        res = reorder_ranks("ring", L, mid_D, rng=0)
        sched = RingAllgather().schedule(64)
        base = evaluate_with_jitter(mid_engine, sched, L, 1 << 16, sigma=0.25, n_trials=20, rng=2)
        tuned = evaluate_with_jitter(
            mid_engine, sched, res.mapping, 1 << 16, sigma=0.25, n_trials=20, rng=3
        )
        assert tuned.max_seconds < base.min_seconds
