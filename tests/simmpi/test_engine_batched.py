"""Batched multi-size pricing vs. the per-size reference path.

``TimingEngine.evaluate_sizes`` must reproduce ``evaluate`` for every
registered algorithm, communicator size, mapping and block size — the
batched pipeline is an optimisation, never a semantic change.
"""

import numpy as np
import pytest

from repro.collectives.registry import make_algorithm, registered_algorithm_names
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine
from repro.topology.gpc import gpc_cluster
from repro.util.rng import make_rng

CLUSTER = gpc_cluster(4)  # 32 cores
ENGINE = TimingEngine(CLUSTER, CostModel())

#: 1 B .. 256 KiB, deliberately including non-powers-of-two.
SIZES = [1.0, 7.0, 256.0, 2048.0, 5000.0, 65536.0, 262144.0]

P_VALUES = [4, 8, 16, 32]


def _supported(name: str, p: int):
    alg = make_algorithm(name)
    try:
        alg.validate_p(p)
    except ValueError:
        return None
    return alg


def _mappings(p: int, seed: int):
    rng = make_rng(seed)
    return [
        np.arange(p, dtype=np.int64),
        rng.permutation(CLUSTER.n_cores)[:p].astype(np.int64),
    ]


@pytest.mark.parametrize("p", P_VALUES)
@pytest.mark.parametrize("name", registered_algorithm_names())
def test_evaluate_sizes_matches_per_size(name, p):
    alg = _supported(name, p)
    if alg is None:
        pytest.skip(f"{name} rejects p={p}")
    sched = alg.schedule(p)
    for M in _mappings(p, seed=p):
        batch = ENGINE.evaluate_sizes(sched, M, SIZES)
        for k, bb in enumerate(SIZES):
            ref = ENGINE.evaluate(sched, M, bb)
            assert batch.total_seconds[k] == pytest.approx(
                ref.total_seconds, rel=1e-9
            ), f"{name} p={p} size={bb}"
            assert batch.local_copy_seconds[k] == pytest.approx(
                ref.local_copy_seconds, rel=1e-9
            )


@pytest.mark.parametrize("name", ["ring", "recursive-doubling"])
def test_batch_result_expansion_matches_stage_timings(name):
    """``BatchTimingResult.result(k)`` rebuilds the per-stage breakdown."""
    p = 16
    sched = make_algorithm(name).schedule(p)
    M = np.arange(p, dtype=np.int64)
    batch = ENGINE.evaluate_sizes(sched, M, SIZES)
    for k, bb in enumerate(SIZES):
        ref = ENGINE.evaluate(sched, M, bb)
        got = batch.result(k)
        assert got.total_seconds == pytest.approx(ref.total_seconds, rel=1e-9)
        assert len(got.stage_timings) == len(ref.stage_timings)
        for a, b in zip(got.stage_timings, ref.stage_timings):
            assert a.label == b.label
            assert a.repeat == b.repeat
            assert a.seconds == pytest.approx(b.seconds, rel=1e-9)
            assert a.max_link_load_bytes == pytest.approx(
                b.max_link_load_bytes, rel=1e-9
            )


def test_extra_copy_bytes_agrees():
    """The endShfl shuffle surcharge is priced identically in both paths."""
    p = 16
    sched = make_algorithm("ring").schedule(p)
    M = np.arange(p, dtype=np.int64)
    extra = 12345.0
    batch = ENGINE.evaluate_sizes(sched, M, SIZES, extra_copy_bytes=extra)
    for k, bb in enumerate(SIZES):
        ref = ENGINE.evaluate(sched, M, bb, extra_copy_bytes=extra)
        assert batch.total_seconds[k] == pytest.approx(ref.total_seconds, rel=1e-9)


@pytest.mark.parametrize("name", registered_algorithm_names())
def test_degraded_links_still_agree(name):
    """Per-link beta scaling (degraded-link studies) flows through the
    batched tables exactly as through the per-size path."""
    p = 16
    alg = _supported(name, p)
    if alg is None:
        pytest.skip(f"{name} rejects p={p}")
    rng = make_rng(42)
    scale = np.ones(CLUSTER.n_links)
    degraded = rng.choice(CLUSTER.n_links, size=CLUSTER.n_links // 8, replace=False)
    scale[degraded] = 4.0  # quarter bandwidth on a random eighth of links
    eng = TimingEngine(CLUSTER, CostModel(), link_beta_scale=scale)
    sched = alg.schedule(p)
    for M in _mappings(p, seed=1):
        batch = eng.evaluate_sizes(sched, M, SIZES)
        for k, bb in enumerate(SIZES):
            ref = eng.evaluate(sched, M, bb)
            assert batch.total_seconds[k] == pytest.approx(
                ref.total_seconds, rel=1e-9
            ), f"{name} size={bb}"


def test_pricing_cache_shares_tables():
    """Equal (schedule, mapping) pairs hit one cached pricing object."""
    p = 16
    eng = TimingEngine(CLUSTER, CostModel())
    alg = make_algorithm("ring")
    M = np.arange(p, dtype=np.int64)
    first = eng.pricing(alg.schedule(p), M)
    again = eng.pricing(alg.schedule(p), np.array(M))  # rebuilt schedule + copy
    assert again is first


def test_sizes_validation():
    p = 8
    sched = make_algorithm("ring").schedule(p)
    M = np.arange(p, dtype=np.int64)
    with pytest.raises(ValueError, match="non-empty"):
        ENGINE.evaluate_sizes(sched, M, [])
    with pytest.raises(ValueError, match="positive"):
        ENGINE.evaluate_sizes(sched, M, [1024.0, 0.0])
