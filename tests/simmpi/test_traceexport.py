"""Chrome-trace export tests."""

import json

import pytest

from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.mapping.initial import block_bunch
from repro.simmpi.eventsim import EventDrivenEngine
from repro.simmpi.traceexport import (
    export_chrome_trace,
    record_timeline,
    to_chrome_trace,
)


class TestRecordTimeline:
    def test_one_event_per_message(self, mid_cluster):
        sched = RecursiveDoublingAllgather().schedule(16)
        L = block_bunch(mid_cluster, 16)
        events = record_timeline(mid_cluster, sched, L, 1024)
        assert len(events) == sched.n_messages()

    def test_intervals_well_formed(self, mid_cluster):
        sched = RingAllgather().schedule(16)
        L = block_bunch(mid_cluster, 16)
        for ev in record_timeline(mid_cluster, sched, L, 1024):
            assert ev.finish > ev.start >= 0
            assert ev.nbytes > 0
            assert ev.channel in ("smem", "qpi", "leaf", "line", "spine")

    def test_recording_matches_plain_engine(self, mid_cluster):
        """Recording must not perturb the timing."""
        sched = RecursiveDoublingAllgather().schedule(32)
        L = block_bunch(mid_cluster, 32)
        plain = EventDrivenEngine(mid_cluster).evaluate(sched, L, 4096).total_seconds
        events = record_timeline(mid_cluster, sched, L, 4096)
        assert max(ev.finish for ev in events) == pytest.approx(plain)

    def test_stage_ordering_respected(self, mid_cluster):
        """A rank's stage-s message starts after its stage-(s-1) work."""
        sched = RecursiveDoublingAllgather().schedule(16)
        L = block_bunch(mid_cluster, 16)
        events = record_timeline(mid_cluster, sched, L, 1024)
        by_rank = {}
        for ev in events:
            by_rank.setdefault(ev.src_rank, []).append(ev)
        for evs in by_rank.values():
            stages = [ev.label for ev in evs]
            assert stages == sorted(stages)  # rd:stage0 < rd:stage1 < ...


class TestChromeFormat:
    def test_schema(self, mid_cluster):
        sched = RingAllgather().schedule(8)
        L = block_bunch(mid_cluster, 8)
        doc = to_chrome_trace(record_timeline(mid_cluster, sched, L, 1024))
        assert "traceEvents" in doc
        ev = doc["traceEvents"][0]
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            assert key in ev
        assert ev["ph"] == "X"
        assert ev["dur"] > 0

    def test_export_roundtrip(self, mid_cluster, tmp_path):
        sched = RingAllgather().schedule(8)
        L = block_bunch(mid_cluster, 8)
        path = export_chrome_trace(mid_cluster, sched, L, 1024, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == sched.n_messages()

    def test_tracks_are_source_ranks(self, mid_cluster):
        sched = RingAllgather().schedule(8)
        L = block_bunch(mid_cluster, 8)
        doc = to_chrome_trace(record_timeline(mid_cluster, sched, L, 1024))
        tids = {ev["tid"] for ev in doc["traceEvents"]}
        assert tids == set(range(8))
