"""Schedule profiler tests."""

import pytest

from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_bruck import BruckAllgather
from repro.mapping.initial import block_bunch, cyclic_scatter
from repro.simmpi.profiler import profile_schedule
from repro.topology.cluster import LinkClass


class TestProfile:
    def test_totals_match_engine(self, mid_engine, mid_cluster):
        sched = RecursiveDoublingAllgather().schedule(64)
        L = block_bunch(mid_cluster, 64)
        prof = profile_schedule(mid_engine, sched, L, 1024.0)
        direct = mid_engine.evaluate(sched, L, 1024.0).total_seconds
        assert prof.total_seconds == pytest.approx(direct)

    def test_bruck_rotation_included(self, mid_engine, mid_cluster):
        sched = BruckAllgather().schedule(64)
        L = block_bunch(mid_cluster, 64)
        prof = profile_schedule(mid_engine, sched, L, 1024.0)
        direct = mid_engine.evaluate(sched, L, 1024.0).total_seconds
        assert prof.total_seconds == pytest.approx(direct)

    def test_byte_conservation(self, mid_engine, mid_cluster):
        """Every message crosses >= 4 links, so class totals exceed payload."""
        sched = RingAllgather().schedule(64)
        L = block_bunch(mid_cluster, 64)
        prof = profile_schedule(mid_engine, sched, L, 100.0)
        payload = sched.total_units() * 100.0
        assert sum(prof.bytes_by_class.values()) >= 4 * payload

    def test_cyclic_ring_is_network_dominated(self, mid_engine, mid_cluster):
        """The §VI-A1 diagnosis: cyclic+ring hammers HCA/network links."""
        sched = RingAllgather().schedule(64)
        cyc = profile_schedule(mid_engine, sched, cyclic_scatter(mid_cluster, 64), 1024.0)
        blk = profile_schedule(mid_engine, sched, block_bunch(mid_cluster, 64), 1024.0)
        assert cyc.bytes_by_class["HCA"] > 5 * blk.bytes_by_class["HCA"]

    def test_hot_links_ranked(self, mid_engine, mid_cluster):
        sched = RingAllgather().schedule(64)
        prof = profile_schedule(
            mid_engine, sched, cyclic_scatter(mid_cluster, 64), 1024.0, top_links=4
        )
        loads = [hl.bytes for hl in prof.hot_links]
        assert loads == sorted(loads, reverse=True)
        assert len(prof.hot_links) == 4

    def test_hot_link_descriptions(self, mid_engine, mid_cluster):
        sched = RingAllgather().schedule(64)
        prof = profile_schedule(mid_engine, sched, cyclic_scatter(mid_cluster, 64), 1024.0)
        for hl in prof.hot_links:
            assert hl.description  # every link has a human name
            assert hl.link_class in LinkClass.__members__

    def test_report_text(self, mid_engine, mid_cluster):
        sched = RecursiveDoublingAllgather().schedule(64)
        prof = profile_schedule(mid_engine, sched, block_bunch(mid_cluster, 64), 64.0)
        text = prof.report()
        assert "bytes by channel class" in text
        assert "dominant stage" in text

    def test_dominant_accessors(self, mid_engine, mid_cluster):
        sched = RecursiveDoublingAllgather().schedule(64)
        prof = profile_schedule(mid_engine, sched, block_bunch(mid_cluster, 64), 4096.0)
        assert prof.dominant_class in prof.bytes_by_class
        label, secs = prof.dominant_stage
        assert secs == max(s for _, s in prof.stage_seconds)
