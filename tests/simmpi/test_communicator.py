"""Session / VirtualComm facade tests (paper §IV workflow)."""

import numpy as np
import pytest

from repro.simmpi.communicator import Session
from repro.topology.gpc import small_cluster


@pytest.fixture()
def session():
    return Session(small_cluster(), layout="cyclic-bunch")


class TestSession:
    def test_named_layout(self, session):
        assert session.layout.size == 16

    def test_explicit_layout(self):
        cl = small_cluster()
        sess = Session(cl, layout=np.arange(8), n_processes=8)
        assert sess.comm_world().size == 8

    def test_layout_length_checked(self):
        with pytest.raises(ValueError):
            Session(small_cluster(), layout=np.arange(8), n_processes=16)


class TestVirtualComm:
    def test_world_identity(self, session):
        world = session.comm_world()
        assert world.size == 16
        assert not world.is_reordered()
        assert world.core_of_rank(0) == int(session.layout[0])

    def test_reordered_keeps_core_set(self, session):
        ring = session.comm_world().reordered("ring")
        assert ring.is_reordered() or True  # may be identity on tiny systems
        cores = sorted(ring.core_of_rank(r) for r in range(16))
        assert cores == sorted(session.layout.tolist())

    def test_info_key_disables_reordering(self, session):
        world = session.comm_world(info={"topo_reorder": "false"})
        assert world.reordered("ring") is world

    def test_allgather_data_ordered(self, session):
        ring = session.comm_world().reordered("ring")
        out = ring.allgather_data(block_bytes=1 << 16)
        expected = np.arange(16) * 1000003 + 7
        assert np.array_equal(out, np.broadcast_to(expected, (16, 16)))

    def test_allgather_data_rd_initcomm(self, session):
        comm = session.comm_world().reordered("recursive-doubling")
        out = comm.allgather_data(strategy="initcomm", block_bytes=64)
        expected = np.arange(16) * 1000003 + 7
        assert np.array_equal(out, np.broadcast_to(expected, (16, 16)))

    def test_latency_improves_for_cyclic_ring(self, session):
        world = session.comm_world()
        ring = world.reordered("ring")
        base = world.allgather_latency(1 << 16)
        tuned = ring.allgather_latency(1 << 16)
        assert tuned <= base

    def test_rank_range_checked(self, session):
        with pytest.raises(ValueError):
            session.comm_world().core_of_rank(16)

    def test_repr(self, session):
        assert "VirtualComm" in repr(session.comm_world().reordered("ring"))


class TestSplit:
    def test_split_by_node(self, session):
        world = session.comm_world()
        comms = world.node_comms()
        assert len(comms) == 4
        for node, comm in comms.items():
            assert comm.size == 4
            cores = [comm.core_of_rank(r) for r in range(comm.size)]
            assert {int(session.cluster.node_of(c)) for c in cores} == {node}

    def test_split_preserves_rank_order(self, session):
        world = session.comm_world()
        comms = world.split([r % 2 for r in range(world.size)])
        even = comms[0]
        # colour-0 members are world ranks 0,2,4,... in order
        expected = [world.core_of_rank(r) for r in range(0, world.size, 2)]
        assert [even.core_of_rank(r) for r in range(even.size)] == expected

    def test_split_of_reordered_comm_uses_current_binding(self, session):
        ring = session.comm_world().reordered("ring")
        comms = ring.node_comms()
        all_cores = sorted(
            c for comm in comms.values() for c in
            (comm.core_of_rank(r) for r in range(comm.size))
        )
        assert all_cores == sorted(session.layout.tolist())

    def test_subcomm_collectives_work(self, session):
        world = session.comm_world()
        sub = world.node_comms()[0]
        out = sub.allgather_data()
        assert out.shape == (4, 4)
        t = sub.allgather_latency(4096)
        assert t > 0

    def test_colors_shape_checked(self, session):
        with pytest.raises(ValueError):
            session.comm_world().split([0, 1])


class TestBcastFacade:
    def test_bcast_latency_default(self, session):
        t = session.comm_world().bcast_latency(4096)
        assert t > 0

    def test_bcast_latency_reordered_not_worse_much(self, session):
        world = session.comm_world()
        base = world.bcast_latency(4096)
        tuned = world.bcast_latency(4096, kind="heuristic")
        assert tuned <= base * 1.05

    def test_bcast_evaluator_cached_on_session(self, session):
        world = session.comm_world()
        world.bcast_latency(1024)
        first = session._bcast_evaluator
        world.bcast_latency(2048)
        assert session._bcast_evaluator is first


class TestExplicitAlgorithm:
    def test_latency_with_custom_algorithm(self, session):
        from repro.collectives import BruckAllgather

        world = session.comm_world()
        t = world.allgather_latency(64, algorithm=BruckAllgather())
        assert t > 0

    def test_data_with_custom_algorithm_endshfl(self, session):
        import numpy as np
        from repro.collectives import BruckAllgather

        comm = session.comm_world().reordered("bruck")
        out = comm.allgather_data(strategy="endshfl", algorithm=BruckAllgather())
        expected = np.arange(16) * 1000003 + 7
        assert np.array_equal(out, np.broadcast_to(expected, (16, 16)))
