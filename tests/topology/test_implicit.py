"""ImplicitDistances: bit-identical to the dense oracle, O(1) state."""

import numpy as np
import pytest

from repro.topology.cluster import (
    DEFAULT_DISTANCE_WEIGHTS,
    ClusterTopology,
    LinkClass,
)
from repro.topology.implicit import ImplicitDistances


@pytest.fixture(scope="module")
def impl(mid_cluster):
    return mid_cluster.implicit_distances()


class TestRowOracle:
    def test_full_rows_match_dense(self, impl, mid_cluster, mid_D):
        for core in (0, 3, 17, mid_cluster.n_cores - 1):
            row = impl.row(core)
            assert row.dtype == np.float32
            assert np.array_equal(row, mid_D[core])

    def test_column_subset(self, impl, mid_D):
        cols = np.array([0, 5, 9, 63])
        assert np.array_equal(impl.row(7, cols), mid_D[7, cols])
        assert np.array_equal(impl[7, cols], mid_D[7, cols])

    def test_scalar_and_row_getitem(self, impl, mid_D):
        assert impl[3, 42] == mid_D[3, 42]
        assert np.array_equal(impl[12], mid_D[12])

    def test_dense_is_the_oracle(self, impl, mid_D):
        assert np.array_equal(impl.dense(), mid_D)

    def test_shape_and_dtype(self, impl, mid_cluster):
        n = mid_cluster.n_cores
        assert impl.shape == (n, n)
        assert impl.ndim == 2
        assert impl.dtype == np.float32


class TestCoords:
    def test_coords_match_cluster_queries(self, impl, mid_cluster):
        cores = np.arange(mid_cluster.n_cores)
        c = impl.coords(cores)
        assert np.array_equal(c.node, mid_cluster.node_of(cores))
        assert np.array_equal(c.gsock, mid_cluster.global_socket_of(cores))
        assert np.array_equal(c.leaf, mid_cluster.leaf_of_node(c.node))

    def test_ladder_orders_levels(self, impl):
        ladder = impl.ladder()
        assert ladder.shape == (6,)
        assert ladder[0] == 0.0
        assert np.all(np.diff(ladder) > 0)
        assert impl.has_strict_ladder
        assert impl.supports_vectorized_placement

    def test_ladder_values_appear_in_dense(self, impl, mid_D):
        # Every distinct distance the dense matrix holds is a ladder level.
        assert set(np.unique(mid_D)) <= set(impl.ladder().astype(np.float32))


class TestFingerprint:
    def test_matches_cluster(self, impl, mid_cluster):
        assert impl.fingerprint == mid_cluster.fingerprint()
        assert isinstance(impl.fingerprint, str)

    def test_collapsed_weights_disable_vectorised_path(self):
        weights = dict(DEFAULT_DISTANCE_WEIGHTS)
        weights[LinkClass.QPI] = 0.0  # same-socket == same-node distance
        cluster = ClusterTopology(n_nodes=4, distance_weights=weights)
        impl = ImplicitDistances(cluster)
        assert not impl.has_strict_ladder
        assert not impl.supports_vectorized_placement
        # ...but the row oracle still matches the dense matrix exactly.
        D = cluster.distance_matrix()
        assert np.array_equal(impl.row(0), D[0])
