"""Simulated distance extraction tests (paper §IV / Fig. 7a)."""

import numpy as np
import pytest

from repro.topology.distances import DistanceExtractor


class TestLocate:
    def test_position_fields(self, mid_cluster):
        ex = DistanceExtractor(mid_cluster)
        pos = ex.locate(13)
        assert pos.core == 13
        assert pos.node == 1
        assert pos.local_core == 5
        assert pos.socket == 1
        assert pos.leaf == int(mid_cluster.leaf_of_node(1))
        assert pos.line == mid_cluster.network.line_of_leaf(pos.leaf)

    def test_out_of_range(self, mid_cluster):
        with pytest.raises(ValueError):
            DistanceExtractor(mid_cluster).locate(mid_cluster.n_cores)


class TestExtract:
    def test_matches_cluster_matrix(self, mid_cluster):
        ex = DistanceExtractor(mid_cluster)
        D, report = ex.extract()
        assert np.allclose(D, mid_cluster.distance_matrix())
        assert report.n_processes == mid_cluster.n_cores
        assert report.seconds > 0
        assert report.per_process_seconds == pytest.approx(
            report.seconds / report.n_processes
        )

    def test_subset_extraction(self, mid_cluster):
        ex = DistanceExtractor(mid_cluster)
        cores = [0, 9, 17]
        D, report = ex.extract(cores)
        assert D.shape == (3, 3)
        assert report.n_processes == 3
        full = mid_cluster.distance_matrix()
        for i, a in enumerate(cores):
            for j, b in enumerate(cores):
                assert D[i, j] == full[a, b]

    def test_positions_cover_all(self, tiny_cluster):
        ex = DistanceExtractor(tiny_cluster)
        positions = ex.gather_positions()
        assert [p.core for p in positions] == list(range(tiny_cluster.n_cores))

    def test_cost_grows_with_p(self, mid_cluster):
        """Extraction cost scales with the process count (Fig. 7a shape).

        Sub-millisecond wall clocks are noisy, so compare best-of-five
        timings with a 16x work gap (4 vs 64 processes)."""
        ex = DistanceExtractor(mid_cluster)
        small = min(ex.extract(list(range(4)))[1].seconds for _ in range(5))
        large = min(ex.extract(None)[1].seconds for _ in range(5))
        assert large > small
