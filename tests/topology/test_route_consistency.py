"""Cross-layer consistency: cluster routes vs the fat-tree's own routing.

The cluster precomputes the network segment of every node pair
(vectorised) while :meth:`FatTreeNetwork.route` computes it per call;
these must agree exactly, or congestion would be attributed to the wrong
cables.  Also checks endpoint-name round-trips for every network link.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.fattree import FatTreeConfig, FatTreeNetwork
from repro.topology.gpc import gpc_cluster, small_cluster
from repro.util.rng import make_rng


class TestNetRouteCongruence:
    @pytest.mark.parametrize("cluster_fn", [small_cluster, lambda: gpc_cluster(64)])
    def test_precomputed_matches_per_call(self, cluster_fn):
        cl = cluster_fn()
        net = cl.network
        npl = net.config.nodes_per_leaf
        rng = make_rng(0)
        pairs = rng.integers(0, cl.n_nodes, size=(200, 2))
        for na, nb in pairs:
            na, nb = int(na), int(nb)
            expect = net.route(na // npl, nb // npl, dst_node=nb)
            got = [int(x) for x in cl.net_routes[na, nb] if x >= 0]
            assert got == expect, (na, nb)

    def test_same_node_rows_empty(self, mid_cluster):
        n = mid_cluster.n_nodes
        diag = mid_cluster.net_routes[np.arange(n), np.arange(n)]
        assert np.all(diag == -1)

    @settings(max_examples=40, deadline=None)
    @given(na=st.integers(0, 511), nb=st.integers(0, 511))
    def test_gpc_scale_congruence(self, na, nb):
        cl = gpc_cluster(512)
        net = cl.network
        npl = net.config.nodes_per_leaf
        expect = net.route(na // npl, nb // npl, dst_node=nb)
        got = [int(x) for x in cl.net_routes[na, nb] if x >= 0]
        assert got == expect


class TestEndpointNames:
    def test_all_network_links_describable(self):
        net = FatTreeNetwork(FatTreeConfig(n_leaves=5, lines_per_core=3, spines_per_core=2))
        seen = set()
        for lid in range(net.n_links):
            a, b = net.endpoints(lid)
            assert a and b and a != b
            # (direction, endpoints) uniquely identifies a link
            key = (a, b, lid < net._ls_up0, lid)
            seen.add((a, b))
        # up and down variants give distinct ordered pairs
        assert len(seen) == net.n_links

    def test_route_endpoints_chain(self):
        """Consecutive links of a route share the intermediate switch.

        Endpoint names carry the parallel-cable index (``line0[1]``); the
        switch identity is the name with the cable tag stripped.
        """

        def switch(name):
            return name.split("[")[0]

        net = FatTreeNetwork(FatTreeConfig())
        for dst_leaf, dst_node in ((1, 40), (18, 545), (0, 5)):
            route = net.route(0, dst_leaf, dst_node=dst_node)
            hops = [net.endpoints(l) for l in route]
            for (a1, b1), (a2, b2) in zip(hops, hops[1:]):
                assert switch(b1) == switch(a2), hops
