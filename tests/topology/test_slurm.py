"""SLURM-style distribution parsing and layout tests."""

import numpy as np
import pytest

from repro.mapping.initial import (
    block_bunch,
    block_scatter,
    cyclic_bunch,
    cyclic_scatter,
)
from repro.topology.slurm import layout_from_distribution, parse_distribution


class TestParse:
    def test_basic_pairs(self):
        d = parse_distribution("block:cyclic")
        assert d.node_policy == "block"
        assert d.socket_policy == "cyclic"

    def test_default_socket_policy(self):
        assert parse_distribution("cyclic").socket_policy == "block"

    def test_plane(self):
        d = parse_distribution("plane=4:block")
        assert d.node_policy == "plane"
        assert d.plane_size == 4
        assert str(d) == "plane=4:block"

    def test_case_insensitive(self):
        assert parse_distribution("BLOCK:FCYCLIC").socket_policy == "fcyclic"

    @pytest.mark.parametrize(
        "bad", ["", "spiral", "block:weird", "a:b:c", "plane", "plane=x", "plane=0"]
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_distribution(bad)


class TestLayouts:
    def test_matches_named_layouts(self, mid_cluster):
        """The four paper layouts are special cases of the SLURM grammar."""
        p = 64
        cases = {
            "block:block": block_bunch,
            "block:fcyclic": block_scatter,
            "cyclic:block": cyclic_bunch,
            "cyclic:fcyclic": cyclic_scatter,
        }
        for spec, fn in cases.items():
            got = layout_from_distribution(mid_cluster, p, spec)
            assert np.array_equal(got, fn(mid_cluster, p)), spec

    def test_cyclic_equals_fcyclic_at_socket_level(self, mid_cluster):
        a = layout_from_distribution(mid_cluster, 32, "block:cyclic")
        b = layout_from_distribution(mid_cluster, 32, "block:fcyclic")
        assert np.array_equal(a, b)

    def test_plane_distribution(self, mid_cluster):
        # plane=2 over 8 nodes: ranks 0,1 -> node 0; 2,3 -> node 1; ...
        L = layout_from_distribution(mid_cluster, 32, "plane=2:block")
        nodes = mid_cluster.node_of(L)
        assert nodes[:4].tolist() == [0, 0, 1, 1]
        assert nodes[16:18].tolist() == [0, 0]  # wraps around

    def test_plane_full_subscription(self, mid_cluster):
        L = layout_from_distribution(mid_cluster, 64, "plane=4:block")
        assert sorted(L.tolist()) == list(range(64))

    def test_plane_overflow_detected(self, tiny_cluster):
        # plane=3 on 4-core nodes: 16 ranks over 4 nodes -> last plane
        # would need a 5th slot sequence that overflows
        with pytest.raises(ValueError, match="overflow|exceeds"):
            layout_from_distribution(tiny_cluster, 16, "plane=3:block")

    def test_injective(self, mid_cluster):
        for spec in ("block:block", "cyclic:fcyclic", "plane=2:cyclic"):
            L = layout_from_distribution(mid_cluster, 40, spec)
            assert np.unique(L).size == 40

    def test_bounds(self, tiny_cluster):
        with pytest.raises(ValueError):
            layout_from_distribution(tiny_cluster, 0, "block")
        with pytest.raises(ValueError):
            layout_from_distribution(tiny_cluster, 17, "block")
