"""Intra-node hardware model tests."""

import pytest

from repro.topology.hardware import MachineTopology


class TestMachineTopology:
    def test_gpc_node_shape(self):
        m = MachineTopology(n_sockets=2, cores_per_socket=4)
        assert m.n_cores == 8
        assert m.socket_of(0) == 0
        assert m.socket_of(3) == 0
        assert m.socket_of(4) == 1
        assert m.socket_of(7) == 1

    def test_cores_of_socket(self):
        m = MachineTopology(2, 4)
        assert list(m.cores_of_socket(0)) == [0, 1, 2, 3]
        assert list(m.cores_of_socket(1)) == [4, 5, 6, 7]

    def test_same_socket(self):
        m = MachineTopology(2, 4)
        assert m.same_socket(0, 3)
        assert not m.same_socket(3, 4)

    def test_hierarchy_level(self):
        m = MachineTopology(2, 4)
        assert m.hierarchy_level(2, 2) == 0
        assert m.hierarchy_level(0, 1) == 1
        assert m.hierarchy_level(0, 5) == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            MachineTopology(0, 4)
        with pytest.raises(ValueError):
            MachineTopology(2, 0)
        m = MachineTopology(2, 4)
        with pytest.raises(ValueError):
            m.socket_of(8)
        with pytest.raises(ValueError):
            m.cores_of_socket(2)

    def test_equality(self):
        assert MachineTopology(2, 4) == MachineTopology(2, 4)
        assert MachineTopology(2, 4) != MachineTopology(4, 2)


class TestObjectTree:
    def test_tree_structure(self):
        m = MachineTopology(2, 3)
        tree = m.object_tree()
        kinds = [obj.kind for obj in tree.walk()]
        assert kinds.count("Machine") == 1
        assert kinds.count("Package") == 2
        assert kinds.count("L3") == 2
        assert kinds.count("Core") == 6

    def test_cores_under_right_package(self):
        m = MachineTopology(2, 2)
        tree = m.object_tree()
        for package in tree.children:
            l3 = package.children[0]
            for core in l3.children:
                assert m.socket_of(core.os_index) == package.os_index

    def test_core_pairs_count(self):
        m = MachineTopology(2, 2)
        pairs = list(m.core_pairs())
        assert len(pairs) == 6  # C(4, 2)
        assert all(a < b for a, b in pairs)
