"""GPC system configuration tests (paper §VI, Fig. 2)."""


from repro.topology.gpc import GPC_CORES_PER_NODE, gpc_cluster, single_node_cluster, small_cluster


class TestGpcCluster:
    def test_paper_scale(self):
        cl = gpc_cluster(512)
        assert cl.n_cores == 4096          # the paper's largest runs
        assert cl.cores_per_node == GPC_CORES_PER_NODE
        assert cl.machine.n_sockets == 2
        assert cl.machine.cores_per_socket == 4

    def test_network_shape(self):
        cl = gpc_cluster(512)
        cfg = cl.network.config
        assert cfg.nodes_per_leaf == 30
        assert cfg.n_core_switches == 2
        assert cfg.lines_per_core == 18
        assert cfg.spines_per_core == 9
        assert cfg.leaf_uplinks_per_core == 3
        assert cfg.line_spine_multiplicity == 2
        # 512 nodes need 18 leaf switches at 30 nodes each
        assert cfg.n_leaves == 18

    def test_blocking_factor(self):
        """Each leaf serves 30 nodes over 6 uplinks: the 5:1 QDR blocking."""
        cfg = gpc_cluster(512).network.config
        uplinks = cfg.n_core_switches * cfg.leaf_uplinks_per_core
        assert cfg.nodes_per_leaf / uplinks == 5.0

    def test_small_p_configs(self):
        for n_nodes, p in [(128, 1024), (256, 2048), (512, 4096)]:
            assert gpc_cluster(n_nodes).n_cores == p


class TestHelperClusters:
    def test_small_cluster(self):
        cl = small_cluster()
        assert cl.n_cores == 16
        assert cl.n_nodes == 4

    def test_single_node(self):
        cl = single_node_cluster()
        assert cl.n_nodes == 1
        assert cl.n_cores == 8
        # every core pair stays inside the node
        assert cl.channel_of(0, 7) in ("smem", "qpi")
