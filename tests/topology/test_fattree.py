"""Fat-tree network model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.fattree import FatTreeConfig, FatTreeNetwork

GPC = FatTreeConfig()  # the paper's defaults


class TestConfig:
    def test_gpc_defaults(self):
        assert GPC.n_core_switches == 2
        assert GPC.lines_per_core == 18
        assert GPC.spines_per_core == 9
        assert GPC.leaf_uplinks_per_core == 3
        assert GPC.max_nodes == 31 * 30

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FatTreeConfig(n_leaves=0)
        with pytest.raises(ValueError):
            FatTreeConfig(spines_per_core=-1)


class TestLinkIds:
    def test_ids_dense_and_unique(self):
        net = FatTreeNetwork(FatTreeConfig(n_leaves=4, lines_per_core=3, spines_per_core=2))
        seen = set()
        c = net.config
        for leaf in range(c.n_leaves):
            for core in range(c.n_core_switches):
                for k in range(c.leaf_uplinks_per_core):
                    seen.add(net.leaf_line_up(leaf, core, k))
                    seen.add(net.leaf_line_down(leaf, core, k))
        for core in range(c.n_core_switches):
            for line in range(c.lines_per_core):
                for spine in range(c.spines_per_core):
                    for k in range(c.line_spine_multiplicity):
                        seen.add(net.line_spine_up(core, line, spine, k))
                        seen.add(net.line_spine_down(core, line, spine, k))
        assert seen == set(range(net.n_links))

    def test_is_leaf_line(self):
        net = FatTreeNetwork(FatTreeConfig(n_leaves=4))
        assert net.is_leaf_line(net.leaf_line_up(0, 0, 0))
        assert net.is_leaf_line(net.leaf_line_down(3, 1, 2))
        assert not net.is_leaf_line(net.line_spine_up(0, 0, 0, 0))
        with pytest.raises(ValueError):
            net.is_leaf_line(net.n_links)

    def test_bad_indices_rejected(self):
        net = FatTreeNetwork(FatTreeConfig(n_leaves=4))
        with pytest.raises(ValueError):
            net.leaf_line_up(4, 0, 0)
        with pytest.raises(ValueError):
            net.leaf_line_up(0, 2, 0)
        with pytest.raises(ValueError):
            net.line_spine_up(0, 18, 0, 0)

    def test_endpoints_roundtrip(self):
        net = FatTreeNetwork(FatTreeConfig(n_leaves=4))
        a, b = net.endpoints(net.leaf_line_up(2, 1, 0))
        assert a == "leaf2" and b.startswith("core1/line")
        a, b = net.endpoints(net.line_spine_down(0, 1, 2, 1))
        assert a == "core0/spine2" and b == "core0/line1[1]"


class TestRouting:
    def test_same_leaf_empty(self):
        net = FatTreeNetwork(GPC)
        assert net.route(5, 5, dst_node=170) == []
        assert net.switch_hops(5, 5) == 0

    def test_route_shapes(self):
        net = FatTreeNetwork(GPC)
        # leaves 0 and 18 share line switch 0 (18 % 18 == 0)
        r = net.route(0, 18, dst_node=18 * 30)
        assert len(r) == 2
        assert net.switch_hops(0, 18) == 2
        # leaves 0 and 1 use different line switches -> via a spine
        r = net.route(0, 1, dst_node=31)
        assert len(r) == 4
        assert net.switch_hops(0, 1) == 4

    def test_destination_based_determinism(self):
        """Routes to the same destination reuse the same down-path ports."""
        net = FatTreeNetwork(GPC)
        r1 = net.route(0, 5, dst_node=151)
        r2 = net.route(2, 5, dst_node=151)
        # last link (into the destination leaf) must be identical
        assert r1[-1] == r2[-1]

    @settings(max_examples=50, deadline=None)
    @given(
        src=st.integers(min_value=0, max_value=30),
        dst=st.integers(min_value=0, max_value=30),
        node=st.integers(min_value=0, max_value=929),
    )
    def test_route_links_valid(self, src, dst, node):
        net = FatTreeNetwork(GPC)
        for lid in net.route(src, dst, node):
            assert 0 <= lid < net.n_links

    def test_parallel_cables_spread_by_destination(self):
        net = FatTreeNetwork(GPC)
        first_links = {net.route(0, 5, dst_node=n)[0] for n in range(150, 180)}
        assert len(first_links) > 1  # different destinations use different cables
