"""Persistence tests (save/load of distances and reorderings)."""

import numpy as np
import pytest

from repro.mapping.initial import cyclic_bunch
from repro.mapping.reorder import reorder_ranks
from repro.topology.gpc import gpc_cluster, small_cluster
from repro.topology.persist import (
    DENSE_FORMAT_THRESHOLD,
    CorruptPersistFileError,
    FingerprintMismatchError,
    PersistError,
    load_distances,
    load_reordering,
    save_distances,
    save_reordering,
    topology_fingerprint,
)


class TestFingerprint:
    def test_stable(self):
        a = topology_fingerprint(small_cluster())
        b = topology_fingerprint(small_cluster())
        assert a == b

    def test_differs_by_shape(self):
        assert topology_fingerprint(small_cluster()) != topology_fingerprint(gpc_cluster(8))

    def test_differs_by_weights(self):
        from repro.topology.cluster import ClusterTopology, LinkClass
        from repro.topology.hardware import MachineTopology

        a = ClusterTopology(2, MachineTopology(2, 2))
        b = ClusterTopology(2, MachineTopology(2, 2), distance_weights={LinkClass.HCA: 9.0})
        assert topology_fingerprint(a) != topology_fingerprint(b)


class TestDistances:
    def test_roundtrip(self, tmp_path):
        cl = small_cluster()
        path = save_distances(cl, tmp_path / "dist.npz")
        D = load_distances(cl, path)
        assert np.array_equal(D, cl.distance_matrix())

    def test_wrong_cluster_rejected(self, tmp_path):
        cl = small_cluster()
        path = save_distances(cl, tmp_path / "dist.npz")
        with pytest.raises(ValueError, match="different topology"):
            load_distances(gpc_cluster(8), path)

    def test_extension_appended(self, tmp_path):
        path = save_distances(small_cluster(), tmp_path / "bare")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_no_temp_file_left_behind(self, tmp_path):
        save_distances(small_cluster(), tmp_path / "dist.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["dist.npz"]

    def test_wrong_cluster_is_typed(self, tmp_path):
        path = save_distances(small_cluster(), tmp_path / "dist.npz")
        with pytest.raises(FingerprintMismatchError, match="different topology"):
            load_distances(gpc_cluster(8), path)
        # still a ValueError for older call sites
        with pytest.raises(ValueError):
            load_distances(gpc_cluster(8), path)

    def test_truncated_file_rejected(self, tmp_path):
        cl = small_cluster()
        path = save_distances(cl, tmp_path / "dist.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptPersistFileError, match="corrupt or truncated"):
            load_distances(cl, path)

    def test_garbage_file_rejected(self, tmp_path):
        bad = tmp_path / "dist.npz"
        bad.write_bytes(b"this is not an npz archive")
        with pytest.raises(CorruptPersistFileError, match="re-run the extraction"):
            load_distances(small_cluster(), bad)

    def test_missing_file_is_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such distance file"):
            load_distances(small_cluster(), tmp_path / "nope.npz")


class TestCoordsFormat:
    """The O(cores) coordinate format must rebuild the dense oracle exactly."""

    @pytest.mark.parametrize("make", [small_cluster, lambda: gpc_cluster(8)])
    def test_roundtrip_matches_dense_oracle(self, tmp_path, make):
        cl = make()
        path = save_distances(cl, tmp_path / "dist.npz", format="coords")
        D = load_distances(cl, path)
        assert D.dtype == np.float32
        assert np.array_equal(D, cl.distance_matrix())

    def test_auto_picks_by_size(self, tmp_path):
        small = small_cluster()
        assert small.n_cores <= DENSE_FORMAT_THRESHOLD
        path = save_distances(small, tmp_path / "small.npz", format="auto")
        with np.load(path) as data:
            assert "D" in data
        big = gpc_cluster(n_nodes=DENSE_FORMAT_THRESHOLD // 8 + 1)
        path = save_distances(big, tmp_path / "big.npz", format="auto")
        with np.load(path) as data:
            assert "D" not in data and "gsock" in data
        # the compact file still rebuilds the exact matrix
        assert np.array_equal(load_distances(big, path), big.distance_matrix())

    def test_coords_file_is_small(self, tmp_path):
        cl = gpc_cluster(130)  # 1040 cores: dense would be ~MBs raw
        dense = save_distances(cl, tmp_path / "dense.npz", format="dense")
        coords = save_distances(cl, tmp_path / "coords.npz", format="coords")
        assert coords.stat().st_size < dense.stat().st_size

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_distances(small_cluster(), tmp_path / "x.npz", format="csv")

    def test_wrong_cluster_rejected(self, tmp_path):
        path = save_distances(small_cluster(), tmp_path / "d.npz", format="coords")
        with pytest.raises(FingerprintMismatchError):
            load_distances(gpc_cluster(8), path)

    def test_missing_coords_array_rejected(self, tmp_path):
        cl = small_cluster()
        impl = cl.implicit_distances()
        coords = impl.coords(np.arange(cl.n_cores))
        path = tmp_path / "torn.npz"
        np.savez(
            path,
            gsock=coords.gsock,
            node=coords.node,
            leaf=coords.leaf,  # "line" and "ladder" missing
            fingerprint=np.bytes_(topology_fingerprint(cl).encode()),
        )
        with pytest.raises(CorruptPersistFileError):
            load_distances(cl, path)

    def test_inconsistent_coords_rejected(self, tmp_path):
        cl = small_cluster()
        impl = cl.implicit_distances()
        coords = impl.coords(np.arange(cl.n_cores))
        path = tmp_path / "short.npz"
        np.savez(
            path,
            gsock=coords.gsock,
            node=coords.node[:-1],  # one core short
            leaf=coords.leaf,
            line=coords.line,
            ladder=impl.ladder(),
            fingerprint=np.bytes_(topology_fingerprint(cl).encode()),
        )
        with pytest.raises(CorruptPersistFileError):
            load_distances(cl, path)


class TestReordering:
    def test_roundtrip(self, tmp_path, mid_cluster, mid_D):
        L = cyclic_bunch(mid_cluster, 32)
        res = reorder_ranks("ring", L, mid_D, rng=0)
        path = save_reordering(res, tmp_path / "ring.json")
        loaded = load_reordering(path)
        assert loaded.pattern == "ring"
        assert loaded.mapper_name == "rmh"
        assert np.array_equal(loaded.mapping, res.mapping)
        assert np.array_equal(loaded.reordering.old_of_new, res.reordering.old_of_new)

    def test_corrupt_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"pattern": "ring"}')
        with pytest.raises(ValueError, match="missing"):
            load_reordering(bad)

    def test_invalid_permutation_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"pattern": "ring", "mapper": "rmh", "layout": [0, 1], "mapping": [0, 2]}'
        )
        with pytest.raises(CorruptPersistFileError, match="inconsistent"):
            load_reordering(bad)

    def test_truncated_json_rejected(self, tmp_path, mid_cluster, mid_D):
        L = cyclic_bunch(mid_cluster, 32)
        res = reorder_ranks("ring", L, mid_D, rng=0)
        path = save_reordering(res, tmp_path / "ring.json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CorruptPersistFileError, match="not valid JSON"):
            load_reordering(path)

    def test_missing_key_is_typed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"pattern": "ring"}')
        with pytest.raises(CorruptPersistFileError, match="missing"):
            load_reordering(bad)
        assert issubclass(CorruptPersistFileError, PersistError)
        assert issubclass(PersistError, ValueError)

    def test_non_object_payload_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(CorruptPersistFileError, match="JSON object"):
            load_reordering(bad)

    def test_missing_file_is_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such reordering file"):
            load_reordering(tmp_path / "nope.json")

    def test_save_is_atomic(self, tmp_path, mid_cluster, mid_D):
        L = cyclic_bunch(mid_cluster, 32)
        res = reorder_ranks("ring", L, mid_D, rng=0)
        save_reordering(res, tmp_path / "ring.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ring.json"]
