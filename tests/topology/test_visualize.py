"""Topology visualization tests."""

import pytest

from repro.topology.visualize import render_node, render_tree, render_wiring


class TestRenderNode:
    def test_gpc_node(self, mid_cluster):
        out = render_node(mid_cluster, 1)
        assert "node1" in out
        assert "socket0" in out and "socket1" in out
        assert "[core 8]" in out and "[core 15]" in out

    def test_out_of_range(self, mid_cluster):
        with pytest.raises(ValueError):
            render_node(mid_cluster, 99)


class TestRenderTree:
    def test_structure(self, mid_cluster):
        out = render_tree(mid_cluster)
        assert "core switches" in out
        assert "leaf0" in out
        assert "node0" in out

    def test_elision(self):
        from repro.topology.gpc import gpc_cluster

        out = render_tree(gpc_cluster(512), max_leaves=2, max_nodes=2)
        assert "more nodes" in out
        assert "more leaves" in out


class TestRenderWiring:
    def test_gpc_blocking_factor(self):
        from repro.topology.gpc import gpc_cluster

        out = render_wiring(gpc_cluster(64))
        assert "5:1" in out
        assert "uplinks per leaf:      6" in out
