"""Statistical balance of the destination-based fat-tree routing.

InfiniBand ftree routing spreads destinations over parallel cables and
spines so no single resource carries a disproportionate share of uniform
traffic.  These tests check our deterministic routing achieves that —
the property congestion results silently depend on.
"""

import numpy as np
import pytest

from repro.topology.gpc import gpc_cluster
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def wide():
    return gpc_cluster(n_nodes=120)  # 4 leaves, all cross-leaf paths active


class TestUplinkBalance:
    def test_uplink_cables_evenly_used(self, wide):
        """Uniform all-to-all node traffic spreads evenly over the 6
        uplink cables of every leaf."""
        cfg = wide.network.config
        counts = np.zeros(wide.network.n_links)
        for src in range(0, wide.n_nodes, 3):
            for dst in range(wide.n_nodes):
                src_leaf = src // cfg.nodes_per_leaf
                dst_leaf = dst // cfg.nodes_per_leaf
                for lid in wide.network.route(src_leaf, dst_leaf, dst_node=dst):
                    counts[lid] += 1
        # leaf-line up cables of leaf 0
        ups = [
            wide.network.leaf_line_up(0, c, k)
            for c in range(cfg.n_core_switches)
            for k in range(cfg.leaf_uplinks_per_core)
        ]
        used = counts[ups]
        assert used.min() > 0
        assert used.max() <= 2.0 * used.min()  # no cable starves or hogs

    def test_spines_evenly_used(self, wide):
        cfg = wide.network.config
        counts = {}
        for dst_leaf in range(4):
            for dst in range(
                dst_leaf * cfg.nodes_per_leaf, (dst_leaf + 1) * cfg.nodes_per_leaf
            ):
                spine = dst_leaf % cfg.spines_per_core
                counts[spine] = counts.get(spine, 0) + 1
        # with 4 leaves, 4 distinct spines take the down-paths
        assert len(counts) == 4

    def test_route_is_destination_stable(self, wide):
        """All sources use the same final hops toward one destination —
        the consistency real forwarding tables enforce."""
        cfg = wide.network.config
        dst = 100
        dst_leaf = dst // cfg.nodes_per_leaf
        finals = set()
        for src_leaf in range(4):
            if src_leaf == dst_leaf:
                continue
            route = wide.network.route(src_leaf, dst_leaf, dst_node=dst)
            finals.add(route[-1])
        assert len(finals) == 1


class TestHcaLoadUniformity:
    def test_uniform_traffic_uniform_hca(self, wide, ):
        """Under a random permutation traffic pattern every node's HCA
        sees exactly one send and one receive — ftree cannot skew what
        the pattern itself balances."""
        from repro.collectives.schedule import Stage
        from repro.simmpi.engine import TimingEngine

        rng = make_rng(0)
        engine = TimingEngine(wide)
        nodes = rng.permutation(wide.n_nodes)
        src = nodes * wide.cores_per_node
        dst = np.roll(nodes, 1) * wide.cores_per_node
        stage = Stage(src=src, dst=dst, units=np.ones(src.size))
        loads = engine.link_loads(stage, np.arange(wide.n_cores), 1000.0)
        hca_up = loads[wide.hca_up(np.arange(wide.n_nodes))]
        assert np.all(hca_up == 1000.0)
