"""Unified cluster topology tests: routes, distances, channel classes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.cluster import ClusterTopology, LinkClass, MAX_ROUTE_LEN
from repro.topology.gpc import gpc_cluster, small_cluster
from repro.util.rng import make_rng


class TestArithmetic:
    def test_core_node_socket(self, mid_cluster):
        # 8 cores per node, 4 per socket
        assert mid_cluster.node_of(0) == 0
        assert mid_cluster.node_of(7) == 0
        assert mid_cluster.node_of(8) == 1
        assert mid_cluster.socket_of(3) == 0
        assert mid_cluster.socket_of(4) == 1
        assert int(mid_cluster.global_socket_of(12)) == 3

    def test_cores_of_node(self, mid_cluster):
        assert list(mid_cluster.cores_of_node(1)) == list(range(8, 16))
        with pytest.raises(ValueError):
            mid_cluster.cores_of_node(8)

    def test_capacity_check(self):
        from repro.topology.fattree import FatTreeConfig, FatTreeNetwork

        net = FatTreeNetwork(FatTreeConfig(n_leaves=1, nodes_per_leaf=2))
        with pytest.raises(ValueError, match="capacity"):
            ClusterTopology(n_nodes=3, network=net)


class TestRoutes:
    def test_intra_socket_route(self, mid_cluster):
        cl = mid_cluster
        r = cl.route(0, 1)
        classes = [LinkClass(cl.link_class[l]) for l in r]
        assert classes == [LinkClass.SMEM, LinkClass.MEM, LinkClass.MEM, LinkClass.SMEM]
        # intra-socket message crosses its socket's memory bus twice
        assert r[1] == r[2]

    def test_cross_socket_route(self, mid_cluster):
        cl = mid_cluster
        classes = [LinkClass(cl.link_class[l]) for l in cl.route(0, 5)]
        assert LinkClass.QPI in classes
        assert classes.count(LinkClass.QPI) == 2
        assert LinkClass.HCA not in classes

    def test_inter_node_route(self, mid_cluster):
        cl = mid_cluster
        classes = [LinkClass(cl.link_class[l]) for l in cl.route(0, 9)]
        assert classes.count(LinkClass.HCA) == 2
        assert LinkClass.QPI not in classes  # sockets crossed via HCA path

    def test_cross_leaf_route_has_switch_links(self):
        cl = small_cluster()  # 2 nodes per leaf
        classes = [LinkClass(cl.link_class[l]) for l in cl.route(0, 3 * 4)]
        assert LinkClass.LEAF_LINE in classes

    def test_self_message_rejected(self, mid_cluster):
        with pytest.raises(ValueError, match="self-message"):
            mid_cluster.route(3, 3)

    def test_out_of_range_rejected(self, mid_cluster):
        with pytest.raises(ValueError):
            mid_cluster.route_matrix([0], [mid_cluster.n_cores])

    def test_route_matrix_matches_scalar(self, mid_cluster):
        cl = mid_cluster
        src = np.array([0, 0, 0, 5])
        dst = np.array([1, 5, 9, 60])
        rows = cl.route_matrix(src, dst)
        assert rows.shape == (4, MAX_ROUTE_LEN)
        for i in range(4):
            assert [x for x in rows[i] if x >= 0] == cl.route(int(src[i]), int(dst[i]))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_all_route_links_valid(self, a, b):
        cl = gpc_cluster(8)
        if a == b:
            return
        for lid in cl.route(a, b):
            assert 0 <= lid < cl.n_links


class TestDistances:
    def test_distance_ladder(self, mid_cluster):
        cl = mid_cluster
        d = cl.distance_row(0)
        assert d[0] == 0.0
        assert d[1] == d[2] == d[3]              # same socket
        assert d[4] == d[7] > d[1]               # cross socket
        assert d[8] > d[7]                       # other node, same leaf
        assert len(np.unique(d)) >= 3

    def test_cross_leaf_larger(self):
        cl = small_cluster()  # 2 nodes/leaf
        same_leaf = cl.distance(0, 4)
        cross_leaf = cl.distance(0, 8)
        assert cross_leaf > same_leaf

    def test_distance_symmetry(self, mid_cluster):
        D = mid_cluster.distance_matrix()
        assert np.array_equal(D, D.T)
        assert np.all(np.diag(D) == 0)

    def test_distance_consistent_with_route_weights(self, mid_cluster):
        """D[a,b] equals the sum of class weights along the actual route."""
        cl = mid_cluster
        rng = make_rng(0)
        for _ in range(30):
            a, b = rng.integers(cl.n_cores, size=2)
            if a == b:
                continue
            expect = sum(
                cl.weights[LinkClass(cl.link_class[l])] for l in cl.route(int(a), int(b))
            )
            assert float(cl.distance(a, b)) == pytest.approx(expect)

    def test_distance_row_matches_matrix(self, mid_cluster):
        D = mid_cluster.distance_matrix()
        assert np.allclose(mid_cluster.distance_row(5), D[5])


class TestChannelOf:
    def test_channels(self, mid_cluster):
        cl = mid_cluster
        assert cl.channel_of(2, 2) == "self"
        assert cl.channel_of(0, 1) == "smem"
        assert cl.channel_of(0, 5) == "qpi"
        assert cl.channel_of(0, 9) == "leaf"

    def test_cross_leaf_channels(self):
        cl = small_cluster()  # 2 nodes/leaf, lines_per_core=3
        assert cl.channel_of(0, 8) in ("line", "spine")

    def test_out_of_range(self, mid_cluster):
        with pytest.raises(ValueError):
            mid_cluster.channel_of(0, mid_cluster.n_cores)


class TestLinkClassTable:
    def test_every_link_classified(self, mid_cluster):
        cls = mid_cluster.link_class
        assert cls.shape == (mid_cluster.n_links,)
        present = set(int(c) for c in np.unique(cls))
        assert int(LinkClass.SMEM) in present
        assert int(LinkClass.MEM) in present
        assert int(LinkClass.HCA) in present
