"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--nodes", "4", "--hierarchical", "--intra", "linear"]
        )
        assert args.nodes == 4
        assert args.hierarchical
        assert args.intra == "linear"

    def test_sweep_checkpoint_options(self):
        args = build_parser().parse_args(
            ["sweep", "--out-dir", "j", "--max-retries", "5", "--cell-timeout", "2.5"]
        )
        assert args.out_dir == "j"
        assert args.max_retries == 5
        assert args.cell_timeout == 2.5
        assert args.resume is None

    def test_faults_requires_fail_nodes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--nodes", "8"])


class TestCommands:
    def test_topo(self, capsys):
        assert main(["topo", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "ClusterTopology" in out
        assert "calibration probes" in out
        assert "distance ladder" in out

    def test_sweep_flat(self, capsys):
        rc = main(
            ["sweep", "--nodes", "4", "--layouts", "cyclic-bunch", "--mappers", "heuristic"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cyclic-bunch" in out
        assert "Hrstc+initComm" in out

    def test_sweep_hierarchical(self, capsys):
        rc = main(
            ["sweep", "--nodes", "4", "--hierarchical", "--intra", "linear",
             "--layouts", "block-bunch", "--mappers", "heuristic"]
        )
        assert rc == 0
        assert "Hierarchical (linear)" in capsys.readouterr().out

    def test_sweep_checkpointed_and_resume(self, tmp_path, capsys):
        flags = [
            "sweep", "--nodes", "2", "--layouts", "block-bunch",
            "--mappers", "heuristic", "--out-dir", str(tmp_path / "j"),
        ]
        assert main(flags) == 0
        out = capsys.readouterr().out
        assert "Hrstc+initComm" in out
        assert "computed 2 cells" in out
        assert (tmp_path / "j" / "sweep.json").is_file()
        assert main(["sweep", "--resume", str(tmp_path / "j")]) == 0
        assert "resumed 2, computed 0" in capsys.readouterr().out

    def test_faults(self, capsys):
        rc = main(["faults", "--nodes", "8", "--fail-nodes", "7",
                   "--sizes", "1024", "65536", "--patterns", "ring"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p 64 -> 56" in out
        assert "shrink-remap" in out and "aborted" in out

    def test_app(self, capsys):
        rc = main(["app", "--nodes", "4", "--steps", "3", "--app", "matvec"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matvec" in out
        assert "block-bunch" in out

    def test_overheads(self, capsys):
        rc = main(["overheads", "--nodes", "4", "--pattern", "ring"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "distance extraction" in out
        assert "scotch" in out

    def test_adaptive(self, capsys):
        rc = main(["adaptive", "--nodes", "4", "--layout", "cyclic-scatter"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adaptive decisions" in out
        assert "reordered" in out or "default" in out

    def test_bcast(self, capsys):
        rc = main(["bcast", "--nodes", "4", "--layout", "cyclic-scatter"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MPI_Bcast" in out
        assert "binomial-bcast" in out

    def test_profile(self, capsys):
        rc = main(["profile", "--nodes", "4", "--block-bytes", "4096"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bytes by channel class" in out

    def test_profile_reordered(self, capsys):
        rc = main(["profile", "--nodes", "4", "--reordered"])
        assert rc == 0
        assert "reordered" in capsys.readouterr().out

    def test_topo_renders_wiring(self, capsys):
        assert main(["topo", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "blocking factor" in out
        assert "socket0" in out


class TestVerifyCommand:
    def test_verify_all_registered_clean(self, capsys):
        rc = main(["verify", "-p", "4", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verify: 0 diagnostic(s)" in out
        assert "ring" in out

    def test_verify_single_algorithm(self, capsys):
        rc = main(["verify", "--alg", "ring", "-p", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ring" in out
        assert "ok" in out

    def test_verify_skips_unsupported_sizes(self, capsys):
        rc = main(["verify", "--alg", "allreduce-rd", "-p", "7"])
        assert rc == 0
        assert "skip (unsupported p)" in capsys.readouterr().out

    def test_verify_mappings(self, capsys):
        rc = main(["verify", "--alg", "ring", "-p", "4", "--mappings", "--nodes", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "topology invariants" in out
        assert "heuristic mapping: clean" in out


class TestLintCommand:
    def test_lint_src_clean(self, capsys):
        rc = main(["lint", "src"])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_flags_violations(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        rc = main(["lint", str(dirty)])
        assert rc == 1
        assert "REP001" in capsys.readouterr().out


class TestFabricCLI:
    FLAGS = ["sweep", "--nodes", "2", "--layouts", "block-bunch", "--mappers", "heuristic"]

    def test_fabric_parser_options(self):
        args = build_parser().parse_args(
            ["sweep", "--fabric", "d", "--worker-id", "w1",
             "--lease-ttl", "5", "--shards", "3"]
        )
        assert args.fabric == "d"
        assert args.worker_id == "w1"
        assert args.lease_ttl == 5.0
        assert args.shards == 3

    def test_merge_and_status_parser_options(self):
        args = build_parser().parse_args(["sweep", "--merge", "d"])
        assert args.merge == "d"
        args = build_parser().parse_args(["sweep", "--status", "d"])
        assert args.status == "d"

    def test_perf_fabric_options(self):
        args = build_parser().parse_args(
            ["perf", "--fabric", "--fabric-workers", "1", "2",
             "--cell-delay", "0.5", "--quick"]
        )
        assert args.fabric
        assert args.fabric_workers == [1, 2]
        assert args.cell_delay == 0.5

    def test_fabric_worker_then_merge_then_status(self, tmp_path, capsys):
        fdir = str(tmp_path / "f")
        assert main(self.FLAGS + ["--fabric", fdir, "--worker-id", "w1"]) == 0
        out = capsys.readouterr().out
        assert "w1" in out and "--merge" in out
        assert main(["sweep", "--merge", fdir]) == 0
        out = capsys.readouterr().out
        assert "Fabric-merged sweep" in out
        assert "Hrstc+initComm" in out
        assert main(["sweep", "--status", fdir]) == 0
        out = capsys.readouterr().out
        assert "2 done" in out and "0 pending" in out

    def test_status_on_solo_journal(self, tmp_path, capsys):
        jdir = str(tmp_path / "j")
        assert main(self.FLAGS + ["--out-dir", jdir]) == 0
        capsys.readouterr()
        assert main(["sweep", "--status", jdir]) == 0
        out = capsys.readouterr().out
        assert "solo journal" in out

    def test_merge_incomplete_fails(self, tmp_path, capsys):
        assert main(["sweep", "--merge", str(tmp_path / "missing")]) == 1

    def test_status_missing_dir_fails(self, tmp_path):
        assert main(["sweep", "--status", str(tmp_path / "missing")]) == 1
