"""Public-API quality gates: exports resolve, everything documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.util",
    "repro.topology",
    "repro.simmpi",
    "repro.collectives",
    "repro.mapping",
    "repro.evaluation",
    "repro.apps",
    "repro.bench",
]


def iter_public(module):
    names = getattr(module, "__all__", None)
    if names is None:
        return
    for name in names:
        yield name, getattr(module, name)


class TestExports:
    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_all_exports_resolve(self, pkg):
        module = importlib.import_module(pkg)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{pkg}.__all__ lists missing {name}"

    def test_every_module_importable(self):
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name == "repro.__main__":
                continue  # running it dispatches the CLI
            importlib.import_module(info.name)


class TestDocstrings:
    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_module_docstrings(self, pkg):
        module = importlib.import_module(pkg)
        assert module.__doc__, f"{pkg} lacks a module docstring"

    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_public_objects_documented(self, pkg):
        module = importlib.import_module(pkg)
        undocumented = []
        for name, obj in iter_public(module):
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(name)
        assert not undocumented, f"{pkg}: undocumented public objects {undocumented}"

    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_public_methods_documented(self, pkg):
        module = importlib.import_module(pkg)
        undocumented = []
        for name, obj in iter_public(module):
            if not inspect.isclass(obj):
                continue
            for mname, member in inspect.getmembers(obj, inspect.isfunction):
                if mname.startswith("_") or mname not in obj.__dict__:
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{name}.{mname}")
        assert not undocumented, f"{pkg}: undocumented methods {undocumented}"


class TestVersion:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
