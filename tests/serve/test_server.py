"""End-to-end daemon tests: real sockets, coalescing, batching, errors.

Every test talks to an in-process :class:`~repro.serve.embedded.
EmbeddedServer` through the synchronous client — the same path external
callers use — so the asyncio server, the line framing, the pipeline
lane and the warm fast path are all exercised for real.
"""

import io
import json
import socket as socketlib
import threading

import numpy as np
import pytest

from repro.mapping.initial import make_layout
from repro.mapping.reorder import reorder_ranks
from repro.serve import EmbeddedServer, ServeError, ServerConfig
from repro.topology.gpc import small_cluster

#: Batch window wide enough that every concurrently-fired request in a
#: test reliably lands inside one coalescing/batching window.
WIDE_WINDOW = 0.25

SPEC = {"kind": "small", "n_nodes": 4}


@pytest.fixture(scope="module")
def served():
    """Module-wide daemon with one registered topology."""
    with EmbeddedServer() as es:
        with es.client() as c:
            fingerprint = c.register_topology(SPEC)["fingerprint"]
        yield es, fingerprint


class TestOpsRoundTrip:
    def test_health(self, served):
        es, _ = served
        with es.client() as c:
            h = c.health()
        assert h["status"] == "ok"
        assert h["protocol"] == 1
        assert h["topologies"] >= 1

    def test_register_is_idempotent(self, served):
        es, fingerprint = served
        with es.client() as c:
            again = c.register_topology(SPEC)
        assert again["fingerprint"] == fingerprint
        assert again["evicted"] == []

    def test_reorder_named_layout(self, served):
        es, fingerprint = served
        with es.client() as c:
            res = c.reorder(fingerprint, "ring", "block-bunch", seed=7)
        assert sorted(res["mapping"]) == list(range(16))
        assert res["pattern"] == "ring"

    def test_reorder_explicit_layout(self, served):
        es, fingerprint = served
        layout = list(range(15, -1, -1))
        with es.client() as c:
            res = c.reorder(fingerprint, "recursive-doubling", layout, seed=1)
        assert sorted(res["mapping"]) == sorted(layout)

    def test_reorder_matches_solo_pipeline(self, served):
        es, fingerprint = served
        with es.client() as c:
            res = c.reorder(fingerprint, "bruck", "cyclic-bunch", seed=5)
        cluster = small_cluster(n_nodes=4)
        L = make_layout("cyclic-bunch", cluster, cluster.n_cores)
        solo = reorder_ranks(
            "bruck", L, cluster.implicit_distances(), kind="heuristic", rng=5
        )
        assert res["mapping"] == solo.mapping.tolist()

    def test_price_matches_solo_engine(self, served):
        es, fingerprint = served
        sizes = [1024, 65536]
        with es.client() as c:
            res = c.reorder(fingerprint, "ring", "block-scatter", seed=0)
            priced = c.price(fingerprint, "ring", sizes, mapping=res["mapping"])
        from repro.collectives.registry import make_algorithm
        from repro.simmpi.engine import TimingEngine

        cluster = small_cluster(n_nodes=4)
        engine = TimingEngine(cluster)
        schedule = make_algorithm("ring").schedule(16)
        batch = engine.evaluate_sizes(
            schedule, np.asarray(res["mapping"]), [float(s) for s in sizes]
        )
        assert priced["total_seconds"] == [float(t) for t in batch.total_seconds]

    def test_price_by_layout_name(self, served):
        es, fingerprint = served
        with es.client() as c:
            priced = c.price(fingerprint, "binomial-bcast", [4096], layout="block-bunch")
        assert priced["p"] == 16
        assert len(priced["total_seconds"]) == 1

    def test_stats_counters_present(self, served):
        es, _ = served
        with es.client() as c:
            st = c.stats()
        for key in (
            "requests",
            "errors",
            "coalesced",
            "batched",
            "warm_inline",
            "reorder_batches",
            "reorder_solo",
            "mapping_cache",
            "registry",
        ):
            assert key in st
        assert {"hits", "misses", "evictions"} <= set(st["mapping_cache"])
        for topo in st["registry"]["topologies"]:
            assert {"hits", "misses", "evictions"} <= set(topo["pricing"])


class TestWarmPath:
    def test_repeat_request_is_served_warm(self, served):
        es, fingerprint = served
        with es.client() as c:
            before = c.stats()["warm_inline"]
            first = c.reorder(fingerprint, "binomial-gather", "cyclic-scatter", seed=11)
            second = c.reorder(fingerprint, "binomial-gather", "cyclic-scatter", seed=11)
            after = c.stats()["warm_inline"]
        assert second["cached"] is True
        assert second["mapping"] == first["mapping"]
        assert after == before + 1


class TestErrorPaths:
    def test_unknown_fingerprint(self, served):
        es, _ = served
        with es.client() as c:
            with pytest.raises(ServeError) as exc_info:
                c.reorder("ffffffffffffffff", "ring", "block-bunch")
        assert exc_info.value.code == "unknown-fingerprint"

    def test_unknown_pattern(self, served):
        es, fingerprint = served
        with es.client() as c:
            with pytest.raises(ServeError) as exc_info:
                c.reorder(fingerprint, "gossip", "block-bunch")
        assert exc_info.value.code == "bad-request"

    def test_bad_layout_rejected(self, served):
        es, fingerprint = served
        with es.client() as c:
            with pytest.raises(ServeError) as exc_info:
                c.reorder(fingerprint, "ring", [0, 0, 1])
        assert exc_info.value.code == "bad-request"

    def test_non_integer_layout_entries_are_bad_request(self, served):
        # Strings must not surface as internal-error, and float core ids
        # must be rejected rather than silently truncated.
        es, fingerprint = served
        with es.client() as c:
            for layout in (["zero", "one"], [0.5, 1.0], [0, True]):
                answer = json.loads(
                    c.send_raw(
                        json.dumps(
                            {
                                "v": 1,
                                "id": 1,
                                "op": "reorder",
                                "fingerprint": fingerprint,
                                "pattern": "ring",
                                "layout": layout,
                            }
                        ).encode("utf-8")
                        + b"\n"
                    )[0]
                )
                assert answer["ok"] is False, layout
                assert answer["error"]["code"] == "bad-request", layout

    def test_non_integer_price_mapping_is_bad_request(self, served):
        es, fingerprint = served
        with es.client() as c:
            with pytest.raises(ServeError) as exc_info:
                c.request(
                    "price",
                    fingerprint=fingerprint,
                    algorithm="ring",
                    sizes=[1024],
                    mapping=["a", "b"],
                )
        assert exc_info.value.code == "bad-request"

    def test_engine_option_is_not_client_visible(self, served):
        es, fingerprint = served
        with es.client() as c:
            with pytest.raises(ServeError) as exc_info:
                c.reorder(
                    fingerprint, "ring", "block-bunch", options={"engine": "naive"}
                )
        assert exc_info.value.code == "bad-request"

    def test_bad_topology_spec(self, served):
        es, _ = served
        with es.client() as c:
            with pytest.raises(ServeError) as exc_info:
                c.register_topology({"kind": "moebius", "n_nodes": 4})
        assert exc_info.value.code == "bad-request"

    def test_malformed_json_keeps_connection_alive(self, served):
        es, _ = served
        with es.client() as c:
            answer = json.loads(c.send_raw(b"{definitely not json\n")[0])
            assert answer["ok"] is False
            assert answer["error"]["code"] == "bad-json"
            # the same connection still answers real requests
            assert c.health()["status"] == "ok"

    def test_wrong_version_echoes_request_id(self, served):
        es, _ = served
        with es.client() as c:
            answer = json.loads(
                c.send_raw(b'{"v": 99, "id": 17, "op": "stats"}\n')[0]
            )
        assert answer["ok"] is False
        assert answer["id"] == 17
        assert answer["error"]["code"] == "bad-version"

    def test_unknown_op_is_structured_error(self, served):
        es, _ = served
        with es.client() as c:
            answer = json.loads(c.send_raw(b'{"v": 1, "id": 3, "op": "rm -rf"}\n')[0])
        assert answer["error"]["code"] == "unknown-op"
        assert answer["id"] == 3


class TestOversized:
    def test_oversized_line_survives_connection(self):
        config = ServerConfig(port=0, max_line_bytes=2048)
        with EmbeddedServer(config) as es:
            with es.client() as c:
                fingerprint = c.register_topology(SPEC)["fingerprint"]
                huge = b'{"v": 1, "op": "reorder", "x": "' + b"a" * 4096 + b'"}\n'
                answer = json.loads(c.send_raw(huge)[0])
                assert answer["ok"] is False
                assert answer["error"]["code"] == "oversized"
                # connection and daemon both survive
                res = c.reorder(fingerprint, "ring", "block-bunch", seed=0)
                assert sorted(res["mapping"]) == list(range(16))


class TestCoalescing:
    def test_identical_concurrent_requests_run_once(self):
        config = ServerConfig(port=0, batch_window=WIDE_WINDOW)
        with EmbeddedServer(config) as es:
            with es.client() as c:
                fingerprint = c.register_topology(SPEC)["fingerprint"]
            n = 6
            results = [None] * n
            barrier = threading.Barrier(n)

            def fire(i):
                with es.client() as cc:
                    barrier.wait()
                    results[i] = cc.reorder(
                        fingerprint, "recursive-doubling", "block-bunch", seed=99
                    )

            threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with es.client() as c:
                st = c.stats()
        # one execution, n identical answers
        assert st["patterns_computed"] == 1
        assert st["coalesced"] == n - 1
        assert all(r == results[0] for r in results)


class TestBatching:
    def test_distinct_patterns_fold_into_one_pass(self):
        config = ServerConfig(port=0, batch_window=WIDE_WINDOW)
        with EmbeddedServer(config) as es:
            with es.client() as c:
                fingerprint = c.register_topology(SPEC)["fingerprint"]
            patterns = ["recursive-doubling", "ring", "binomial-bcast", "bruck"]
            results = {}
            barrier = threading.Barrier(len(patterns))

            def fire(pattern):
                with es.client() as cc:
                    barrier.wait()
                    results[pattern] = cc.reorder(
                        fingerprint, pattern, "cyclic-scatter", seed=2
                    )

            threads = [
                threading.Thread(target=fire, args=(p,)) for p in patterns
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with es.client() as c:
                st = c.stats()
        # every request after the first folded into the opener's batch,
        # and the whole batch ran as ONE reorder_all pass
        assert st["reorder_batches"] == 1
        assert st["batched"] == len(patterns) - 1
        assert st["reorder_solo"] == 0

        # batched answers are bit-identical to solo reorder_ranks
        cluster = small_cluster(n_nodes=4)
        L = make_layout("cyclic-scatter", cluster, cluster.n_cores)
        D = cluster.implicit_distances()
        for pattern in patterns:
            solo = reorder_ranks(pattern, L, D, kind="heuristic", rng=2)
            assert results[pattern]["mapping"] == solo.mapping.tolist(), pattern


class TestRegistryEviction:
    def test_lru_eviction_under_cap(self):
        config = ServerConfig(port=0, topology_cap=2)
        with EmbeddedServer(config) as es:
            with es.client() as c:
                fp1 = c.register_topology({"kind": "small", "n_nodes": 2})["fingerprint"]
                fp2 = c.register_topology({"kind": "small", "n_nodes": 4})["fingerprint"]
                third = c.register_topology({"kind": "single-node", "n_sockets": 2})
                assert third["evicted"] == [fp1]
                st = c.stats()
                assert st["registry"]["evictions"] == 1
                assert st["registry"]["resident"] == 2
                # evicted topology now answers unknown-fingerprint
                with pytest.raises(ServeError) as exc_info:
                    c.reorder(fp1, "ring", "block-bunch")
                assert exc_info.value.code == "unknown-fingerprint"
                # survivors still serve
                res = c.reorder(fp2, "ring", "block-bunch", seed=0)
                assert sorted(res["mapping"]) == list(range(16))


class TestUnixSocket:
    def test_serve_over_unix_socket(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        config = ServerConfig(socket_path=socket_path)
        es = EmbeddedServer(config)
        es.start()
        try:
            with es.client() as c:
                fingerprint = c.register_topology(SPEC)["fingerprint"]
                res = c.reorder(fingerprint, "ring", "block-bunch", seed=0)
                assert sorted(res["mapping"]) == list(range(16))
        finally:
            es.stop()
        # graceful drain unlinks the socket
        assert not (tmp_path / "repro.sock").exists()


class TestUnterminatedFinalLine:
    def test_half_closed_request_without_newline_answers_once(self, served):
        # A request missing its trailing newline, followed by a write-side
        # close, must be answered exactly once — not replayed forever off
        # the line reader's EOF buffer.
        es, _ = served
        sock = socketlib.create_connection(
            ("127.0.0.1", es.server.port), timeout=10
        )
        try:
            sock.sendall(b'{"v": 1, "id": 5, "op": "health"}')  # no \n
            sock.shutdown(socketlib.SHUT_WR)
            stream = sock.makefile("rb")
            answer = json.loads(stream.readline())
            assert answer["ok"] is True
            assert answer["id"] == 5
            # one answer, then the server closes: EOF, no response spam
            assert stream.read() == b""
        finally:
            sock.close()


class TestSocketTakeover:
    def test_second_daemon_refuses_live_socket(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        first = EmbeddedServer(ServerConfig(socket_path=socket_path)).start()
        try:
            with pytest.raises(RuntimeError) as exc_info:
                EmbeddedServer(ServerConfig(socket_path=socket_path)).start()
            assert "already listening" in str(exc_info.value.__cause__)
            # the live daemon kept its socket and still answers
            with first.client() as c:
                assert c.health()["status"] == "ok"
        finally:
            first.stop()

    def test_stale_socket_is_cleared(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        # Leave a dead socket file behind (no listener).
        stale = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        stale.bind(socket_path)
        stale.close()
        with EmbeddedServer(ServerConfig(socket_path=socket_path)) as es:
            with es.client() as c:
                assert c.health()["status"] == "ok"


class TestClientReadLine:
    """ServeClient must never hand back a partial response line."""

    @staticmethod
    def _bare_client(data: bytes):
        from repro.serve.client import ServeClient

        client = object.__new__(ServeClient)
        client._file = io.BytesIO(data)
        return client

    def test_long_response_accumulates_until_newline(self):
        line = b"x" * (3 * (1 << 20)) + b"\n"
        assert self._bare_client(line)._read_line() == line

    def test_truncated_response_raises_instead_of_desyncing(self):
        with pytest.raises(ConnectionError):
            self._bare_client(b"partial without newline")._read_line()

    def test_eof_returns_empty(self):
        assert self._bare_client(b"")._read_line() == b""


class TestGracefulStop:
    def test_stop_is_clean_and_repeatable(self):
        es = EmbeddedServer().start()
        with es.client() as c:
            assert c.health()["status"] == "ok"
        es.stop()
        es.stop()  # idempotent
