"""Serve load generator: quick run produces a sound, identical-answer report."""

import json

from repro.bench.serveperf import ServePerfReport, run_serve_perf


class TestRunServePerf:
    def test_quick_run_report(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        report = run_serve_perf(quick=True, out=out)

        assert isinstance(report, ServePerfReport)
        assert report.p == 64  # 8 GPC nodes x 8 cores
        assert report.quick is True
        assert report.cold_requests == report.n_keys
        assert report.warm_requests == report.n_keys * report.warm_rounds

        # the whole point: serving must never change an answer
        assert report.mismatches == 0
        # and warm traffic must actually be served from resident state
        assert report.patterns_computed == report.n_keys
        assert report.warm_p50_ms <= report.cold_p50_ms
        assert report.warm_speedup_p50 >= 1.0
        assert report.requests_per_sec_warm > 0

        persisted = json.loads(out.read_text())
        assert persisted["mismatches"] == 0
        assert persisted["p"] == report.p
        assert {"cold_p50_ms", "warm_p50_ms", "mapping_cache"} <= set(persisted)
