"""Protocol framing: round-trips, validation, coalesce keys."""

import json

import pytest

from repro.serve.protocol import (
    ERROR_BAD_JSON,
    ERROR_BAD_REQUEST,
    ERROR_BAD_VERSION,
    ERROR_UNKNOWN_OP,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    coalesce_key,
    decode_request,
    encode_frame,
    make_error,
    make_response,
)


class TestEncodeDecode:
    def test_round_trip_every_op(self):
        for i, op in enumerate(OPS):
            frame = {"v": PROTOCOL_VERSION, "id": i, "op": op, "x": [1, 2]}
            line = encode_frame(frame)
            assert line.endswith(b"\n") and line.count(b"\n") == 1
            rid, out_op, payload = decode_request(line.rstrip(b"\n"))
            assert rid == i
            assert out_op == op
            assert payload == {"x": [1, 2]}

    def test_encode_is_canonical(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b  # sorted keys, compact separators

    def test_payload_excludes_envelope(self):
        line = encode_frame(
            {"v": PROTOCOL_VERSION, "id": 9, "op": "stats", "extra": True}
        )
        _, _, payload = decode_request(line.rstrip(b"\n"))
        assert "v" not in payload and "id" not in payload and "op" not in payload
        assert payload == {"extra": True}

    def test_response_round_trip(self):
        frame = make_response(3, "stats", {"ok_field": 1}, 0.0123)
        parsed = json.loads(encode_frame(frame))
        assert parsed["ok"] is True
        assert parsed["id"] == 3
        assert parsed["result"] == {"ok_field": 1}
        assert parsed["server_seconds"] == pytest.approx(0.0123)

    def test_error_round_trip(self):
        parsed = json.loads(encode_frame(make_error(4, ERROR_BAD_REQUEST, "nope")))
        assert parsed["ok"] is False
        assert parsed["id"] == 4
        assert parsed["error"] == {"code": ERROR_BAD_REQUEST, "message": "nope"}


class TestValidation:
    def _code(self, line: bytes) -> str:
        with pytest.raises(ProtocolError) as exc_info:
            decode_request(line)
        return exc_info.value.code

    def test_bad_json(self):
        assert self._code(b"{not json") == ERROR_BAD_JSON

    def test_bad_utf8(self):
        assert self._code(b"\xff\xfe") == ERROR_BAD_JSON

    def test_non_object(self):
        assert self._code(b"[1,2,3]") == ERROR_BAD_JSON

    def test_missing_version(self):
        assert self._code(b'{"op": "stats"}') == ERROR_BAD_VERSION

    def test_wrong_version(self):
        assert self._code(b'{"v": 99, "op": "stats"}') == ERROR_BAD_VERSION

    def test_missing_op(self):
        assert self._code(b'{"v": 1}') == ERROR_BAD_REQUEST

    def test_unknown_op(self):
        assert self._code(b'{"v": 1, "op": "frobnicate"}') == ERROR_UNKNOWN_OP

    def test_error_carries_request_id(self):
        with pytest.raises(ProtocolError) as exc_info:
            decode_request(b'{"v": 1, "id": 42, "op": "frobnicate"}')
        assert exc_info.value.request_id == 42


class TestCoalesceKey:
    def test_same_work_same_key(self):
        a = coalesce_key("reorder", {"pattern": "ring", "seed": 0})
        b = coalesce_key("reorder", {"seed": 0, "pattern": "ring"})
        assert a == b

    def test_any_semantic_difference_changes_key(self):
        base = {"pattern": "ring", "seed": 0, "layout": "block-bunch"}
        key = coalesce_key("reorder", base)
        assert coalesce_key("price", base) != key
        assert coalesce_key("reorder", {**base, "seed": 1}) != key
        assert coalesce_key("reorder", {**base, "kind": "greedy"}) != key
