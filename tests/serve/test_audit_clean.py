"""The serve package must pass the static audit without suppressions.

The daemon is long-lived shared infrastructure: every DET (determinism)
and PAR (concurrency / persistence) contract the audit enforces on the
pipeline applies with interest here, and — unlike the sweep drivers,
which carry a few justified ``# noqa`` suppressions — the serve package
is required to be clean with zero exemptions.
"""

from pathlib import Path

from repro.analysis.det import check_determinism_paths
from repro.analysis.par import check_concurrency_paths

SERVE_DIR = Path(__file__).resolve().parents[2] / "src" / "repro" / "serve"


class TestServeAuditClean:
    def test_det_pass_is_clean(self):
        report = check_determinism_paths([str(SERVE_DIR)])
        assert [str(d) for d in report.diagnostics] == []

    def test_par_pass_is_clean(self):
        report = check_concurrency_paths([str(SERVE_DIR)])
        assert [str(d) for d in report.diagnostics] == []

    def test_serve_is_in_par_persistence_scope(self):
        from repro.analysis.par import _PERSIST_PKGS

        assert "repro/serve/" in _PERSIST_PKGS

    def test_no_noqa_suppressions(self):
        offenders = [
            path.name
            for path in sorted(SERVE_DIR.glob("*.py"))
            if "noqa" in path.read_text()
        ]
        assert offenders == []
