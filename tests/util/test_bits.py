"""Bit-helper unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    bit_reverse,
    ceil_log2,
    highest_power_of_two_below,
    ilog2,
    is_power_of_two,
    next_power_of_two,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, -1, -4, 3, 5, 6, 7, 9, 12, 1000):
            assert not is_power_of_two(n)


class TestIlog2:
    def test_exact(self):
        for k in range(16):
            assert ilog2(1 << k) == k

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 12])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestCeilLog2:
    def test_values(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(4) == 2
        assert ceil_log2(5) == 3
        assert ceil_log2(1024) == 10
        assert ceil_log2(1025) == 11

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_bound_property(self, n):
        k = ceil_log2(n)
        assert 2**k >= n
        assert k == 0 or 2 ** (k - 1) < n


class TestNextPowerOfTwo:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_property(self, n):
        m = next_power_of_two(n)
        assert is_power_of_two(m)
        assert m >= n
        assert m // 2 < n


class TestHighestPowerBelow:
    def test_values(self):
        assert highest_power_of_two_below(2) == 1
        assert highest_power_of_two_below(3) == 2
        assert highest_power_of_two_below(8) == 4
        assert highest_power_of_two_below(9) == 8

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            highest_power_of_two_below(1)

    @given(st.integers(min_value=2, max_value=10**9))
    def test_property(self, n):
        m = highest_power_of_two_below(n)
        assert is_power_of_two(m)
        assert m < n <= 2 * m


class TestBitReverse:
    def test_examples(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(0, 5) == 0

    def test_range_check(self):
        with pytest.raises(ValueError):
            bit_reverse(8, 3)
        with pytest.raises(ValueError):
            bit_reverse(-1, 3)

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_involution(self, v):
        assert bit_reverse(bit_reverse(v, 12), 12) == v
