"""Seeded-RNG helper tests."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        a = make_rng(7).integers(1000, size=8)
        b = make_rng(7).integers(1000, size=8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(10**9)
        b = make_rng(2).integers(10**9)
        assert a != b

    def test_passthrough_generator(self):
        # tests the passthrough contract against the raw numpy factory
        g = np.random.default_rng(0)  # noqa: REP001
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        # the OS-entropy escape hatch is itself under test here
        assert isinstance(make_rng(None), np.random.Generator)  # noqa: DET001


class TestSpawnRng:
    def test_spawn_count(self):
        kids = spawn_rng(make_rng(0), 5)
        assert len(kids) == 5

    def test_spawn_independence(self):
        kids = spawn_rng(make_rng(0), 2)
        a = kids[0].integers(10**9, size=4)
        b = kids[1].integers(10**9, size=4)
        assert not np.array_equal(a, b)

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(make_rng(0), -1)
