"""Validation-helper tests."""

import pytest
from hypothesis import given, strategies as st

from repro.util.validation import (
    check_in_range,
    check_nonnegative,
    check_permutation,
    check_positive,
)


class TestScalarChecks:
    def test_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -3)

    def test_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)

    def test_in_range(self):
        check_in_range("x", 0, 0, 4)
        check_in_range("x", 3, 0, 4)
        with pytest.raises(ValueError):
            check_in_range("x", 4, 0, 4)
        with pytest.raises(ValueError):
            check_in_range("x", -1, 0, 4)


class TestCheckPermutation:
    @given(st.permutations(list(range(12))))
    def test_accepts_permutations(self, perm):
        out = check_permutation(perm, 12)
        assert sorted(out.tolist()) == list(range(12))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="permutation"):
            check_permutation([0, 1, 1, 3], 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_permutation([0, 1, 2, 4], 4)
        with pytest.raises(ValueError):
            check_permutation([-1, 1, 2, 3], 4)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="shape"):
            check_permutation([0, 1, 2], 4)

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="mymap"):
            check_permutation([0, 0], 2, name="mymap")
