"""FaultPlan / FaultEvent construction and query tests."""

import numpy as np
import pytest

from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    FaultStopError,
    cable_degradation,
    hca_retrain,
    single_node_failure,
)


class TestFaultEvent:
    def test_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(kind="meteor-strike", node=0)

    def test_node_required_for_node_faults(self):
        with pytest.raises(ValueError, match="target node"):
            FaultEvent(kind="node-fail")
        with pytest.raises(ValueError, match="target node"):
            FaultEvent(kind="hca-retrain", factor=2.0)

    def test_links_required_for_cable_faults(self):
        with pytest.raises(ValueError, match="link"):
            FaultEvent(kind="cable-degrade", factor=2.0)

    def test_factor_bound(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind="hca-retrain", node=0, factor=0.5)

    def test_negative_onsets_rejected(self):
        with pytest.raises(ValueError, match="onset_stage"):
            FaultEvent(kind="node-fail", node=0, onset_stage=-1)
        with pytest.raises(ValueError, match="onset_seconds"):
            FaultEvent(kind="node-fail", node=0, onset_seconds=-0.1)

    def test_activation_clocks(self):
        ev = FaultEvent(kind="node-fail", node=0, onset_stage=3, onset_seconds=1e-4)
        assert not ev.active_at_stage(2)
        assert ev.active_at_stage(3)
        # the time clock takes precedence when onset_seconds is set
        assert ev.active_at_time(2e-4, stage_index=0)
        assert not ev.active_at_time(0.5e-4, stage_index=99)
        ev2 = FaultEvent(kind="node-fail", node=0, onset_stage=3)
        assert ev2.active_at_time(0.0, stage_index=3)
        assert not ev2.active_at_time(1.0, stage_index=2)


class TestFaultPlan:
    def test_builders_return_plans(self):
        assert isinstance(single_node_failure(2), FaultPlan)
        assert isinstance(hca_retrain(1, 4.0), FaultPlan)
        assert isinstance(cable_degradation([0, 1], 2.0), FaultPlan)

    def test_nested_plan_rejected(self):
        with pytest.raises(TypeError, match="FaultEvent"):
            FaultPlan((single_node_failure(0),))

    def test_failed_nodes_by_stage(self):
        plan = single_node_failure(3, onset_stage=2).with_event(
            FaultEvent(kind="node-fail", node=5, onset_stage=4)
        )
        assert plan.failed_nodes == frozenset({3, 5})
        assert plan.failed_nodes_at_stage(1) == frozenset()
        assert plan.failed_nodes_at_stage(2) == frozenset({3})
        assert plan.failed_nodes_at_stage(4) == frozenset({3, 5})

    def test_validate_targets(self, mid_cluster):
        with pytest.raises(ValueError, match="node"):
            single_node_failure(mid_cluster.n_nodes).validate(mid_cluster)
        with pytest.raises(ValueError, match="link"):
            cable_degradation([mid_cluster.n_links], 2.0).validate(mid_cluster)
        single_node_failure(0).validate(mid_cluster)  # no raise

    def test_beta_scale_compounds(self, mid_cluster):
        plan = cable_degradation([0], 2.0).with_event(
            FaultEvent(kind="cable-degrade", links=(0,), factor=3.0)
        )
        scale = plan.final_beta_scale(mid_cluster)
        assert scale[0] == pytest.approx(6.0)
        assert np.all(scale[1:] == 1.0)

    def test_no_degradation_returns_none(self, mid_cluster):
        plan = single_node_failure(0)
        assert plan.beta_scale_at_stage(mid_cluster, 0) is None
        assert plan.final_beta_scale(mid_cluster) is None

    def test_onset_gates_scale(self, mid_cluster):
        plan = hca_retrain(1, 4.0, onset_stage=5)
        assert plan.beta_scale_at_stage(mid_cluster, 4) is None
        scale = plan.beta_scale_at_stage(mid_cluster, 5)
        assert scale is not None and np.flatnonzero(scale > 1.0).size == 2


class TestFaultStopError:
    def test_carries_context(self):
        err = FaultStopError([5, 3], 7, "ring", at_seconds=1e-4)
        assert err.failed_nodes == (3, 5)
        assert err.stage_index == 7
        assert "ring" in str(err) and "7" in str(err)
        assert isinstance(err, RuntimeError)
