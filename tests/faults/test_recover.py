"""Recovery-policy pricing: fail-stop vs shrink-keep vs shrink-remap."""

import numpy as np
import pytest

from repro.evaluation.evaluator import AllgatherEvaluator
from repro.faults import hca_retrain, single_node_failure
from repro.faults.recover import (
    RECOVERY_POLICIES,
    compare_recovery_policies,
    recover,
)
from repro.mapping.initial import cyclic_scatter, make_layout
from repro.mapping.reorder import HEURISTICS

SIZES = [1024, 16384, 262144]


class TestRecover:
    def test_remap_covers_survivors(self, mid_cluster, mid_D):
        L = cyclic_scatter(mid_cluster, 64)
        res = recover(mid_cluster, L, [7], "ring", D=mid_D)
        assert res.mapping.size == 56
        assert not np.any(mid_cluster.node_of(res.mapping) == 7)
        # remap permutes the surviving cores, nothing else
        assert set(res.mapping) == set(res.reordering.layout)

    def test_deterministic_default_seed(self, mid_cluster, mid_D):
        L = cyclic_scatter(mid_cluster, 64)
        a = recover(mid_cluster, L, [7], "ring", D=mid_D)
        b = recover(mid_cluster, L, [7], "ring", D=mid_D)
        assert np.array_equal(a.mapping, b.mapping)

    def test_nonpow2_recursive_doubling_falls_back(self, mid_cluster, mid_D):
        """RDMH is pow2-only; at 56 survivors the bruck mapper steps in."""
        L = cyclic_scatter(mid_cluster, 64)
        res = recover(mid_cluster, L, [7], "recursive-doubling", D=mid_D)
        assert res.mapping.size == 56
        assert res.mapper_name == "bruckmh"

    def test_pow2_survivor_count_keeps_rdmh(self, mid_cluster, mid_D):
        """Failing 4 of 8 nodes leaves 32 = 2^5 ranks: RDMH still applies."""
        L = cyclic_scatter(mid_cluster, 64)
        res = recover(mid_cluster, L, [0, 2, 4, 6], "recursive-doubling", D=mid_D)
        assert res.mapping.size == 32
        assert res.mapper_name == "rdmh"


class TestCompareRecoveryPolicies:
    def test_remap_never_slower_than_keep_any_heuristic(self, mid_cluster):
        """The acceptance pin: single node failure at p=64, shrink-remap
        <= shrink-keep elementwise, for every registered heuristic."""
        L = cyclic_scatter(mid_cluster, 64)
        comps = compare_recovery_policies(mid_cluster, L, [7], SIZES)
        assert {c.pattern for c in comps} == set(HEURISTICS)
        for comp in comps:
            keep = comp.policies["shrink-keep"].seconds
            remap = comp.policies["shrink-remap"].seconds
            assert np.all(remap <= keep), comp.pattern
            assert comp.p_before == 64 and comp.p_after == 56

    def test_fail_stop_is_aborted(self, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        (comp,) = compare_recovery_policies(
            mid_cluster, L, [7], SIZES, patterns=["ring"]
        )
        fs = comp.policies["fail-stop"]
        assert not fs.completed
        assert np.all(np.isinf(fs.seconds))
        assert set(comp.policies) == set(RECOVERY_POLICIES)

    def test_accepts_fault_plan_and_keeps_degradations(self, mid_cluster):
        """Degradations in the plan persist into the recovered engines."""
        L = cyclic_scatter(mid_cluster, 64)
        plan = single_node_failure(7).with_event(
            hca_retrain(0, 8.0).events[0]
        )
        (degraded,) = compare_recovery_policies(
            mid_cluster, L, plan, SIZES, patterns=["ring"]
        )
        (clean,) = compare_recovery_policies(
            mid_cluster, L, [7], SIZES, patterns=["ring"]
        )
        assert np.all(
            degraded.policies["shrink-keep"].seconds
            >= clean.policies["shrink-keep"].seconds
        )
        assert degraded.failed_nodes == (7,)

    def test_no_failures_rejected(self, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        with pytest.raises(ValueError, match="no node failures"):
            compare_recovery_policies(mid_cluster, L, hca_retrain(0, 2.0), SIZES)

    def test_summary_renders(self, mid_cluster):
        L = cyclic_scatter(mid_cluster, 64)
        (comp,) = compare_recovery_policies(
            mid_cluster, L, [7], SIZES, patterns=["ring"]
        )
        text = comp.summary()
        assert "shrink-remap" in text and "aborted" in text
        assert "64 -> 56" in text


class TestEvaluatorRecoveryLatencies:
    def test_policies_ordered(self, mid_cluster):
        ev = AllgatherEvaluator(mid_cluster, rng=0)
        L = make_layout("cyclic-scatter", mid_cluster, 64)
        keep = ev.recovery_latencies(L, SIZES, [7], policy="shrink-keep")
        remap = ev.recovery_latencies(L, SIZES, [7], policy="shrink-remap")
        stop = ev.recovery_latencies(L, SIZES, [7], policy="fail-stop")
        for k, r, s in zip(keep, remap, stop):
            assert r.seconds <= k.seconds < s.seconds == float("inf")
            assert s.strategy == "fail-stop"
            assert r.strategy == "shrink-remap"

    def test_algorithms_selected_at_survivor_count(self, mid_cluster):
        ev = AllgatherEvaluator(mid_cluster, rng=0)
        L = make_layout("block-bunch", mid_cluster, 64)
        reps = ev.recovery_latencies(L, [64, 1 << 18], [7], policy="shrink-keep")
        # 56 survivors is not a power of two: small sizes go to bruck
        assert reps[0].algorithm == "bruck"
        assert reps[1].algorithm == "ring"

    def test_unknown_policy_rejected(self, mid_cluster):
        ev = AllgatherEvaluator(mid_cluster, rng=0)
        L = make_layout("block-bunch", mid_cluster, 64)
        with pytest.raises(ValueError, match="policy"):
            ev.recovery_latencies(L, SIZES, [7], policy="pray")

    def test_deterministic_across_instances(self, mid_cluster):
        L = make_layout("cyclic-bunch", mid_cluster, 64)
        a = AllgatherEvaluator(mid_cluster, rng=0).recovery_latencies(
            L, SIZES, [3], policy="shrink-remap"
        )
        b = AllgatherEvaluator(mid_cluster, rng=1).recovery_latencies(
            L, SIZES, [3], policy="shrink-remap"
        )
        assert [x.seconds for x in a] == [y.seconds for y in b]
