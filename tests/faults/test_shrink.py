"""ULFM shrink semantics: layouts, reorderings, cluster and communicator."""

import numpy as np
import pytest

from repro.collectives.correctness import RankReordering
from repro.faults.shrink import (
    check_failed_nodes,
    shrink_layout,
    shrink_reordering,
    surviving_ranks,
)
from repro.mapping.initial import block_bunch, cyclic_bunch
from repro.mapping.reorder import reorder_ranks
from repro.simmpi.communicator import Session


class TestSurvivors:
    def test_block_layout_drops_contiguous_cores(self, mid_cluster):
        L = block_bunch(mid_cluster, 64)
        survivors = surviving_ranks(mid_cluster, L, [0])
        assert survivors.size == 56
        # block-bunch puts ranks 0..7 on node 0
        assert survivors.min() == 8
        assert np.array_equal(survivors, np.arange(8, 64))

    def test_cyclic_layout_drops_scattered_ranks(self, mid_cluster):
        L = cyclic_bunch(mid_cluster, 64)
        survivors = surviving_ranks(mid_cluster, L, [3])
        assert survivors.size == 56
        # survivors stay ascending (ULFM keeps relative order)
        assert np.all(np.diff(survivors) > 0)
        assert not np.any(mid_cluster.node_of(L[survivors]) == 3)

    def test_validation(self, mid_cluster):
        L = block_bunch(mid_cluster, 64)
        with pytest.raises(ValueError, match="out of range"):
            surviving_ranks(mid_cluster, L, [mid_cluster.n_nodes])
        with pytest.raises(ValueError, match="every node"):
            surviving_ranks(mid_cluster, L, range(mid_cluster.n_nodes))
        assert check_failed_nodes(mid_cluster, np.array([1, 1, 2])) == {1, 2}

    def test_no_survivors_rejected(self, mid_cluster):
        # a sub-communicator living entirely on node 0
        L = block_bunch(mid_cluster, 64)[:8]
        with pytest.raises(ValueError, match="no surviving ranks"):
            surviving_ranks(mid_cluster, L, [0])


class TestShrinkLayout:
    def test_cores_preserved(self, mid_cluster):
        """Survivors keep their physical cores — no migration."""
        L = cyclic_bunch(mid_cluster, 64)
        shrunk = shrink_layout(mid_cluster, L, [5])
        assert shrunk.size == 56
        assert set(shrunk) <= set(L)
        assert not np.any(mid_cluster.node_of(shrunk) == 5)

    def test_cluster_shrink_matches_identity_layout(self, mid_cluster):
        cores = mid_cluster.shrink([2, 4])
        expected = shrink_layout(
            mid_cluster, np.arange(mid_cluster.n_cores), [2, 4]
        )
        assert np.array_equal(cores, expected)
        assert cores.size == mid_cluster.n_cores - 16

    def test_cluster_shrink_validation(self, mid_cluster):
        with pytest.raises(ValueError):
            mid_cluster.shrink([mid_cluster.n_nodes])
        with pytest.raises(ValueError):
            mid_cluster.shrink(range(mid_cluster.n_nodes))


class TestShrinkReordering:
    def test_keeps_mapping_holes_closed(self, mid_cluster, mid_D):
        L = cyclic_bunch(mid_cluster, 64)
        res = reorder_ranks("ring", L, mid_D, rng=0)
        shrunk = shrink_reordering(mid_cluster, res.reordering, [3])
        assert isinstance(shrunk, RankReordering)
        assert shrunk.p == 56
        # both sides lost exactly the dead node's cores
        assert not np.any(mid_cluster.node_of(shrunk.layout) == 3)
        assert not np.any(mid_cluster.node_of(shrunk.mapping) == 3)
        # layout and mapping still cover the same core multiset
        assert set(shrunk.layout) == set(shrunk.mapping)

    def test_identity_stays_identity(self, mid_cluster):
        L = block_bunch(mid_cluster, 64)
        shrunk = shrink_reordering(mid_cluster, RankReordering.identity(L), [1])
        assert shrunk.is_identity()


class TestCommunicatorShrink:
    def test_shrink_size_and_chaining(self, mid_cluster):
        sess = Session(mid_cluster, layout="cyclic-bunch")
        comm = sess.comm_world()
        shrunk = comm.shrink([3])
        assert shrunk.size == 56
        healed = shrunk.reordered("ring")
        assert healed.size == 56
        # remapped communicator still runs a correct allgather
        out = healed.allgather_data(block_bytes=8)
        assert out.shape[0] == 56

    def test_reordered_then_shrunk_stays_reordered(self, mid_cluster):
        sess = Session(mid_cluster, layout="cyclic-scatter")
        ring = sess.comm_world().reordered("ring")
        shrunk = ring.shrink([2])
        assert shrunk.size == 56
        assert shrunk.is_reordered()
        assert shrunk.pattern == "ring"

    def test_shrunk_latency_priceable(self, mid_cluster):
        sess = Session(mid_cluster)
        t = sess.comm_world().shrink([0]).allgather_latency(block_bytes=4096)
        assert t > 0
