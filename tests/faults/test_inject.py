"""Fault injection in both engines (barrier and event-driven)."""

import numpy as np
import pytest

from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.faults import (
    FaultStopError,
    cable_degradation,
    hca_retrain,
    single_node_failure,
)
from repro.mapping.initial import block_bunch
from repro.simmpi.engine import TimingEngine
from repro.simmpi.eventsim import EventDrivenEngine


@pytest.fixture(scope="module")
def setting(mid_cluster):
    M = block_bunch(mid_cluster, 64)
    sched = RingAllgather().schedule(64)
    return mid_cluster, M, sched


class TestBarrierEngineInjection:
    def test_no_plan_unchanged(self, mid_engine, setting):
        _, M, sched = setting
        assert (
            mid_engine.evaluate(sched, M, 4096).total_seconds
            == mid_engine.evaluate(sched, M, 4096, fault_plan=None).total_seconds
        )

    def test_degradation_onset_mid_schedule(self, mid_engine, setting):
        _, M, sched = setting
        base = mid_engine.evaluate(sched, M, 4096).total_seconds
        early = mid_engine.evaluate(
            sched, M, 4096, fault_plan=hca_retrain(2, 4.0, onset_stage=0)
        ).total_seconds
        late = mid_engine.evaluate(
            sched, M, 4096, fault_plan=hca_retrain(2, 4.0, onset_stage=40)
        ).total_seconds
        # more degraded rounds => slower; both slower than clean
        assert early > late > base

    def test_onset_past_schedule_end_harmless(self, mid_engine, setting):
        _, M, sched = setting
        base = mid_engine.evaluate(sched, M, 4096).total_seconds
        never = mid_engine.evaluate(
            sched, M, 4096, fault_plan=hca_retrain(2, 4.0, onset_stage=10**6)
        ).total_seconds
        assert never == pytest.approx(base, rel=1e-12)

    def test_node_failure_aborts_at_round(self, mid_engine, setting):
        _, M, sched = setting
        with pytest.raises(FaultStopError) as info:
            mid_engine.evaluate(
                sched, M, 4096, fault_plan=single_node_failure(3, onset_stage=30)
            )
        assert info.value.failed_nodes == (3,)
        assert info.value.stage_index == 30
        assert info.value.schedule_name == sched.name

    def test_failure_after_last_round_harmless(self, mid_engine, setting):
        _, M, sched = setting
        base = mid_engine.evaluate(sched, M, 4096).total_seconds
        ok = mid_engine.evaluate(
            sched, M, 4096, fault_plan=single_node_failure(3, onset_stage=10**6)
        ).total_seconds
        assert ok == pytest.approx(base, rel=1e-12)

    def test_untouched_node_failure_ignored(self, mid_cluster, mid_engine):
        """A failed node outside the communicating set never aborts."""
        M = block_bunch(mid_cluster, 16)  # nodes 0..1 only
        sched = RecursiveDoublingAllgather().schedule(16)
        base = mid_engine.evaluate(sched, M, 1024).total_seconds
        ok = mid_engine.evaluate(
            sched, M, 1024, fault_plan=single_node_failure(7)
        ).total_seconds
        assert ok == pytest.approx(base, rel=1e-12)

    def test_cable_degradation_scales_route_traffic(self, mid_cluster, mid_engine):
        M = block_bunch(mid_cluster, 64)
        sched = RingAllgather().schedule(64)
        base = mid_engine.evaluate(sched, M, 1 << 16).total_seconds
        hca_ids = [int(mid_cluster.hca_up(0)), int(mid_cluster.hca_down(0))]
        hurt = mid_engine.evaluate(
            sched, M, 1 << 16, fault_plan=cable_degradation(hca_ids, 8.0)
        ).total_seconds
        assert hurt > base

    def test_bad_target_rejected(self, mid_cluster, mid_engine, setting):
        _, M, sched = setting
        with pytest.raises(ValueError, match="node"):
            mid_engine.evaluate(
                sched, M, 4096,
                fault_plan=single_node_failure(mid_cluster.n_nodes),
            )


class TestEventEngineInjection:
    def test_round_clock_matches_barrier_semantics(self, setting):
        cluster, M, sched = setting
        engine = EventDrivenEngine(cluster)
        base = engine.evaluate(sched, M, 4096).total_seconds
        deg = engine.evaluate(
            sched, M, 4096, fault_plan=hca_retrain(2, 4.0, onset_stage=30)
        ).total_seconds
        assert deg > base
        with pytest.raises(FaultStopError) as info:
            engine.evaluate(
                sched, M, 4096, fault_plan=single_node_failure(3, onset_stage=30)
            )
        assert info.value.stage_index == 30

    def test_onset_seconds_clock(self, setting):
        cluster, M, sched = setting
        engine = EventDrivenEngine(cluster)
        base = engine.evaluate(sched, M, 4096).total_seconds
        with pytest.raises(FaultStopError) as info:
            engine.evaluate(
                sched, M, 4096,
                fault_plan=single_node_failure(3, onset_seconds=base / 2),
            )
        assert info.value.at_seconds is not None
        assert info.value.at_seconds >= base / 2
        # onset after the run finishes: no abort
        ok = engine.evaluate(
            sched, M, 4096,
            fault_plan=single_node_failure(3, onset_seconds=base * 10),
        ).total_seconds
        assert ok == pytest.approx(base, rel=1e-12)

    def test_degradation_onset_seconds_slows_tail_only(self, setting):
        cluster, M, sched = setting
        engine = EventDrivenEngine(cluster)
        base = engine.evaluate(sched, M, 4096).total_seconds
        early = engine.evaluate(
            sched, M, 4096, fault_plan=hca_retrain(2, 4.0, onset_seconds=0.0)
        ).total_seconds
        late = engine.evaluate(
            sched, M, 4096,
            fault_plan=hca_retrain(2, 4.0, onset_seconds=0.8 * base),
        ).total_seconds
        assert early > late
        assert late >= base

    def test_engines_agree_on_full_degradation(self, setting):
        """A from-the-start degradation equals a statically degraded engine."""
        from repro.simmpi.noise import degrade_node_hca

        cluster, M, sched = setting
        scale = degrade_node_hca(cluster, [2], 4.0)
        static = EventDrivenEngine(cluster, link_beta_scale=scale)
        dynamic = EventDrivenEngine(cluster)
        assert dynamic.evaluate(
            sched, M, 4096, fault_plan=hca_retrain(2, 4.0)
        ).total_seconds == pytest.approx(
            static.evaluate(sched, M, 4096).total_seconds, rel=1e-12
        )

    def test_barrier_equivalent_too(self, mid_cluster, setting):
        from repro.simmpi.noise import degrade_node_hca

        _, M, sched = setting
        scale = degrade_node_hca(mid_cluster, [2], 4.0)
        static = TimingEngine(mid_cluster, link_beta_scale=scale)
        dynamic = TimingEngine(mid_cluster)
        assert dynamic.evaluate(
            sched, M, 4096, fault_plan=hca_retrain(2, 4.0)
        ).total_seconds == pytest.approx(
            static.evaluate(sched, M, 4096).total_seconds, rel=1e-12
        )
