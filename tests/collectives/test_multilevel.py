"""Multi-level hierarchical allgather tests (extension)."""

import pytest

from repro.collectives.multilevel import MultiLevelAllgather, socket_groups_for
from repro.collectives.hierarchical import HierarchicalAllgather, contiguous_groups
from repro.mapping.initial import block_bunch
from repro.simmpi.data import DataExecutor


def run(nodes, leader_alg="rd", intra="binomial"):
    alg = MultiLevelAllgather(nodes, leader_alg=leader_alg, intra=intra)
    exe = DataExecutor(alg.p)
    exe.fill_identity()
    exe.run(alg.stages(alg.p))
    exe.assert_allgather_complete()
    return alg


class TestSocketGroupsFor:
    def test_nested_shape(self):
        nodes = socket_groups_for(16, 8, 4)
        assert nodes == [
            [[0, 1, 2, 3], [4, 5, 6, 7]],
            [[8, 9, 10, 11], [12, 13, 14, 15]],
        ]

    def test_divisibility_checked(self):
        with pytest.raises(ValueError):
            socket_groups_for(10, 8, 4)
        with pytest.raises(ValueError):
            socket_groups_for(16, 8, 3)


class TestCorrectness:
    @pytest.mark.parametrize("leader_alg", ["rd", "ring"])
    @pytest.mark.parametrize("intra", ["binomial", "linear"])
    def test_uniform(self, leader_alg, intra):
        run(socket_groups_for(32, 8, 4), leader_alg, intra)

    def test_nonuniform_sockets(self):
        nodes = [
            [[0, 1, 2], [3, 4]],
            [[5], [6, 7, 8, 9]],
            [[10, 11], [12], [13, 14, 15]],
        ]
        run(nodes, leader_alg="ring")

    def test_permuted_members(self):
        nodes = [
            [[5, 2], [7, 0]],
            [[4, 1], [3, 6]],
        ]
        run(nodes, leader_alg="rd")

    def test_single_node(self):
        run([ [[0, 1], [2, 3]] ], leader_alg="ring")

    def test_validation(self):
        with pytest.raises(ValueError, match="partition"):
            MultiLevelAllgather([[[0, 1]], [[1, 2]]])
        with pytest.raises(ValueError, match="empty"):
            MultiLevelAllgather([[[0, 1], []]])
        with pytest.raises(ValueError, match="power-of-two"):
            MultiLevelAllgather(socket_groups_for(24, 8, 4), leader_alg="rd")
        with pytest.raises(ValueError):
            MultiLevelAllgather(socket_groups_for(16, 8, 4), leader_alg="x")

    def test_wrong_p(self):
        alg = MultiLevelAllgather(socket_groups_for(16, 8, 4))
        with pytest.raises(ValueError):
            alg.schedule(8)


class TestStructure:
    def test_phase_ordering(self):
        alg = MultiLevelAllgather(socket_groups_for(32, 8, 4), "rd", "binomial")
        labels = [s.label for s in alg.schedule(32).stages]
        order = ["ml:sgather", "ml:ngather", "ml:leaders", "ml:nbcast", "ml:sbcast"]
        positions = [min(i for i, l in enumerate(labels) if l.startswith(tag)) for tag in order]
        assert positions == sorted(positions)

    def test_node_leaders(self):
        alg = MultiLevelAllgather([[[3, 1], [2, 0]], [[6, 4], [5, 7]]])
        assert alg.node_leaders == [3, 6]

    def test_volume_matches_two_level(self):
        """Phases 2-4 carry the same leader-level volume as the paper's
        two-level scheme; the socket phases add strictly intra-socket
        traffic."""
        p = 32
        ml = MultiLevelAllgather(socket_groups_for(p, 8, 4), "rd", "binomial").schedule(p)
        hl = HierarchicalAllgather(contiguous_groups(p, 8), "rd", "binomial").schedule(p)
        ml_leader = sum(
            s.total_units() for s in ml.stages if s.label.startswith("ml:leaders")
        )
        hl_leader = sum(
            s.total_units() for s in hl.stages if s.label.startswith("hier:leaders")
        )
        assert ml_leader == hl_leader


class TestTiming:
    def test_engine_prices_it(self, mid_engine, mid_cluster):
        p = 64
        alg = MultiLevelAllgather(socket_groups_for(p, 8, 4), "rd", "binomial")
        t = mid_engine.evaluate(alg.schedule(p), block_bunch(mid_cluster, p), 1024).total_seconds
        assert t > 0

    def test_socket_level_cuts_cross_socket_traffic(self):
        """On fat nodes, the extra socket-leader level aggregates the
        cross-socket traffic: only socket leaders cross the QPI during the
        gather, instead of every rank (the Ma et al. [6] motivation)."""
        from repro.simmpi.engine import TimingEngine
        from repro.topology.gpc import ClusterTopology
        from repro.topology.hardware import MachineTopology

        cluster = ClusterTopology(n_nodes=2, machine=MachineTopology(4, 8))
        engine = TimingEngine(cluster)
        p = 64
        L = block_bunch(cluster, p)

        def qpi_crossings(alg):
            """Messages whose route crosses the inter-socket interconnect.

            The cross-socket *byte* volume is invariant (every remote
            block must cross once); the socket-leader level aggregates it
            into far fewer messages, saving per-message latency.
            """
            count = 0
            for stage in alg.schedule(p).stages:
                if "bcast" in stage.label:
                    continue  # compare the gather side only
                src = L[stage.src]
                dst = L[stage.dst]
                same_node = cluster.node_of(src) == cluster.node_of(dst)
                cross = same_node & (cluster.socket_of(src) != cluster.socket_of(dst))
                count += int(cross.sum()) * stage.repeat
            return count

        ml = MultiLevelAllgather(socket_groups_for(p, 32, 8), "ring", "linear")
        hl = HierarchicalAllgather(contiguous_groups(p, 32), "ring", "linear")
        # 3 socket leaders per node cross, instead of 24 individual ranks
        assert qpi_crossings(ml) == 6
        assert qpi_crossings(hl) == 48
