"""Cross-algorithm conservation and consistency properties.

Every allgather algorithm, whatever its stage structure, must move the
same *minimum* information: each of the ``p`` blocks must reach ``p-1``
other ranks.  These tests pin the family-wide invariants that individual
algorithm tests cannot see.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.allgather_bruck import BruckAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_rd_nonpow2 import FoldedRecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.hierarchical import HierarchicalAllgather, contiguous_groups
from repro.collectives.multilevel import MultiLevelAllgather, socket_groups_for

FLAT_ALGORITHMS = [
    RingAllgather(),
    BruckAllgather(),
    FoldedRecursiveDoublingAllgather(),
]


def lower_bound_units(p):
    """Every block must traverse at least p-1 rank boundaries."""
    return p * (p - 1)


class TestVolumeConservation:
    @pytest.mark.parametrize("alg", FLAT_ALGORITHMS, ids=lambda a: a.name)
    @pytest.mark.parametrize("p", [5, 8, 12, 16])
    def test_at_least_information_lower_bound(self, alg, p):
        assert alg.schedule(p).total_units() >= lower_bound_units(p)

    @pytest.mark.parametrize("p", [8, 16, 32])
    def test_rd_and_ring_are_volume_optimal(self, p):
        """Both classic algorithms move exactly the lower bound."""
        assert RecursiveDoublingAllgather().schedule(p).total_units() == lower_bound_units(p)
        assert RingAllgather().schedule(p).total_units() == lower_bound_units(p)

    @pytest.mark.parametrize("alg", FLAT_ALGORITHMS, ids=lambda a: a.name)
    @pytest.mark.parametrize("p", [6, 8, 13])
    def test_timing_view_matches_execution_view(self, alg, p):
        sched = alg.schedule(p).total_units()
        stages = sum(s.total_units() for s in alg.stages(p))
        assert sched == pytest.approx(stages)

    def test_hierarchical_volume_exceeds_flat(self):
        """The leader scheme re-ships blocks (gather + exchange + bcast),
        trading volume for channel locality."""
        p = 32
        hier = HierarchicalAllgather(contiguous_groups(p, 8)).schedule(p).total_units()
        flat = RingAllgather().schedule(p).total_units()
        assert hier > flat

    def test_multilevel_volume_matches_two_level(self):
        """Adding the socket level repartitions the gather/bcast volume
        without increasing it — the win is locality, not bytes."""
        p = 32
        ml = MultiLevelAllgather(socket_groups_for(p, 8, 4)).schedule(p).total_units()
        hl = HierarchicalAllgather(contiguous_groups(p, 8)).schedule(p).total_units()
        assert ml == pytest.approx(hl)


class TestStageSanity:
    @pytest.mark.parametrize("alg", FLAT_ALGORITHMS, ids=lambda a: a.name)
    @settings(max_examples=12, deadline=None)
    @given(p=st.integers(2, 24))
    def test_no_rank_sends_twice_per_stage(self, alg, p):
        """Single-port model: each rank sends at most one message per stage."""
        for stage in alg.stages(p):
            src = stage.src.tolist()
            assert len(src) == len(set(src)), stage.label

    @pytest.mark.parametrize("alg", FLAT_ALGORITHMS, ids=lambda a: a.name)
    @settings(max_examples=12, deadline=None)
    @given(p=st.integers(2, 24))
    def test_no_rank_receives_twice_per_stage(self, alg, p):
        for stage in alg.stages(p):
            dst = stage.dst.tolist()
            assert len(dst) == len(set(dst)), stage.label

    @pytest.mark.parametrize("p", [8, 12, 16])
    def test_hierarchical_single_port(self, p):
        alg = HierarchicalAllgather(contiguous_groups(p, 4), "ring", "binomial")
        for stage in alg.stages(p):
            assert len(set(stage.src.tolist())) == stage.n_messages
            assert len(set(stage.dst.tolist())) == stage.n_messages

    @pytest.mark.parametrize("alg", FLAT_ALGORITHMS, ids=lambda a: a.name)
    def test_ranks_in_range(self, alg):
        p = 14
        sched = alg.schedule(p)
        assert sched.max_rank() < p
        for stage in sched.stages:
            assert stage.src.min() >= 0 and stage.dst.min() >= 0
