"""Schedule IR tests."""

import numpy as np
import pytest

from repro.collectives.schedule import Schedule, Stage, make_stage


class TestStage:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Stage(src=np.array([0, 1]), dst=np.array([1]), units=np.array([1.0, 1.0]))

    def test_self_message_rejected(self):
        with pytest.raises(ValueError, match="self-message"):
            Stage(src=np.array([0]), dst=np.array([0]), units=np.array([1.0]))

    def test_bad_repeat_rejected(self):
        with pytest.raises(ValueError):
            Stage(src=np.array([0]), dst=np.array([1]), units=np.array([1.0]), repeat=0)

    def test_blocks_length_checked(self):
        with pytest.raises(ValueError, match="one entry per message"):
            Stage(
                src=np.array([0, 1]),
                dst=np.array([1, 2]),
                units=np.array([1.0, 1.0]),
                blocks=[(0,)],
            )

    def test_total_units(self):
        s = Stage(src=np.array([0, 1]), dst=np.array([1, 0]), units=np.array([2.0, 3.0]), repeat=4)
        assert s.total_units() == 20.0
        assert s.n_messages == 2


class TestMakeStage:
    def test_units_from_blocks(self):
        s = make_stage([(0, 1, (5, 6)), (1, 2, (7,))])
        assert list(s.units) == [2.0, 1.0]
        assert s.blocks == [(5, 6), (7,)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_stage([])


class TestSchedule:
    def test_counters(self):
        st1 = make_stage([(0, 1, (0,))], repeat=3)
        st2 = make_stage([(1, 0, (1,)), (0, 2, (0,))])
        sched = Schedule(p=3, stages=[st1, st2], name="x")
        assert sched.n_stages() == 4
        assert sched.n_messages() == 5
        assert sched.total_units() == 3 + 2
        assert sched.max_rank() == 2

    def test_empty_schedule_rejected(self):
        # An all-empty schedule must never be mistaken for a valid one.
        with pytest.raises(ValueError, match="at least one stage"):
            Schedule(p=2)
        with pytest.raises(ValueError, match="p >= 2"):
            Schedule(p=1)

    def test_rank_out_of_bounds_rejected(self):
        st = make_stage([(0, 3, (0,))])
        with pytest.raises(ValueError, match="outside"):
            Schedule(p=3, stages=[st])

    def test_max_rank_raises_on_mutated_empty_schedule(self):
        sched = Schedule(p=3, stages=[make_stage([(0, 1, (0,))])])
        sched.stages = []  # simulate post-construction corruption
        with pytest.raises(ValueError, match="no stages"):
            sched.max_rank()
