"""Order-restoration tests (paper §V-B) — the heart of reordering safety."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.allgather_bruck import BruckAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.correctness import (
    OrderStrategy,
    RankReordering,
    end_shuffle_seconds,
    execute_reordered_allgather,
    init_comm_stage,
)
from repro.collectives.hierarchical import HierarchicalAllgather, contiguous_groups
from repro.simmpi.costmodel import CostModel
from repro.util.rng import make_rng


def reordering_from_perm(perm):
    """Layout = identity cores; mapping permutes them."""
    layout = np.arange(len(perm), dtype=np.int64)
    return RankReordering(layout=layout, mapping=np.asarray(perm, dtype=np.int64))


class TestRankReordering:
    def test_identity(self):
        ro = RankReordering.identity(np.array([4, 5, 6, 7]))
        assert ro.is_identity()
        assert ro.n_displaced() == 0
        assert np.array_equal(ro.old_of_new, np.arange(4))

    def test_inverse_consistency(self):
        ro = reordering_from_perm([2, 0, 3, 1])
        assert np.array_equal(ro.new_of_old[ro.old_of_new], np.arange(4))
        assert np.array_equal(ro.old_of_new[ro.new_of_old], np.arange(4))

    def test_nontrivial_layout(self):
        """Reordering over non-identity core labels still inverts correctly."""
        layout = np.array([10, 30, 20, 40])
        mapping = np.array([30, 10, 40, 20])
        ro = RankReordering(layout=layout, mapping=mapping)
        # new rank 0 runs on core 30, which hosted old rank 1
        assert ro.old_of_new[0] == 1
        assert ro.new_of_old[1] == 0

    def test_core_set_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            RankReordering(layout=np.array([0, 1]), mapping=np.array([0, 2]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RankReordering(layout=np.array([0, 1, 2]), mapping=np.array([0, 1]))


class TestInitCommStage:
    def test_identity_gives_none(self):
        assert init_comm_stage(RankReordering.identity(np.arange(8))) is None

    def test_stage_contents(self):
        ro = reordering_from_perm([1, 0, 2, 3])  # ranks 0 and 1 swapped
        stage = init_comm_stage(ro)
        assert stage.n_messages == 2
        # block b flows from its holder (new rank new_of_old[b]) to rank b
        msgs = {(int(s), int(d), blk) for s, d, blk in zip(stage.src, stage.dst, stage.blocks)}
        assert msgs == {(1, 0, (0,)), (0, 1, (1,))}

    def test_all_messages_single_block(self):
        ro = reordering_from_perm([3, 2, 1, 0])
        stage = init_comm_stage(ro)
        assert np.all(stage.units == 1.0)


class TestEndShuffleSeconds:
    def test_identity_free(self):
        assert end_shuffle_seconds(RankReordering.identity(np.arange(4)), 1024, CostModel()) == 0.0

    def test_scales_with_displaced_count(self):
        cm = CostModel()
        two = end_shuffle_seconds(reordering_from_perm([1, 0, 2, 3]), 1024, cm)
        four = end_shuffle_seconds(reordering_from_perm([1, 0, 3, 2]), 1024, cm)
        assert four == pytest.approx(2 * two)

    def test_has_per_block_overhead(self):
        """Small blocks still pay the per-move cost (the Fig. 3 endShfl dips)."""
        cm = CostModel()
        tiny = end_shuffle_seconds(reordering_from_perm([1, 0, 2, 3]), 1, cm)
        assert tiny >= 2 * cm.copy_alpha


class TestExecuteReordered:
    PAYLOAD = staticmethod(lambda o: o * 1000003 + 7)

    def assert_ordered(self, out, p):
        expected = np.array([self.PAYLOAD(j) for j in range(p)])
        assert np.array_equal(out, np.broadcast_to(expected, (p, p)))

    @pytest.mark.parametrize("strategy", ["initcomm", "endshfl"])
    @pytest.mark.parametrize("alg", [RecursiveDoublingAllgather(), BruckAllgather()])
    def test_rd_bruck_strategies(self, alg, strategy):
        rng = make_rng(3)
        ro = reordering_from_perm(rng.permutation(16))
        out = execute_reordered_allgather(alg, ro, strategy)
        self.assert_ordered(out, 16)

    def test_ring_inline(self):
        rng = make_rng(4)
        ro = reordering_from_perm(rng.permutation(12))
        out = execute_reordered_allgather(RingAllgather(), ro, "inline")
        self.assert_ordered(out, 12)

    def test_hierarchical_reordered(self):
        rng = make_rng(5)
        ro = reordering_from_perm(rng.permutation(16))
        alg = HierarchicalAllgather(contiguous_groups(16, 4), "rd", "binomial")
        for strategy in ("initcomm", "endshfl"):
            out = execute_reordered_allgather(alg, ro, strategy)
            self.assert_ordered(out, 16)

    def test_inline_rejected_for_rd(self):
        ro = reordering_from_perm([1, 0, 2, 3])
        with pytest.raises(ValueError, match="inline placement"):
            execute_reordered_allgather(RecursiveDoublingAllgather(), ro, "inline")

    def test_none_rejected_for_real_reordering(self):
        ro = reordering_from_perm([1, 0, 2, 3])
        with pytest.raises(ValueError, match="identity"):
            execute_reordered_allgather(RingAllgather(), ro, "none")

    def test_none_ok_for_identity(self):
        ro = RankReordering.identity(np.arange(8))
        out = execute_reordered_allgather(RingAllgather(), ro, "none")
        self.assert_ordered(out, 8)

    @settings(max_examples=25, deadline=None)
    @given(perm=st.permutations(list(range(8))))
    def test_property_rd_initcomm(self, perm):
        out = execute_reordered_allgather(
            RecursiveDoublingAllgather(), reordering_from_perm(perm), "initcomm"
        )
        self.assert_ordered(out, 8)

    @settings(max_examples=25, deadline=None)
    @given(perm=st.permutations(list(range(9))))
    def test_property_ring_inline(self, perm):
        out = execute_reordered_allgather(
            RingAllgather(), reordering_from_perm(perm), "inline"
        )
        self.assert_ordered(out, 9)

    @settings(max_examples=25, deadline=None)
    @given(perm=st.permutations(list(range(10))))
    def test_property_bruck_endshfl(self, perm):
        out = execute_reordered_allgather(
            BruckAllgather(), reordering_from_perm(perm), "endshfl"
        )
        self.assert_ordered(out, 10)


class TestOrderStrategyParse:
    def test_parse_names(self):
        assert OrderStrategy.parse("initcomm") is OrderStrategy.INIT_COMM
        assert OrderStrategy.parse("ENDSHFL") is OrderStrategy.END_SHUFFLE
        assert OrderStrategy.parse(OrderStrategy.INLINE) is OrderStrategy.INLINE

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            OrderStrategy.parse("whatever")
