"""Hierarchical allgather tests (paper §II / Fig. 4 substrate)."""

import numpy as np
import pytest

from repro.collectives.hierarchical import HierarchicalAllgather, contiguous_groups
from repro.simmpi.data import DataExecutor


def run(groups, leader_alg, intra):
    p = sum(len(g) for g in groups)
    alg = HierarchicalAllgather(groups, leader_alg=leader_alg, intra=intra)
    exe = DataExecutor(p)
    exe.fill_identity()
    exe.run(alg.stages(p))
    exe.assert_allgather_complete()
    return alg


class TestCorrectness:
    @pytest.mark.parametrize("leader_alg", ["rd", "ring"])
    @pytest.mark.parametrize("intra", ["binomial", "linear"])
    def test_uniform_groups(self, leader_alg, intra):
        run(contiguous_groups(32, 8), leader_alg, intra)

    def test_nonuniform_groups_ring(self):
        run([[0, 1, 2], [3, 4], [5, 6, 7, 8], [9]], "ring", "binomial")

    def test_permuted_groups(self):
        """Reordered group order / membership still gathers correctly."""
        groups = [[5, 2, 7], [0, 4, 1], [3, 6, 8]]
        run(groups, "ring", "binomial")

    def test_single_group(self):
        run([list(range(6))], "ring", "binomial")

    def test_non_pow2_group_count_rd_rejected(self):
        with pytest.raises(ValueError, match="power-of-two group count"):
            HierarchicalAllgather(contiguous_groups(12, 4), leader_alg="rd")

    def test_groups_must_partition(self):
        with pytest.raises(ValueError, match="partition"):
            HierarchicalAllgather([[0, 1], [1, 2]])
        with pytest.raises(ValueError, match="empty"):
            HierarchicalAllgather([[0, 1], []])

    def test_bad_kind_args(self):
        with pytest.raises(ValueError):
            HierarchicalAllgather([[0, 1]], leader_alg="foo")
        with pytest.raises(ValueError):
            HierarchicalAllgather([[0, 1]], intra="bar")


class TestStructure:
    def test_phase_labels_in_order(self):
        alg = HierarchicalAllgather(contiguous_groups(16, 4), "rd", "binomial")
        labels = [s.label for s in alg.stages(16)]
        gather = [l for l in labels if l.startswith("hier:gather")]
        leaders = [l for l in labels if l.startswith("hier:leaders")]
        bcast = [l for l in labels if l.startswith("hier:bcast")]
        assert labels == gather + leaders + bcast
        assert len(gather) == 2      # log2(4)
        assert len(leaders) == 2     # log2(4) groups
        assert len(bcast) == 2

    def test_leaders_are_group_heads(self):
        groups = [[3, 1], [0, 2]]
        alg = HierarchicalAllgather(groups, "ring", "linear")
        assert alg.leaders == [3, 0]

    def test_wrong_p_rejected(self):
        alg = HierarchicalAllgather(contiguous_groups(8, 4))
        with pytest.raises(ValueError):
            list(alg.stages(16))
        with pytest.raises(ValueError):
            alg.schedule(16)


class TestTimingView:
    def test_ring_compression(self):
        alg = HierarchicalAllgather(contiguous_groups(32, 4), "ring", "binomial")
        sched = alg.schedule(32)
        ring_stages = [s for s in sched.stages if "leaders-ring" in s.label]
        assert len(ring_stages) == 1
        assert ring_stages[0].repeat == 7

    def test_compression_preserves_volume(self):
        alg = HierarchicalAllgather(contiguous_groups(32, 4), "ring", "binomial")
        sched_units = alg.schedule(32).total_units()
        stage_units = sum(s.total_units() for s in alg.stages(32))
        assert sched_units == pytest.approx(stage_units)

    def test_nonuniform_ring_not_compressed(self):
        alg = HierarchicalAllgather([[0, 1, 2], [3, 4], [5, 6, 7, 8]], "ring", "linear")
        sched = alg.schedule(9)
        ring_stages = [s for s in sched.stages if "leaders-ring" in s.label]
        assert len(ring_stages) == 2  # G-1 explicit stages

    def test_rd_leader_volume_doubles(self):
        alg = HierarchicalAllgather(contiguous_groups(32, 4), "rd", "linear")
        leader = [s for s in alg.schedule(32).stages if "leaders-rd" in s.label]
        assert [float(s.units.max()) for s in leader] == [4.0, 8.0, 16.0]

    def test_bcast_carries_full_vector(self):
        alg = HierarchicalAllgather(contiguous_groups(8, 4), "ring", "binomial")
        bcast = [s for s in alg.schedule(8).stages if "bcast" in s.label]
        assert all(np.all(s.units == 8.0) for s in bcast)


class TestContiguousGroups:
    def test_shape(self):
        g = contiguous_groups(12, 3)
        assert g == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11]]

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            contiguous_groups(10, 3)
