"""Folded recursive-doubling allgather tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.allgather_bruck import BruckAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_rd_nonpow2 import FoldedRecursiveDoublingAllgather
from repro.collectives.correctness import RankReordering, execute_reordered_allgather
from repro.simmpi.data import DataExecutor
from repro.util.rng import make_rng


def run(p):
    exe = DataExecutor(p)
    exe.fill_identity()
    exe.run(FoldedRecursiveDoublingAllgather().stages(p))
    exe.assert_allgather_complete()


class TestCorrectness:
    @pytest.mark.parametrize("p", [2, 3, 5, 6, 7, 8, 11, 12, 16, 20, 33])
    def test_completes(self, p):
        run(p)

    @settings(max_examples=20, deadline=None)
    @given(p=st.integers(2, 48))
    def test_any_size(self, p):
        run(p)

    def test_pow2_has_no_fold(self):
        labels = [s.label for s in FoldedRecursiveDoublingAllgather().stages(16)]
        assert not any("fold" in l for l in labels)

    def test_nonpow2_has_fold_and_unfold(self):
        labels = [s.label for s in FoldedRecursiveDoublingAllgather().stages(12)]
        assert labels[0] == "rdf:fold"
        assert labels[-1] == "rdf:unfold"
        assert len([l for l in labels if l.startswith("rdf:stage")]) == 3  # log2(8)


class TestStructure:
    def test_split(self):
        f = FoldedRecursiveDoublingAllgather
        assert f._split(8) == (8, 0)
        assert f._split(12) == (8, 4)
        assert f._split(9) == (8, 1)

    def test_schedule_volume_matches_stages(self):
        alg = FoldedRecursiveDoublingAllgather()
        for p in (8, 12, 13):
            sched_units = alg.schedule(p).total_units()
            stage_units = sum(s.total_units() for s in alg.stages(p))
            assert sched_units == pytest.approx(stage_units)

    def test_matches_plain_rd_at_pow2(self):
        folded = FoldedRecursiveDoublingAllgather().schedule(16)
        plain = RecursiveDoublingAllgather().schedule(16)
        assert folded.total_units() == plain.total_units()
        assert folded.n_stages() == plain.n_stages()


class TestReordering:
    @pytest.mark.parametrize("strategy", ["initcomm", "endshfl"])
    def test_order_restoration(self, strategy):
        rng = make_rng(2)
        ro = RankReordering(layout=np.arange(12), mapping=rng.permutation(12))
        out = execute_reordered_allgather(FoldedRecursiveDoublingAllgather(), ro, strategy)
        expected = np.arange(12) * 1000003 + 7
        assert np.array_equal(out, np.broadcast_to(expected, (12, 12)))


class TestVsBruck:
    def test_bruck_cheaper_for_small_messages(self, mid_engine, mid_cluster):
        """The registry's preference for Bruck at non-pow2 sizes is borne
        out: the fold/unfold rounds cost the folded RD an extra
        full-vector transfer."""
        from repro.mapping.initial import block_bunch

        p = 48
        M = block_bunch(mid_cluster, p)
        folded = mid_engine.evaluate(
            FoldedRecursiveDoublingAllgather().schedule(p), M, 256
        ).total_seconds
        bruck = mid_engine.evaluate(BruckAllgather().schedule(p), M, 256).total_seconds
        assert bruck < folded
