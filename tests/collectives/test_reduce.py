"""Binomial reduce tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.reduce import BinomialReduce, simulate_reduce
from repro.util.rng import make_rng


class TestSimulate:
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13, 16])
    def test_sum(self, p):
        rng = make_rng(p)
        inputs = rng.integers(0, 1000, size=(p, 4))
        out = simulate_reduce(inputs)
        assert np.array_equal(out, inputs.sum(axis=0))

    @pytest.mark.parametrize("root", [1, 3, 7])
    def test_nonzero_root(self, root):
        inputs = np.arange(8)[:, None] * np.ones((8, 2), dtype=int)
        out = simulate_reduce(inputs, root=root)
        assert np.all(out == 28)

    def test_max_op(self):
        inputs = np.array([[3.0], [9.0], [1.0], [5.0]])
        assert simulate_reduce(inputs, op=np.maximum)[0] == 9.0

    @settings(max_examples=25, deadline=None)
    @given(p=st.integers(2, 40), root=st.integers(0, 39))
    def test_any_size_and_root(self, p, root):
        root = root % p
        rng = make_rng(p * 41 + root)
        inputs = rng.integers(0, 100, size=(p, 3))
        out = simulate_reduce(inputs, root=root)
        assert np.array_equal(out, inputs.sum(axis=0))

    def test_bad_root(self):
        with pytest.raises(ValueError):
            simulate_reduce(np.zeros((4, 1)), root=4)


class TestSchedule:
    def test_constant_message_size(self):
        sched = BinomialReduce().schedule(16)
        for stage in sched.stages:
            assert np.all(stage.units == 1.0)

    def test_stage_count(self):
        assert len(BinomialReduce().schedule(16).stages) == 4
        assert len(BinomialReduce().schedule(9).stages) == 4

    def test_message_direction_is_child_to_parent(self):
        sched = BinomialReduce().schedule(8)
        last = sched.stages[-1]  # the heaviest tree edge fires last
        assert last.src.tolist() == [4]
        assert last.dst.tolist() == [0]

    def test_stages_not_supported(self):
        with pytest.raises(NotImplementedError):
            list(BinomialReduce().stages(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            BinomialReduce(root=-1)
        with pytest.raises(ValueError):
            BinomialReduce(root=9).schedule(8)

    def test_bbmh_reordering_improves_reduce(self, mid_engine, mid_cluster, mid_D):
        """The fixed message size makes BBMH the matching heuristic."""
        from repro.mapping.bbmh import BBMH

        rng = make_rng(5)
        L = rng.permutation(64)
        M = BBMH(tie_break="first").map(L, mid_D, rng=0)
        sched = BinomialReduce().schedule(64)
        base = mid_engine.evaluate(sched, L, 1 << 16).total_seconds
        tuned = mid_engine.evaluate(sched, M, 1 << 16).total_seconds
        assert tuned <= base
