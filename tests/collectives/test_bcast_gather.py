"""Binomial / linear broadcast, gather and scatter-allgather tests."""

import numpy as np
import pytest

from repro.collectives.bcast_binomial import BinomialBroadcast
from repro.collectives.gather_binomial import BinomialGather
from repro.collectives.linear import LinearBroadcast, LinearGather
from repro.collectives.scatter_allgather import BinomialScatter, ScatterAllgatherBroadcast
from repro.simmpi.data import DataExecutor


class TestBinomialBroadcast:
    @pytest.mark.parametrize("p", [2, 3, 8, 13])
    def test_everyone_receives(self, p):
        exe = DataExecutor(p, n_slots=1)
        exe.fill(0, 0, 77)
        exe.run(BinomialBroadcast().stages(p))
        assert all(exe.slot(r, 0) == 77 for r in range(p))

    @pytest.mark.parametrize("root", [1, 5])
    def test_nonzero_root(self, root):
        p = 8
        exe = DataExecutor(p, n_slots=1)
        exe.fill(root, 0, 99)
        exe.run(BinomialBroadcast(root=root).stages(p))
        assert all(exe.slot(r, 0) == 99 for r in range(p))

    def test_fixed_message_size(self):
        for stage in BinomialBroadcast().stages(16):
            assert np.all(stage.units == 1.0)

    def test_payload_blocks(self):
        b = BinomialBroadcast(payload_blocks=(0, 1, 2))
        for stage in b.stages(4):
            assert np.all(stage.units == 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BinomialBroadcast(root=-1)
        with pytest.raises(ValueError):
            BinomialBroadcast(payload_blocks=())
        with pytest.raises(ValueError):
            list(BinomialBroadcast(root=9).stages(8))


class TestBinomialGather:
    @pytest.mark.parametrize("p", [2, 3, 8, 13])
    def test_root_collects_all(self, p):
        exe = DataExecutor(p)
        exe.fill_identity()
        exe.run(BinomialGather().stages(p))
        assert exe.owned(0).all()

    def test_nonzero_root(self):
        p, root = 8, 3
        exe = DataExecutor(p)
        exe.fill_identity()
        exe.run(BinomialGather(root=root).stages(p))
        assert exe.owned(root).all()

    def test_message_sizes_grow_toward_root(self):
        stages = list(BinomialGather().stages(16))
        maxima = [float(s.units.max()) for s in stages]
        assert maxima == sorted(maxima)
        assert maxima[-1] == 8.0

    def test_custom_block_of(self):
        g = BinomialGather(block_of=lambda r: (10 + r,))
        exe = DataExecutor(4, n_slots=16)
        for r in range(4):
            exe.fill(r, 10 + r, r + 1)
        exe.run(g.stages(4))
        assert [exe.slot(0, 10 + r) for r in range(4)] == [1, 2, 3, 4]


class TestLinear:
    def test_linear_gather_one_stage(self):
        stages = list(LinearGather().stages(8))
        assert len(stages) == 1
        assert stages[0].n_messages == 7
        exe = DataExecutor(8)
        exe.fill_identity()
        exe.run(iter(stages))
        assert exe.owned(0).all()

    def test_linear_bcast(self):
        exe = DataExecutor(6, n_slots=1)
        exe.fill(2, 0, 5)
        exe.run(LinearBroadcast(root=2).stages(6))
        assert all(exe.slot(r, 0) == 5 for r in range(6))

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearGather(root=-1)
        with pytest.raises(ValueError):
            list(LinearBroadcast(root=8).stages(8))


class TestScatterAllgather:
    @pytest.mark.parametrize("kind,p", [("ring", 8), ("ring", 10), ("rd", 8), ("rd", 16)])
    def test_bcast_semantics(self, kind, p):
        """Root's p slices end up complete at every rank."""
        exe = DataExecutor(p)
        for s in range(p):
            exe.fill(0, s, s * 1000003 + 7)
        exe.run(ScatterAllgatherBroadcast(kind).stages(p))
        exe.assert_allgather_complete()

    def test_scatter_sizes_halve(self):
        stages = list(BinomialScatter().stages(16))
        maxima = [float(s.units.max()) for s in stages]
        assert maxima == sorted(maxima, reverse=True)

    def test_rd_phase_requires_pow2(self):
        with pytest.raises(ValueError):
            list(ScatterAllgatherBroadcast("rd").stages(12))

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            ScatterAllgatherBroadcast("foo")
