"""Algorithm-selection registry tests (MVAPICH-like policy)."""

import pytest

from repro.collectives.registry import (
    DEFAULT_RD_THRESHOLD_BYTES,
    pattern_of,
    select_allgather,
    select_hierarchical_allgather,
)
from repro.collectives.allgather_bruck import BruckAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.bcast_binomial import BinomialBroadcast
from repro.collectives.hierarchical import contiguous_groups


class TestSelectAllgather:
    def test_small_pow2_uses_rd(self):
        assert isinstance(select_allgather(64, 256), RecursiveDoublingAllgather)

    def test_small_non_pow2_uses_bruck(self):
        assert isinstance(select_allgather(48, 256), BruckAllgather)

    def test_large_uses_ring(self):
        assert isinstance(select_allgather(64, 1 << 16), RingAllgather)
        assert isinstance(select_allgather(48, 1 << 16), RingAllgather)

    def test_threshold_boundary(self):
        assert isinstance(
            select_allgather(64, DEFAULT_RD_THRESHOLD_BYTES - 1), RecursiveDoublingAllgather
        )
        assert isinstance(select_allgather(64, DEFAULT_RD_THRESHOLD_BYTES), RingAllgather)

    def test_custom_threshold(self):
        assert isinstance(select_allgather(64, 4096, rd_threshold=8192), RecursiveDoublingAllgather)

    def test_tiny_comm_rejected(self):
        with pytest.raises(ValueError):
            select_allgather(1, 64)


class TestSelectHierarchical:
    def test_rd_leaders_for_small_messages(self):
        alg = select_hierarchical_allgather(contiguous_groups(32, 8), 256)
        assert alg.leader_alg == "rd"

    def test_ring_leaders_for_large_messages(self):
        alg = select_hierarchical_allgather(contiguous_groups(32, 8), 1 << 16)
        assert alg.leader_alg == "ring"

    def test_ring_leaders_for_non_pow2_groups(self):
        alg = select_hierarchical_allgather(contiguous_groups(24, 8), 256)
        assert alg.leader_alg == "ring"

    def test_intra_forwarded(self):
        alg = select_hierarchical_allgather(contiguous_groups(32, 8), 256, intra="linear")
        assert alg.intra == "linear"


class TestPatternOf:
    def test_known_patterns(self):
        assert pattern_of(RecursiveDoublingAllgather()) == "recursive-doubling"
        assert pattern_of(RingAllgather()) == "ring"
        assert pattern_of(BruckAllgather()) == "bruck"
        assert pattern_of(BinomialBroadcast()) == "binomial-bcast"

    def test_parametrised_names_resolve(self):
        from repro.collectives.allreduce import RecursiveDoublingAllreduce

        assert pattern_of(RecursiveDoublingAllreduce()) == "recursive-doubling"

    def test_unknown_rejected(self):
        class Weird:
            name = "weird"

        with pytest.raises(KeyError):
            pattern_of(Weird())
