"""Functional correctness of the allgather family on real data."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.allgather_bruck import BruckAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather, rd_blocks_owned
from repro.collectives.allgather_ring import RingAllgather
from repro.simmpi.data import DataExecutor
from repro.util.bits import ceil_log2


def run_allgather(alg, p):
    exe = DataExecutor(p)
    exe.fill_identity()
    exe.run(alg.stages(p))
    exe.assert_allgather_complete()


class TestRecursiveDoubling:
    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32, 64])
    def test_completes(self, p):
        run_allgather(RecursiveDoublingAllgather(), p)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            list(RecursiveDoublingAllgather().stages(12))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            list(RecursiveDoublingAllgather().stages(1))

    def test_stage_count_and_volume_doubling(self):
        stages = list(RecursiveDoublingAllgather().stages(16))
        assert len(stages) == 4
        for s, stage in enumerate(stages):
            assert np.all(stage.units == float(1 << s))
            assert stage.n_messages == 16

    def test_partner_structure(self):
        alg = RecursiveDoublingAllgather()
        assert alg.partner(5, 0) == 4
        assert alg.partner(5, 2) == 1
        # partnering is an involution
        for r in range(16):
            for s in range(4):
                assert alg.partner(alg.partner(r, s), s) == r

    def test_blocks_owned(self):
        assert rd_blocks_owned(5, 0) == (5,)
        assert rd_blocks_owned(5, 1) == (4, 5)
        assert rd_blocks_owned(5, 2) == (4, 5, 6, 7)

    def test_schedule_matches_stages_shape(self):
        alg = RecursiveDoublingAllgather()
        sched = alg.schedule(16)
        stages = list(alg.stages(16))
        assert len(sched.stages) == len(stages)
        for a, b in zip(sched.stages, stages):
            assert np.array_equal(a.src, b.src)
            assert np.array_equal(a.dst, b.dst)
            assert np.array_equal(a.units, b.units)


class TestRing:
    @pytest.mark.parametrize("p", [2, 3, 5, 8, 13, 16])
    def test_completes(self, p):
        run_allgather(RingAllgather(), p)

    def test_stage_count(self):
        assert len(list(RingAllgather().stages(7))) == 6

    def test_compressed_schedule_equivalent_volume(self):
        alg = RingAllgather()
        sched = alg.schedule(9)
        assert len(sched.stages) == 1
        assert sched.stages[0].repeat == 8
        assert sched.total_units() == sum(s.total_units() for s in alg.stages(9))

    def test_each_stage_single_block_to_successor(self):
        for t, stage in enumerate(RingAllgather().stages(5)):
            assert np.all(stage.units == 1.0)
            assert np.array_equal(stage.dst, (stage.src + 1) % 5)
            for i, blocks in enumerate(stage.blocks):
                assert blocks == (((i - t) % 5),)

    def test_supports_inline_placement(self):
        assert RingAllgather.supports_inline_placement


class TestBruck:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 7, 8, 12, 16, 17])
    def test_completes(self, p):
        run_allgather(BruckAllgather(), p)

    def test_stage_count_is_ceil_log(self):
        for p in (5, 8, 9, 16):
            assert len(list(BruckAllgather().stages(p))) == ceil_log2(p)

    def test_final_rotation_accounted(self):
        sched = BruckAllgather().schedule(12)
        assert sched.local_copy_units == 12.0

    def test_send_counts_capped_near_end(self):
        stages = list(BruckAllgather().stages(5))
        # stage 2: dist=4, count=min(4, 5-4)=1
        assert np.all(stages[2].units == 1.0)


@settings(max_examples=20, deadline=None)
@given(p=st.integers(min_value=2, max_value=40))
def test_ring_and_bruck_any_size(p):
    run_allgather(RingAllgather(), p)
    run_allgather(BruckAllgather(), p)
