"""Binomial-tree structural invariants (paper Algorithms 4/5 substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import binomial


class TestTreeStructure:
    def test_children_of_root_pow2(self):
        assert [c for _, c in binomial.children(0, 8)] == [1, 2, 4]

    def test_children_respect_bits(self):
        assert [c for _, c in binomial.children(2, 8)] == [3]
        assert [c for _, c in binomial.children(4, 8)] == [5, 6]
        assert binomial.children(7, 8) == []

    def test_children_clip_to_p(self):
        assert [c for _, c in binomial.children(0, 6)] == [1, 2, 4]
        assert [c for _, c in binomial.children(4, 6)] == [5]

    def test_parent(self):
        assert binomial.parent(1) == 0
        assert binomial.parent(6) == 4
        assert binomial.parent(7) == 6
        with pytest.raises(ValueError):
            binomial.parent(0)

    def test_subtree_range(self):
        assert list(binomial.subtree_range(0, 8)) == list(range(8))
        assert list(binomial.subtree_range(4, 8)) == [4, 5, 6, 7]
        assert list(binomial.subtree_range(4, 6)) == [4, 5]
        assert binomial.subtree_size(6, 8) == 2

    @settings(max_examples=30, deadline=None)
    @given(p=st.integers(min_value=1, max_value=70))
    def test_edges_form_spanning_tree(self, p):
        """Every non-root rank has exactly one parent edge."""
        seen = {}
        for _bit, par, child in binomial.tree_edges(p):
            assert child not in seen
            seen[child] = par
            assert binomial.parent(child) == par
        assert set(seen) == set(range(1, p))

    @settings(max_examples=30, deadline=None)
    @given(p=st.integers(min_value=2, max_value=70))
    def test_subtrees_partition(self, p):
        """The root's child subtrees partition the non-root ranks."""
        covered = []
        for _bit, c in binomial.children(0, p):
            covered.extend(binomial.subtree_range(c, p))
        assert sorted(covered) == list(range(1, p))


class TestBroadcastStages:
    def test_stage_counts(self):
        assert len(binomial.bcast_edges_by_stage(8)) == 3
        assert len(binomial.bcast_edges_by_stage(1)) == 0

    def test_message_count_doubles(self):
        stages = binomial.bcast_edges_by_stage(16)
        assert [len(s) for s in stages] == [1, 2, 4, 8]

    def test_sender_has_data_first(self):
        """In every stage a sender already received the payload."""
        for p in (2, 5, 8, 13, 16):
            has = {0}
            for edges in binomial.bcast_edges_by_stage(p):
                senders = {par for par, _ in edges}
                assert senders <= has
                has |= {child for _, child in edges}
            assert has == set(range(p))


class TestGatherStages:
    def test_reverse_of_bcast(self):
        p = 12
        fw = [sorted((a, b) for a, b in st) for st in binomial.bcast_edges_by_stage(p)]
        bw = [sorted((b, a) for a, b in st) for st in binomial.gather_edges_by_stage(p)]
        assert fw == list(reversed(bw))

    def test_child_complete_before_forwarding(self):
        """A child only sends after all its own children have sent to it."""
        for p in (4, 8, 11, 16):
            done = set()  # ranks whose whole subtree has been absorbed
            for edges in binomial.gather_edges_by_stage(p):
                for child, _par in edges:
                    kids = {c for _, c in binomial.children(child, p)}
                    assert kids <= done
                done |= {child for child, _ in edges}
