"""Allreduce extension tests (paper §VII future work)."""

import numpy as np
import pytest

from repro.collectives.allreduce import (
    RabenseifnerAllreduce,
    RecursiveDoublingAllreduce,
    simulate_allreduce,
)
from repro.util.rng import make_rng


class TestSimulate:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_sum_reduction(self, p):
        rng = make_rng(0)
        inputs = rng.integers(0, 100, size=(p, 5))
        out = simulate_allreduce(inputs)
        expect = inputs.sum(axis=0)
        assert np.array_equal(out, np.broadcast_to(expect, out.shape))

    def test_max_reduction(self):
        inputs = np.arange(8)[:, None] * np.ones((8, 3), dtype=int)
        out = simulate_allreduce(inputs, op=np.maximum)
        assert np.all(out == 7)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            simulate_allreduce(np.zeros((6, 2)))


class TestSchedules:
    def test_rd_schedule_shape(self):
        sched = RecursiveDoublingAllreduce().schedule(16)
        assert len(sched.stages) == 4
        assert all(np.all(s.units == 1.0) for s in sched.stages)

    def test_rabenseifner_volume_less_than_rd_for_big_vectors(self):
        rd = RecursiveDoublingAllreduce().schedule(16).total_units()
        rab = RabenseifnerAllreduce().schedule(16).total_units()
        assert rab < rd

    def test_rabenseifner_halving_doubling(self):
        sched = RabenseifnerAllreduce().schedule(8)
        sizes = [float(s.units.max()) for s in sched.stages]
        assert sizes == [0.5, 0.25, 0.125, 0.125, 0.25, 0.5]

    def test_pow2_required(self):
        with pytest.raises(ValueError):
            RecursiveDoublingAllreduce().schedule(12)
        with pytest.raises(ValueError):
            RabenseifnerAllreduce().schedule(12)

    def test_stages_not_supported(self):
        with pytest.raises(NotImplementedError):
            list(RecursiveDoublingAllreduce().stages(8))
        with pytest.raises(NotImplementedError):
            list(RabenseifnerAllreduce().stages(8))


class TestReorderingApplies:
    def test_rdmh_improves_allreduce_on_cyclic(self, mid_cluster, mid_engine, mid_D):
        """The RD heuristic transfers to the allreduce pattern (future work)."""
        from repro.mapping.initial import cyclic_bunch
        from repro.mapping.reorder import reorder_ranks

        p = 64
        L = cyclic_bunch(mid_cluster, p)
        res = reorder_ranks("recursive-doubling", L, mid_D, rng=0)
        sched = RecursiveDoublingAllreduce().schedule(p)
        base = mid_engine.evaluate(sched, L, 4096).total_seconds
        tuned = mid_engine.evaluate(sched, res.mapping, 4096).total_seconds
        assert tuned <= base
