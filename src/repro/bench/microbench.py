"""OSU-micro-benchmark-style latency sweeps (paper §VI-A).

The paper measures MPI_Allgather latency with the OSU micro-benchmarks
over message sizes 1 B - 256 KiB at 4096 processes, for four initial
mappings, and reports the percentage improvement of each reordering
scheme over the default.  These sweep functions produce exactly those
series; the figure benches under ``benchmarks/`` print them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import make_layout

__all__ = ["OSU_SIZES", "SweepPoint", "sweep_nonhierarchical", "sweep_hierarchical"]

#: Message sizes of the paper's sweeps: 1 B .. 256 KiB in powers of two.
OSU_SIZES = [1 << k for k in range(19)]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a paper figure."""

    layout: str
    block_bytes: int
    mapper: str            # "heuristic" | "scotch" | "greedy"
    strategy: str          # requested restoration strategy
    hierarchical: bool
    intra: str
    algorithm: str
    base_us: float
    tuned_us: float

    @property
    def improvement_pct(self) -> float:
        """Percent latency improvement over the default mapping."""
        return 100.0 * (self.base_us - self.tuned_us) / self.base_us

    @property
    def series(self) -> str:
        """Legend label, paper-style (e.g. ``Hrstc+initComm``)."""
        mapper = {"heuristic": "Hrstc", "scotch": "Scotch", "greedy": "Greedy"}.get(
            self.mapper, self.mapper
        )
        strat = {"initcomm": "initComm", "endshfl": "endShfl"}.get(
            self.strategy, self.strategy
        )
        return f"{mapper}+{strat}"


def sweep_nonhierarchical(
    evaluator: AllgatherEvaluator,
    p: int,
    layouts: Sequence[str] = ("block-bunch", "block-scatter", "cyclic-bunch", "cyclic-scatter"),
    sizes: Iterable[int] = OSU_SIZES,
    mappers: Sequence[str] = ("heuristic", "scotch"),
    strategies: Sequence[str] = ("initcomm", "endshfl"),
) -> List[SweepPoint]:
    """The Fig. 3 sweep: non-hierarchical allgather, four initial mappings."""
    return _sweep(evaluator, p, layouts, sizes, mappers, strategies, False, "binomial")


def sweep_hierarchical(
    evaluator: AllgatherEvaluator,
    p: int,
    layouts: Sequence[str] = ("block-bunch", "block-scatter"),
    sizes: Iterable[int] = OSU_SIZES,
    mappers: Sequence[str] = ("heuristic", "scotch"),
    strategies: Sequence[str] = ("initcomm", "endshfl"),
    intra: str = "binomial",
) -> List[SweepPoint]:
    """The Fig. 4 sweep: hierarchical allgather, block mappings only.

    The paper skips cyclic mappings here ("hierarchical allgather is not
    supported with cyclic mapping" in MVAPICH).
    """
    return _sweep(evaluator, p, layouts, sizes, mappers, strategies, True, intra)


def _sweep(
    evaluator: AllgatherEvaluator,
    p: int,
    layouts: Sequence[str],
    sizes: Iterable[int],
    mappers: Sequence[str],
    strategies: Sequence[str],
    hierarchical: bool,
    intra: str,
) -> List[SweepPoint]:
    points: List[SweepPoint] = []
    for lname in layouts:
        L = make_layout(lname, evaluator.cluster, p)
        for bb in sizes:
            base = evaluator.default_latency(L, bb, hierarchical, intra)
            for mapper in mappers:
                for strategy in strategies:
                    tuned = evaluator.reordered_latency(
                        L, bb, mapper, strategy, hierarchical, intra
                    )
                    points.append(
                        SweepPoint(
                            layout=lname,
                            block_bytes=int(bb),
                            mapper=mapper,
                            strategy=strategy,
                            hierarchical=hierarchical,
                            intra=intra,
                            algorithm=tuned.algorithm,
                            base_us=base.seconds * 1e6,
                            tuned_us=tuned.seconds * 1e6,
                        )
                    )
    return points
