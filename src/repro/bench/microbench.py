"""OSU-micro-benchmark-style latency sweeps (paper §VI-A).

The paper measures MPI_Allgather latency with the OSU micro-benchmarks
over message sizes 1 B - 256 KiB at 4096 processes, for four initial
mappings, and reports the percentage improvement of each reordering
scheme over the default.  These sweep functions produce exactly those
series; the figure benches under ``benchmarks/`` print them.

The sweep is organised so the *size* loop is innermost and batched: per
(layout, mapper, strategy) grid cell one
:meth:`~repro.evaluation.evaluator.AllgatherEvaluator.reordered_latencies`
call prices every message size against shared route/alpha/unit-load
tables (see ``docs/performance.md``).  Passing ``workers=N`` additionally
fans the (layout, mapper) grid cells out over a process pool — results
are bit-identical to the serial sweep because every reordering seed is
derived deterministically from the cell's content.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


from repro.evaluation.evaluator import AllgatherEvaluator, LatencyReport
from repro.mapping.initial import make_layout

__all__ = ["OSU_SIZES", "SweepPoint", "sweep_nonhierarchical", "sweep_hierarchical"]

#: Message sizes of the paper's sweeps: 1 B .. 256 KiB in powers of two.
OSU_SIZES = [1 << k for k in range(19)]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a paper figure."""

    layout: str
    block_bytes: int
    mapper: str            # "heuristic" | "scotch" | "greedy"
    strategy: str          # requested restoration strategy
    hierarchical: bool
    intra: str
    algorithm: str
    base_us: float
    tuned_us: float

    @property
    def improvement_pct(self) -> float:
        """Percent latency improvement over the default mapping."""
        if self.base_us == 0.0:
            return 0.0
        return 100.0 * (self.base_us - self.tuned_us) / self.base_us

    @property
    def series(self) -> str:
        """Legend label, paper-style (e.g. ``Hrstc+initComm``)."""
        mapper = {"heuristic": "Hrstc", "scotch": "Scotch", "greedy": "Greedy"}.get(
            self.mapper, self.mapper
        )
        strat = {"initcomm": "initComm", "endshfl": "endShfl"}.get(
            self.strategy, self.strategy
        )
        return f"{mapper}+{strat}"


def sweep_nonhierarchical(
    evaluator: AllgatherEvaluator,
    p: int,
    layouts: Sequence[str] = ("block-bunch", "block-scatter", "cyclic-bunch", "cyclic-scatter"),
    sizes: Iterable[int] = OSU_SIZES,
    mappers: Sequence[str] = ("heuristic", "scotch"),
    strategies: Sequence[str] = ("initcomm", "endshfl"),
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    """The Fig. 3 sweep: non-hierarchical allgather, four initial mappings."""
    return _sweep(evaluator, p, layouts, sizes, mappers, strategies, False, "binomial", workers)


def sweep_hierarchical(
    evaluator: AllgatherEvaluator,
    p: int,
    layouts: Sequence[str] = ("block-bunch", "block-scatter"),
    sizes: Iterable[int] = OSU_SIZES,
    mappers: Sequence[str] = ("heuristic", "scotch"),
    strategies: Sequence[str] = ("initcomm", "endshfl"),
    intra: str = "binomial",
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    """The Fig. 4 sweep: hierarchical allgather, block mappings only.

    The paper skips cyclic mappings here ("hierarchical allgather is not
    supported with cyclic mapping" in MVAPICH).
    """
    return _sweep(evaluator, p, layouts, sizes, mappers, strategies, True, intra, workers)


# ----------------------------------------------------------------------
# process-pool plumbing: workers inherit one pickled evaluator each via
# the pool initializer instead of re-pickling it per submitted cell.
# ----------------------------------------------------------------------
_WORKER_EVALUATOR: Optional[AllgatherEvaluator] = None


def _init_worker(evaluator: AllgatherEvaluator) -> None:
    # intentional per-worker cache: each pool child sets its own copy once,
    # at initialization, before any cell runs — no cross-process aliasing
    global _WORKER_EVALUATOR  # noqa: PAR001
    _WORKER_EVALUATOR = evaluator


def _worker_base_cell(args) -> Tuple[str, List[LatencyReport]]:
    lname, p, sizes, hierarchical, intra = args
    ev = _WORKER_EVALUATOR
    L = make_layout(lname, ev.cluster, p)
    return lname, ev.default_latencies(L, sizes, hierarchical, intra)


def _worker_mapper_cell(args) -> Tuple[str, str, Dict[str, List[LatencyReport]]]:
    lname, mapper, p, sizes, strategies, hierarchical, intra = args
    ev = _WORKER_EVALUATOR
    L = make_layout(lname, ev.cluster, p)
    return lname, mapper, {
        strategy: ev.reordered_latencies(L, sizes, mapper, strategy, hierarchical, intra)
        for strategy in strategies
    }


def _compute_cells_parallel(
    evaluator, p, layouts, sizes, mappers, strategies, hierarchical, intra, workers
):
    """Fan the (layout[, mapper]) grid cells out over a process pool."""
    base: Dict[str, List[LatencyReport]] = {}
    tuned: Dict[Tuple[str, str], Dict[str, List[LatencyReport]]] = {}
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(evaluator,)
    ) as pool:
        base_futs = [
            pool.submit(_worker_base_cell, (lname, p, sizes, hierarchical, intra))
            for lname in layouts
        ]
        cell_futs = [
            pool.submit(
                _worker_mapper_cell,
                (lname, mapper, p, sizes, strategies, hierarchical, intra),
            )
            for lname in layouts
            for mapper in mappers
        ]
        for fut in base_futs:
            lname, reports = fut.result()
            base[lname] = reports
        for fut in cell_futs:
            lname, mapper, by_strategy = fut.result()
            tuned[(lname, mapper)] = by_strategy
    return base, tuned


def _compute_cells_serial(
    evaluator, p, layouts, sizes, mappers, strategies, hierarchical, intra
):
    base: Dict[str, List[LatencyReport]] = {}
    tuned: Dict[Tuple[str, str], Dict[str, List[LatencyReport]]] = {}
    for lname in layouts:
        L = make_layout(lname, evaluator.cluster, p)
        base[lname] = evaluator.default_latencies(L, sizes, hierarchical, intra)
        for mapper in mappers:
            tuned[(lname, mapper)] = {
                strategy: evaluator.reordered_latencies(
                    L, sizes, mapper, strategy, hierarchical, intra
                )
                for strategy in strategies
            }
    return base, tuned


def _sweep(
    evaluator: AllgatherEvaluator,
    p: int,
    layouts: Sequence[str],
    sizes: Iterable[int],
    mappers: Sequence[str],
    strategies: Sequence[str],
    hierarchical: bool,
    intra: str,
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    sizes = list(sizes)
    if workers is not None and workers > 1:
        base, tuned = _compute_cells_parallel(
            evaluator, p, layouts, sizes, mappers, strategies, hierarchical, intra, workers
        )
    else:
        base, tuned = _compute_cells_serial(
            evaluator, p, layouts, sizes, mappers, strategies, hierarchical, intra
        )

    points: List[SweepPoint] = []
    for lname in layouts:
        for si, bb in enumerate(sizes):
            base_rep = base[lname][si]
            for mapper in mappers:
                for strategy in strategies:
                    rep = tuned[(lname, mapper)][strategy][si]
                    points.append(
                        SweepPoint(
                            layout=lname,
                            block_bytes=int(bb),
                            mapper=mapper,
                            strategy=strategy,
                            hierarchical=hierarchical,
                            intra=intra,
                            algorithm=rep.algorithm,
                            base_us=base_rep.seconds * 1e6,
                            tuned_us=rep.seconds * 1e6,
                        )
                    )
    return points
