"""Distributed sweep fabric: leasable shards, work-stealing workers.

:class:`~repro.bench.runner.CheckpointedSweep` already journals every
grid cell atomically and resumes bit-identically — but it is a single
process (plus its local pool).  This module fans the same journal out
across any number of worker *processes or hosts* that share one
directory (NFS, a bind-mounted volume, a plain local dir):

* a **shard planner** splits the spec's canonical cell list into
  leasable shards, balanced by measured per-cell compute seconds when a
  previous journal recorded them (``compute_seconds`` in the checkpoint
  payloads) and by a static cost model otherwise;
* **leases** are ``O_CREAT | O_EXCL`` files under ``<out>/leases/`` —
  creation is the atomic test-and-set, the file's mtime is the owner's
  heartbeat, and a lease whose mtime is older than the TTL is *expired*
  and may be stolen;
* **workers** (:class:`FabricWorker`, ``repro sweep --fabric``) claim
  shards, compute their cells through the very same journal writes the
  solo runner uses, renew heartbeats from a background thread, and
  work-steal expired leases when their own claims run dry;
* the **merge** (:func:`fabric_merge`, ``repro sweep --merge``) verifies
  every shard's and worker's spec fingerprint, requires every cell to be
  journaled or quarantined, and emits a ``sweep.json`` byte-identical to
  a solo :class:`CheckpointedSweep` run of the same spec.

Safety model — leases are an *efficiency* mechanism, not a correctness
one.  Cells are deterministic functions of ``(spec, cell)`` and their
checkpoints are written with atomic replace, so if a heartbeat race ever
lets two workers compute the same cell, both write byte-identical
payloads and the journal stays sound.  What the protocol guarantees:

* of N workers racing one shard, exactly one ``O_EXCL`` create wins;
* a SIGKILLed worker stops heartbeating, its leases expire after the
  TTL, and survivors reclaim the shards with no lost cells;
* a worker that loses a lease (its heartbeat finds another owner's id
  in the file) abandons the shard instead of double-journaling it.

Directory layout (shared by all workers)::

    out_dir/
      manifest.json        # SweepSpec + fingerprint (CheckpointedSweep's)
      shards.json          # the shard plan, fingerprint-stamped per shard
      cells/<cell>.json    # the ordinary cell journal
      leases/<shard>.lease # O_EXCL lease files, mtime = heartbeat
      quarantine/<cell>.json  # per-cell failure records (per worker)
      workers/<id>.json    # per-worker stats (cells/sec, steals, ...)
      sweep.json           # written by the merge step only
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.microbench import SweepPoint
from repro.bench.runner import CheckpointedSweep, SweepSpec, compute_cell
from repro.util.atomicio import atomic_write_json, exclusive_create_text

__all__ = [
    "Shard",
    "ShardPlan",
    "plan_shards",
    "ensure_plan",
    "static_cell_cost",
    "journaled_cell_costs",
    "FabricWorker",
    "WorkerStats",
    "run_fabric_worker",
    "fabric_merge",
    "FabricMergeResult",
    "fabric_status",
    "FabricStatus",
    "FabricError",
    "FabricFingerprintError",
    "FabricIncompleteError",
    "DEFAULT_LEASE_TTL",
]

#: Seconds without a heartbeat after which a lease is stealable.
DEFAULT_LEASE_TTL = 30.0


class FabricError(RuntimeError):
    """Base class for fabric protocol failures."""


class FabricFingerprintError(FabricError):
    """A shard plan, cell or worker record belongs to a different spec."""


class FabricIncompleteError(FabricError):
    """Merge requested while cells are still pending (and not quarantined)."""


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One leasable unit of work: a named subset of the grid's cells."""

    shard_id: str
    cells: Tuple[str, ...]
    cost: float
    fingerprint: str


@dataclass(frozen=True)
class ShardPlan:
    """The full shard decomposition of one spec's cell grid."""

    fingerprint: str
    shards: Tuple[Shard, ...]

    def to_dict(self) -> Dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "fingerprint": self.fingerprint,
            "shards": [asdict(s) for s in self.shards],
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "ShardPlan":
        shards = tuple(
            Shard(
                shard_id=str(s["shard_id"]),
                cells=tuple(s["cells"]),
                cost=float(s["cost"]),
                fingerprint=str(s["fingerprint"]),
            )
            for s in d["shards"]
        )
        return cls(fingerprint=str(d["fingerprint"]), shards=shards)


def static_cell_cost(spec: SweepSpec, cell: str) -> float:
    """Planner's prior when no measured cost exists for ``cell``.

    A tuned cell prices one schedule set per restoration strategy (plus
    the reordering itself); a base cell prices a single set.
    """
    return float(max(1, len(spec.strategies))) if cell.startswith("tuned::") else 1.0


def journaled_cell_costs(spec: SweepSpec, out_dir) -> Dict[str, float]:
    """Measured ``compute_seconds`` from an existing journal, by cell.

    Lets a re-planned (or resumed) fabric balance shards by *measured*
    cost; cells never journaled — or journaled by a pre-cost version —
    are simply absent.
    """
    cs = CheckpointedSweep(spec, out_dir)
    done, _ = cs.collect_cells()
    return {
        cell: float(payload["compute_seconds"])
        for cell, payload in done.items()
        if isinstance(payload.get("compute_seconds"), (int, float))
    }


def plan_shards(
    spec: SweepSpec,
    n_shards: Optional[int] = None,
    cell_costs: Optional[Dict[str, float]] = None,
    workers_hint: int = 4,
) -> ShardPlan:
    """Split the spec's cells into cost-balanced shards (LPT greedy).

    Deterministic: cells are taken in descending cost (canonical order
    breaking ties) and each goes to the currently lightest shard.  Costs
    come from ``cell_costs`` (measured seconds, see
    :func:`journaled_cell_costs`) with :func:`static_cell_cost` filling
    the gaps.  The default shard count over-decomposes ~2x past the
    expected worker count so work-stealing has spare granularity.
    """
    cells = spec.cells()
    if n_shards is None:
        n_shards = min(len(cells), max(2 * max(1, workers_hint), -(-len(cells) // 4)))
    n_shards = max(1, min(int(n_shards), len(cells)))
    costs = {
        cell: float((cell_costs or {}).get(cell, static_cell_cost(spec, cell)))
        for cell in cells
    }
    order = sorted(range(len(cells)), key=lambda i: (-costs[cells[i]], i))
    loads = [0.0] * n_shards
    members: List[List[int]] = [[] for _ in range(n_shards)]
    for i in order:
        target = min(range(n_shards), key=lambda s: (loads[s], s))
        loads[target] += costs[cells[i]]
        members[target].append(i)
    fp = spec.fingerprint()
    width = max(3, len(str(n_shards - 1)))
    shards = tuple(
        Shard(
            shard_id=f"s{idx:0{width}d}",
            cells=tuple(cells[i] for i in sorted(member)),
            cost=loads[idx],
            fingerprint=fp,
        )
        for idx, member in enumerate(members)
        if member
    )
    return ShardPlan(fingerprint=fp, shards=shards)


def _plan_path(out_dir) -> Path:
    return Path(out_dir) / "shards.json"


def _load_plan(out_dir, expected_fp: str, retries: int = 20) -> ShardPlan:
    """Read ``shards.json``, tolerating a concurrent writer's window."""
    path = _plan_path(out_dir)
    for attempt in range(retries):
        try:
            plan = ShardPlan.from_dict(json.loads(path.read_text()))
            break
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            # O_EXCL-created file may be momentarily empty; wait it out.
            if attempt == retries - 1:
                raise FabricError(f"{path}: unreadable shard plan")
            time.sleep(0.05)
    if plan.fingerprint != expected_fp:
        raise FabricFingerprintError(
            f"{path}: shard plan fingerprint {plan.fingerprint!r} != "
            f"manifest {expected_fp!r}"
        )
    for shard in plan.shards:
        if shard.fingerprint != expected_fp:
            raise FabricFingerprintError(
                f"{path}: shard {shard.shard_id} fingerprint "
                f"{shard.fingerprint!r} != manifest {expected_fp!r}"
            )
    return plan


def ensure_plan(
    spec: SweepSpec,
    out_dir,
    n_shards: Optional[int] = None,
    workers_hint: int = 4,
) -> ShardPlan:
    """Create-or-join the shard plan for ``out_dir`` (race-safe).

    The first worker to arrive plans (balancing by any costs already in
    the journal) and publishes via ``O_EXCL``; every later worker — and
    the first one losing the race — loads the published plan.  All paths
    verify the plan's fingerprint against the spec.
    """
    path = _plan_path(out_dir)
    fp = spec.fingerprint()
    if not path.exists():
        plan = plan_shards(
            spec,
            n_shards=n_shards,
            cell_costs=journaled_cell_costs(spec, out_dir),
            workers_hint=workers_hint,
        )
        body = json.dumps(plan.to_dict(), indent=1) + "\n"
        if exclusive_create_text(path, body):
            return plan
    return _load_plan(out_dir, fp)


# ----------------------------------------------------------------------
# leases
# ----------------------------------------------------------------------
def _leases_dir(out_dir) -> Path:
    return Path(out_dir) / "leases"


def _lease_path(out_dir, shard_id: str) -> Path:
    return _leases_dir(out_dir) / f"{shard_id}.lease"


def _read_lease_owner(path: Path) -> Optional[str]:
    """The owner id inside a lease file; None if unreadable/partial."""
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return None  # mid-create window or torn body: existence still counts
    if isinstance(payload, dict) and isinstance(payload.get("owner"), str):
        return payload["owner"]
    return None


def try_acquire_lease(
    out_dir, shard_id: str, owner: str, ttl: float
) -> Tuple[bool, bool, bool]:
    """Attempt to claim one shard: ``(acquired, stolen, contended)``.

    Fresh claim: an ``O_EXCL`` create of the lease file (exactly one of
    any number of racers wins).  Steal: a lease whose mtime is older
    than ``ttl`` is unlinked — guarded by re-checking the mtime did not
    advance — and then re-created ``O_EXCL``; losing any step of that
    race simply reports contention.
    """
    path = _lease_path(out_dir, shard_id)
    body = json.dumps(
        {"owner": owner, "shard": shard_id, "claimed_unix": time.time()}
    )
    if exclusive_create_text(path, body):
        return True, False, False
    try:
        st = path.stat()
    except FileNotFoundError:
        # released/stolen between our create attempt and the stat
        return (exclusive_create_text(path, body), False, True)
    if time.time() - st.st_mtime <= ttl:
        return False, False, True  # live lease
    # expired: steal.  Re-stat right before unlink so an owner whose
    # heartbeat just landed keeps its lease.
    try:
        if path.stat().st_mtime_ns != st.st_mtime_ns:
            return False, False, True
        path.unlink()
    except FileNotFoundError:
        return False, False, True  # another thief was faster
    if exclusive_create_text(path, body):
        return True, True, False
    return False, False, True


def renew_lease(out_dir, shard_id: str, owner: str) -> bool:
    """Advance the heartbeat iff the lease still names ``owner``."""
    path = _lease_path(out_dir, shard_id)
    if _read_lease_owner(path) != owner:
        return False
    try:
        os.utime(path)
    except FileNotFoundError:
        return False
    return True


def release_lease(out_dir, shard_id: str, owner: str) -> bool:
    """Drop the lease iff it is still ours."""
    path = _lease_path(out_dir, shard_id)
    if _read_lease_owner(path) != owner:
        return False
    try:
        path.unlink()
    except FileNotFoundError:
        return False
    return True


class _Heartbeat(threading.Thread):
    """Renews one lease every ``interval`` seconds until stopped.

    Sets :attr:`lost` (and exits) the moment a renewal finds the lease
    gone or owned by someone else — the worker polls that flag between
    cells and abandons the shard.  A SIGKILL kills this thread with the
    process, which is exactly what lets the lease expire.
    """

    def __init__(self, out_dir, shard_id: str, owner: str, interval: float) -> None:
        super().__init__(daemon=True, name=f"lease-{shard_id}")
        self._args = (out_dir, shard_id, owner)
        self._interval = interval
        # (not named _stop: that would shadow threading.Thread internals)
        self._halt = threading.Event()
        self.lost = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via FabricWorker
        while not self._halt.wait(self._interval):
            if not renew_lease(*self._args):
                self.lost.set()
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


# ----------------------------------------------------------------------
# the worker
# ----------------------------------------------------------------------
@dataclass
class WorkerStats:
    """One worker's contribution to a fabric run (persisted to JSON)."""

    worker_id: str
    fingerprint: str
    cells_computed: int = 0
    cells_skipped: int = 0
    cells_quarantined: int = 0
    shards_claimed: int = 0
    steals: int = 0
    lease_contention: int = 0
    leases_lost: int = 0
    compute_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    cells_per_sec: float = 0.0


def _quarantine_dir(out_dir) -> Path:
    return Path(out_dir) / "quarantine"


def _quarantine_path(out_dir, cell: str) -> Path:
    return _quarantine_dir(out_dir) / (cell.replace("::", "__") + ".json")


class FabricWorker:
    """One fabric participant: claim shards, compute cells, heartbeat.

    ``spec=None`` *joins* an existing fabric directory (the spec comes
    from its manifest, exactly like ``CheckpointedSweep.resume``);
    passing a spec creates the fabric on first arrival — manifest and
    shard plan writes are race-safe, so any number of workers may be
    started with identical flags simultaneously.
    """

    def __init__(
        self,
        out_dir,
        spec: Optional[SweepSpec] = None,
        worker_id: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        n_shards: Optional[int] = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.25,
        poll_interval: Optional[float] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.out_dir = Path(out_dir)
        if spec is None:
            self._cs = CheckpointedSweep.resume(
                self.out_dir, max_retries=max_retries, backoff_seconds=backoff_seconds
            )
        else:
            self._cs = CheckpointedSweep(
                spec, self.out_dir, max_retries=max_retries,
                backoff_seconds=backoff_seconds,
            )
        self.spec = self._cs.spec
        self.worker_id = worker_id or f"{platform.node() or 'worker'}-{os.getpid()}"
        self.lease_ttl = float(lease_ttl)
        self.n_shards = n_shards
        self.max_retries = int(max_retries)
        self.backoff_seconds = float(backoff_seconds)
        self.poll_interval = (
            float(poll_interval)
            if poll_interval is not None
            else min(0.5, max(0.05, self.lease_ttl / 5.0))
        )
        self.stats = WorkerStats(
            worker_id=self.worker_id, fingerprint=self.spec.fingerprint()
        )
        self._covered: set = set()

    # ------------------------------------------------------------------
    def _prepare(self) -> ShardPlan:
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self._cs.cells_dir.mkdir(exist_ok=True)
        _leases_dir(self.out_dir).mkdir(exist_ok=True)
        _quarantine_dir(self.out_dir).mkdir(exist_ok=True)
        (self.out_dir / "workers").mkdir(exist_ok=True)
        self._cs._write_manifest()
        return ensure_plan(self.spec, self.out_dir, n_shards=self.n_shards)

    def _is_covered(self, cell: str) -> bool:
        """Done-or-quarantined, with a positive-result cache."""
        if cell in self._covered:
            return True
        if self._cs._load_cell(cell) is not None or _quarantine_path(
            self.out_dir, cell
        ).is_file():
            self._covered.add(cell)
            return True
        return False

    def run(self) -> WorkerStats:
        """Work until every cell in the plan is journaled or quarantined."""
        t0 = time.perf_counter()
        plan = self._prepare()
        shards = list(plan.shards)
        if shards:
            offset = zlib.crc32(self.worker_id.encode()) % len(shards)
            shards = shards[offset:] + shards[:offset]
        with self._cs._mapping_cache_env():
            while True:
                claimed_any = False
                outstanding = False
                for shard in shards:
                    todo = [c for c in shard.cells if not self._is_covered(c)]
                    if not todo:
                        continue
                    outstanding = True
                    acquired, stolen, contended = try_acquire_lease(
                        self.out_dir, shard.shard_id, self.worker_id, self.lease_ttl
                    )
                    self.stats.lease_contention += int(contended)
                    if not acquired:
                        continue
                    claimed_any = True
                    self.stats.shards_claimed += 1
                    self.stats.steals += int(stolen)
                    self._run_shard(shard)
                if not outstanding:
                    break
                if not claimed_any:
                    # everything left is leased by live workers: wait for
                    # them to finish (or for their leases to expire).
                    time.sleep(self.poll_interval)
        self.stats.elapsed_seconds = time.perf_counter() - t0
        done_cells = self.stats.cells_computed
        self.stats.cells_per_sec = (
            done_cells / self.stats.elapsed_seconds
            if self.stats.elapsed_seconds > 0
            else 0.0
        )
        atomic_write_json(
            self.out_dir / "workers" / f"{self.worker_id}.json", asdict(self.stats)
        )
        return self.stats

    # ------------------------------------------------------------------
    def _run_shard(self, shard: Shard) -> None:
        """Compute a claimed shard's cells under a heartbeat thread."""
        hb = _Heartbeat(
            self.out_dir,
            shard.shard_id,
            self.worker_id,
            interval=max(0.05, self.lease_ttl / 4.0),
        )
        hb.start()
        try:
            for cell in shard.cells:
                if hb.lost.is_set():
                    self.stats.leases_lost += 1
                    return  # lease stolen: the thief owns the rest
                if self._is_covered(cell):
                    self.stats.cells_skipped += 1
                    continue
                self._run_cell(cell)
        finally:
            hb.stop()
            if not hb.lost.is_set():
                release_lease(self.out_dir, shard.shard_id, self.worker_id)

    def _run_cell(self, cell: str) -> None:
        """One cell with bounded retries; quarantine on exhaustion."""
        last_error = "unknown error"
        for attempt in range(self.max_retries + 1):
            if attempt:
                time.sleep(min(self.backoff_seconds * (2 ** (attempt - 1)), 10.0))
            try:
                payload = compute_cell(self.spec, cell)
            except Exception as exc:  # noqa: BLE001 - quarantine, don't abort
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            atomic_write_json(self._cs._cell_path(cell), payload)
            self._covered.add(cell)
            self.stats.cells_computed += 1
            self.stats.compute_seconds += float(payload.get("compute_seconds", 0.0))
            return
        atomic_write_json(
            _quarantine_path(self.out_dir, cell),
            {"cell": cell, "error": last_error, "worker": self.worker_id},
        )
        self._covered.add(cell)
        self.stats.cells_quarantined += 1


def run_fabric_worker(
    out_dir,
    spec: Optional[SweepSpec] = None,
    worker_id: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    n_shards: Optional[int] = None,
    max_retries: int = 2,
    poll_interval: Optional[float] = None,
) -> WorkerStats:
    """Module-level worker entry point (picklable for process fan-out)."""
    return FabricWorker(
        out_dir,
        spec=spec,
        worker_id=worker_id,
        lease_ttl=lease_ttl,
        n_shards=n_shards,
        max_retries=max_retries,
        poll_interval=poll_interval,
    ).run()


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
@dataclass
class FabricMergeResult:
    """What the fingerprint-verified merge combined (and from whom)."""

    points: List[SweepPoint]
    out_dir: Path
    fingerprint: str
    p: int
    n_cells: int
    n_shards: int
    quarantined: Dict[str, str] = field(default_factory=dict)
    workers: List[Dict] = field(default_factory=list)
    steals: int = 0
    lease_contention: int = 0
    cell_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable merge report: per-worker table + quarantine."""
        lines = [
            f"fabric merge: {len(self.points)} points from {self.n_cells} cells "
            f"across {self.n_shards} shards (fingerprint {self.fingerprint})",
        ]
        if self.workers:
            lines.append(
                f"  {'worker':>24} {'cells':>6} {'skip':>5} {'steals':>7} "
                f"{'contend':>8} {'cells/s':>8}"
            )
            for w in self.workers:
                lines.append(
                    f"  {w['worker_id']:>24} {w['cells_computed']:>6} "
                    f"{w['cells_skipped']:>5} {w['steals']:>7} "
                    f"{w['lease_contention']:>8} {w['cells_per_sec']:>8.2f}"
                )
            lines.append(
                f"  total steals {self.steals}, lease contention {self.lease_contention}"
            )
        for cell, err in sorted(self.quarantined.items()):
            lines.append(f"  quarantined {cell}: {err}")
        return "\n".join(lines)


def _read_quarantine(out_dir) -> Dict[str, str]:
    qdir = _quarantine_dir(out_dir)
    out: Dict[str, str] = {}
    if not qdir.is_dir():
        return out
    for path in sorted(qdir.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue  # torn quarantine record: the cell stays pending
        if isinstance(payload, dict) and isinstance(payload.get("cell"), str):
            out[payload["cell"]] = str(payload.get("error", "unknown error"))
    return out


def _read_worker_stats(out_dir, expected_fp: str) -> List[Dict]:
    wdir = Path(out_dir) / "workers"
    out: List[Dict] = []
    if not wdir.is_dir():
        return out
    for path in sorted(wdir.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue  # a worker died mid-write; its cells still count
        if not isinstance(payload, dict):
            continue
        if payload.get("fingerprint") != expected_fp:
            raise FabricFingerprintError(
                f"{path}: worker fingerprint {payload.get('fingerprint')!r} "
                f"!= manifest {expected_fp!r}"
            )
        out.append(payload)
    return out


def fabric_merge(out_dir) -> FabricMergeResult:
    """Verify fingerprints shard by shard, then combine the journal.

    Every shard in the plan, every journaled cell (via the runner's own
    ``_load_cell`` gate) and every worker record must carry the
    manifest's spec fingerprint.  Cells neither journaled nor
    quarantined abort the merge (:class:`FabricIncompleteError`) — a
    partial fabric is resumed by running more workers, not by merging.
    The ``sweep.json`` written here goes through
    :meth:`CheckpointedSweep.write_merged`, so it is byte-identical to a
    solo run of the same spec.
    """
    cs = CheckpointedSweep.resume(out_dir)
    fp = cs.spec.fingerprint()
    plan = _load_plan(out_dir, fp)
    planned = [cell for shard in plan.shards for cell in shard.cells]
    if sorted(planned) != sorted(cs.spec.cells()):
        raise FabricError(
            f"{_plan_path(out_dir)}: shard plan does not cover the spec's "
            f"cell grid exactly"
        )
    done, pending = cs.collect_cells()
    quarantined = _read_quarantine(out_dir)
    quarantined = {c: e for c, e in quarantined.items() if c not in done}
    missing = [c for c in pending if c not in quarantined]
    if missing:
        raise FabricIncompleteError(
            f"{out_dir}: {len(missing)} cell(s) neither journaled nor "
            f"quarantined (e.g. {missing[0]!r}); run more workers, then merge"
        )
    workers = _read_worker_stats(out_dir, fp)
    if quarantined:
        atomic_write_json(Path(out_dir) / "quarantine.json", quarantined)
    points = cs.write_merged(done)
    return FabricMergeResult(
        points=points,
        out_dir=Path(out_dir),
        fingerprint=fp,
        p=8 * cs.spec.n_nodes,
        n_cells=len(done),
        n_shards=len(plan.shards),
        quarantined=quarantined,
        workers=workers,
        steals=sum(int(w.get("steals", 0)) for w in workers),
        lease_contention=sum(int(w.get("lease_contention", 0)) for w in workers),
        cell_seconds={
            cell: float(payload["compute_seconds"])
            for cell, payload in done.items()
            if isinstance(payload.get("compute_seconds"), (int, float))
        },
    )


# ----------------------------------------------------------------------
# status (read-only)
# ----------------------------------------------------------------------
@dataclass
class ShardStatus:
    """One row of the live lease table."""

    shard_id: str
    n_cells: int
    n_done: int
    state: str            # done | leased | expired | unleased
    owner: Optional[str]
    heartbeat_age: Optional[float]


@dataclass
class FabricStatus:
    """Read-only snapshot of a sweep journal and its fabric state."""

    out_dir: Path
    fingerprint: str
    n_cells: int
    n_done: int
    n_pending: int
    n_quarantined: int
    cell_seconds: Dict[str, float]
    shards: List[ShardStatus] = field(default_factory=list)

    def format(self, lease_ttl: float = DEFAULT_LEASE_TTL) -> str:
        """Render counts, cost spread and the live shard-lease table."""
        lines = [
            f"sweep journal {self.out_dir} (fingerprint {self.fingerprint})",
            f"  cells: {self.n_cells} total, {self.n_done} done, "
            f"{self.n_pending} pending, {self.n_quarantined} quarantined",
        ]
        if self.cell_seconds:
            values = sorted(self.cell_seconds.values())
            med = values[len(values) // 2]
            lines.append(
                f"  cell cost: min {values[0]:.3f}s / median {med:.3f}s / "
                f"max {values[-1]:.3f}s over {len(values)} measured"
            )
        if self.shards:
            lines.append(
                f"  {'shard':>6} {'cells':>6} {'done':>5} {'state':>9} "
                f"{'owner':>24} {'beat-age':>9}"
            )
            for s in self.shards:
                age = f"{s.heartbeat_age:>8.1f}s" if s.heartbeat_age is not None else (
                    " " * 9
                )
                lines.append(
                    f"  {s.shard_id:>6} {s.n_cells:>6} {s.n_done:>5} "
                    f"{s.state:>9} {(s.owner or '-'):>24} {age}"
                )
        else:
            lines.append("  no shard plan (solo journal)")
        return "\n".join(lines)


def fabric_status(out_dir, lease_ttl: float = DEFAULT_LEASE_TTL) -> FabricStatus:
    """Inspect a journal without touching it (works mid-run).

    Purely read-only: no directory creation, no lease mutation — safe to
    point at a fabric other workers are actively computing.
    """
    cs = CheckpointedSweep.resume(out_dir)
    fp = cs.spec.fingerprint()
    done, pending = cs.collect_cells()
    quarantined = _read_quarantine(out_dir)
    status = FabricStatus(
        out_dir=Path(out_dir),
        fingerprint=fp,
        n_cells=len(cs.spec.cells()),
        n_done=len(done),
        n_pending=len([c for c in pending if c not in quarantined]),
        n_quarantined=len([c for c in quarantined if c not in done]),
        cell_seconds={
            cell: float(payload["compute_seconds"])
            for cell, payload in done.items()
            if isinstance(payload.get("compute_seconds"), (int, float))
        },
    )
    if not _plan_path(out_dir).is_file():
        return status
    plan = _load_plan(out_dir, fp)
    now = time.time()
    for shard in plan.shards:
        n_done = sum(
            1
            for c in shard.cells
            if c in done or (c in quarantined and c not in done)
        )
        lease = _lease_path(out_dir, shard.shard_id)
        owner: Optional[str] = None
        age: Optional[float] = None
        if n_done == len(shard.cells):
            state = "done"
        else:
            try:
                st = lease.stat()
            except FileNotFoundError:
                state = "unleased"
            else:
                owner = _read_lease_owner(lease)
                age = max(0.0, now - st.st_mtime)
                state = "expired" if age > lease_ttl else "leased"
        status.shards.append(
            ShardStatus(
                shard_id=shard.shard_id,
                n_cells=len(shard.cells),
                n_done=n_done,
                state=state,
                owner=owner,
                heartbeat_age=age,
            )
        )
    return status
