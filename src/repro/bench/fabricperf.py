"""Fabric scaling benchmark: N-worker fan-out vs. the serial runner.

Times the same :class:`~repro.bench.runner.SweepSpec` grid twice — once
through a solo serial :class:`~repro.bench.runner.CheckpointedSweep`,
once per requested worker count through real OS worker processes racing
the shared lease directory — then fingerprint-merges each fabric run and
requires its ``sweep.json`` to be **byte-identical** to the serial one.
``python -m repro perf --fabric`` wraps it and persists the scaling
curve to ``BENCH_fabric.json``.

Cells carry an injected per-cell stall (``cell_delay``, via the runner's
``REPRO_SWEEP_CELL_DELAY`` hook) by default: it models the I/O, queueing
and straggler latency that dominates real multi-host sweep cells and
that the fabric exists to overlap.  The pure-compute share of every cell
is also measured (``serial_compute_seconds``) and the host core count is
recorded, so a reader can judge how much of the speedup is overlap vs.
extra cores — on a single-core host, overlapping the stalls is the whole
story; with ``--cell-delay 0`` the curve measures raw compute scaling
instead (meaningful only when cores >= workers).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from tempfile import mkdtemp
from typing import List, Optional, Sequence, Union

from repro.bench.fabric import fabric_merge, run_fabric_worker
from repro.bench.runner import CELL_DELAY_ENV, CheckpointedSweep, SweepSpec
from repro.util.atomicio import atomic_write_text

__all__ = [
    "FabricPerfCase",
    "FabricPerfReport",
    "run_fabric_perf",
    "DEFAULT_FABRIC_BENCH_PATH",
    "FABRIC_WORKER_COUNTS",
]

#: Where ``run_fabric_perf`` persists its measurement by default.
DEFAULT_FABRIC_BENCH_PATH = "BENCH_fabric.json"

#: Default worker counts for the scaling curve.
FABRIC_WORKER_COUNTS = (1, 2, 4)

#: Default injected per-cell stall (seconds): full shape and CI quick.
DEFAULT_CELL_DELAY = 1.0
QUICK_CELL_DELAY = 0.25


@dataclass
class FabricPerfCase:
    """One point of the scaling curve: the grid under N fabric workers."""

    workers: int
    seconds: float
    speedup: float               # serial_seconds / seconds
    steals: int
    lease_contention: int
    shards: int
    identical: bool              # sweep.json bytes == serial run's


@dataclass
class FabricPerfReport:
    """Outcome of one fabric scaling benchmark."""

    p: int
    n_nodes: int
    n_cells: int
    n_points: int
    cell_delay: float
    cores: int
    serial_seconds: float
    serial_compute_seconds: float   # sum of measured per-cell compute
    cases: List[FabricPerfCase] = field(default_factory=list)
    speedup: float = 0.0            # at the largest worker count
    mismatches: int = 0             # fabric runs whose bytes diverged
    lease_ttl: float = 0.0
    quick: bool = False
    timestamp: float = 0.0
    python: str = ""

    def summary(self) -> str:
        """Human-readable scaling curve with byte-identity verdicts."""
        lines = [
            f"fabric perf: p={self.p}, {self.n_cells} cells, "
            f"{self.n_points} points, cell stall {self.cell_delay:.2f}s, "
            f"{self.cores} core(s)",
            f"  serial runner       : {self.serial_seconds:8.2f} s "
            f"(compute share {self.serial_compute_seconds:.2f} s)",
        ]
        for c in self.cases:
            ident = "bit-identical" if c.identical else "MISMATCH"
            lines.append(
                f"  {c.workers} worker(s)         : {c.seconds:8.2f} s "
                f"({c.speedup:5.2f}x, {c.shards} shards, steals {c.steals}, "
                f"contention {c.lease_contention}, {ident})"
            )
        best = max(self.cases, key=lambda c: c.workers)
        lines.append(f"  speedup at {best.workers} workers: {self.speedup:.2f}x")
        return "\n".join(lines)

    def write(self, path: Union[str, Path]) -> Path:
        """Persist as indented JSON (atomic write); returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(asdict(self), indent=2) + "\n")
        return path


def _mp_context():
    """Fork when the platform has it (no interpreter re-import cost per
    worker, keeping the curve about the fabric rather than process
    startup); spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


def _run_fabric_once(
    spec: SweepSpec,
    out_dir: Path,
    n_workers: int,
    lease_ttl: float,
) -> float:
    """Launch N worker processes over one fabric dir; returns wall seconds."""
    ctx = _mp_context()
    t0 = time.perf_counter()
    procs = [
        ctx.Process(
            target=run_fabric_worker,
            args=(str(out_dir),),
            kwargs={
                "spec": spec,
                "worker_id": f"bench-w{i}",
                "lease_ttl": lease_ttl,
                "poll_interval": 0.05,
            },
        )
        for i in range(n_workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
    bad = [proc.exitcode for proc in procs if proc.exitcode != 0]
    if bad:
        raise RuntimeError(f"fabric worker exited with code(s) {bad}")
    fabric_merge(out_dir)
    return time.perf_counter() - t0


def run_fabric_perf(
    n_nodes: Optional[int] = None,
    workers_list: Optional[Sequence[int]] = None,
    quick: bool = False,
    cell_delay: Optional[float] = None,
    lease_ttl: float = 10.0,
    work_dir: Optional[Union[str, Path]] = None,
    out_path: Optional[Union[str, Path]] = DEFAULT_FABRIC_BENCH_PATH,
) -> FabricPerfReport:
    """Measure the fabric's scaling curve and persist it.

    The serial baseline and every fabric run execute the identical
    default :class:`SweepSpec` grid (full OSU sizes x 4 layouts x
    {heuristic, scotch} x both strategies — the paper-shape 12-cell grid,
    p=256 at the default 32 nodes) in fresh journal directories, all
    under the same injected ``cell_delay``.  Every fabric ``sweep.json``
    must match the serial bytes exactly; any divergence is counted in
    ``mismatches`` (and fails ``repro perf --fabric``).
    """
    if n_nodes is None:
        n_nodes = 2 if quick else 32
    if workers_list is None:
        workers_list = (1, 2) if quick else FABRIC_WORKER_COUNTS
    workers_list = [int(w) for w in workers_list]
    if not workers_list or any(w < 1 for w in workers_list):
        raise ValueError("workers_list must hold positive worker counts")
    if cell_delay is None:
        cell_delay = QUICK_CELL_DELAY if quick else DEFAULT_CELL_DELAY
    cell_delay = float(cell_delay)

    spec = SweepSpec(n_nodes=n_nodes)
    base = Path(work_dir) if work_dir is not None else Path(mkdtemp(prefix="fabricperf-"))
    base.mkdir(parents=True, exist_ok=True)

    prior = os.environ.get(CELL_DELAY_ENV)
    os.environ[CELL_DELAY_ENV] = str(cell_delay)
    try:
        serial_dir = base / "serial"
        t0 = time.perf_counter()
        serial_result = CheckpointedSweep(spec, serial_dir).run()
        serial_seconds = time.perf_counter() - t0
        serial_bytes = (serial_dir / "sweep.json").read_bytes()
        compute = sum(serial_result.cell_seconds.values()) - cell_delay * len(
            serial_result.cell_seconds
        )

        cases: List[FabricPerfCase] = []
        mismatches = 0
        for n_workers in workers_list:
            fdir = base / f"fabric-{n_workers}"
            seconds = _run_fabric_once(spec, fdir, n_workers, lease_ttl)
            merged = fabric_merge(fdir)  # idempotent; re-read for counters
            identical = (fdir / "sweep.json").read_bytes() == serial_bytes
            mismatches += int(not identical)
            cases.append(
                FabricPerfCase(
                    workers=n_workers,
                    seconds=seconds,
                    speedup=serial_seconds / seconds if seconds > 0 else float("inf"),
                    steals=merged.steals,
                    lease_contention=merged.lease_contention,
                    shards=merged.n_shards,
                    identical=identical,
                )
            )
    finally:
        if prior is None:
            os.environ.pop(CELL_DELAY_ENV, None)
        else:
            os.environ[CELL_DELAY_ENV] = prior

    report = FabricPerfReport(
        p=8 * n_nodes,
        n_nodes=n_nodes,
        n_cells=len(spec.cells()),
        n_points=len(serial_result.points),
        cell_delay=cell_delay,
        cores=os.cpu_count() or 1,
        serial_seconds=serial_seconds,
        serial_compute_seconds=max(0.0, compute),
        cases=cases,
        speedup=max(cases, key=lambda c: c.workers).speedup,
        mismatches=mismatches,
        lease_ttl=lease_ttl,
        quick=quick,
        timestamp=time.time(),
        python=platform.python_version(),
    )
    if out_path is not None:
        report.write(out_path)
    return report
