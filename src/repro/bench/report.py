"""Plain-text rendering of sweep results in the paper's figure layout."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.microbench import SweepPoint

__all__ = ["size_label", "format_sweep_table", "format_series_csv"]


def size_label(nbytes: int) -> str:
    """OSU-style size label (1, 512, 1K, 256K, ...)."""
    if nbytes >= 1 << 20 and nbytes % (1 << 20) == 0:
        return f"{nbytes >> 20}M"
    if nbytes >= 1024 and nbytes % 1024 == 0:
        return f"{nbytes >> 10}K"
    return str(nbytes)


def _group(points: Iterable[SweepPoint]):
    by_panel: Dict[tuple, List[SweepPoint]] = {}
    for pt in points:
        by_panel.setdefault((pt.layout, pt.hierarchical, pt.intra), []).append(pt)
    return by_panel


def format_sweep_table(points: Sequence[SweepPoint], title: str = "") -> str:
    """Render sweep points as per-panel tables of improvement percentages.

    One panel per (layout, hierarchical, intra) — matching the sub-figures
    of the paper's Fig. 3/4 — with one column per series
    (Hrstc+initComm, Hrstc+endShfl, Scotch+initComm, Scotch+endShfl) and
    one row per message size.
    """
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    for (layout, hier, intra), pts in _group(points).items():
        panel = f"{layout}" + (f", {intra} ({'hierarchical'})" if hier else "")
        out.append("")
        out.append(f"-- {panel} --")
        series = sorted({pt.series for pt in pts})
        sizes = sorted({pt.block_bytes for pt in pts})
        header = f"{'size':>8} {'default(us)':>12} " + " ".join(f"{s:>16}" for s in series)
        out.append(header)
        cell: Dict[tuple, SweepPoint] = {(pt.block_bytes, pt.series): pt for pt in pts}
        for size in sizes:
            base_us = next(pt.base_us for pt in pts if pt.block_bytes == size)
            row = [f"{size_label(size):>8}", f"{base_us:>12.1f}"]
            for s in series:
                pt = cell.get((size, s))
                row.append(f"{pt.improvement_pct:>15.1f}%" if pt else " " * 16)
            out.append(" ".join(row))
    return "\n".join(out)


def format_series_csv(points: Sequence[SweepPoint]) -> str:
    """Machine-readable dump (one row per point)."""
    lines = [
        "layout,hierarchical,intra,block_bytes,series,algorithm,default_us,tuned_us,improvement_pct"
    ]
    for pt in points:
        lines.append(
            f"{pt.layout},{int(pt.hierarchical)},{pt.intra},{pt.block_bytes},"
            f"{pt.series},{pt.algorithm},{pt.base_us:.3f},{pt.tuned_us:.3f},"
            f"{pt.improvement_pct:.2f}"
        )
    return "\n".join(lines)
