"""Self-timing harness: batched sweep pipeline vs. the naive per-size loop.

Every paper figure is a sweep over message sizes × layouts × mappers ×
restoration strategies, and for a fixed (schedule, mapping) the routes,
alpha-sums and per-link *unit* loads are size-independent — the batched
pipeline (``TimingEngine.evaluate_sizes`` + the evaluator's
``*_latencies`` methods) computes them once per algorithm partition
instead of once per point.  This harness times both pipelines on the same
Fig. 3 sweep shape, cross-checks that they produce identical latencies,
and persists the measurement to ``BENCH_sweep.json`` so the repo carries
a perf trajectory across PRs.  ``python -m repro perf`` wraps it.

Both pipelines are timed with the one-time rank reorderings precomputed
(the paper's setting: "the whole rank reordering process happens only
once at run-time"), so the ratio isolates the pricing pipeline itself.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.bench.microbench import OSU_SIZES, SweepPoint, _sweep
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import make_layout
from repro.mapping.reorder import HEURISTICS
from repro.topology.gpc import gpc_cluster
from repro.util.atomicio import atomic_write_text

__all__ = [
    "PerfReport",
    "naive_sweep",
    "run_perf",
    "DEFAULT_BENCH_PATH",
    "MappingPerfCase",
    "MappingPerfReport",
    "run_mapping_perf",
    "DEFAULT_MAPPING_BENCH_PATH",
    "DEFAULT_NAIVE_MAX_P",
    "MAPPING_P_VALUES",
]

#: Where ``run_perf`` persists its measurement by default.
DEFAULT_BENCH_PATH = "BENCH_sweep.json"

#: Where ``run_mapping_perf`` persists its measurement by default.
DEFAULT_MAPPING_BENCH_PATH = "BENCH_mappings.json"

#: Communicator sizes for the mapping-construction benchmark.  GPC is
#: 4096 cores; the 8192/16384 rows stress the compiled tier past the
#: paper's machine size.
MAPPING_P_VALUES = (256, 1024, 4096, 8192, 16384)

#: Above this communicator size the per-query naive engine (and its
#: dense O(n_cores^2) distance matrix) is skipped: naive at p=16384
#: would take minutes and allocate a multi-GiB matrix.  Rows above the
#: cutoff record ``naive_seconds: null`` and report the jit tier's
#: speedup over the vectorized tier instead.
DEFAULT_NAIVE_MAX_P = 4096

#: Reduced grid for the CI smoke mode (still crosses the rd/ring
#: algorithm-selection threshold at 2 KiB).
QUICK_SIZES = [1, 16, 256, 1024, 4096, 65536, 262144]
QUICK_LAYOUTS = ["block-bunch", "cyclic-scatter"]

FULL_LAYOUTS = ["block-bunch", "block-scatter", "cyclic-bunch", "cyclic-scatter"]


@dataclass
class PerfReport:
    """Outcome of one batched-vs-naive sweep timing."""

    p: int
    n_nodes: int
    n_points: int
    naive_seconds: float
    batched_seconds: float
    speedup: float
    points_per_sec_naive: float
    points_per_sec_batched: float
    max_rel_diff: float          # batched vs naive point latencies
    sizes: List[int] = field(default_factory=list)
    layouts: List[str] = field(default_factory=list)
    mappers: List[str] = field(default_factory=list)
    strategies: List[str] = field(default_factory=list)
    workers: Optional[int] = None
    quick: bool = False
    repeats: int = 1
    timestamp: float = 0.0
    python: str = ""
    #: Top cumulative-time hotspots of one batched sweep (``--profile``):
    #: ``{"ncalls", "tottime", "cumtime", "function"}`` per entry.
    profile_top: Optional[List[dict]] = None

    def summary(self) -> str:
        """Human-readable multi-line report (what ``repro perf`` prints)."""
        out = (
            f"perf: p={self.p}, {self.n_points} sweep points\n"
            f"  naive per-size loop : {self.naive_seconds:8.3f} s "
            f"({self.points_per_sec_naive:8.1f} points/s)\n"
            f"  batched pipeline    : {self.batched_seconds:8.3f} s "
            f"({self.points_per_sec_batched:8.1f} points/s)"
            + (f"  [workers={self.workers}]" if self.workers else "")
            + f"\n  speedup             : {self.speedup:8.2f}x"
            f"\n  max rel. difference : {self.max_rel_diff:.3e}"
        )
        if self.profile_top:
            out += "\n\nbatched-pipeline hotspots (cumulative):"
            out += f"\n  {'ncalls':>10} {'tottime':>9} {'cumtime':>9}  function"
            for h in self.profile_top:
                out += (
                    f"\n  {h['ncalls']:>10} {h['tottime']:>9.4f} "
                    f"{h['cumtime']:>9.4f}  {h['function']}"
                )
        return out

    def write(self, path: Union[str, Path]) -> Path:
        """Persist the report as indented JSON; returns the path written.

        The write is atomic (tmp file + rename), so a perf run killed
        mid-write never leaves a torn ``BENCH_sweep.json`` behind.
        """
        path = Path(path)
        atomic_write_text(path, json.dumps(asdict(self), indent=2) + "\n")
        return path


def naive_sweep(
    evaluator: AllgatherEvaluator,
    p: int,
    layouts: Sequence[str],
    sizes: Sequence[int],
    mappers: Sequence[str],
    strategies: Sequence[str],
) -> List[SweepPoint]:
    """The seed pipeline: size loop outermost, every point priced alone.

    Each point re-selects the algorithm, rebuilds its schedule and
    re-prices it from scratch through :meth:`TimingEngine.evaluate` —
    the reference the batched pipeline is timed against.
    """
    points: List[SweepPoint] = []
    for lname in layouts:
        L = make_layout(lname, evaluator.cluster, p)
        for bb in sizes:
            base = evaluator.default_latency(L, bb)
            for mapper in mappers:
                for strategy in strategies:
                    tuned = evaluator.reordered_latency(L, bb, mapper, strategy)
                    points.append(
                        SweepPoint(
                            layout=lname,
                            block_bytes=int(bb),
                            mapper=mapper,
                            strategy=strategy,
                            hierarchical=False,
                            intra="binomial",
                            algorithm=tuned.algorithm,
                            base_us=base.seconds * 1e6,
                            tuned_us=tuned.seconds * 1e6,
                        )
                    )
    return points


def _fresh_evaluator(
    n_nodes: int, reorder_cache=None, cache_routes: bool = True
) -> AllgatherEvaluator:
    """Evaluator on its own cluster (cold route/pricing caches).

    ``cache_routes=False`` turns the cluster-level route memoization off:
    the naive reference is timed that way because the pre-batching
    pipeline rebuilt every route table from scratch at every point.
    """
    ev = AllgatherEvaluator(gpc_cluster(n_nodes=n_nodes), rng=0)
    ev.cluster.cache_routes = cache_routes
    if reorder_cache is not None:
        ev._reorder_cache = dict(reorder_cache)
    return ev


def _profile_batched(
    n_nodes: int,
    reorder_cache,
    p: int,
    layouts: Sequence[str],
    sizes: Sequence[int],
    mappers: Sequence[str],
    strategies: Sequence[str],
    top: int = 20,
) -> List[dict]:
    """cProfile one batched sweep; return the top-N cumulative hotspots.

    Runs in-process (never under ``workers``, whose subprocesses the
    profiler cannot see) on a fresh evaluator, so the numbers describe
    exactly the pipeline the ``batched_seconds`` timing measured.
    """
    import cProfile
    import pstats

    ev = _fresh_evaluator(n_nodes, reorder_cache)
    prof = cProfile.Profile()
    prof.enable()
    _sweep(ev, p, layouts, sizes, mappers, strategies, False, "binomial", None)
    prof.disable()
    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    hotspots: List[dict] = []
    for func in stats.fcn_list[:top]:  # (file, line, name), sorted by cumtime
        cc, nc, tt, ct, _ = stats.stats[func]
        fname, line, name = func
        where = name if fname == "~" else f"{Path(fname).name}:{line}({name})"
        hotspots.append(
            {
                "ncalls": f"{nc}/{cc}" if nc != cc else str(nc),
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
                "function": where,
            }
        )
    return hotspots


def _max_rel_diff(a: List[SweepPoint], b: List[SweepPoint]) -> float:
    worst = 0.0
    for pa, pb in zip(a, b):
        for va, vb in ((pa.base_us, pb.base_us), (pa.tuned_us, pb.tuned_us)):
            denom = max(abs(va), abs(vb), 1e-30)
            worst = max(worst, abs(va - vb) / denom)
    return worst


@dataclass
class MappingPerfCase:
    """Placement-engine comparison at one communicator size.

    ``naive_seconds`` / ``vectorized_seconds`` / ``jit_seconds`` time the
    *whole* construction path a runtime would pay at startup: distance
    preparation (dense matrix vs. implicit backend) plus one mapping per
    registered heuristic.  ``*_map_seconds`` isolate the per-heuristic
    mapping time against a warm distance backend.  All numbers are
    minima over the run's repeats (the machines this runs on are noisy).

    Above the naive cutoff (:data:`DEFAULT_NAIVE_MAX_P`) the naive
    engine is skipped: ``naive_seconds`` / ``naive_map_seconds`` are
    ``None`` and ``speedup`` (see ``speedup_baseline``) compares the jit
    tier against the vectorized tier instead.  ``jit_speedup`` always
    holds vectorized/jit; ``jit_kernel`` records whether the compiled
    numba kernel ran or the engine fell back to the vectorized loop.
    """

    p: int
    n_nodes: int
    naive_seconds: Optional[float]
    vectorized_seconds: float
    jit_seconds: float
    speedup: float
    speedup_baseline: str            # "naive" or "vectorized"
    jit_speedup: float               # vectorized_seconds / jit_seconds
    jit_kernel: str                  # "numba" or "vectorized-fallback"
    naive_map_seconds: Optional[dict]
    vectorized_map_seconds: dict
    jit_map_seconds: dict
    mismatches: int


@dataclass
class MappingPerfReport:
    """Outcome of one placement-engine benchmark run."""

    cases: List[MappingPerfCase]
    layout: str
    heuristics: List[str]
    repeats: int
    naive_max_p: int = DEFAULT_NAIVE_MAX_P
    quick: bool = False
    timestamp: float = 0.0
    python: str = ""

    def summary(self) -> str:
        """Human-readable table (what ``repro perf --mappings`` prints)."""
        lines = [
            f"mapping construction, layout={self.layout!r}, "
            f"{len(self.heuristics)} heuristics, best of {self.repeats}, "
            f"naive cutoff p<={self.naive_max_p}:",
            f"  {'p':>6} {'naive':>10} {'vectorized':>11} {'jit':>10} "
            f"{'speedup':>8} {'jit/vect':>8}  mismatches",
        ]
        for c in self.cases:
            naive = (
                f"{c.naive_seconds * 1e3:>8.1f}ms"
                if c.naive_seconds is not None
                else f"{'-':>10}"
            )
            lines.append(
                f"  {c.p:>6} {naive} "
                f"{c.vectorized_seconds * 1e3:>9.1f}ms "
                f"{c.jit_seconds * 1e3:>8.1f}ms "
                f"{c.speedup:>7.2f}x {c.jit_speedup:>7.2f}x  "
                f"{c.mismatches}"
            )
        kernels = {c.jit_kernel for c in self.cases}
        lines.append(f"  jit kernel: {', '.join(sorted(kernels))}")
        return "\n".join(lines)

    def write(self, path: Union[str, Path]) -> Path:
        """Persist as indented JSON (atomic write); returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(asdict(self), indent=2) + "\n")
        return path


def _mapping_case(
    p: int,
    patterns: Sequence[str],
    layout: str,
    repeats: int,
    naive_max_p: int = DEFAULT_NAIVE_MAX_P,
) -> MappingPerfCase:
    """Benchmark one communicator size through the placement engines."""
    from repro.util.jit import HAS_NUMBA

    n_nodes = max(1, -(-p // 8))  # gpc: 8 cores per node
    cluster = gpc_cluster(n_nodes=n_nodes)
    L = make_layout(layout, cluster, p)
    with_naive = p <= naive_max_p
    mappers = {
        name: (
            HEURISTICS[name](engine="naive") if with_naive else None,
            HEURISTICS[name](engine="vectorized"),
            HEURISTICS[name](engine="jit"),
        )
        for name in patterns
    }

    # Placement identity first: every engine pair must agree bit-for-bit.
    # Below the cutoff: naive-vs-vectorized and jit-vs-naive; above it
    # the dense matrix is unaffordable, so jit-vs-vectorized.
    impl = cluster.implicit_distances()
    D = cluster.distance_matrix() if with_naive else None
    mismatches = 0
    for i, (naive, vect, jit) in enumerate(mappers.values()):
        seed = 1000 + i
        Mv = vect.map(L, impl, rng=seed)
        Mj = jit.map(L, impl, rng=seed)
        mismatches += int(np.count_nonzero(Mv != Mj))
        if naive is not None:
            mismatches += int(np.count_nonzero(naive.map(L, D, rng=seed) != Mv))

    # Construction timings include distance preparation on a *fresh*
    # cluster: the dense matrix is the naive path's startup cost, the
    # implicit backend's coordinate tables the other engines'.
    naive_total: Optional[float] = float("inf") if with_naive else None
    vect_total = jit_total = float("inf")
    for r in range(repeats):
        if with_naive:
            fresh = gpc_cluster(n_nodes=n_nodes)
            t0 = time.perf_counter()
            Dr = fresh.distance_matrix()
            for i, (naive, _, _) in enumerate(mappers.values()):
                naive.map(L, Dr, rng=r * 10 + i)
            naive_total = min(naive_total, time.perf_counter() - t0)

        fresh = gpc_cluster(n_nodes=n_nodes)
        t0 = time.perf_counter()
        ir = fresh.implicit_distances()
        for i, (_, vect, _) in enumerate(mappers.values()):
            vect.map(L, ir, rng=r * 10 + i)
        vect_total = min(vect_total, time.perf_counter() - t0)

        fresh = gpc_cluster(n_nodes=n_nodes)
        t0 = time.perf_counter()
        ir = fresh.implicit_distances()
        for i, (_, _, jit) in enumerate(mappers.values()):
            jit.map(L, ir, rng=r * 10 + i)
        jit_total = min(jit_total, time.perf_counter() - t0)

    # Per-heuristic mapping time against warm backends.
    naive_map: Optional[dict] = {n: float("inf") for n in mappers} if with_naive else None
    vect_map = {name: float("inf") for name in mappers}
    jit_map = {name: float("inf") for name in mappers}
    for r in range(repeats):
        for i, (name, (naive, vect, jit)) in enumerate(mappers.items()):
            seed = r * 10 + i
            if naive is not None:
                t0 = time.perf_counter()
                naive.map(L, D, rng=seed)
                naive_map[name] = min(naive_map[name], time.perf_counter() - t0)
            t0 = time.perf_counter()
            vect.map(L, impl, rng=seed)
            vect_map[name] = min(vect_map[name], time.perf_counter() - t0)
            t0 = time.perf_counter()
            jit.map(L, impl, rng=seed)
            jit_map[name] = min(jit_map[name], time.perf_counter() - t0)

    jit_speedup = vect_total / jit_total if jit_total > 0 else float("inf")
    if with_naive:
        speedup = naive_total / vect_total if vect_total > 0 else float("inf")
        baseline = "naive"
    else:
        speedup = jit_speedup
        baseline = "vectorized"
    return MappingPerfCase(
        p=p,
        n_nodes=n_nodes,
        naive_seconds=naive_total,
        vectorized_seconds=vect_total,
        jit_seconds=jit_total,
        speedup=speedup,
        speedup_baseline=baseline,
        jit_speedup=jit_speedup,
        jit_kernel="numba" if HAS_NUMBA else "vectorized-fallback",
        naive_map_seconds=naive_map,
        vectorized_map_seconds=vect_map,
        jit_map_seconds=jit_map,
        mismatches=mismatches,
    )


def run_mapping_perf(
    p_values: Optional[Sequence[int]] = MAPPING_P_VALUES,
    repeats: int = 5,
    layout: str = "block-bunch",
    patterns: Optional[Sequence[str]] = None,
    quick: bool = False,
    naive_max_p: int = DEFAULT_NAIVE_MAX_P,
    out_path: Optional[Union[str, Path]] = DEFAULT_MAPPING_BENCH_PATH,
) -> MappingPerfReport:
    """Time the placement engines against each other and persist the result.

    For each ``p`` the same five heuristics run through the placement
    tiers — the per-query :class:`~repro.mapping.base.CorePool`
    reference, :meth:`HierarchicalFreePool.execute_program
    <repro.mapping.base.HierarchicalFreePool.execute_program>` and the
    compiled :class:`~repro.mapping.jitkernel.JitFreePool` — against
    their natural distance backends (dense matrix vs. implicit).  The
    construction timing includes distance preparation, since avoiding
    the dense :math:`O(n_{cores}^2)` matrix is the implicit backend's
    point.  Placements must be bit-identical across engines
    (``mismatches`` is asserted zero by the tier-1 tests); the naive
    engine only runs for ``p <= naive_max_p``; ``quick=True`` shrinks to
    p=256 for CI.
    """
    if quick:
        p_values = [256]
        repeats = min(repeats, 2)
    p_values = [int(p) for p in (p_values if p_values is not None else MAPPING_P_VALUES)]
    if not p_values:
        raise ValueError("p_values must be non-empty")
    repeats = max(1, int(repeats))
    naive_max_p = int(naive_max_p)
    patterns = list(patterns) if patterns is not None else sorted(HEURISTICS)
    unknown = [pat for pat in patterns if pat not in HEURISTICS]
    if unknown:
        raise KeyError(f"unknown heuristic pattern(s) {unknown}")

    report = MappingPerfReport(
        cases=[
            _mapping_case(p, patterns, layout, repeats, naive_max_p) for p in p_values
        ],
        layout=layout,
        heuristics=patterns,
        repeats=repeats,
        naive_max_p=naive_max_p,
        quick=quick,
        timestamp=time.time(),
        python=platform.python_version(),
    )
    if out_path is not None:
        report.write(out_path)
    return report


def run_perf(
    n_nodes: int = 32,
    sizes: Optional[Sequence[int]] = None,
    layouts: Optional[Sequence[str]] = None,
    mappers: Sequence[str] = ("heuristic", "scotch"),
    strategies: Sequence[str] = ("initcomm", "endshfl"),
    workers: Optional[int] = None,
    quick: bool = False,
    repeats: int = 1,
    profile: bool = False,
    out_path: Optional[Union[str, Path]] = DEFAULT_BENCH_PATH,
) -> PerfReport:
    """Time the Fig. 3 sweep through both pipelines and persist the result.

    The default shape is the paper's Fig. 3 sweep (19 OSU sizes × 4
    layouts × {heuristic, scotch} × {initComm, endShfl}) at
    ``p = 8 * n_nodes``; ``quick=True`` shrinks the grid for CI smoke
    runs.  Rank reorderings are computed once up front and shared by both
    timed pipelines, mirroring the paper's one-time reordering cost.
    ``profile=True`` additionally cProfiles one (untimed) batched sweep
    and records the top-20 cumulative hotspots in ``profile_top``.
    """
    if quick:
        sizes = list(sizes if sizes is not None else QUICK_SIZES)
        layouts = list(layouts if layouts is not None else QUICK_LAYOUTS)
        mappers = list(mappers if mappers != ("heuristic", "scotch") else ["heuristic"])
        strategies = list(
            strategies if strategies != ("initcomm", "endshfl") else ["initcomm"]
        )
    else:
        sizes = list(sizes if sizes is not None else OSU_SIZES)
        layouts = list(layouts if layouts is not None else FULL_LAYOUTS)
        mappers = list(mappers)
        strategies = list(strategies)
    repeats = max(1, int(repeats))

    # One-time reordering warm-up (excluded from both timings).
    warm = _fresh_evaluator(n_nodes)
    p = warm.cluster.n_cores
    for lname in layouts:
        L = make_layout(lname, warm.cluster, p)
        for mapper in mappers:
            warm.reordered_latencies(L, sizes, mapper, strategies[0])

    naive_best = float("inf")
    batched_best = float("inf")
    naive_points: List[SweepPoint] = []
    batched_points: List[SweepPoint] = []
    for _ in range(repeats):
        ev_naive = _fresh_evaluator(n_nodes, warm._reorder_cache, cache_routes=False)
        t0 = time.perf_counter()
        naive_points = naive_sweep(ev_naive, p, layouts, sizes, mappers, strategies)
        naive_best = min(naive_best, time.perf_counter() - t0)

        ev_batched = _fresh_evaluator(n_nodes, warm._reorder_cache)
        t0 = time.perf_counter()
        batched_points = _sweep(
            ev_batched, p, layouts, sizes, mappers, strategies, False, "binomial", workers
        )
        batched_best = min(batched_best, time.perf_counter() - t0)

    hotspots: Optional[List[dict]] = None
    if profile:
        hotspots = _profile_batched(
            n_nodes, warm._reorder_cache, p, layouts, sizes, mappers, strategies
        )

    n_points = len(batched_points)
    report = PerfReport(
        p=p,
        n_nodes=n_nodes,
        n_points=n_points,
        naive_seconds=naive_best,
        batched_seconds=batched_best,
        speedup=naive_best / batched_best if batched_best > 0 else float("inf"),
        points_per_sec_naive=n_points / naive_best if naive_best > 0 else float("inf"),
        points_per_sec_batched=(
            n_points / batched_best if batched_best > 0 else float("inf")
        ),
        max_rel_diff=_max_rel_diff(naive_points, batched_points),
        sizes=[int(s) for s in sizes],
        layouts=list(layouts),
        mappers=list(mappers),
        strategies=list(strategies),
        workers=workers,
        quick=quick,
        repeats=repeats,
        timestamp=time.time(),
        python=platform.python_version(),
        profile_top=hotspots,
    )
    if out_path is not None:
        report.write(out_path)
    return report
