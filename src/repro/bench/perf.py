"""Self-timing harness: batched sweep pipeline vs. the naive per-size loop.

Every paper figure is a sweep over message sizes × layouts × mappers ×
restoration strategies, and for a fixed (schedule, mapping) the routes,
alpha-sums and per-link *unit* loads are size-independent — the batched
pipeline (``TimingEngine.evaluate_sizes`` + the evaluator's
``*_latencies`` methods) computes them once per algorithm partition
instead of once per point.  This harness times both pipelines on the same
Fig. 3 sweep shape, cross-checks that they produce identical latencies,
and persists the measurement to ``BENCH_sweep.json`` so the repo carries
a perf trajectory across PRs.  ``python -m repro perf`` wraps it.

Both pipelines are timed with the one-time rank reorderings precomputed
(the paper's setting: "the whole rank reordering process happens only
once at run-time"), so the ratio isolates the pricing pipeline itself.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.bench.microbench import OSU_SIZES, SweepPoint, _sweep
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import make_layout
from repro.mapping.reorder import HEURISTICS
from repro.topology.gpc import gpc_cluster
from repro.util.atomicio import atomic_write_text

__all__ = [
    "PerfReport",
    "naive_sweep",
    "run_perf",
    "DEFAULT_BENCH_PATH",
    "MappingPerfCase",
    "MappingPerfReport",
    "run_mapping_perf",
    "DEFAULT_MAPPING_BENCH_PATH",
]

#: Where ``run_perf`` persists its measurement by default.
DEFAULT_BENCH_PATH = "BENCH_sweep.json"

#: Where ``run_mapping_perf`` persists its measurement by default.
DEFAULT_MAPPING_BENCH_PATH = "BENCH_mappings.json"

#: Communicator sizes for the mapping-construction benchmark (paper
#: scale: GPC is 4096 cores).
MAPPING_P_VALUES = (256, 1024, 4096)

#: Reduced grid for the CI smoke mode (still crosses the rd/ring
#: algorithm-selection threshold at 2 KiB).
QUICK_SIZES = [1, 16, 256, 1024, 4096, 65536, 262144]
QUICK_LAYOUTS = ["block-bunch", "cyclic-scatter"]

FULL_LAYOUTS = ["block-bunch", "block-scatter", "cyclic-bunch", "cyclic-scatter"]


@dataclass
class PerfReport:
    """Outcome of one batched-vs-naive sweep timing."""

    p: int
    n_nodes: int
    n_points: int
    naive_seconds: float
    batched_seconds: float
    speedup: float
    points_per_sec_naive: float
    points_per_sec_batched: float
    max_rel_diff: float          # batched vs naive point latencies
    sizes: List[int] = field(default_factory=list)
    layouts: List[str] = field(default_factory=list)
    mappers: List[str] = field(default_factory=list)
    strategies: List[str] = field(default_factory=list)
    workers: Optional[int] = None
    quick: bool = False
    repeats: int = 1
    timestamp: float = 0.0
    python: str = ""

    def summary(self) -> str:
        """Human-readable multi-line report (what ``repro perf`` prints)."""
        return (
            f"perf: p={self.p}, {self.n_points} sweep points\n"
            f"  naive per-size loop : {self.naive_seconds:8.3f} s "
            f"({self.points_per_sec_naive:8.1f} points/s)\n"
            f"  batched pipeline    : {self.batched_seconds:8.3f} s "
            f"({self.points_per_sec_batched:8.1f} points/s)"
            + (f"  [workers={self.workers}]" if self.workers else "")
            + f"\n  speedup             : {self.speedup:8.2f}x"
            f"\n  max rel. difference : {self.max_rel_diff:.3e}"
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Persist the report as indented JSON; returns the path written.

        The write is atomic (tmp file + rename), so a perf run killed
        mid-write never leaves a torn ``BENCH_sweep.json`` behind.
        """
        path = Path(path)
        atomic_write_text(path, json.dumps(asdict(self), indent=2) + "\n")
        return path


def naive_sweep(
    evaluator: AllgatherEvaluator,
    p: int,
    layouts: Sequence[str],
    sizes: Sequence[int],
    mappers: Sequence[str],
    strategies: Sequence[str],
) -> List[SweepPoint]:
    """The seed pipeline: size loop outermost, every point priced alone.

    Each point re-selects the algorithm, rebuilds its schedule and
    re-prices it from scratch through :meth:`TimingEngine.evaluate` —
    the reference the batched pipeline is timed against.
    """
    points: List[SweepPoint] = []
    for lname in layouts:
        L = make_layout(lname, evaluator.cluster, p)
        for bb in sizes:
            base = evaluator.default_latency(L, bb)
            for mapper in mappers:
                for strategy in strategies:
                    tuned = evaluator.reordered_latency(L, bb, mapper, strategy)
                    points.append(
                        SweepPoint(
                            layout=lname,
                            block_bytes=int(bb),
                            mapper=mapper,
                            strategy=strategy,
                            hierarchical=False,
                            intra="binomial",
                            algorithm=tuned.algorithm,
                            base_us=base.seconds * 1e6,
                            tuned_us=tuned.seconds * 1e6,
                        )
                    )
    return points


def _fresh_evaluator(
    n_nodes: int, reorder_cache=None, cache_routes: bool = True
) -> AllgatherEvaluator:
    """Evaluator on its own cluster (cold route/pricing caches).

    ``cache_routes=False`` turns the cluster-level route memoization off:
    the naive reference is timed that way because the pre-batching
    pipeline rebuilt every route table from scratch at every point.
    """
    ev = AllgatherEvaluator(gpc_cluster(n_nodes=n_nodes), rng=0)
    ev.cluster.cache_routes = cache_routes
    if reorder_cache is not None:
        ev._reorder_cache = dict(reorder_cache)
    return ev


def _max_rel_diff(a: List[SweepPoint], b: List[SweepPoint]) -> float:
    worst = 0.0
    for pa, pb in zip(a, b):
        for va, vb in ((pa.base_us, pb.base_us), (pa.tuned_us, pb.tuned_us)):
            denom = max(abs(va), abs(vb), 1e-30)
            worst = max(worst, abs(va - vb) / denom)
    return worst


@dataclass
class MappingPerfCase:
    """Naive vs. vectorised mapping construction at one communicator size.

    ``naive_seconds`` / ``vectorized_seconds`` time the *whole*
    construction path a runtime would pay at startup: distance
    preparation (dense matrix vs. implicit backend) plus one mapping per
    registered heuristic.  ``naive_map_seconds`` /
    ``vectorized_map_seconds`` isolate the per-heuristic mapping time
    against a warm distance backend.  All numbers are minima over the
    run's repeats (the machines this runs on are noisy).
    """

    p: int
    n_nodes: int
    naive_seconds: float
    vectorized_seconds: float
    speedup: float
    naive_map_seconds: dict
    vectorized_map_seconds: dict
    mismatches: int


@dataclass
class MappingPerfReport:
    """Outcome of one naive-vs-vectorised mapping benchmark run."""

    cases: List[MappingPerfCase]
    layout: str
    heuristics: List[str]
    repeats: int
    quick: bool = False
    timestamp: float = 0.0
    python: str = ""

    def summary(self) -> str:
        """Human-readable table (what ``repro perf --mappings`` prints)."""
        lines = [
            f"mapping construction, layout={self.layout!r}, "
            f"{len(self.heuristics)} heuristics, best of {self.repeats}:",
            f"  {'p':>6} {'naive':>10} {'vectorized':>11} {'speedup':>8}  mismatches",
        ]
        for c in self.cases:
            lines.append(
                f"  {c.p:>6} {c.naive_seconds * 1e3:>8.1f}ms "
                f"{c.vectorized_seconds * 1e3:>9.1f}ms {c.speedup:>7.2f}x  "
                f"{c.mismatches}"
            )
        return "\n".join(lines)

    def write(self, path: Union[str, Path]) -> Path:
        """Persist as indented JSON (atomic write); returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(asdict(self), indent=2) + "\n")
        return path


def _mapping_case(
    p: int, patterns: Sequence[str], layout: str, repeats: int
) -> MappingPerfCase:
    """Benchmark one communicator size through both placement engines."""
    n_nodes = max(1, -(-p // 8))  # gpc: 8 cores per node
    cluster = gpc_cluster(n_nodes=n_nodes)
    L = make_layout(layout, cluster, p)
    mappers = {
        name: (HEURISTICS[name](engine="naive"), HEURISTICS[name](engine="vectorized"))
        for name in patterns
    }

    # Placement identity first: both engines must agree bit-for-bit.
    D = cluster.distance_matrix()
    impl = cluster.implicit_distances()
    mismatches = 0
    for i, (naive, vect) in enumerate(mappers.values()):
        seed = 1000 + i
        mismatches += int(
            np.count_nonzero(naive.map(L, D, rng=seed) != vect.map(L, impl, rng=seed))
        )

    # Construction timings include distance preparation on a *fresh*
    # cluster: the dense matrix is the naive path's startup cost, the
    # implicit backend's coordinate tables the vectorised path's.
    naive_total = vect_total = float("inf")
    for r in range(repeats):
        fresh = gpc_cluster(n_nodes=n_nodes)
        t0 = time.perf_counter()
        Dr = fresh.distance_matrix()
        for i, (naive, _) in enumerate(mappers.values()):
            naive.map(L, Dr, rng=r * 10 + i)
        naive_total = min(naive_total, time.perf_counter() - t0)

        fresh = gpc_cluster(n_nodes=n_nodes)
        t0 = time.perf_counter()
        ir = fresh.implicit_distances()
        for i, (_, vect) in enumerate(mappers.values()):
            vect.map(L, ir, rng=r * 10 + i)
        vect_total = min(vect_total, time.perf_counter() - t0)

    # Per-heuristic mapping time against warm backends.
    naive_map = {name: float("inf") for name in mappers}
    vect_map = {name: float("inf") for name in mappers}
    for r in range(repeats):
        for i, (name, (naive, vect)) in enumerate(mappers.items()):
            seed = r * 10 + i
            t0 = time.perf_counter()
            naive.map(L, D, rng=seed)
            naive_map[name] = min(naive_map[name], time.perf_counter() - t0)
            t0 = time.perf_counter()
            vect.map(L, impl, rng=seed)
            vect_map[name] = min(vect_map[name], time.perf_counter() - t0)

    return MappingPerfCase(
        p=p,
        n_nodes=n_nodes,
        naive_seconds=naive_total,
        vectorized_seconds=vect_total,
        speedup=naive_total / vect_total if vect_total > 0 else float("inf"),
        naive_map_seconds=naive_map,
        vectorized_map_seconds=vect_map,
        mismatches=mismatches,
    )


def run_mapping_perf(
    p_values: Optional[Sequence[int]] = MAPPING_P_VALUES,
    repeats: int = 5,
    layout: str = "block-bunch",
    patterns: Optional[Sequence[str]] = None,
    quick: bool = False,
    out_path: Optional[Union[str, Path]] = DEFAULT_MAPPING_BENCH_PATH,
) -> MappingPerfReport:
    """Time naive vs. vectorised greedy placement and persist the result.

    For each ``p`` the same five heuristics run through both placement
    engines — the per-query :class:`~repro.mapping.base.CorePool`
    reference and :meth:`HierarchicalFreePool.execute_program
    <repro.mapping.base.HierarchicalFreePool.execute_program>` — against
    their natural distance backends (dense matrix vs. implicit).  The
    construction timing includes distance preparation, since avoiding
    the dense :math:`O(n_{cores}^2)` matrix is the implicit backend's
    point.  Placements must be bit-identical (``mismatches`` is asserted
    zero by the tier-1 tests); ``quick=True`` shrinks to p=256 for CI.
    """
    if quick:
        p_values = [256]
        repeats = min(repeats, 2)
    p_values = [int(p) for p in (p_values if p_values is not None else MAPPING_P_VALUES)]
    if not p_values:
        raise ValueError("p_values must be non-empty")
    repeats = max(1, int(repeats))
    patterns = list(patterns) if patterns is not None else sorted(HEURISTICS)
    unknown = [pat for pat in patterns if pat not in HEURISTICS]
    if unknown:
        raise KeyError(f"unknown heuristic pattern(s) {unknown}")

    report = MappingPerfReport(
        cases=[_mapping_case(p, patterns, layout, repeats) for p in p_values],
        layout=layout,
        heuristics=patterns,
        repeats=repeats,
        quick=quick,
        timestamp=time.time(),
        python=platform.python_version(),
    )
    if out_path is not None:
        report.write(out_path)
    return report


def run_perf(
    n_nodes: int = 32,
    sizes: Optional[Sequence[int]] = None,
    layouts: Optional[Sequence[str]] = None,
    mappers: Sequence[str] = ("heuristic", "scotch"),
    strategies: Sequence[str] = ("initcomm", "endshfl"),
    workers: Optional[int] = None,
    quick: bool = False,
    repeats: int = 1,
    out_path: Optional[Union[str, Path]] = DEFAULT_BENCH_PATH,
) -> PerfReport:
    """Time the Fig. 3 sweep through both pipelines and persist the result.

    The default shape is the paper's Fig. 3 sweep (19 OSU sizes × 4
    layouts × {heuristic, scotch} × {initComm, endShfl}) at
    ``p = 8 * n_nodes``; ``quick=True`` shrinks the grid for CI smoke
    runs.  Rank reorderings are computed once up front and shared by both
    timed pipelines, mirroring the paper's one-time reordering cost.
    """
    if quick:
        sizes = list(sizes if sizes is not None else QUICK_SIZES)
        layouts = list(layouts if layouts is not None else QUICK_LAYOUTS)
        mappers = list(mappers if mappers != ("heuristic", "scotch") else ["heuristic"])
        strategies = list(
            strategies if strategies != ("initcomm", "endshfl") else ["initcomm"]
        )
    else:
        sizes = list(sizes if sizes is not None else OSU_SIZES)
        layouts = list(layouts if layouts is not None else FULL_LAYOUTS)
        mappers = list(mappers)
        strategies = list(strategies)
    repeats = max(1, int(repeats))

    # One-time reordering warm-up (excluded from both timings).
    warm = _fresh_evaluator(n_nodes)
    p = warm.cluster.n_cores
    for lname in layouts:
        L = make_layout(lname, warm.cluster, p)
        for mapper in mappers:
            warm.reordered_latencies(L, sizes, mapper, strategies[0])

    naive_best = float("inf")
    batched_best = float("inf")
    naive_points: List[SweepPoint] = []
    batched_points: List[SweepPoint] = []
    for _ in range(repeats):
        ev_naive = _fresh_evaluator(n_nodes, warm._reorder_cache, cache_routes=False)
        t0 = time.perf_counter()
        naive_points = naive_sweep(ev_naive, p, layouts, sizes, mappers, strategies)
        naive_best = min(naive_best, time.perf_counter() - t0)

        ev_batched = _fresh_evaluator(n_nodes, warm._reorder_cache)
        t0 = time.perf_counter()
        batched_points = _sweep(
            ev_batched, p, layouts, sizes, mappers, strategies, False, "binomial", workers
        )
        batched_best = min(batched_best, time.perf_counter() - t0)

    n_points = len(batched_points)
    report = PerfReport(
        p=p,
        n_nodes=n_nodes,
        n_points=n_points,
        naive_seconds=naive_best,
        batched_seconds=batched_best,
        speedup=naive_best / batched_best if batched_best > 0 else float("inf"),
        points_per_sec_naive=n_points / naive_best if naive_best > 0 else float("inf"),
        points_per_sec_batched=(
            n_points / batched_best if batched_best > 0 else float("inf")
        ),
        max_rel_diff=_max_rel_diff(naive_points, batched_points),
        sizes=[int(s) for s in sizes],
        layouts=list(layouts),
        mappers=list(mappers),
        strategies=list(strategies),
        workers=workers,
        quick=quick,
        repeats=repeats,
        timestamp=time.time(),
        python=platform.python_version(),
    )
    if out_path is not None:
        report.write(out_path)
    return report
