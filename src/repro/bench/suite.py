"""Programmatic reproduction suite: every headline artefact in one call.

``pytest benchmarks/ --benchmark-only`` is the full harness;
:func:`run_suite` is the library-level equivalent for downstream users —
it regenerates the core paper artefacts (Fig. 3/4 sweeps, the Fig. 5
application study, the Fig. 7 overheads) at a configurable scale and
returns everything as strings, optionally writing them to a directory.
``python -m repro reproduce`` wraps it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.apps.nbody import NBodyApp
from repro.apps.trace import AppRunner
from repro.bench.microbench import sweep_hierarchical, sweep_nonhierarchical
from repro.bench.report import format_sweep_table
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import INITIAL_LAYOUTS, make_layout
from repro.mapping.reorder import reorder_ranks
from repro.topology.distances import DistanceExtractor
from repro.topology.gpc import gpc_cluster
from repro.util.atomicio import atomic_write_text

__all__ = ["SuiteResult", "run_suite", "QUICK_SIZES"]

QUICK_SIZES = [1, 16, 256, 1024, 4096, 65536, 262144]


@dataclass
class SuiteResult:
    """All regenerated artefacts, keyed like the paper's figures."""

    scale_p: int
    reports: Dict[str, str] = field(default_factory=dict)
    seconds: float = 0.0

    def write(self, directory) -> List[Path]:
        """Write each report to ``directory`` as ``<name>.txt``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for name, text in self.reports.items():
            path = directory / f"{name}.txt"
            atomic_write_text(path, text + "\n")
            paths.append(path)
        return paths

    def summary(self) -> str:
        """One-paragraph outcome summary."""
        return (
            f"reproduction suite at p={self.scale_p}: "
            f"{len(self.reports)} artefacts in {self.seconds:.1f}s "
            f"({', '.join(sorted(self.reports))})"
        )


def run_suite(
    n_nodes: int = 32,
    app_nodes: Optional[int] = None,
    mappers=("heuristic", "scotch"),
    out_dir=None,
) -> SuiteResult:
    """Regenerate the core paper artefacts.

    Parameters
    ----------
    n_nodes:
        Cluster size for the micro-benchmark figures (paper: 512).
    app_nodes:
        Cluster size for the application figure (defaults to
        ``n_nodes``; paper: 128).
    mappers:
        Which mappers to compare against the default.
    out_dir:
        If given, reports are also written there.
    """
    t0 = time.perf_counter()
    cluster = gpc_cluster(n_nodes=n_nodes)
    p = cluster.n_cores
    evaluator = AllgatherEvaluator(cluster, rng=0)
    result = SuiteResult(scale_p=p)

    # Fig. 3
    pts = sweep_nonhierarchical(
        evaluator, p, sizes=QUICK_SIZES, mappers=list(mappers), strategies=["initcomm"]
    )
    result.reports["fig3_nonhierarchical"] = format_sweep_table(
        pts, f"Fig. 3 — non-hierarchical allgather improvement %, p={p}"
    )

    # Fig. 4 (both intra-node variants)
    pts4 = []
    for intra in ("binomial", "linear"):
        pts4 += sweep_hierarchical(
            evaluator, p, sizes=QUICK_SIZES, mappers=list(mappers),
            strategies=["initcomm"], intra=intra,
        )
    result.reports["fig4_hierarchical"] = format_sweep_table(
        pts4, f"Fig. 4 — hierarchical allgather improvement %, p={p}"
    )

    # Fig. 5
    app_cluster = cluster if app_nodes in (None, n_nodes) else gpc_cluster(app_nodes)
    app_ev = evaluator if app_cluster is cluster else AllgatherEvaluator(app_cluster, rng=0)
    app_p = app_cluster.n_cores
    app = NBodyApp()
    lines = [f"Fig. 5 — nbody application (358 allgathers), p={app_p}", ""]
    lines.append(f"{'layout':>16} {'default(s)':>11} " + " ".join(f"{m:>11}" for m in mappers))
    for lname in sorted(INITIAL_LAYOUTS):
        runner = AppRunner(app_ev, make_layout(lname, app_cluster, app_p))
        base = runner.run(app.trace(), mode="default")
        row = [f"{lname:>16}", f"{base.total_seconds:>11.3f}"]
        for m in mappers:
            res = runner.run(app.trace(), mode=m)
            row.append(f"{res.normalized_to(base):>10.3f}x")
        lines.append(" ".join(row))
    result.reports["fig5_application"] = "\n".join(lines)

    # Fig. 7
    D, rep = DistanceExtractor(cluster).extract()
    lines = [f"Fig. 7 — overheads, p={p}", ""]
    lines.append(f"distance extraction: {rep.seconds:.4f} s (one-time)")
    L = make_layout("cyclic-bunch", cluster, p)
    for kind in ("heuristic", "scotch"):
        r = reorder_ranks("recursive-doubling", L, D, kind=kind, rng=0)
        lines.append(f"mapping ({kind}): {r.total_seconds:.4f} s")
    result.reports["fig7_overheads"] = "\n".join(lines)

    result.seconds = time.perf_counter() - t0
    if out_dir is not None:
        result.write(out_dir)
    return result
