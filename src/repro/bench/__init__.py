"""Benchmark harness: OSU-style sweeps and paper-figure reporting."""

from repro.bench.microbench import (
    OSU_SIZES,
    SweepPoint,
    sweep_hierarchical,
    sweep_nonhierarchical,
)
from repro.bench.ascii_plot import bar_chart, line_chart
from repro.bench.fabric import (
    FabricError,
    FabricMergeResult,
    FabricStatus,
    FabricWorker,
    ShardPlan,
    WorkerStats,
    fabric_merge,
    fabric_status,
    plan_shards,
    run_fabric_worker,
)
from repro.bench.fabricperf import (
    DEFAULT_FABRIC_BENCH_PATH,
    FabricPerfReport,
    run_fabric_perf,
)
from repro.bench.perf import (
    DEFAULT_NAIVE_MAX_P,
    MAPPING_P_VALUES,
    MappingPerfCase,
    MappingPerfReport,
    PerfReport,
    naive_sweep,
    run_mapping_perf,
    run_perf,
)
from repro.bench.report import format_sweep_table, size_label
from repro.bench.serveperf import (
    DEFAULT_SERVE_BENCH_PATH,
    ServePerfReport,
    run_serve_perf,
)
from repro.bench.suite import QUICK_SIZES, SuiteResult, run_suite

__all__ = [
    "OSU_SIZES",
    "SweepPoint",
    "sweep_nonhierarchical",
    "sweep_hierarchical",
    "format_sweep_table",
    "size_label",
    "line_chart",
    "bar_chart",
    "run_suite",
    "SuiteResult",
    "QUICK_SIZES",
    "PerfReport",
    "naive_sweep",
    "run_perf",
    "run_mapping_perf",
    "MappingPerfCase",
    "MappingPerfReport",
    "DEFAULT_NAIVE_MAX_P",
    "MAPPING_P_VALUES",
    "DEFAULT_SERVE_BENCH_PATH",
    "ServePerfReport",
    "run_serve_perf",
    "FabricError",
    "FabricMergeResult",
    "FabricStatus",
    "FabricWorker",
    "ShardPlan",
    "WorkerStats",
    "fabric_merge",
    "fabric_status",
    "plan_shards",
    "run_fabric_worker",
    "DEFAULT_FABRIC_BENCH_PATH",
    "FabricPerfReport",
    "run_fabric_perf",
]
