"""Crash-safe, resumable sweep driver (checkpointed grid fan-out).

The PR-2 parallel sweep (:func:`repro.bench.microbench._sweep` with
``workers=N``) is all-or-nothing: a worker crash, an OOM kill, or a
pre-empted job throws away every completed grid cell.  This module wraps
the same (layout[, mapper]) cell decomposition in a journaled runner:

* every finished cell is checkpointed to ``<out_dir>/cells/*.json``
  with an atomic tmp-file + ``os.replace`` write, so a SIGKILL at any
  instant leaves either the old state or the complete new state — never
  a torn file;
* ``repro sweep --resume <out_dir>`` (or :meth:`CheckpointedSweep.resume`)
  skips every cell whose journal entry parses, recomputes the rest, and
  merges to **bit-identical** output — cell seeds are derived from cell
  content (see ``evaluator._seed_for``), not from execution order;
* failing cells are retried with bounded exponential backoff and then
  quarantined (reported in ``quarantine.json``, never fatal to the rest
  of the grid);
* a dying process pool (``BrokenProcessPool``) degrades the run to
  serial in-process execution instead of aborting it.

Journal layout::

    out_dir/
      manifest.json     # the SweepSpec + fingerprint (written first)
      cells/<cell>.json # one checkpoint per finished grid cell
      quarantine.json   # cells that kept failing (only when non-empty)
      sweep.json        # merged SweepPoints (written last, atomically)
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.microbench import OSU_SIZES, SweepPoint
from repro.evaluation.evaluator import AllgatherEvaluator, LatencyReport
from repro.mapping.cache import MAPPING_CACHE_ENV
from repro.mapping.initial import make_layout
from repro.topology.gpc import gpc_cluster
from repro.util.atomicio import atomic_write_json

__all__ = ["SweepSpec", "CheckpointedSweep", "SweepRunResult", "compute_cell"]

#: Test hook: sleep this many seconds at the start of every cell, so a
#: test can SIGKILL the run mid-flight with a predictable window open.
CELL_DELAY_ENV = "REPRO_SWEEP_CELL_DELAY"


@dataclass(frozen=True)
class SweepSpec:
    """Everything that determines a sweep's output, and nothing else."""

    n_nodes: int
    layouts: Tuple[str, ...] = ("block-bunch", "block-scatter", "cyclic-bunch", "cyclic-scatter")
    sizes: Tuple[int, ...] = tuple(OSU_SIZES)
    mappers: Tuple[str, ...] = ("heuristic", "scotch")
    strategies: Tuple[str, ...] = ("initcomm", "endshfl")
    hierarchical: bool = False
    intra: str = "binomial"

    def __post_init__(self) -> None:
        object.__setattr__(self, "layouts", tuple(self.layouts))
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        object.__setattr__(self, "mappers", tuple(self.mappers))
        object.__setattr__(self, "strategies", tuple(self.strategies))

    def cells(self) -> List[str]:
        """Grid cell ids, in canonical (deterministic) order."""
        out = [f"base::{lname}" for lname in self.layouts]
        out += [
            f"tuned::{lname}::{mapper}"
            for lname in self.layouts
            for mapper in self.mappers
        ]
        return out

    def fingerprint(self) -> str:
        import hashlib

        blob = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha1(blob.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, d: Dict) -> "SweepSpec":
        return cls(
            n_nodes=int(d["n_nodes"]),
            layouts=tuple(d["layouts"]),
            sizes=tuple(d["sizes"]),
            mappers=tuple(d["mappers"]),
            strategies=tuple(d["strategies"]),
            hierarchical=bool(d["hierarchical"]),
            intra=str(d["intra"]),
        )


def _cell_filename(cell: str) -> str:
    return cell.replace("::", "__") + ".json"


# ----------------------------------------------------------------------
# the per-cell worker.  Module level (picklable), usable both inside a
# ProcessPoolExecutor and serially in-process.  The evaluator is cached
# per spec fingerprint so one pool worker prices many cells against the
# same route tables.
# ----------------------------------------------------------------------
_RUNNER_EVALUATOR: Optional[Tuple[str, AllgatherEvaluator]] = None


def _evaluator_for(spec: SweepSpec) -> AllgatherEvaluator:
    # intentional per-worker cache: the tuple swap is atomic, the value is
    # derived only from the spec fingerprint, and each process (pool child
    # or in-process caller) owns its private copy
    global _RUNNER_EVALUATOR  # noqa: PAR001
    fp = spec.fingerprint()
    if _RUNNER_EVALUATOR is None or _RUNNER_EVALUATOR[0] != fp:
        _RUNNER_EVALUATOR = (fp, AllgatherEvaluator(gpc_cluster(spec.n_nodes), rng=0))
    return _RUNNER_EVALUATOR[1]


def compute_cell(spec: SweepSpec, cell: str) -> Dict:
    """Price one grid cell; returns the JSON-serialisable checkpoint payload.

    Deterministic given ``(spec, cell)``: reordering seeds come from the
    layout/mapper content, so recomputing a cell on resume (or in a
    different process) reproduces the original bytes.  Two bookkeeping
    keys ride along without affecting the merged sweep: ``fingerprint``
    (the spec fingerprint, so a resume or fabric merge can reject a cell
    journaled under a different spec) and ``compute_seconds`` (wall
    seconds this computation took, feeding the cell-cost histogram and
    the fabric shard planner's cost balancing).
    """
    t0 = time.perf_counter()
    delay = float(os.environ.get(CELL_DELAY_ENV, "0") or 0)
    if delay > 0:
        time.sleep(delay)
    ev = _evaluator_for(spec)
    p = ev.cluster.n_cores
    sizes = list(spec.sizes)
    parts = cell.split("::")
    L = make_layout(parts[1], ev.cluster, p)
    if parts[0] == "base":
        reports = ev.default_latencies(L, sizes, spec.hierarchical, spec.intra)
        payload = {
            "cell": cell,
            "kind": "base",
            "layout": parts[1],
            "reports": [asdict(r) for r in reports],
        }
    elif parts[0] == "tuned":
        mapper = parts[2]
        by_strategy = {
            strategy: [
                asdict(r)
                for r in ev.reordered_latencies(
                    L, sizes, mapper, strategy, spec.hierarchical, spec.intra
                )
            ]
            for strategy in spec.strategies
        }
        payload = {
            "cell": cell,
            "kind": "tuned",
            "layout": parts[1],
            "mapper": mapper,
            "strategies": by_strategy,
        }
    else:
        raise ValueError(f"unknown cell id {cell!r}")
    payload["fingerprint"] = spec.fingerprint()
    payload["compute_seconds"] = time.perf_counter() - t0
    return payload


@dataclass
class SweepRunResult:
    """What a checkpointed run produced (and what it had to survive)."""

    points: List[SweepPoint]
    out_dir: Path
    n_computed: int = 0
    n_resumed: int = 0
    degraded_to_serial: bool = False
    quarantined: Dict[str, str] = field(default_factory=dict)
    #: Wall seconds per cell, from the journal payloads (absent for cells
    #: checkpointed by pre-cost journal versions).
    cell_seconds: Dict[str, float] = field(default_factory=dict)

    def cost_histogram(self, bins: int = 8) -> List[Dict[str, float]]:
        """Equal-width histogram of per-cell compute seconds.

        Returns ``[{"lo": s, "hi": s, "count": n}, ...]`` over
        :attr:`cell_seconds`; empty when no cell recorded its cost.  The
        fabric shard planner consumes the same per-cell costs to balance
        shards by measured seconds instead of cell count.
        """
        if bins <= 0:
            raise ValueError("bins must be positive")
        if not self.cell_seconds:
            return []
        values = sorted(self.cell_seconds.values())
        lo, hi = values[0], values[-1]
        width = (hi - lo) / bins or 1e-12
        out = [
            {"lo": lo + i * width, "hi": lo + (i + 1) * width, "count": 0}
            for i in range(bins)
        ]
        for v in values:
            idx = min(int((v - lo) / width), bins - 1)
            out[idx]["count"] += 1
        return out


class CheckpointedSweep:
    """Journaled, resumable execution of one :class:`SweepSpec`."""

    def __init__(
        self,
        spec: SweepSpec,
        out_dir,
        workers: Optional[int] = None,
        max_retries: int = 2,
        cell_timeout: Optional[float] = None,
        backoff_seconds: float = 0.25,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive")
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.workers = workers
        self.max_retries = int(max_retries)
        self.cell_timeout = cell_timeout
        self.backoff_seconds = float(backoff_seconds)
        self._errors: Dict[str, str] = {}

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        out_dir,
        workers: Optional[int] = None,
        max_retries: int = 2,
        cell_timeout: Optional[float] = None,
        backoff_seconds: float = 0.25,
    ) -> "CheckpointedSweep":
        """Reopen a journal dir; the spec comes from its manifest."""
        out_dir = Path(out_dir)
        manifest = out_dir / "manifest.json"
        if not manifest.is_file():
            raise FileNotFoundError(
                f"{manifest}: not a sweep journal (no manifest.json); "
                "pass the --out-dir of a previous run"
            )
        try:
            payload = json.loads(manifest.read_text())
            spec = SweepSpec.from_dict(payload["spec"])
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(
                f"{manifest}: corrupt sweep manifest ({exc}); "
                "delete the journal dir and rerun the sweep from scratch"
            ) from exc
        return cls(
            spec,
            out_dir,
            workers=workers,
            max_retries=max_retries,
            cell_timeout=cell_timeout,
            backoff_seconds=backoff_seconds,
        )

    # ------------------------------------------------------------------
    @property
    def cells_dir(self) -> Path:
        return self.out_dir / "cells"

    def _cell_path(self, cell: str) -> Path:
        return self.cells_dir / _cell_filename(cell)

    def _load_cell(self, cell: str) -> Optional[Dict]:
        """A cell's checkpoint, or None if absent/torn/mismatched."""
        path = self._cell_path(cell)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None  # torn write from a previous crash: recompute
        if not isinstance(payload, dict) or payload.get("cell") != cell:
            return None
        # A cell journaled under a different spec (stale fabric shard,
        # copied journal) is recomputed, not trusted.  Pre-fingerprint
        # journals lack the key and stay accepted.
        if "fingerprint" in payload and payload["fingerprint"] != self.spec.fingerprint():
            return None
        return payload

    def _write_manifest(self) -> None:
        manifest = self.out_dir / "manifest.json"
        fp = self.spec.fingerprint()
        if manifest.is_file():
            try:
                existing = json.loads(manifest.read_text())
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{manifest}: corrupt sweep manifest ({exc}); "
                    "delete the journal dir and rerun from scratch"
                ) from exc
            if existing.get("fingerprint") != fp:
                raise ValueError(
                    f"{self.out_dir}: journal belongs to a different sweep "
                    f"(fingerprint {existing.get('fingerprint')!r} != {fp!r}); "
                    "use a fresh --out-dir or matching parameters"
                )
            return
        atomic_write_json(manifest, {"spec": asdict(self.spec), "fingerprint": fp})

    # ------------------------------------------------------------------
    def run(self) -> SweepRunResult:
        """Execute (or finish) the sweep; always safe to re-run."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.cells_dir.mkdir(exist_ok=True)
        self._write_manifest()
        with self._mapping_cache_env():
            return self._run_cells()

    @contextmanager
    def _mapping_cache_env(self):
        """Point the mapping cache at the journal dir for this run.

        Reorderings are content-addressed (topology fingerprint x layout x
        mapper x seed), so cells recomputed on resume — or priced by pool
        workers, which inherit the environment at spawn — reuse mappings
        from ``<out_dir>/mapcache`` instead of recomputing them.  A caller
        who already set :data:`~repro.mapping.cache.MAPPING_CACHE_ENV`
        wins; the variable is restored on exit either way.
        """
        prior = os.environ.get(MAPPING_CACHE_ENV)
        if prior is None:
            os.environ[MAPPING_CACHE_ENV] = str(self.out_dir / "mapcache")
        try:
            yield
        finally:
            if prior is None:
                os.environ.pop(MAPPING_CACHE_ENV, None)

    def collect_cells(self) -> Tuple[Dict[str, Dict], List[str]]:
        """Scan the journal: ``(done payloads by cell, pending cells)``.

        Both collections follow the spec's canonical cell order; torn or
        wrong-spec checkpoints land in ``pending``.
        """
        done: Dict[str, Dict] = {}
        pending: List[str] = []
        for cell in self.spec.cells():
            payload = self._load_cell(cell)
            if payload is not None:
                done[cell] = payload
            else:
                pending.append(cell)
        return done, pending

    def write_merged(self, done: Dict[str, Dict]) -> List[SweepPoint]:
        """Merge checkpoints into points and atomically write ``sweep.json``.

        The single exit path for both a solo run and a fabric merge —
        whoever assembles the same ``done`` payloads emits byte-identical
        output.
        """
        points = self._merge(done)
        atomic_write_json(
            self.out_dir / "sweep.json",
            {
                "spec": asdict(self.spec),
                "fingerprint": self.spec.fingerprint(),
                "points": [asdict(pt) for pt in points],
            },
        )
        return points

    def _run_cells(self) -> SweepRunResult:

        done, pending = self.collect_cells()
        result = SweepRunResult(points=[], out_dir=self.out_dir, n_resumed=len(done))

        attempts: Dict[str, int] = dict.fromkeys(pending, 0)
        parallel = self.workers is not None and self.workers > 1
        while pending:
            if parallel:
                try:
                    failures = self._round_parallel(pending, done, attempts)
                except BrokenProcessPool:
                    # the pool died (OOM-killed worker, interpreter crash):
                    # finish the remaining cells serially rather than abort
                    parallel = False
                    result.degraded_to_serial = True
                    failures = [c for c in pending if c not in done]
            else:
                failures = self._round_serial(pending, done, attempts)
            retry: List[str] = []
            for cell in failures:
                if attempts[cell] > self.max_retries:
                    result.quarantined[cell] = self._errors.get(cell, "unknown error")
                else:
                    retry.append(cell)
            if retry:
                # bounded exponential backoff before the next round
                worst = max(attempts[c] for c in retry)
                time.sleep(min(self.backoff_seconds * (2 ** (worst - 1)), 10.0))
            pending = retry

        result.n_computed = len(done) - result.n_resumed
        result.cell_seconds = {
            cell: float(payload["compute_seconds"])
            for cell, payload in done.items()
            if isinstance(payload.get("compute_seconds"), (int, float))
        }
        if result.quarantined:
            atomic_write_json(self.out_dir / "quarantine.json", result.quarantined)
        result.points = self.write_merged(done)
        return result

    # ------------------------------------------------------------------
    def _record_success(self, cell: str, payload: Dict, done: Dict[str, Dict]) -> None:
        atomic_write_json(self._cell_path(cell), payload)
        done[cell] = payload

    def _round_serial(
        self, cells: Sequence[str], done: Dict[str, Dict], attempts: Dict[str, int]
    ) -> List[str]:
        failures: List[str] = []
        for cell in cells:
            attempts[cell] += 1
            try:
                self._record_success(cell, compute_cell(self.spec, cell), done)
            except Exception as exc:  # noqa: BLE001 - quarantine, don't abort
                self._errors[cell] = f"{type(exc).__name__}: {exc}"
                failures.append(cell)
        return failures

    def _round_parallel(
        self, cells: Sequence[str], done: Dict[str, Dict], attempts: Dict[str, int]
    ) -> List[str]:
        """One pool round over ``cells``; returns the cells that failed.

        Each round gets a fresh pool: after a cell timeout the stuck
        worker still occupies its process, so reusing the pool would
        leak stuck workers across rounds.  ``cell_timeout`` is enforced
        here only — serial in-process execution cannot pre-empt a cell.
        """
        failures: List[str] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futs = {
                cell: pool.submit(compute_cell, self.spec, cell) for cell in cells
            }
            try:
                for cell, fut in futs.items():
                    attempts[cell] += 1
                    try:
                        payload = fut.result(timeout=self.cell_timeout)
                    except BrokenProcessPool:
                        raise
                    except FuturesTimeoutError:
                        self._errors[cell] = (
                            f"timeout: cell exceeded {self.cell_timeout}s"
                        )
                        failures.append(cell)
                    except Exception as exc:  # noqa: BLE001
                        self._errors[cell] = f"{type(exc).__name__}: {exc}"
                        failures.append(cell)
                    else:
                        self._record_success(cell, payload, done)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        return failures

    # ------------------------------------------------------------------
    def _merge(self, done: Dict[str, Dict]) -> List[SweepPoint]:
        """Checkpoints -> SweepPoints, in the canonical `_sweep` order.

        Quarantined cells are skipped (their points are absent); a
        quarantined base cell drops its whole layout, since improvement
        percentages need the baseline.
        """
        spec = self.spec
        points: List[SweepPoint] = []
        for lname in spec.layouts:
            base = done.get(f"base::{lname}")
            if base is None:
                continue
            base_reports = [LatencyReport(**d) for d in base["reports"]]
            for si, bb in enumerate(spec.sizes):
                for mapper in spec.mappers:
                    tuned = done.get(f"tuned::{lname}::{mapper}")
                    if tuned is None:
                        continue
                    for strategy in spec.strategies:
                        rep = LatencyReport(**tuned["strategies"][strategy][si])
                        points.append(
                            SweepPoint(
                                layout=lname,
                                block_bytes=int(bb),
                                mapper=mapper,
                                strategy=strategy,
                                hierarchical=spec.hierarchical,
                                intra=spec.intra,
                                algorithm=rep.algorithm,
                                base_us=base_reports[si].seconds * 1e6,
                                tuned_us=rep.seconds * 1e6,
                            )
                        )
        return points
