"""Load generator for the reordering daemon: cold vs. warm serving latency.

The daemon's value proposition is that everything expensive — the
implicit-distance ladder, heuristic mapping runs, pricing tables — is
computed once and then *served* from resident state.  This harness
measures that directly against a real in-process daemon
(:class:`~repro.serve.embedded.EmbeddedServer`, real sockets, real
framing):

* a **cold pass** issues every (pattern, layout) reorder query once,
  concurrently from several client connections — this is first-contact
  traffic, and the concurrency means the micro-batcher folds
  same-layout queries into single ``reorder_all`` passes;
* a **warm pass** replays the same queries for several rounds — every
  answer is a mapping-cache hit served straight off the pipeline lane;
* a **bit-identity audit** recomputes every mapping and price solo
  (fresh cluster, fresh caches, plain :func:`~repro.mapping.reorder.
  reorder_ranks` / :meth:`~repro.simmpi.engine.TimingEngine.
  evaluate_sizes`) and counts mismatches — the serving layer must be a
  pure accelerator, never a different answer.

Latency percentiles are measured client-side (they include framing and
the socket round-trip — what a caller actually waits), persisted to
``BENCH_serve.json`` so the repo carries the serving-perf trajectory
across PRs.  ``python -m repro perf --serve`` wraps it.
"""

from __future__ import annotations

import json
import platform
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.collectives.registry import make_algorithm
from repro.mapping.initial import make_layout
from repro.mapping.reorder import HEURISTICS, reorder_ranks
from repro.serve.embedded import EmbeddedServer
from repro.simmpi.engine import TimingEngine
from repro.topology.gpc import gpc_cluster
from repro.util.atomicio import atomic_write_text

__all__ = [
    "ServePerfReport",
    "run_serve_perf",
    "DEFAULT_SERVE_BENCH_PATH",
    "SERVE_PRICE_SIZES",
]

#: Where ``run_serve_perf`` persists its measurement by default.
DEFAULT_SERVE_BENCH_PATH = "BENCH_serve.json"

#: Message sizes priced during the identity audit (bytes).
SERVE_PRICE_SIZES = (1024, 65536, 1048576)

FULL_LAYOUTS = ("block-bunch", "block-scatter", "cyclic-bunch", "cyclic-scatter")
QUICK_LAYOUTS = ("block-bunch", "cyclic-scatter")
QUICK_PATTERNS = ("recursive-doubling", "ring")


@dataclass
class ServePerfReport:
    """Outcome of one cold-vs-warm daemon load run."""

    p: int
    n_nodes: int
    n_keys: int                  # distinct (pattern, layout) queries
    clients: int                 # concurrent client connections
    warm_rounds: int
    cold_requests: int
    warm_requests: int
    cold_p50_ms: float
    cold_p90_ms: float
    cold_p99_ms: float
    warm_p50_ms: float
    warm_p90_ms: float
    warm_p99_ms: float
    warm_speedup_p50: float      # cold_p50 / warm_p50
    requests_per_sec_warm: float
    requests_per_sec_cold: float
    coalesced: int               # requests answered from another's execution
    batched: int                 # reorders folded into an existing micro-batch
    reorder_batches: int         # reorder_all passes the daemon ran
    patterns_computed: int
    patterns_cached: int
    mismatches: int              # serve vs. solo (reorder mappings + prices)
    mapping_cache: Dict[str, object] = field(default_factory=dict)
    patterns: List[str] = field(default_factory=list)
    layouts: List[str] = field(default_factory=list)
    seed: int = 0
    quick: bool = False
    timestamp: float = 0.0
    python: str = ""

    def summary(self) -> str:
        """Human-readable report (what ``repro perf --serve`` prints)."""
        return (
            f"serve perf: p={self.p} ({self.n_nodes} nodes), "
            f"{self.n_keys} keys x {self.clients} clients\n"
            f"  cold latency (ms)   : p50={self.cold_p50_ms:9.3f}  "
            f"p90={self.cold_p90_ms:9.3f}  p99={self.cold_p99_ms:9.3f}\n"
            f"  warm latency (ms)   : p50={self.warm_p50_ms:9.3f}  "
            f"p90={self.warm_p90_ms:9.3f}  p99={self.warm_p99_ms:9.3f}\n"
            f"  warm speedup (p50)  : {self.warm_speedup_p50:8.1f}x\n"
            f"  warm throughput     : {self.requests_per_sec_warm:8.1f} req/s "
            f"({self.warm_requests} requests)\n"
            f"  coalesced / batched : {self.coalesced} / {self.batched} "
            f"(batch passes: {self.reorder_batches})\n"
            f"  identity mismatches : {self.mismatches}"
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Persist as pretty JSON (atomic replace)."""
        path = Path(path)
        atomic_write_text(path, json.dumps(asdict(self), indent=2) + "\n")
        return path


def _percentiles_ms(latencies: Sequence[float]) -> Tuple[float, float, float]:
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return (
        float(np.percentile(arr, 50)),
        float(np.percentile(arr, 90)),
        float(np.percentile(arr, 99)),
    )


def _client_worker(
    embedded: EmbeddedServer,
    fingerprint: str,
    queries: Sequence[Tuple[str, str]],
    clients: int,
    seed: int,
    worker_id: int,
    latencies: List[float],
    mappings: Dict[Tuple[str, str], List[int]],
) -> None:
    """One closed-loop client: its round-robin share of ``queries``."""
    with embedded.client() as client:
        for i in range(worker_id, len(queries), clients):
            pattern, layout = queries[i]
            t0 = time.perf_counter()
            res = client.reorder(fingerprint, pattern, layout, seed=seed)
            latencies[i] = time.perf_counter() - t0
            mappings[(pattern, layout)] = res["mapping"]


def _fire(
    embedded: EmbeddedServer,
    fingerprint: str,
    queries: Sequence[Tuple[str, str]],
    clients: int,
    seed: int,
) -> Tuple[List[float], float, Dict[Tuple[str, str], List[int]]]:
    """Issue every query concurrently; return (latencies, wall, mappings)."""
    latencies: List[float] = [0.0] * len(queries)
    mappings: Dict[Tuple[str, str], List[int]] = {}
    wall0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        futures = [
            pool.submit(
                _client_worker,
                embedded,
                fingerprint,
                queries,
                clients,
                seed,
                w,
                latencies,
                mappings,
            )
            for w in range(clients)
        ]
        for fut in futures:
            fut.result()
    return latencies, time.perf_counter() - wall0, mappings


def _audit_identity(
    n_nodes: int,
    queries: Sequence[Tuple[str, str]],
    served_mappings: Dict[Tuple[str, str], List[int]],
    served_prices: Dict[Tuple[str, str], List[float]],
    seed: int,
) -> int:
    """Recompute everything solo and count serve-vs-solo mismatches.

    Fresh cluster, fresh distances, fresh engine, no shared caches: the
    daemon's answers must be bit-identical to a from-scratch run.
    """
    cluster = gpc_cluster(n_nodes)
    distances = cluster.implicit_distances()
    engine = TimingEngine(cluster)
    mismatches = 0
    for pattern, layout_name in queries:
        L = make_layout(layout_name, cluster, cluster.n_cores)
        solo = reorder_ranks(pattern, L, distances, kind="heuristic", rng=seed)
        solo_mapping = [int(c) for c in solo.mapping]
        if served_mappings.get((pattern, layout_name)) != solo_mapping:
            mismatches += 1
            continue
        schedule = make_algorithm(pattern).schedule(solo.mapping.size)
        batch = engine.evaluate_sizes(
            schedule, solo.mapping, [float(s) for s in SERVE_PRICE_SIZES]
        )
        solo_price = [float(t) for t in batch.total_seconds]
        if served_prices.get((pattern, layout_name)) != solo_price:
            mismatches += 1
    return mismatches


def run_serve_perf(
    n_nodes: Optional[int] = None,
    quick: bool = False,
    clients: Optional[int] = None,
    warm_rounds: Optional[int] = None,
    seed: int = 0,
    out: Optional[Union[str, Path]] = None,
) -> ServePerfReport:
    """Measure cold vs. warm daemon latency and audit answer identity.

    Defaults target the acceptance shape: p=1024 (128 GPC nodes), every
    heuristic pattern x every named layout, 8 concurrent clients.
    ``quick`` shrinks to a CI-smoke grid (p=64).
    """
    if n_nodes is None:
        n_nodes = 8 if quick else 128
    if clients is None:
        clients = 4 if quick else 8
    if warm_rounds is None:
        warm_rounds = 2 if quick else 5
    patterns = list(QUICK_PATTERNS if quick else sorted(HEURISTICS))
    layouts = list(QUICK_LAYOUTS if quick else FULL_LAYOUTS)
    queries = [(pat, lay) for lay in layouts for pat in patterns]

    with EmbeddedServer() as embedded:
        with embedded.client() as client:
            reg = client.register_topology({"kind": "gpc", "n_nodes": n_nodes})
        fingerprint = reg["fingerprint"]
        p = reg["n_cores"]

        cold_lat, cold_wall, served_mappings = _fire(
            embedded, fingerprint, queries, clients, seed
        )
        warm_queries = queries * warm_rounds
        warm_lat, warm_wall, _ = _fire(
            embedded, fingerprint, warm_queries, clients, seed
        )

        served_prices: Dict[Tuple[str, str], List[float]] = {}
        with embedded.client() as client:
            for (pattern, layout_name), mapping in served_mappings.items():
                priced = client.price(
                    fingerprint, pattern, list(SERVE_PRICE_SIZES), mapping=mapping
                )
                served_prices[(pattern, layout_name)] = priced["total_seconds"]
            stats = client.stats()

    mismatches = _audit_identity(
        n_nodes, queries, served_mappings, served_prices, seed
    )

    cold_p50, cold_p90, cold_p99 = _percentiles_ms(cold_lat)
    warm_p50, warm_p90, warm_p99 = _percentiles_ms(warm_lat)
    report = ServePerfReport(
        p=p,
        n_nodes=n_nodes,
        n_keys=len(queries),
        clients=clients,
        warm_rounds=warm_rounds,
        cold_requests=len(cold_lat),
        warm_requests=len(warm_lat),
        cold_p50_ms=cold_p50,
        cold_p90_ms=cold_p90,
        cold_p99_ms=cold_p99,
        warm_p50_ms=warm_p50,
        warm_p90_ms=warm_p90,
        warm_p99_ms=warm_p99,
        warm_speedup_p50=cold_p50 / warm_p50 if warm_p50 > 0 else float("inf"),
        requests_per_sec_warm=len(warm_lat) / warm_wall if warm_wall > 0 else 0.0,
        requests_per_sec_cold=len(cold_lat) / cold_wall if cold_wall > 0 else 0.0,
        coalesced=int(stats["coalesced"]),
        batched=int(stats["batched"]),
        reorder_batches=int(stats["reorder_batches"]),
        patterns_computed=int(stats["patterns_computed"]),
        patterns_cached=int(stats["patterns_cached"]),
        mismatches=mismatches,
        mapping_cache=dict(stats["mapping_cache"]),
        patterns=patterns,
        layouts=layouts,
        seed=seed,
        quick=quick,
        timestamp=time.time(),
        python=platform.python_version(),
    )
    if out is not None:
        report.write(out)
    return report
