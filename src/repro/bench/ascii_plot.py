"""Dependency-free ASCII charts for benchmark series.

Renders the paper's improvement-vs-message-size curves (Fig. 3/4) and
bar comparisons (Fig. 5/6) as plain text, so reports remain readable in
terminals and CI logs without matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def _fmt(v: float) -> str:
    if abs(v) >= 1000:
        return f"{v:.0f}"
    return f"{v:.3g}"


def line_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[str],
    title: str = "",
    height: int = 12,
    y_label: str = "",
) -> str:
    """Multi-series line chart over a shared categorical x axis.

    ``series`` maps legend names to equal-length y-value lists; points of
    different series landing in the same cell show the earlier series'
    marker.  Returns the chart as a string.
    """
    if not series:
        raise ValueError("need at least one series")
    n = len(x_labels)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} has {len(ys)} points, expected {n}")
    if n < 1:
        raise ValueError("need at least one x position")
    if height < 3:
        raise ValueError(f"height must be >= 3, got {height}")

    all_vals = [y for ys in series.values() for y in ys]
    lo, hi = min(all_vals), max(all_vals)
    if lo == hi:
        lo, hi = lo - 1.0, hi + 1.0
    span = hi - lo

    width = max(n, 2)
    grid = [[" "] * width for _ in range(height)]
    # zero line, if visible
    if lo < 0 < hi:
        zr = height - 1 - int(round((0 - lo) / span * (height - 1)))
        for c in range(width):
            grid[zr][c] = "-"
    for (name, ys), marker in zip(series.items(), _MARKERS):
        for i, y in enumerate(ys):
            r = height - 1 - int(round((y - lo) / span * (height - 1)))
            if grid[r][i] in (" ", "-"):
                grid[r][i] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    gutter = max(len(_fmt(hi)), len(_fmt(lo))) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = _fmt(hi)
        elif r == height - 1:
            label = _fmt(lo)
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + " ".join(row))
    lines.append(" " * gutter + " +" + "-" * (2 * width - 1))
    # x labels, thinned to fit
    step = max(1, n // 8)
    xl = [""] * n
    for i in range(0, n, step):
        xl[i] = x_labels[i]
    lines.append(" " * gutter + "  " + " ".join(f"{l:<1}" for l in xl))
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f"{y_label + '  ' if y_label else ''}legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart (for the Fig. 5/6 normalised-time panels)."""
    if not values:
        raise ValueError("need at least one bar")
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    vmax = max(abs(v) for v in values.values()) or 1.0
    name_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, v in values.items():
        n = int(round(abs(v) / vmax * width))
        bar = "#" * n
        lines.append(f"{name:>{name_w}} | {bar} {_fmt(v)}{unit}")
    return "\n".join(lines)
