"""Command-line interface: ``python -m repro <subcommand>``.

The subcommands mirror the paper's workflow:

* ``topo``      — describe a simulated cluster (structure, distance
  ladder, cost-model calibration probes);
* ``sweep``     — micro-benchmark sweep (Fig. 3/4 style tables); also
  the crash-safe journaled runner (``--out-dir`` / ``--resume``) and the
  distributed sweep fabric (``--fabric`` worker loop, ``--merge``
  fingerprint-verified combine, ``--status`` read-only inspector);
* ``app``       — application study (Fig. 5/6 style tables);
* ``overheads`` — extraction + mapping overheads (Fig. 7 style);
* ``adaptive``  — per-size adaptive reordering decisions (§VII);
* ``bcast``     — MPI_Bcast improvement sweep (the §V BBMH claim);
* ``profile``   — link-level congestion diagnosis of one configuration;
* ``faults``    — fault injection: price fail-stop vs. shrink-keep vs.
  shrink-remap recovery after node failures;
* ``reproduce`` — regenerate the core paper artefacts in one command;
* ``perf``      — time the batched sweep pipeline vs. the naive per-size
  loop and persist the measurement to ``BENCH_sweep.json``
  (``--serve`` instead load-tests the daemon: cold vs. warm latency to
  ``BENCH_serve.json``);
* ``serve``     — run the warm-state reordering daemon (JSON-lines over
  a unix socket and/or TCP; see ``docs/serving.md``);
* ``verify``    — static schedule / mapping verification (no simulation);
* ``lint``      — repo-specific AST lint pass (REP00x rules);
* ``audit``     — whole-pipeline static audit: lint + determinism,
  concurrency, cache-key, fault-plan and pricing analyzers, with JSON
  and SARIF report output (see ``docs/static_analysis.md``).

Simulation commands accept ``--nodes`` to size the GPC-class cluster
(processes = 8 x nodes) and print plain-text tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from repro.apps.matvec import MatVecApp
from repro.apps.solver import IterativeSolverApp
from repro.apps.nbody import NBodyApp
from repro.apps.trace import AppRunner
from repro.bench.microbench import OSU_SIZES, sweep_hierarchical, sweep_nonhierarchical
from repro.bench.report import format_sweep_table
from repro.evaluation.adaptive import AdaptiveReorderer
from repro.evaluation.calibration import calibrate, calibration_report
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import INITIAL_LAYOUTS, make_layout
from repro.mapping.reorder import reorder_ranks
from repro.simmpi.costmodel import CostModel
from repro.topology.distances import DistanceExtractor
from repro.topology.gpc import gpc_cluster

__all__ = ["main", "build_parser"]

QUICK_SIZES = [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144]

#: Default communicator sizes for ``repro verify`` — mixes powers of two,
#: odd sizes and primes so both the pow2-only and general algorithms get
#: exercised off their happy path.
VERIFY_P_SWEEP = [2, 3, 4, 7, 8, 16, 17, 32, 64]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Topology-aware rank reordering for MPI collectives (IPDPS'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_nodes(p):
        p.add_argument("--nodes", type=int, default=32, help="compute nodes (8 cores each)")

    p_topo = sub.add_parser("topo", help="describe the simulated cluster")
    add_nodes(p_topo)

    p_sweep = sub.add_parser("sweep", help="micro-benchmark improvement sweep (Fig. 3/4)")
    add_nodes(p_sweep)
    p_sweep.add_argument("--hierarchical", action="store_true")
    p_sweep.add_argument("--intra", choices=["binomial", "linear"], default="binomial")
    p_sweep.add_argument("--full-sizes", action="store_true", help="all 19 OSU sizes")
    p_sweep.add_argument(
        "--mappers", nargs="+", default=["heuristic", "scotch"],
        choices=["heuristic", "scotch", "greedy"],
    )
    p_sweep.add_argument(
        "--layouts", nargs="+", default=None, choices=sorted(INITIAL_LAYOUTS),
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None,
        help="fan (layout, mapper) grid cells out over N processes",
    )
    p_sweep.add_argument(
        "--out-dir", default=None,
        help="journal directory: checkpoint every grid cell and write the "
        "merged sweep.json there (crash-safe, resumable)",
    )
    p_sweep.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume a checkpointed sweep from its journal directory, "
        "skipping completed cells (other grid flags are ignored)",
    )
    p_sweep.add_argument(
        "--max-retries", type=int, default=2,
        help="per-cell retries before quarantining it (checkpointed runs)",
    )
    p_sweep.add_argument(
        "--cell-timeout", type=float, default=None,
        help="per-cell timeout in seconds (checkpointed parallel runs)",
    )
    p_sweep.add_argument(
        "--fabric", default=None, metavar="DIR",
        help="join the distributed sweep fabric at DIR as one worker: "
        "claim leasable shards, compute their cells into the shared "
        "journal, work-steal expired leases (creates the fabric from the "
        "grid flags if DIR has no manifest yet)",
    )
    p_sweep.add_argument(
        "--worker-id", default=None,
        help="fabric worker identity (default: <hostname>-<pid>)",
    )
    p_sweep.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds without a heartbeat before a shard lease is "
        "stealable (default 30)",
    )
    p_sweep.add_argument(
        "--shards", type=int, default=None,
        help="shard count for a fabric created by this worker "
        "(default: cost-balanced, ~2x the expected worker count)",
    )
    p_sweep.add_argument(
        "--merge", default=None, metavar="DIR",
        help="fingerprint-verified merge of a fabric journal: require "
        "every cell journaled or quarantined, then write sweep.json "
        "(bit-identical to a solo checkpointed run)",
    )
    p_sweep.add_argument(
        "--status", default=None, metavar="DIR",
        help="read-only journal inspector: done/pending/quarantined cell "
        "counts, cell-cost summary and the live shard-lease table",
    )

    p_app = sub.add_parser("app", help="application study (Fig. 5/6)")
    add_nodes(p_app)
    p_app.add_argument("--app", choices=["nbody", "matvec", "solver"], default="nbody")
    p_app.add_argument("--steps", type=int, default=358)
    p_app.add_argument("--hierarchical", action="store_true")
    p_app.add_argument("--intra", choices=["binomial", "linear"], default="binomial")

    p_over = sub.add_parser("overheads", help="extraction + mapping overheads (Fig. 7)")
    add_nodes(p_over)
    p_over.add_argument(
        "--pattern", default="recursive-doubling",
        choices=["recursive-doubling", "ring", "binomial-bcast", "binomial-gather", "bruck"],
    )

    p_ad = sub.add_parser("adaptive", help="per-size adaptive reordering decisions")
    add_nodes(p_ad)
    p_ad.add_argument("--layout", default="cyclic-bunch", choices=sorted(INITIAL_LAYOUTS))

    p_bc = sub.add_parser("bcast", help="MPI_Bcast improvement sweep (BBMH / scatter-allgather)")
    add_nodes(p_bc)
    p_bc.add_argument("--layout", default="cyclic-scatter", choices=sorted(INITIAL_LAYOUTS))

    p_prof = sub.add_parser("profile", help="link-level congestion diagnosis")
    add_nodes(p_prof)
    p_prof.add_argument("--layout", default="cyclic-scatter", choices=sorted(INITIAL_LAYOUTS))
    p_prof.add_argument("--block-bytes", type=int, default=65536)
    p_prof.add_argument("--reordered", action="store_true", help="profile after reordering")

    p_flt = sub.add_parser(
        "faults", help="price fail-stop / shrink-keep / shrink-remap recovery"
    )
    add_nodes(p_flt)
    p_flt.add_argument(
        "--fail-nodes", type=int, nargs="+", required=True,
        help="node ids that fail at the start of the collective",
    )
    p_flt.add_argument("--layout", default="block-bunch", choices=sorted(INITIAL_LAYOUTS))
    p_flt.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help=f"message sizes in bytes (default: {QUICK_SIZES})",
    )
    p_flt.add_argument(
        "--kind", default="heuristic", choices=["heuristic", "scotch", "greedy"],
        help="mapper re-run on the surviving cores for shrink-remap",
    )
    p_flt.add_argument(
        "--patterns", nargs="+", default=None,
        help="communication patterns to price (default: every registered heuristic)",
    )

    p_rep = sub.add_parser("reproduce", help="regenerate the core paper artefacts")
    add_nodes(p_rep)
    p_rep.add_argument("--out", default=None, help="directory to write the reports to")

    p_perf = sub.add_parser(
        "perf", help="time the batched sweep pipeline vs. the naive per-size loop"
    )
    p_perf.add_argument(
        "--nodes", type=int, default=None,
        help="compute nodes (8 cores each; default 32, or 8 with --quick)",
    )
    p_perf.add_argument(
        "--quick", action="store_true",
        help="reduced grid for CI smoke runs (fewer sizes/layouts/mappers)",
    )
    p_perf.add_argument(
        "--workers", type=int, default=None,
        help="fan (layout, mapper) grid cells out over N processes",
    )
    p_perf.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    p_perf.add_argument(
        "--out", default="BENCH_sweep.json", help="where to write the JSON measurement"
    )
    p_perf.add_argument(
        "--min-speedup", type=float, default=1.0,
        help="exit non-zero if the batched path is below this speedup",
    )
    p_perf.add_argument(
        "--mappings", action="store_true",
        help="benchmark the placement engines (naive/vectorized/jit) instead of the sweep",
    )
    p_perf.add_argument(
        "-p", "--p-values", dest="p_values", type=int, nargs="+", default=None,
        help="communicator sizes for --mappings (default: 256 1024 4096 8192 16384)",
    )
    p_perf.add_argument(
        "--naive-max-p", dest="naive_max_p", type=int, default=4096,
        help="largest p at which --mappings still times the naive engine "
        "(above it naive_seconds is null and speedup compares jit vs vectorized)",
    )
    p_perf.add_argument(
        "--profile", action="store_true",
        help="cProfile one batched sweep and report the top-20 cumulative hotspots",
    )
    p_perf.add_argument(
        "--serve", action="store_true",
        help="load-test the reordering daemon (cold vs. warm latency) "
        "instead of the sweep; writes BENCH_serve.json",
    )
    p_perf.add_argument(
        "--clients", type=int, default=None,
        help="concurrent client connections for --serve (default 8, or 4 with --quick)",
    )
    p_perf.add_argument(
        "--fabric", action="store_true",
        help="benchmark the distributed sweep fabric (N-worker scaling "
        "curve vs. the serial checkpointed runner, bit-identity "
        "verified); writes BENCH_fabric.json",
    )
    p_perf.add_argument(
        "--fabric-workers", type=int, nargs="+", default=None,
        help="worker counts for the --fabric scaling curve "
        "(default: 1 2 4, or 1 2 with --quick)",
    )
    p_perf.add_argument(
        "--cell-delay", type=float, default=None,
        help="injected per-cell stall seconds for --fabric (models the "
        "I/O/queueing latency of real multi-host cells; default 1.0, "
        "0.25 with --quick; 0 measures pure-compute scaling)",
    )

    p_srv = sub.add_parser(
        "serve", help="run the warm-state reordering daemon (JSON-lines protocol)"
    )
    p_srv.add_argument(
        "--socket", default=None, help="unix socket path to listen on"
    )
    p_srv.add_argument(
        "--port", type=int, default=None,
        help="TCP port to listen on (0 picks a free port, printed at startup)",
    )
    p_srv.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default 127.0.0.1)"
    )
    p_srv.add_argument(
        "--topology-cap", type=int, default=None,
        help="max resident topologies before LRU eviction (default 8)",
    )
    p_srv.add_argument(
        "--batch-window", type=float, default=None,
        help="seconds a cold reorder waits for batch companions (default 0.005)",
    )
    p_srv.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to wait for in-flight work on SIGTERM (default 30)",
    )

    p_ver = sub.add_parser("verify", help="static schedule & mapping verification")
    p_ver.add_argument(
        "--alg", nargs="+", default=None,
        help="algorithm names to verify (default: every registered algorithm)",
    )
    p_ver.add_argument(
        "-p", "--sizes", dest="sizes", type=int, nargs="+", default=None,
        help=f"communicator sizes (default: {VERIFY_P_SWEEP})",
    )
    p_ver.add_argument(
        "--mappings", action="store_true",
        help="also check topology invariants and mapping-heuristic outputs",
    )
    add_nodes(p_ver)
    p_ver.add_argument(
        "--triangle", action="store_true",
        help="audit the distance matrix for triangle-inequality violations",
    )

    p_lint = sub.add_parser("lint", help="repo-specific AST lint pass (REP00x)")
    p_lint.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories (default: src tests benchmarks examples)",
    )

    p_aud = sub.add_parser(
        "audit",
        help="whole-pipeline static audit (REP/SCH/MAP/TOP/DET/PAR/CCH/FLT/PRC)",
    )
    p_aud.add_argument(
        "paths", nargs="*", default=None,
        help="source trees for the AST passes (default: src tests benchmarks examples)",
    )
    p_aud.add_argument(
        "--nodes", type=int, default=4,
        help="probe-cluster nodes for the behavioural sections (8 cores each)",
    )
    p_aud.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="communicator sizes for the schedule section",
    )
    p_aud.add_argument(
        "--artifacts", default=None, help="directory of fault-plan JSON artifacts"
    )
    p_aud.add_argument(
        "--cache-dir", default=None,
        help="mapping-cache directory to audit (default: $REPRO_MAPPING_CACHE)",
    )
    p_aud.add_argument(
        "--ignore", action="append", default=[],
        help="diagnostic code or family prefix to suppress (repeatable)",
    )
    p_aud.add_argument(
        "--skip-family", action="append", default=[],
        help="section name or family prefix to skip entirely (repeatable)",
    )
    p_aud.add_argument("--json", default=None, help="write the JSON report here")
    p_aud.add_argument("--sarif", default=None, help="write the SARIF 2.1.0 report here")
    return parser


# ----------------------------------------------------------------------
def _cmd_topo(args) -> int:
    from repro.topology.visualize import render_node, render_tree, render_wiring

    cluster = gpc_cluster(n_nodes=args.nodes)
    print(cluster)
    print()
    print(render_wiring(cluster))
    print()
    print(render_tree(cluster))
    print()
    print(render_node(cluster, 0))
    print()
    cm = CostModel()
    print(cm.describe())
    print()
    row = cluster.distance_row(0)
    print("distance ladder from core 0:")
    seen = set()
    for core in range(cluster.n_cores):
        d = float(row[core])
        if d not in seen:
            seen.add(d)
            print(f"  {cluster.channel_of(0, core):>6}: distance {d:.1f} (e.g. core {core})")
    print()
    print("calibration probes (simulated ping-pong):")
    print(calibration_report(calibrate(cluster, cm)))
    return 0


def _cmd_sweep(args) -> int:
    if args.status is not None:
        return _cmd_sweep_status(args)
    if args.merge is not None:
        return _cmd_sweep_merge(args)
    if args.fabric is not None:
        return _cmd_sweep_fabric(args)
    if args.resume is not None or args.out_dir is not None:
        return _cmd_sweep_checkpointed(args)
    cluster = gpc_cluster(n_nodes=args.nodes)
    p = cluster.n_cores
    ev = AllgatherEvaluator(cluster, rng=0)
    sizes = OSU_SIZES if args.full_sizes else QUICK_SIZES
    if args.hierarchical:
        layouts = args.layouts or ["block-bunch", "block-scatter"]
        points = sweep_hierarchical(
            ev, p, layouts=layouts, sizes=sizes, mappers=args.mappers, intra=args.intra,
            workers=args.workers,
        )
        title = f"Hierarchical ({args.intra}) allgather improvement %, p={p}"
    else:
        layouts = args.layouts or sorted(INITIAL_LAYOUTS)
        points = sweep_nonhierarchical(
            ev, p, layouts=layouts, sizes=sizes, mappers=args.mappers,
            workers=args.workers,
        )
        title = f"Non-hierarchical allgather improvement %, p={p}"
    print(format_sweep_table(points, title=title))
    return 0


def _cmd_sweep_checkpointed(args) -> int:
    """Crash-safe journaled sweep (``--out-dir``) or its resume (``--resume``)."""
    from repro.bench.runner import CheckpointedSweep, SweepSpec

    if args.resume is not None:
        sweep = CheckpointedSweep.resume(
            args.resume,
            workers=args.workers,
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
        )
    else:
        sizes = OSU_SIZES if args.full_sizes else QUICK_SIZES
        if args.hierarchical:
            layouts = args.layouts or ["block-bunch", "block-scatter"]
        else:
            layouts = args.layouts or sorted(INITIAL_LAYOUTS)
        spec = SweepSpec(
            n_nodes=args.nodes,
            layouts=tuple(layouts),
            sizes=tuple(sizes),
            mappers=tuple(args.mappers),
            hierarchical=args.hierarchical,
            intra=args.intra,
        )
        sweep = CheckpointedSweep(
            spec,
            args.out_dir,
            workers=args.workers,
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
        )
    result = sweep.run()
    spec = sweep.spec
    kind = "Hierarchical" if spec.hierarchical else "Non-hierarchical"
    p = 8 * spec.n_nodes
    print(format_sweep_table(result.points, title=f"{kind} allgather improvement %, p={p}"))
    print(
        f"\njournal: {result.out_dir}  "
        f"(resumed {result.n_resumed}, computed {result.n_computed} cells)"
    )
    if result.degraded_to_serial:
        print("warning: process pool died; finished the sweep serially")
    for cell, err in sorted(result.quarantined.items()):
        print(f"warning: quarantined cell {cell}: {err}")
    return 0


def _cmd_sweep_fabric(args) -> int:
    """One fabric worker (``--fabric DIR``): create-or-join, then work."""
    from pathlib import Path

    from repro.bench.fabric import FabricWorker
    from repro.bench.runner import SweepSpec

    out = Path(args.fabric)
    spec = None
    if not (out / "manifest.json").is_file():
        sizes = OSU_SIZES if args.full_sizes else QUICK_SIZES
        if args.hierarchical:
            layouts = args.layouts or ["block-bunch", "block-scatter"]
        else:
            layouts = args.layouts or sorted(INITIAL_LAYOUTS)
        spec = SweepSpec(
            n_nodes=args.nodes,
            layouts=tuple(layouts),
            sizes=tuple(sizes),
            mappers=tuple(args.mappers),
            hierarchical=args.hierarchical,
            intra=args.intra,
        )
    try:
        worker = FabricWorker(
            out,
            spec=spec,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            n_shards=args.shards,
            max_retries=args.max_retries,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    stats = worker.run()
    print(
        f"fabric worker {stats.worker_id}: "
        f"{stats.cells_computed} cells computed, {stats.cells_skipped} skipped, "
        f"{stats.cells_quarantined} quarantined over {stats.shards_claimed} shards "
        f"({stats.steals} stolen, contention {stats.lease_contention}) "
        f"in {stats.elapsed_seconds:.2f}s ({stats.cells_per_sec:.2f} cells/s)"
    )
    print(f"journal: {out}  (merge with: repro sweep --merge {out})")
    return 0


def _cmd_sweep_merge(args) -> int:
    """Fingerprint-verified fabric merge (``--merge DIR``)."""
    from repro.bench.fabric import FabricError, fabric_merge

    try:
        result = fabric_merge(args.merge)
    except (FabricError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    print(format_sweep_table(result.points, title=f"Fabric-merged sweep, p={result.p}"))
    print()
    print(result.summary())
    return 0


def _cmd_sweep_status(args) -> int:
    """Read-only journal/fabric inspector (``--status DIR``)."""
    from repro.bench.fabric import FabricError, fabric_status

    try:
        status = fabric_status(args.status, lease_ttl=args.lease_ttl)
    except (FabricError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    print(status.format(lease_ttl=args.lease_ttl))
    return 0


def _cmd_app(args) -> int:
    cluster = gpc_cluster(n_nodes=args.nodes)
    p = cluster.n_cores
    ev = AllgatherEvaluator(cluster, rng=0)
    if args.app == "nbody":
        trace = NBodyApp(steps=args.steps).trace()
    elif args.app == "matvec":
        trace = MatVecApp(n_processes=p, iterations=args.steps).trace()
    else:
        trace = IterativeSolverApp(n_processes=p, iterations=args.steps).trace()
    print(
        f"{trace.name}: {trace.n_allgathers} allgathers, p={p}, "
        f"hierarchical={args.hierarchical}\n"
    )
    print(f"{'layout':>16} {'default(s)':>11} {'Hrstc(s)':>10} {'Scotch(s)':>10} {'Hrstc norm':>11}")
    layouts = sorted(INITIAL_LAYOUTS)
    for lname in layouts:
        runner = AppRunner(ev, make_layout(lname, cluster, p))
        rows = {}
        for mode in ("default", "heuristic", "scotch"):
            rows[mode] = runner.run(
                trace, mode=mode, hierarchical=args.hierarchical, intra=args.intra
            )
        print(
            f"{lname:>16} {rows['default'].total_seconds:>11.3f} "
            f"{rows['heuristic'].total_seconds:>10.3f} "
            f"{rows['scotch'].total_seconds:>10.3f} "
            f"{rows['heuristic'].normalized_to(rows['default']):>11.3f}"
        )
    return 0


def _cmd_overheads(args) -> int:
    cluster = gpc_cluster(n_nodes=args.nodes)
    p = cluster.n_cores
    D, report = DistanceExtractor(cluster).extract()
    print(f"distance extraction at p={p}: {report.seconds:.4f} s (one-time)")
    L = make_layout("cyclic-bunch", cluster, p)
    print(f"\nmapping overheads for pattern {args.pattern!r}:")
    for kind in ("heuristic", "scotch", "greedy"):
        res = reorder_ranks(args.pattern, L, D, kind=kind, rng=0)
        extra = f" (graph build {res.graph_seconds:.4f} s)" if res.graph_seconds else ""
        print(f"  {kind:>10}: {res.total_seconds:.4f} s{extra}")
    return 0


def _cmd_adaptive(args) -> int:
    cluster = gpc_cluster(n_nodes=args.nodes)
    p = cluster.n_cores
    ev = AllgatherEvaluator(cluster, rng=0)
    ad = AdaptiveReorderer(ev, make_layout(args.layout, cluster, p))
    print(f"adaptive decisions on {args.layout}, p={p}\n")
    print(f"{'size':>8} {'default(us)':>12} {'reordered(us)':>14} {'choice':>10}")
    for bb in QUICK_SIZES:
        d = ad.decide(bb)
        choice = "reordered" if d.use_reordered else "default"
        print(
            f"{bb:>8} {d.default_seconds * 1e6:>12.1f} "
            f"{d.reordered_seconds * 1e6:>14.1f} {choice:>10}"
        )
    return 0


def _cmd_bcast(args) -> int:
    from repro.evaluation.bcast import BcastEvaluator

    cluster = gpc_cluster(n_nodes=args.nodes)
    p = cluster.n_cores
    ev = BcastEvaluator(cluster, rng=0)
    L = make_layout(args.layout, cluster, p)
    print(f"MPI_Bcast improvement on {args.layout}, p={p}\n")
    print(f"{'size':>10} {'algorithm':>28} {'default(us)':>12} {'tuned(us)':>11} {'gain':>7}")
    for mb in (256, 1024, 4096, 16384, 65536, 262144, 1 << 20):
        base = ev.default_latency(L, mb)
        tuned = ev.reordered_latency(L, mb, "heuristic")
        gain = 100 * (base.seconds - tuned.seconds) / base.seconds
        print(
            f"{mb:>10} {base.algorithm:>28} {base.seconds * 1e6:>12.1f} "
            f"{tuned.seconds * 1e6:>11.1f} {gain:>6.1f}%"
        )
    return 0


def _cmd_profile(args) -> int:
    from repro.collectives.registry import select_allgather, pattern_of
    from repro.simmpi.profiler import profile_schedule

    cluster = gpc_cluster(n_nodes=args.nodes)
    p = cluster.n_cores
    ev = AllgatherEvaluator(cluster, rng=0)
    L = make_layout(args.layout, cluster, p)
    alg = select_allgather(p, args.block_bytes)
    mapping = L
    tag = "default mapping"
    if args.reordered:
        res = reorder_ranks(pattern_of(alg), L, ev.distances, rng=0)
        mapping = res.mapping
        tag = f"reordered ({res.mapper_name})"
    print(f"{alg.name} @ {args.block_bytes} B on {args.layout} [{tag}], p={p}\n")
    prof = profile_schedule(ev.engine, alg.schedule(p), mapping, args.block_bytes)
    print(prof.report())
    return 0


def _cmd_faults(args) -> int:
    from repro.faults.recover import compare_recovery_policies

    cluster = gpc_cluster(n_nodes=args.nodes)
    p = cluster.n_cores
    L = make_layout(args.layout, cluster, p)
    sizes = args.sizes or QUICK_SIZES
    comparisons = compare_recovery_policies(
        cluster, L, args.fail_nodes, sizes, patterns=args.patterns, kind=args.kind
    )
    print(
        f"recovery pricing on {args.layout}, p={p}, "
        f"failed node(s) {sorted(set(args.fail_nodes))} ({args.kind} remap)\n"
    )
    for comp in comparisons:
        print(comp.summary())
        print()
    return 0


def _cmd_reproduce(args) -> int:
    from repro.bench.suite import run_suite

    result = run_suite(n_nodes=args.nodes, out_dir=args.out)
    for name in sorted(result.reports):
        print(result.reports[name])
        print()
    print(result.summary())
    return 0


def _cmd_perf(args) -> int:
    from repro.bench.perf import run_mapping_perf, run_perf

    if args.serve:
        from repro.bench.serveperf import DEFAULT_SERVE_BENCH_PATH, run_serve_perf

        out = args.out if args.out != "BENCH_sweep.json" else DEFAULT_SERVE_BENCH_PATH
        report = run_serve_perf(
            n_nodes=args.nodes,
            quick=args.quick,
            clients=args.clients,
            out=out,
        )
        print(report.summary())
        print(f"measurement written to {out}")
        if report.mismatches:
            print(f"FAIL: {report.mismatches} serve-vs-solo identity mismatches")
            return 1
        if report.warm_speedup_p50 < args.min_speedup:
            print(
                f"FAIL: warm speedup {report.warm_speedup_p50:.2f}x below "
                f"required {args.min_speedup:.2f}x"
            )
            return 1
        return 0

    if args.fabric:
        from repro.bench.fabricperf import DEFAULT_FABRIC_BENCH_PATH, run_fabric_perf

        out = args.out if args.out != "BENCH_sweep.json" else DEFAULT_FABRIC_BENCH_PATH
        report = run_fabric_perf(
            n_nodes=args.nodes,
            workers_list=args.fabric_workers,
            quick=args.quick,
            cell_delay=args.cell_delay,
            out_path=out,
        )
        print(report.summary())
        print(f"measurement written to {out}")
        if report.mismatches:
            print(f"FAIL: {report.mismatches} fabric-vs-serial identity mismatches")
            return 1
        if report.speedup < args.min_speedup:
            print(
                f"FAIL: fabric speedup {report.speedup:.2f}x below "
                f"required {args.min_speedup:.2f}x"
            )
            return 1
        return 0

    if args.mappings:
        out = args.out if args.out != "BENCH_sweep.json" else "BENCH_mappings.json"
        report = run_mapping_perf(
            p_values=args.p_values if args.p_values else None,
            repeats=max(args.repeats, 1 if args.quick else 5),
            quick=args.quick,
            naive_max_p=args.naive_max_p,
            out_path=out,
        )
        print(report.summary())
        print(f"measurement written to {out}")
        bad = [c for c in report.cases if c.mismatches]
        # min-speedup gates the naive-baseline rows; rows past the naive
        # cutoff instead require the jit tier to stay within 10% of the
        # vectorized tier (it beats it outright when numba is present).
        slow = [
            c for c in report.cases
            if c.speedup_baseline == "naive" and c.speedup < args.min_speedup
        ]
        lagging = [
            c for c in report.cases
            if c.speedup_baseline == "vectorized" and c.speedup < 0.9
        ]
        if bad:
            print(f"FAIL: placement mismatch at p={[c.p for c in bad]}")
            return 1
        if slow:
            print(
                f"FAIL: speedup below required {args.min_speedup:.2f}x "
                f"at p={[c.p for c in slow]}"
            )
            return 1
        if lagging:
            print(
                "FAIL: jit tier more than 10% behind vectorized "
                f"at p={[c.p for c in lagging]}"
            )
            return 1
        return 0

    n_nodes = args.nodes if args.nodes is not None else (8 if args.quick else 32)
    report = run_perf(
        n_nodes=n_nodes,
        workers=args.workers,
        quick=args.quick,
        repeats=args.repeats,
        profile=args.profile,
        out_path=args.out,
    )
    print(report.summary())
    print(f"measurement written to {args.out}")
    if report.speedup < args.min_speedup:
        print(
            f"FAIL: speedup {report.speedup:.2f}x below required {args.min_speedup:.2f}x"
        )
        return 1
    return 0


def _cmd_verify(args) -> int:
    from repro.analysis.mapping_checker import (
        check_cluster,
        check_core_mapping,
        check_distance_matrix,
    )
    from repro.analysis.schedule_verifier import verify_algorithm
    from repro.collectives.registry import make_algorithm, registered_algorithm_names
    from repro.mapping.reorder import HEURISTICS, reorder_all, reorder_ranks

    names = args.alg or registered_algorithm_names()
    unknown = [n for n in names if n not in registered_algorithm_names()]
    if unknown:
        known = ", ".join(registered_algorithm_names())
        print(f"error: unknown algorithm(s) {', '.join(unknown)}; registered: {known}")
        return 2
    sizes = args.sizes or VERIFY_P_SWEEP
    total = 0
    print(f"{'algorithm':>26} {'p':>5}  result")
    for name in names:
        for p in sizes:
            alg = make_algorithm(name)
            try:
                alg.validate_p(p)
            except ValueError:
                print(f"{name:>26} {p:>5}  skip (unsupported p)")
                continue
            report = verify_algorithm(alg, p)
            verdict = "ok" if not report.diagnostics else f"{len(report.diagnostics)} diagnostic(s)"
            print(f"{name:>26} {p:>5}  {verdict}")
            for diag in report.diagnostics:
                print(f"    {diag}")
            total += len(report.diagnostics)

    if args.mappings:
        cluster = gpc_cluster(n_nodes=args.nodes)
        p = cluster.n_cores
        print(f"\ntopology invariants ({cluster.n_nodes} nodes, {p} cores):")
        reports = [check_cluster(cluster, triangle=args.triangle)]
        D = cluster.distance_matrix()
        reports.append(check_distance_matrix(D, triangle=args.triangle))
        distances = cluster.implicit_distances()
        L = make_layout("cyclic-bunch", cluster, p)
        for pattern, res in reorder_all(
            L, distances, patterns=sorted(HEURISTICS), rng=0
        ).items():
            rep = check_core_mapping(res.mapping, L)
            rep.subject = f"{pattern} heuristic mapping"
            reports.append(rep)
        for rep in reports:
            print(f"  {rep.format()}")
            total += len(rep.diagnostics)

    print(f"\nverify: {total} diagnostic(s)")
    return 1 if total else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.registry import DEFAULT_TOPOLOGY_CAP
    from repro.serve.server import DEFAULT_BATCH_WINDOW, ReproServer, ServerConfig

    try:
        config = ServerConfig(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            topology_cap=(
                args.topology_cap if args.topology_cap is not None
                else DEFAULT_TOPOLOGY_CAP
            ),
            batch_window=(
                args.batch_window if args.batch_window is not None
                else DEFAULT_BATCH_WINDOW
            ),
            drain_timeout=args.drain_timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    async def run() -> None:
        server = ReproServer(config)
        await server.start()
        listening = []
        if config.socket_path is not None:
            listening.append(f"unix:{config.socket_path}")
        if server.port is not None:
            listening.append(f"tcp:{config.host}:{server.port}")
        print(f"repro serve: listening on {', '.join(listening)}", flush=True)
        await server.run()
        print("repro serve: drained, bye")

    asyncio.run(run())
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import main as lint_main

    return lint_main(args.paths)


def _cmd_audit(args) -> int:
    from repro.analysis.audit import main as audit_main

    argv: List[str] = list(args.paths or [])
    argv += ["--nodes", str(args.nodes)]
    if args.sizes:
        argv += ["--sizes", *[str(s) for s in args.sizes]]
    if args.artifacts:
        argv += ["--artifacts", args.artifacts]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    for code in args.ignore:
        argv += ["--ignore", code]
    for family in args.skip_family:
        argv += ["--skip-family", family]
    if args.json:
        argv += ["--json", args.json]
    if args.sarif:
        argv += ["--sarif", args.sarif]
    return audit_main(argv)


_COMMANDS = {
    "topo": _cmd_topo,
    "sweep": _cmd_sweep,
    "app": _cmd_app,
    "overheads": _cmd_overheads,
    "adaptive": _cmd_adaptive,
    "bcast": _cmd_bcast,
    "profile": _cmd_profile,
    "faults": _cmd_faults,
    "reproduce": _cmd_reproduce,
    "perf": _cmd_perf,
    "serve": _cmd_serve,
    "verify": _cmd_verify,
    "lint": _cmd_lint,
    "audit": _cmd_audit,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
