"""Iterative solver proxy with mixed collectives (third domain workload).

A distributed Krylov-style solver: every iteration allgathers the shared
vector (as in the mat-vec proxy) and, every ``restart`` iterations, the
master broadcasts a refreshed parameter block to all ranks (restart
vectors / updated preconditioner).  This is the mixed allgather + bcast
call profile that exercises both evaluators at once — and both of the
paper's heuristic families (RDMH/RMH for the allgather, BBMH for the
broadcast) inside one application run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.trace import AppPhase, AppTrace

__all__ = ["IterativeSolverApp"]


@dataclass(frozen=True)
class IterativeSolverApp:
    """Configuration of the solver proxy."""

    rows_per_rank: int = 256
    n_processes: int = 1024
    bytes_per_element: int = 8
    iterations: int = 300
    restart: int = 30                  # bcast cadence
    bcast_bytes: int = 1 << 20         # parameter block size
    flops_rate: float = 2.0e9

    def __post_init__(self) -> None:
        for name in ("rows_per_rank", "n_processes", "bytes_per_element",
                     "iterations", "restart", "bcast_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.flops_rate <= 0:
            raise ValueError("flops_rate must be positive")

    @property
    def block_bytes(self) -> int:
        """Per-rank allgather contribution (its vector slice)."""
        return self.rows_per_rank * self.bytes_per_element

    @property
    def n_bcasts(self) -> int:
        return self.iterations // self.restart

    @property
    def compute_seconds_per_iteration(self) -> float:
        """Sparse mat-vec + vector ops: ~40 flops per local row per rank."""
        n = self.rows_per_rank * self.n_processes
        flops = self.rows_per_rank * 40.0 + 2.0 * self.rows_per_rank * 8.0
        # dominated by the local sparse row sweeps against the global vector
        flops += 0.05 * self.rows_per_rank * n / self.n_processes
        return flops / self.flops_rate

    def trace(self) -> AppTrace:
        """Alternating allgather phases with periodic parameter bcasts."""
        phases = []
        for _ in range(self.n_bcasts):
            phases.append(
                AppPhase(
                    n_steps=self.restart,
                    block_bytes=float(self.block_bytes),
                    compute_seconds=self.compute_seconds_per_iteration,
                )
            )
            phases.append(
                AppPhase(
                    n_steps=1,
                    block_bytes=float(self.bcast_bytes),
                    compute_seconds=0.0,
                    collective="bcast",
                )
            )
        tail = self.iterations - self.n_bcasts * self.restart
        if tail:
            phases.append(
                AppPhase(
                    n_steps=tail,
                    block_bytes=float(self.block_bytes),
                    compute_seconds=self.compute_seconds_per_iteration,
                )
            )
        return AppTrace(name="solver", phases=phases)
