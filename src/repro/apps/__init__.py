"""Application-level workloads (paper §VI-B).

The paper evaluates rank reordering on an allgather-heavy application
(358 MPI_Allgather calls at 1024 processes).  The exact application is a
proxy here (see DESIGN.md): what drives Fig. 5/6 is only the call profile
— many identically-sized allgathers interleaved with compute — which
:class:`~repro.apps.trace.AppTrace` captures exactly.  Two concrete
workloads are provided: a neighbour-list N-body step
(:mod:`~repro.apps.nbody`) and a row-distributed dense mat-vec iteration
(:mod:`~repro.apps.matvec`).
"""

from repro.apps.trace import AppPhase, AppResult, AppRunner, AppTrace
from repro.apps.nbody import NBodyApp
from repro.apps.matvec import MatVecApp
from repro.apps.solver import IterativeSolverApp
from repro.apps.synthetic import SyntheticTraceConfig, generate_trace, generate_traces

__all__ = [
    "AppPhase",
    "AppTrace",
    "AppResult",
    "AppRunner",
    "NBodyApp",
    "MatVecApp",
    "IterativeSolverApp",
    "SyntheticTraceConfig",
    "generate_trace",
    "generate_traces",
]
