"""Application traces and the trace runner.

An :class:`AppTrace` is the communication/compute profile of an
application: phases of repeated (compute, MPI_Allgather) steps.  The
:class:`AppRunner` replays a trace against the simulated cluster under
different mapping regimes and reports end-to-end execution time —
including the one-time rank-reordering overhead for the topology-aware
runs, since the paper's application measurements amortise exactly that
("the whole rank reordering process happens only once at run-time", §IV;
"the total overhead ... represents less than 4% of the total execution
time", §VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.evaluation.evaluator import AllgatherEvaluator

__all__ = ["AppPhase", "AppTrace", "AppResult", "AppRunner"]


@dataclass(frozen=True)
class AppPhase:
    """A run of identical application steps.

    Each step performs ``compute_seconds`` of local work followed by one
    collective: an MPI_Allgather of ``block_bytes`` per rank (the
    default), or an MPI_Bcast of ``block_bytes`` total when
    ``collective="bcast"`` (e.g. distributing updated parameters each
    iteration).
    """

    n_steps: int
    block_bytes: float
    compute_seconds: float
    collective: str = "allgather"

    def __post_init__(self) -> None:
        if self.n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {self.n_steps}")
        if self.block_bytes <= 0:
            raise ValueError(f"block_bytes must be > 0, got {self.block_bytes}")
        if self.compute_seconds < 0:
            raise ValueError(f"compute_seconds must be >= 0, got {self.compute_seconds}")
        if self.collective not in ("allgather", "bcast"):
            raise ValueError(
                f"collective must be 'allgather' or 'bcast', got {self.collective!r}"
            )


@dataclass
class AppTrace:
    """The whole application profile."""

    name: str
    phases: List[AppPhase] = field(default_factory=list)

    @property
    def n_allgathers(self) -> int:
        return sum(ph.n_steps for ph in self.phases)

    @property
    def compute_seconds(self) -> float:
        return sum(ph.n_steps * ph.compute_seconds for ph in self.phases)


@dataclass
class AppResult:
    """Simulated end-to-end execution of a trace under one regime."""

    app: str
    mode: str
    total_seconds: float
    compute_seconds: float
    comm_seconds: float
    reorder_seconds: float
    n_allgathers: int

    def normalized_to(self, baseline: "AppResult") -> float:
        """Execution time normalised to a baseline run (paper Fig. 5/6)."""
        return self.total_seconds / baseline.total_seconds

    def __str__(self) -> str:
        return (
            f"{self.app} [{self.mode}]: {self.total_seconds:.3f}s "
            f"(compute {self.compute_seconds:.3f}s, comm {self.comm_seconds:.3f}s, "
            f"reorder {self.reorder_seconds:.3f}s, {self.n_allgathers} allgathers)"
        )


class AppRunner:
    """Replays traces under default / heuristic / scotch / greedy regimes."""

    def __init__(self, evaluator: AllgatherEvaluator, layout: Sequence[int]) -> None:
        self.evaluator = evaluator
        self.layout = np.asarray(layout, dtype=np.int64)
        self._bcast_evaluator = None

    def _bcast(self):
        """Lazily built broadcast evaluator sharing the cluster/cost model."""
        if self._bcast_evaluator is None:
            from repro.evaluation.bcast import BcastEvaluator

            self._bcast_evaluator = BcastEvaluator(
                self.evaluator.cluster, cost_model=self.evaluator.cost
            )
        return self._bcast_evaluator

    def run(
        self,
        trace: AppTrace,
        mode: str = "default",
        strategy: str = "initcomm",
        hierarchical: bool = False,
        intra: str = "binomial",
    ) -> AppResult:
        """Simulate the trace.

        ``mode`` is ``"default"`` (no reordering) or a mapper kind
        (``"heuristic"``, ``"scotch"``, ``"greedy"``).  Reordered modes pay
        the mapping overhead once per distinct allgather configuration and
        the per-call restoration cost on every call, exactly as the real
        implementation would.
        """
        comm = 0.0
        reorder = 0.0
        seen_reorder_keys = set()
        for ph in trace.phases:
            if ph.collective == "bcast":
                if mode == "default":
                    rep = self._bcast().default_latency(self.layout, ph.block_bytes)
                else:
                    rep = self._bcast().reordered_latency(self.layout, ph.block_bytes, mode)
            elif mode == "default":
                rep = self.evaluator.default_latency(
                    self.layout, ph.block_bytes, hierarchical, intra
                )
            else:
                rep = self.evaluator.reordered_latency(
                    self.layout, ph.block_bytes, mode, strategy, hierarchical, intra
                )
            if mode != "default":
                key = (ph.collective, rep.algorithm, hierarchical, intra)
                if key not in seen_reorder_keys:
                    # One-time mapping overhead per reordered communicator.
                    reorder += rep.reorder_seconds
                    seen_reorder_keys.add(key)
            comm += ph.n_steps * rep.seconds
        compute = trace.compute_seconds
        return AppResult(
            app=trace.name,
            mode=mode,
            total_seconds=compute + comm + reorder,
            compute_seconds=compute,
            comm_seconds=comm,
            reorder_seconds=reorder,
            n_allgathers=trace.n_allgathers,
        )
