"""Seeded synthetic application traces (workload generator).

Generates randomized but reproducible application profiles — mixtures of
allgather and broadcast phases with log-uniform message sizes and varying
compute/communication ratios — for fuzz-style robustness tests of the
evaluation pipeline and for exploring where reordering pays off across
the workload space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.trace import AppPhase, AppTrace
from repro.util.rng import RngLike, make_rng

__all__ = ["SyntheticTraceConfig", "generate_trace", "generate_traces"]


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Shape of the random workload space.

    Message sizes are drawn log-uniformly from ``[min_bytes, max_bytes]``
    so both collective regimes (RD/tree below the thresholds, ring /
    scatter-allgather above) are exercised.  ``bcast_probability`` mixes
    broadcast phases in; ``comm_fraction`` targets the communication
    share of the runtime under a nominal per-call latency.
    """

    n_phases: int = 4
    steps_per_phase: int = 20
    min_bytes: int = 16
    max_bytes: int = 1 << 18
    bcast_probability: float = 0.25
    compute_seconds_range: tuple = (1e-4, 5e-3)

    def __post_init__(self) -> None:
        if self.n_phases < 1 or self.steps_per_phase < 1:
            raise ValueError("n_phases and steps_per_phase must be >= 1")
        if not 1 <= self.min_bytes <= self.max_bytes:
            raise ValueError("need 1 <= min_bytes <= max_bytes")
        if not 0.0 <= self.bcast_probability <= 1.0:
            raise ValueError("bcast_probability must be in [0, 1]")
        lo, hi = self.compute_seconds_range
        if lo < 0 or hi < lo:
            raise ValueError("bad compute_seconds_range")


def generate_trace(
    config: SyntheticTraceConfig = SyntheticTraceConfig(),
    rng: RngLike = 0,
    name: Optional[str] = None,
) -> AppTrace:
    """One random trace under ``config`` (deterministic per seed)."""
    generator = make_rng(rng)
    phases: List[AppPhase] = []
    lo, hi = np.log(config.min_bytes), np.log(config.max_bytes)
    c_lo, c_hi = config.compute_seconds_range
    for _ in range(config.n_phases):
        block_bytes = float(np.exp(generator.uniform(lo, hi)))
        collective = (
            "bcast" if generator.random() < config.bcast_probability else "allgather"
        )
        steps = int(generator.integers(1, config.steps_per_phase + 1))
        compute = float(generator.uniform(c_lo, c_hi))
        phases.append(
            AppPhase(
                n_steps=steps,
                block_bytes=max(1.0, block_bytes),
                compute_seconds=compute,
                collective=collective,
            )
        )
    return AppTrace(name=name or "synthetic", phases=phases)


def generate_traces(
    n: int,
    config: SyntheticTraceConfig = SyntheticTraceConfig(),
    rng: RngLike = 0,
) -> List[AppTrace]:
    """A reproducible family of ``n`` random traces."""
    if n < 0:
        raise ValueError(f"cannot generate {n} traces")
    generator = make_rng(rng)
    return [
        generate_trace(config, rng=int(generator.integers(2**31)), name=f"synthetic-{i}")
        for i in range(n)
    ]
