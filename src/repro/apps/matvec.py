"""Row-distributed dense mat-vec iteration (second domain workload).

The canonical allgather application from the mpi4py tutorial: each rank
owns ``rows_per_rank`` rows of a dense matrix and a slice of the vector;
every iteration allgathers the full vector and multiplies locally.  Used
by the examples and as a second, small-message application profile
(iterative solvers call allgather with a few KiB per rank, the recursive-
doubling regime, complementing the ring-regime N-body proxy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.trace import AppPhase, AppTrace

__all__ = ["MatVecApp"]


@dataclass(frozen=True)
class MatVecApp:
    """Configuration of the iterative mat-vec proxy."""

    rows_per_rank: int = 128
    n_processes: int = 1024
    bytes_per_element: int = 8          # float64 vector entries
    iterations: int = 200
    flops_rate: float = 2.0e9

    def __post_init__(self) -> None:
        for name in ("rows_per_rank", "n_processes", "bytes_per_element", "iterations"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.flops_rate <= 0:
            raise ValueError("flops_rate must be positive")

    @property
    def n(self) -> int:
        """Global problem size (matrix dimension)."""
        return self.rows_per_rank * self.n_processes

    @property
    def block_bytes(self) -> int:
        """Per-rank allgather contribution (its vector slice)."""
        return self.rows_per_rank * self.bytes_per_element

    @property
    def compute_seconds_per_iteration(self) -> float:
        """Local dense mat-vec time: 2 * rows * n flops."""
        return 2.0 * self.rows_per_rank * self.n / self.flops_rate

    def trace(self) -> AppTrace:
        """The application's communication/compute trace."""
        return AppTrace(
            name="matvec",
            phases=[
                AppPhase(
                    n_steps=self.iterations,
                    block_bytes=float(self.block_bytes),
                    compute_seconds=self.compute_seconds_per_iteration,
                )
            ],
        )
