"""Neighbour-list N-body proxy application.

The paper's application makes 358 MPI_Allgather calls at 1024 processes
(§VI-B); its name is not recoverable from the available text, so this
proxy reproduces the *profile*: a particle simulation that allgathers all
particle states every timestep (the textbook allgather use-case — cf. the
parallel mat-vec in the mpi4py tutorial) and then runs a fixed amount of
local force computation.

The compute model is a neighbour-list force evaluation:
``particles_per_rank x neighbours x flops_per_interaction`` floating-point
operations per rank per step at ``flops_rate`` sustained — 2009-era
per-core throughput by default.  The defaults put communication at a
sizeable fraction of the default-mapping runtime, the regime where the
paper's Fig. 5 improvements (up to ~30-40%) live.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.trace import AppPhase, AppTrace

__all__ = ["NBodyApp"]


@dataclass(frozen=True)
class NBodyApp:
    """Configuration of the N-body proxy.

    ``block_bytes`` (the allgather per-rank message) is
    ``particles_per_rank * bytes_per_particle``: every rank publishes its
    particles' states each step.
    """

    particles_per_rank: int = 512
    bytes_per_particle: int = 16        # x, y, z, mass as float32
    neighbours: int = 2048              # interaction-list length
    flops_per_interaction: float = 30.0
    flops_rate: float = 2.0e9           # sustained per-core FLOP/s (2009 Xeon)
    steps: int = 358                    # the paper's allgather call count

    def __post_init__(self) -> None:
        for name in ("particles_per_rank", "bytes_per_particle", "neighbours", "steps"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.flops_rate <= 0 or self.flops_per_interaction <= 0:
            raise ValueError("flops parameters must be positive")

    @property
    def block_bytes(self) -> int:
        """Per-rank allgather contribution."""
        return self.particles_per_rank * self.bytes_per_particle

    @property
    def compute_seconds_per_step(self) -> float:
        """Local force-evaluation time per step."""
        flops = self.particles_per_rank * self.neighbours * self.flops_per_interaction
        return flops / self.flops_rate

    def trace(self) -> AppTrace:
        """The application's communication/compute trace."""
        return AppTrace(
            name="nbody",
            phases=[
                AppPhase(
                    n_steps=self.steps,
                    block_bytes=float(self.block_bytes),
                    compute_seconds=self.compute_seconds_per_step,
                )
            ],
        )
