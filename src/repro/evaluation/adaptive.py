"""Adaptive rank reordering (paper §VII future work).

"Devising an adaptive version of our proposed approach is another
interesting venue ... a runtime component is used to decide whether to use
the reordered communicator for a given collective or not based on the
potential performance improvements that each heuristic can provide for
various message sizes."

:class:`AdaptiveReorderer` implements exactly that: for each message-size
bucket it predicts (via the timing engine) the latency of the default and
the reordered communicator — including the per-call restoration cost — and
routes each collective call to whichever wins.  Decisions are cached per
bucket, so the prediction cost is paid once, like the reordering itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.evaluation.evaluator import AllgatherEvaluator, LatencyReport

__all__ = ["AdaptiveDecision", "AdaptiveReorderer"]


@dataclass(frozen=True)
class AdaptiveDecision:
    """Outcome for one message-size bucket."""

    block_bytes: float
    use_reordered: bool
    default_seconds: float
    reordered_seconds: float

    @property
    def seconds(self) -> float:
        """Latency of the chosen communicator."""
        return min(self.default_seconds, self.reordered_seconds)

    @property
    def predicted_gain_pct(self) -> float:
        return 100.0 * (self.default_seconds - self.reordered_seconds) / self.default_seconds


class AdaptiveReorderer:
    """Per-message-size routing between the original and reordered comm."""

    def __init__(
        self,
        evaluator: AllgatherEvaluator,
        layout: Sequence[int],
        kind: str = "heuristic",
        strategy: str = "initcomm",
        hierarchical: bool = False,
        intra: str = "binomial",
    ) -> None:
        self.evaluator = evaluator
        self.layout = np.asarray(layout, dtype=np.int64)
        self.kind = kind
        self.strategy = strategy
        self.hierarchical = hierarchical
        self.intra = intra
        self._decisions: Dict[int, AdaptiveDecision] = {}

    @staticmethod
    def _bucket(block_bytes: float) -> int:
        """Power-of-two size bucket (decisions generalise within a bucket)."""
        if block_bytes < 1:
            raise ValueError(f"block_bytes must be >= 1, got {block_bytes}")
        return int(np.ceil(np.log2(block_bytes))) if block_bytes > 1 else 0

    def decide(self, block_bytes: float) -> AdaptiveDecision:
        """Predict both latencies for this size and pick the winner."""
        bucket = self._bucket(block_bytes)
        cached = self._decisions.get(bucket)
        if cached is not None:
            return cached
        rep_bytes = float(2**bucket)
        base = self.evaluator.default_latency(
            self.layout, rep_bytes, self.hierarchical, self.intra
        )
        tuned = self.evaluator.reordered_latency(
            self.layout, rep_bytes, self.kind, self.strategy, self.hierarchical, self.intra
        )
        decision = AdaptiveDecision(
            block_bytes=rep_bytes,
            use_reordered=tuned.seconds < base.seconds,
            default_seconds=base.seconds,
            reordered_seconds=tuned.seconds,
        )
        self._decisions[bucket] = decision
        return decision

    def latency(self, block_bytes: float) -> LatencyReport:
        """Latency of one allgather call routed by the adaptive policy."""
        decision = self.decide(block_bytes)
        if decision.use_reordered:
            return self.evaluator.reordered_latency(
                self.layout, block_bytes, self.kind, self.strategy, self.hierarchical, self.intra
            )
        return self.evaluator.default_latency(
            self.layout, block_bytes, self.hierarchical, self.intra
        )
