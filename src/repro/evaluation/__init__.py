"""End-to-end evaluation: the paper's experimental pipeline in one place.

:class:`~repro.evaluation.evaluator.AllgatherEvaluator` reproduces the
measurement flow of §VI: pick the MVAPICH-style algorithm for the message
size, reorder ranks with a chosen mapper, price the collective plus the
order-restoration mechanism on the simulated cluster, and report
improvement over the default mapping.  The adaptive reorderer
(:mod:`~repro.evaluation.adaptive`) implements the paper's §VII "adaptive
version" future-work idea on top of it.
"""

from repro.evaluation.evaluator import AllgatherEvaluator, LatencyReport
from repro.evaluation.adaptive import AdaptiveReorderer, AdaptiveDecision
from repro.evaluation.bcast import BcastEvaluator, BcastReport, select_bcast
from repro.evaluation.calibration import ChannelProbe, calibrate, calibration_report

__all__ = [
    "AllgatherEvaluator",
    "LatencyReport",
    "AdaptiveReorderer",
    "AdaptiveDecision",
    "BcastEvaluator",
    "BcastReport",
    "select_bcast",
    "ChannelProbe",
    "calibrate",
    "calibration_report",
]
