"""The paper's measurement pipeline (§VI) as a reusable object.

For a given cluster, initial layout and per-rank message size the
evaluator:

1. selects the allgather algorithm the way MVAPICH would (recursive
   doubling / Bruck below the size threshold, ring above; hierarchical
   variants with RD/ring leader exchanges);
2. computes a rank reordering with the requested mapper (the paper's
   fine-tuned heuristics, the Scotch-like baseline, or the greedy
   baseline) — cached per (pattern, layout, mapper), since "the whole
   rank reordering process happens only once at run-time";
3. prices the collective under the reordered mapping, plus the
   order-restoration mechanism (initComm priced as one extra message
   stage, endShfl as local copies, the ring's inline fix as free);
4. reports latency and percentage improvement over the default mapping.

For hierarchical allgather, reordering is applied "to node-leaders and
local processes separately" (paper §VI-A2): the intra-node permutation
comes from BGMH over each node's cores (the gather phase dominates the
intra-node gains, Fig. 4(b) commentary) and the leader permutation from
RDMH/RMH over the leader cores; with linear intra-node phases there is no
intra-node pattern to optimise and only leaders are reordered.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collectives.correctness import (
    OrderStrategy,
    RankReordering,
    end_shuffle_seconds,
    init_comm_stage,
)
from repro.collectives.hierarchical import HierarchicalAllgather
from repro.collectives.registry import (
    DEFAULT_RD_THRESHOLD_BYTES,
    pattern_of,
    select_allgather,
    select_hierarchical_allgather,
)
from repro.collectives.schedule import Schedule
from repro.mapping.base import Mapper
from repro.mapping.bgmh import BGMH
from repro.mapping.greedy import GreedyGraphMapper
from repro.mapping.patterns import build_pattern
from repro.mapping.reorder import ReorderResult, reorder_all, reorder_ranks
from repro.mapping.scotch import ScotchLikeMapper
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine
from repro.topology.cluster import ClusterTopology
from repro.util.bits import is_power_of_two
from repro.util.rng import RngLike, make_rng

__all__ = ["AllgatherEvaluator", "LatencyReport"]


@dataclass
class LatencyReport:
    """Latency of one allgather configuration.

    ``seconds`` is what a micro-benchmark loop would time: collective plus
    per-call order restoration.  ``reorder_seconds`` is the one-time
    mapping overhead, reported separately (as in the paper's Fig. 7) so
    micro-benchmarks exclude it while application runs amortise it.
    """

    seconds: float
    algorithm: str
    strategy: str
    collective_seconds: float
    restore_seconds: float = 0.0
    reorder_seconds: float = 0.0
    mapper: str = "none"

    def __str__(self) -> str:
        return (
            f"{self.algorithm} [{self.mapper}/{self.strategy}] "
            f"{self.seconds * 1e6:.1f} us"
        )


def _layout_key(layout: np.ndarray) -> str:
    return hashlib.sha1(np.ascontiguousarray(layout).tobytes()).hexdigest()


def _seed_for(*parts) -> int:
    """Deterministic, order-independent seed from the cache key.

    Tie-breaking stays "random" in the paper's sense but no longer
    depends on how many reorderings were computed before this one, so
    results are stable under any evaluation order.
    """
    blob = "|".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.sha1(blob).digest()[:4], "big")


class AllgatherEvaluator:
    """Prices MPI_Allgather on a simulated cluster under rank reordering."""

    def __init__(
        self,
        cluster: ClusterTopology,
        cost_model: Optional[CostModel] = None,
        rd_threshold: float = DEFAULT_RD_THRESHOLD_BYTES,
        intra_heuristic: str = "bgmh",
        rng: RngLike = 0,
    ) -> None:
        if intra_heuristic not in ("bgmh", "bbmh"):
            raise ValueError(
                f"intra_heuristic must be 'bgmh' or 'bbmh', got {intra_heuristic!r}"
            )
        self.cluster = cluster
        self.cost = cost_model if cost_model is not None else CostModel()
        self.engine = TimingEngine(cluster, self.cost)
        self.rd_threshold = rd_threshold
        self.intra_heuristic = intra_heuristic
        self.rng = make_rng(rng)
        # Mapping-facing distances: the implicit backend computes rows on
        # demand (no dense n_cores x n_cores materialisation) and carries
        # the topology fingerprint that keys the mapping cache.
        self.distances = cluster.implicit_distances()
        self._D: Optional[np.ndarray] = None
        self._reorder_cache: Dict[Tuple, object] = {}
        self._schedule_cache: Dict[Tuple, Schedule] = {}

    @property
    def D(self) -> np.ndarray:
        """Dense distance matrix (materialised lazily, for legacy callers)."""
        if self._D is None:
            self._D = self.cluster.distance_matrix()
        return self._D

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def groups_from_layout(self, layout: Sequence[int]) -> List[List[int]]:
        """Node communicators: ranks grouped by hosting node, rank order.

        Mirrors what an MPI library's shared-memory communicator split
        produces (lowest world rank on each node becomes the leader).
        """
        L = np.asarray(layout, dtype=np.int64)
        nodes = self.cluster.node_of(L)
        groups: Dict[int, List[int]] = {}
        for rank in range(L.size):
            groups.setdefault(int(nodes[rank]), []).append(rank)
        return [groups[n] for n in sorted(groups)]

    def _restore(
        self,
        strategy: OrderStrategy,
        algorithm,
        reordering: RankReordering,
        block_bytes: float,
    ) -> Tuple[str, float]:
        """Effective strategy name and its per-call cost."""
        if reordering.is_identity():
            return OrderStrategy.NONE.value, 0.0
        if getattr(algorithm, "supports_inline_placement", False):
            # Paper §V-B: the ring resolves ordering inside the algorithm.
            return OrderStrategy.INLINE.value, 0.0
        if strategy is OrderStrategy.INIT_COMM:
            stage = init_comm_stage(reordering)
            if stage is None:
                return OrderStrategy.NONE.value, 0.0
            pre = Schedule(p=reordering.p, stages=[stage], name="initcomm")
            cost = self.engine.evaluate(pre, reordering.mapping, block_bytes).total_seconds
            return strategy.value, cost
        if strategy is OrderStrategy.END_SHUFFLE:
            return strategy.value, end_shuffle_seconds(reordering, block_bytes, self.cost)
        raise ValueError(f"strategy {strategy} not usable for {algorithm.name}")

    def _restore_sizes(
        self,
        strat: OrderStrategy,
        algorithm,
        reordering: RankReordering,
        sizes: Sequence[float],
    ) -> Tuple[str, np.ndarray]:
        """Batched :meth:`_restore`: one cost per size, priced together."""
        zeros = np.zeros(len(sizes), dtype=np.float64)
        if reordering.is_identity():
            return OrderStrategy.NONE.value, zeros
        if getattr(algorithm, "supports_inline_placement", False):
            return OrderStrategy.INLINE.value, zeros
        if strat is OrderStrategy.INIT_COMM:
            stage = init_comm_stage(reordering)
            if stage is None:
                return OrderStrategy.NONE.value, zeros
            pre = Schedule(p=reordering.p, stages=[stage], name="initcomm")
            batch = self.engine.evaluate_sizes(pre, reordering.mapping, sizes)
            return strat.value, batch.total_seconds
        if strat is OrderStrategy.END_SHUFFLE:
            costs = np.array(
                [end_shuffle_seconds(reordering, bb, self.cost) for bb in sizes]
            )
            return strat.value, costs
        raise ValueError(f"strategy {strat} not usable for {algorithm.name}")

    # ------------------------------------------------------------------
    # batched (multi-size) pipeline
    # ------------------------------------------------------------------
    def _schedule_for(self, algorithm, p: int, extra_key: Tuple = ()) -> Schedule:
        """Build-once cache of compiled schedules.

        Flat algorithms are fully determined by (name, p); hierarchical
        ones also depend on their group structure, which callers encode in
        ``extra_key``.
        """
        key = (algorithm.name, p) + tuple(extra_key)
        sched = self._schedule_cache.get(key)
        if sched is None:
            sched = algorithm.schedule(p)
            self._schedule_cache[key] = sched
        return sched

    @staticmethod
    def _group_sizes(keys: Sequence) -> List[Tuple[object, List[int]]]:
        """Group size indices by selection key, preserving first-seen order."""
        groups: Dict[object, List[int]] = {}
        order: List[object] = []
        for i, k in enumerate(keys):
            if k not in groups:
                groups[k] = []
                order.append(k)
            groups[k].append(i)
        return [(k, groups[k]) for k in order]

    def default_latencies(
        self,
        layout: Sequence[int],
        sizes: Sequence[float],
        hierarchical: bool = False,
        intra: str = "binomial",
    ) -> List[LatencyReport]:
        """Batched :meth:`default_latency`: one report per entry of ``sizes``.

        Sizes are partitioned by the algorithm MVAPICH-style selection
        picks for them; each partition is priced with a single
        :meth:`TimingEngine.evaluate_sizes` call over a build-once
        schedule, so routes and unit loads are computed once per
        algorithm instead of once per size.
        """
        L = np.asarray(layout, dtype=np.int64)
        p = L.size
        sizes = list(sizes)
        out: List[Optional[LatencyReport]] = [None] * len(sizes)
        if hierarchical:
            groups = self.groups_from_layout(L)
            algs = [
                select_hierarchical_allgather(groups, bb, intra, self.rd_threshold)
                for bb in sizes
            ]
            extra_key = (_layout_key(L), "default")
        else:
            algs = [select_allgather(p, bb, self.rd_threshold) for bb in sizes]
            extra_key = ()
        for name, idxs in self._group_sizes([a.name for a in algs]):
            alg = algs[idxs[0]]
            sched = self._schedule_for(alg, p, extra_key)
            batch = self.engine.evaluate_sizes(sched, L, [sizes[i] for i in idxs])
            for j, i in enumerate(idxs):
                coll = float(batch.total_seconds[j])
                out[i] = LatencyReport(
                    seconds=coll,
                    algorithm=name,
                    strategy=OrderStrategy.NONE.value,
                    collective_seconds=coll,
                )
        return out  # type: ignore[return-value]

    def reordered_latencies(
        self,
        layout: Sequence[int],
        sizes: Sequence[float],
        kind: str = "heuristic",
        strategy: str = "initcomm",
        hierarchical: bool = False,
        intra: str = "binomial",
    ) -> List[LatencyReport]:
        """Batched :meth:`reordered_latency` over a size vector.

        Reorderings are cached per (pattern, layout, mapper) exactly as in
        the per-size path (same deterministic seeds, so results match);
        schedules and route/unit-load pricing tables are built once per
        algorithm partition rather than once per size.
        """
        L = np.asarray(layout, dtype=np.int64)
        strat = OrderStrategy.parse(strategy)
        sizes = list(sizes)
        rng = _seed_for("reorder", _layout_key(L), kind, hierarchical, intra)
        if hierarchical:
            return self._hierarchical_reordered_batch(L, sizes, kind, strat, intra, rng)
        return self._flat_reordered_batch(L, sizes, kind, strat, rng)

    def _flat_reordered_batch(
        self,
        L: np.ndarray,
        sizes: List[float],
        kind: str,
        strat: OrderStrategy,
        rng: RngLike,
    ) -> List[LatencyReport]:
        p = L.size
        out: List[Optional[LatencyReport]] = [None] * len(sizes)
        algs = [select_allgather(p, bb, self.rd_threshold) for bb in sizes]
        lk = _layout_key(L)
        groups = list(self._group_sizes([a.name for a in algs]))
        if kind == "heuristic":
            # All heuristic reorderings this size vector needs, computed
            # in one batched pass (shared fingerprinting, cache keys and
            # pool structure) instead of one reorder_ranks call each.
            needed = []
            for name, idxs in groups:
                pattern = pattern_of(algs[idxs[0]])
                if (
                    ("flat", pattern, lk, kind) not in self._reorder_cache
                    and pattern not in needed
                ):
                    needed.append(pattern)
            if needed:
                for pt, res in reorder_all(
                    L, self.distances, patterns=needed, rng=rng
                ).items():
                    self._reorder_cache[("flat", pt, lk, kind)] = res
        for name, idxs in groups:
            alg = algs[idxs[0]]
            pattern = pattern_of(alg)
            key = ("flat", pattern, lk, kind)
            res: ReorderResult = self._reorder_cache.get(key)  # type: ignore[assignment]
            if res is None:
                res = reorder_ranks(pattern, L, self.distances, kind=kind, rng=rng)
                self._reorder_cache[key] = res
            sub = [sizes[i] for i in idxs]
            sched = self._schedule_for(alg, p)
            batch = self.engine.evaluate_sizes(sched, res.mapping, sub)
            strategy_name, restores = self._restore_sizes(
                strat, alg, res.reordering, sub
            )
            for j, i in enumerate(idxs):
                coll = float(batch.total_seconds[j])
                out[i] = LatencyReport(
                    seconds=coll + float(restores[j]),
                    algorithm=name,
                    strategy=strategy_name,
                    collective_seconds=coll,
                    restore_seconds=float(restores[j]),
                    reorder_seconds=res.total_seconds,
                    mapper=res.mapper_name,
                )
        return out  # type: ignore[return-value]

    def _hierarchical_reordered_batch(
        self,
        L: np.ndarray,
        sizes: List[float],
        kind: str,
        strat: OrderStrategy,
        intra: str,
        rng: RngLike,
    ) -> List[LatencyReport]:
        G = len(self.groups_from_layout(L))
        out: List[Optional[LatencyReport]] = [None] * len(sizes)
        leader_algs = [
            "rd" if bb < self.rd_threshold and is_power_of_two(G) else "ring"
            for bb in sizes
        ]
        for leader_alg, idxs in self._group_sizes(leader_algs):
            leader_pattern = (
                "recursive-doubling" if leader_alg == "rd" else "ring"
            )
            key = ("hier", leader_pattern, intra, self.intra_heuristic, _layout_key(L), kind)
            cached = self._reorder_cache.get(key)
            if cached is None:
                cached = self._hierarchical_reordering(L, kind, intra, leader_pattern, rng)
                self._reorder_cache[key] = cached
            reordering, groups_new, overhead = cached  # type: ignore[misc]

            alg = HierarchicalAllgather(groups_new, leader_alg=leader_alg, intra=intra)
            sub = [sizes[i] for i in idxs]
            sched = self._schedule_for(
                alg, L.size, (_layout_key(L), kind, self.intra_heuristic)
            )
            batch = self.engine.evaluate_sizes(sched, reordering.mapping, sub)
            strategy_name, restores = self._restore_sizes(strat, alg, reordering, sub)
            for j, i in enumerate(idxs):
                coll = float(batch.total_seconds[j])
                out[i] = LatencyReport(
                    seconds=coll + float(restores[j]),
                    algorithm=alg.name,
                    strategy=strategy_name,
                    collective_seconds=coll,
                    restore_seconds=float(restores[j]),
                    reorder_seconds=overhead,
                    mapper=kind,
                )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # fault recovery (batched)
    # ------------------------------------------------------------------
    def recovery_latencies(
        self,
        layout: Sequence[int],
        sizes: Sequence[float],
        failed_nodes: Sequence[int],
        kind: str = "heuristic",
        policy: str = "shrink-remap",
    ) -> List[LatencyReport]:
        """Batched allgather latency after node failures, per policy.

        ``policy`` is one of ``repro.faults.recover.RECOVERY_POLICIES``:
        ``"fail-stop"`` reports the abort (infinite latency),
        ``"shrink-keep"`` prices the survivors under their old binding
        with the holes closed up, and ``"shrink-remap"`` re-runs the
        ``kind`` mapper on the surviving core pool and adopts the remap
        wherever it prices no slower than keeping the old mapping.
        Sizes are partitioned by algorithm and priced through the same
        batched pipeline as :meth:`reordered_latencies`.
        """
        from repro.faults.shrink import shrink_layout

        if policy not in ("fail-stop", "shrink-keep", "shrink-remap"):
            raise ValueError(f"unknown recovery policy {policy!r}")
        sizes = list(sizes)
        if policy == "fail-stop":
            return [
                LatencyReport(
                    seconds=float("inf"),
                    algorithm="aborted",
                    strategy="fail-stop",
                    collective_seconds=float("inf"),
                )
                for _ in sizes
            ]
        survivors = shrink_layout(self.cluster, layout, failed_nodes)
        p = survivors.size
        out: List[Optional[LatencyReport]] = [None] * len(sizes)
        algs = [select_allgather(p, bb, self.rd_threshold) for bb in sizes]
        for name, idxs in self._group_sizes([a.name for a in algs]):
            alg = algs[idxs[0]]
            sub = [sizes[i] for i in idxs]
            sched = self._schedule_for(alg, p)
            keep = self.engine.evaluate_sizes(sched, survivors, sub).total_seconds
            mapper = "keep"
            seconds = keep
            if policy == "shrink-remap":
                pattern = pattern_of(alg)
                key = ("recover", pattern, _layout_key(survivors), kind)
                res: ReorderResult = self._reorder_cache.get(key)  # type: ignore[assignment]
                if res is None:
                    res = reorder_ranks(
                        pattern,
                        survivors,
                        self.D,
                        kind=kind,
                        rng=_seed_for("recover", _layout_key(survivors), kind),
                    )
                    self._reorder_cache[key] = res
                fresh = self.engine.evaluate_sizes(sched, res.mapping, sub).total_seconds
                # hedged adoption: never worse than keeping the old binding
                seconds = np.minimum(fresh, keep)
                mapper = res.mapper_name
            for j, i in enumerate(idxs):
                coll = float(seconds[j])
                out[i] = LatencyReport(
                    seconds=coll,
                    algorithm=name,
                    strategy=policy,
                    collective_seconds=coll,
                    mapper=mapper,
                )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # non-hierarchical
    # ------------------------------------------------------------------
    def default_latency(
        self,
        layout: Sequence[int],
        block_bytes: float,
        hierarchical: bool = False,
        intra: str = "binomial",
    ) -> LatencyReport:
        """Latency of the MVAPICH-style default under the raw layout."""
        L = np.asarray(layout, dtype=np.int64)
        p = L.size
        if hierarchical:
            groups = self.groups_from_layout(L)
            alg = select_hierarchical_allgather(groups, block_bytes, intra, self.rd_threshold)
        else:
            alg = select_allgather(p, block_bytes, self.rd_threshold)
        coll = self.engine.evaluate(alg.schedule(p), L, block_bytes).total_seconds
        return LatencyReport(
            seconds=coll,
            algorithm=alg.name,
            strategy=OrderStrategy.NONE.value,
            collective_seconds=coll,
        )

    def reordered_latency(
        self,
        layout: Sequence[int],
        block_bytes: float,
        kind: str = "heuristic",
        strategy: str = "initcomm",
        hierarchical: bool = False,
        intra: str = "binomial",
        rng: Optional[RngLike] = None,
    ) -> LatencyReport:
        """Latency under topology-aware rank reordering."""
        L = np.asarray(layout, dtype=np.int64)
        strat = OrderStrategy.parse(strategy)
        if rng is None:
            rng = _seed_for("reorder", _layout_key(L), kind, hierarchical, intra)
        if hierarchical:
            return self._hierarchical_reordered(L, block_bytes, kind, strat, intra, rng)
        return self._flat_reordered(L, block_bytes, kind, strat, rng)

    def _flat_reordered(
        self,
        L: np.ndarray,
        block_bytes: float,
        kind: str,
        strat: OrderStrategy,
        rng: RngLike,
    ) -> LatencyReport:
        p = L.size
        alg = select_allgather(p, block_bytes, self.rd_threshold)
        pattern = pattern_of(alg)
        key = ("flat", pattern, _layout_key(L), kind)
        res: ReorderResult = self._reorder_cache.get(key)  # type: ignore[assignment]
        if res is None:
            res = reorder_ranks(pattern, L, self.distances, kind=kind, rng=rng)
            self._reorder_cache[key] = res
        coll = self.engine.evaluate(alg.schedule(p), res.mapping, block_bytes).total_seconds
        strategy_name, restore = self._restore(strat, alg, res.reordering, block_bytes)
        return LatencyReport(
            seconds=coll + restore,
            algorithm=alg.name,
            strategy=strategy_name,
            collective_seconds=coll,
            restore_seconds=restore,
            reorder_seconds=res.total_seconds,
            mapper=res.mapper_name,
        )

    # ------------------------------------------------------------------
    # hierarchical
    # ------------------------------------------------------------------
    def _intra_mapper(self, kind: str, m: int) -> Optional[Mapper]:
        """Mapper for one node's binomial gather/bcast pattern.

        One intra-node permutation serves both tree phases (they share
        the binomial tree, only the traversal priorities differ); BGMH is
        the default because the paper attributes the intra-node gains to
        the gather phase (Fig. 4(b)), and BBMH is offered for the
        ablation.
        """
        if kind == "heuristic":
            from repro.mapping.bbmh import BBMH

            return BGMH() if self.intra_heuristic == "bgmh" else BBMH()
        graph = build_pattern("binomial-gather", m)
        return ScotchLikeMapper(graph) if kind == "scotch" else GreedyGraphMapper(graph)

    def _hierarchical_reordering(
        self, L: np.ndarray, kind: str, intra: str, leader_pattern: str, rng: RngLike
    ) -> Tuple[RankReordering, List[List[int]], float]:
        """Compose intra-node + leader reorderings into one world mapping.

        Returns the world reordering, the *new-rank* groups the schedule
        is built over, and the total mapping overhead in seconds.
        """
        groups_old = self.groups_from_layout(L)
        G = len(groups_old)
        rng = make_rng(rng)
        overhead = 0.0

        # Intra-node reordering (binomial phases only; a linear phase has
        # no pattern to optimise, paper Fig. 4(c,d) commentary).
        import time as _time

        per_group_cores: List[np.ndarray] = []
        for g in groups_old:
            cores_g = L[np.asarray(g, dtype=np.int64)]
            if intra == "binomial" and len(g) > 1:
                mapper = self._intra_mapper(kind, len(g))
                t0 = _time.perf_counter()
                M_g = mapper.map(cores_g, self.distances, rng=rng)
                overhead += _time.perf_counter() - t0
            else:
                M_g = cores_g.copy()
            per_group_cores.append(np.asarray(M_g, dtype=np.int64))

        # Leader-level reordering over the (possibly new) leader cores.
        leader_cores = np.array([mg[0] for mg in per_group_cores], dtype=np.int64)
        if G > 1:
            res = reorder_ranks(leader_pattern, leader_cores, self.distances, kind=kind, rng=rng)
            overhead += res.total_seconds
            # node_perm[j] = which original group acts as leader-rank j
            pos = {int(c): g for g, c in enumerate(leader_cores)}
            node_perm = [pos[int(c)] for c in res.mapping]
        else:
            node_perm = [0]

        # Stitch the world mapping: new ranks enumerate permuted groups.
        sizes = [per_group_cores[g].size for g in node_perm]
        starts = np.concatenate([[0], np.cumsum(sizes)])
        M_world = np.empty(L.size, dtype=np.int64)
        groups_new: List[List[int]] = []
        for j, g in enumerate(node_perm):
            s = int(starts[j])
            m = per_group_cores[g].size
            M_world[s : s + m] = per_group_cores[g]
            groups_new.append(list(range(s, s + m)))
        return RankReordering(layout=L, mapping=M_world), groups_new, overhead

    def _hierarchical_reordered(
        self,
        L: np.ndarray,
        block_bytes: float,
        kind: str,
        strat: OrderStrategy,
        intra: str,
        rng: RngLike,
    ) -> LatencyReport:
        G = len(self.groups_from_layout(L))
        leader_alg = (
            "rd" if block_bytes < self.rd_threshold and is_power_of_two(G) else "ring"
        )
        leader_pattern = "recursive-doubling" if leader_alg == "rd" else "ring"
        key = ("hier", leader_pattern, intra, self.intra_heuristic, _layout_key(L), kind)
        cached = self._reorder_cache.get(key)
        if cached is None:
            cached = self._hierarchical_reordering(L, kind, intra, leader_pattern, rng)
            self._reorder_cache[key] = cached
        reordering, groups_new, overhead = cached  # type: ignore[misc]

        alg = HierarchicalAllgather(groups_new, leader_alg=leader_alg, intra=intra)
        coll = self.engine.evaluate(
            alg.schedule(L.size), reordering.mapping, block_bytes
        ).total_seconds
        strategy_name, restore = self._restore(strat, alg, reordering, block_bytes)
        return LatencyReport(
            seconds=coll + restore,
            algorithm=alg.name,
            strategy=strategy_name,
            collective_seconds=coll,
            restore_seconds=restore,
            reorder_seconds=overhead,
            mapper=kind,
        )

    # ------------------------------------------------------------------
    def improvement_pct(
        self,
        layout: Sequence[int],
        block_bytes: float,
        kind: str = "heuristic",
        strategy: str = "initcomm",
        hierarchical: bool = False,
        intra: str = "binomial",
    ) -> float:
        """Percent latency improvement over the default mapping (>0 = faster)."""
        base = self.default_latency(layout, block_bytes, hierarchical, intra)
        tuned = self.reordered_latency(
            layout, block_bytes, kind, strategy, hierarchical, intra
        )
        if base.seconds == 0.0:
            return 0.0
        return 100.0 * (base.seconds - tuned.seconds) / base.seconds
