"""Broadcast evaluation pipeline (the §V claim, made measurable).

"Two of the proposed heuristics can also be used for MPI_Bcast and
MPI_Gather operations."  This evaluator gives MPI_Bcast the same
treatment :class:`~repro.evaluation.evaluator.AllgatherEvaluator` gives
MPI_Allgather:

* MVAPICH-style algorithm selection — binomial tree for small messages,
  scatter-allgather for large ones (Thakur et al. [17], paper §V-A3);
* rank reordering with the matching heuristic — BBMH for the binomial
  tree; for scatter-allgather the allgather phase dominates, so its
  pattern's heuristic (RDMH/RMH by size) is used, exactly as the paper
  argues when explaining why no dedicated scatter-allgather heuristic is
  needed;
* no order-restoration cost: a broadcast has no output vector to keep
  ordered (§V-B) — but the *root* must stay the root, which rank 0
  pinning guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.collectives.bcast_binomial import BinomialBroadcast
from repro.collectives.registry import DEFAULT_RD_THRESHOLD_BYTES
from repro.collectives.scatter_allgather import ScatterAllgatherBroadcast
from repro.collectives.schedule import CollectiveAlgorithm
from repro.mapping.reorder import reorder_ranks
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine
from repro.topology.cluster import ClusterTopology
from repro.util.bits import is_power_of_two
from repro.util.rng import RngLike, make_rng

__all__ = ["BcastEvaluator", "BcastReport", "select_bcast"]

#: Full-message size (bytes) below which the binomial tree is used.
DEFAULT_BCAST_TREE_THRESHOLD = 8192


def select_bcast(
    p: int,
    message_bytes: float,
    tree_threshold: float = DEFAULT_BCAST_TREE_THRESHOLD,
    rd_threshold: float = DEFAULT_RD_THRESHOLD_BYTES,
) -> CollectiveAlgorithm:
    """MVAPICH-style MPI_Bcast selection.

    Binomial tree below ``tree_threshold``; above it, scatter +
    allgather, whose allgather phase follows the usual per-slice rule
    (recursive doubling for medium slices on power-of-two communicators,
    ring for large ones — Thakur et al. [17]).
    """
    if p < 2:
        raise ValueError(f"need p >= 2, got {p}")
    if message_bytes < tree_threshold:
        return BinomialBroadcast()
    slice_bytes = message_bytes / p
    if slice_bytes < rd_threshold and is_power_of_two(p):
        return ScatterAllgatherBroadcast("rd")
    return ScatterAllgatherBroadcast("ring")


@dataclass
class BcastReport:
    """Latency of one broadcast configuration."""

    seconds: float
    algorithm: str
    reorder_seconds: float = 0.0
    mapper: str = "none"


class BcastEvaluator:
    """Prices MPI_Bcast on the simulated cluster under rank reordering."""

    def __init__(
        self,
        cluster: ClusterTopology,
        cost_model: Optional[CostModel] = None,
        tree_threshold: float = DEFAULT_BCAST_TREE_THRESHOLD,
        rd_threshold: float = DEFAULT_RD_THRESHOLD_BYTES,
        rng: RngLike = 0,
    ) -> None:
        self.cluster = cluster
        self.cost = cost_model if cost_model is not None else CostModel()
        self.engine = TimingEngine(cluster, self.cost)
        self.tree_threshold = tree_threshold
        self.rd_threshold = rd_threshold
        self.rng = make_rng(rng)
        # Implicit distances: per-row on demand + cache-keying fingerprint.
        self.distances = cluster.implicit_distances()
        self._D = None
        self._cache = {}

    @property
    def D(self):
        """Dense distance matrix (materialised lazily, for legacy callers)."""
        if self._D is None:
            self._D = self.cluster.distance_matrix()
        return self._D

    # ------------------------------------------------------------------
    def _pattern_for(self, alg: CollectiveAlgorithm) -> str:
        if isinstance(alg, BinomialBroadcast):
            return "binomial-bcast"
        # scatter-allgather: the allgather phase dominates (paper §V-A3),
        # so the heuristic follows its algorithm
        return "recursive-doubling" if alg.allgather_kind == "rd" else "ring"

    def _evaluate(self, alg: CollectiveAlgorithm, mapping, p: int, message_bytes: float) -> float:
        # schedule units are in "payload blocks": the binomial tree's unit
        # is the whole message; scatter-allgather's unit is one of p slices
        unit_bytes = (
            message_bytes if isinstance(alg, BinomialBroadcast) else message_bytes / p
        )
        return self.engine.evaluate(alg.schedule(p), mapping, unit_bytes).total_seconds

    # ------------------------------------------------------------------
    def default_latency(self, layout: Sequence[int], message_bytes: float) -> BcastReport:
        """Broadcast latency under the raw layout."""
        L = np.asarray(layout, dtype=np.int64)
        alg = select_bcast(L.size, message_bytes, self.tree_threshold, self.rd_threshold)
        return BcastReport(
            seconds=self._evaluate(alg, L, L.size, message_bytes),
            algorithm=alg.name,
        )

    def reordered_latency(
        self,
        layout: Sequence[int],
        message_bytes: float,
        kind: str = "heuristic",
        rng: Optional[RngLike] = None,
    ) -> BcastReport:
        """Broadcast latency under topology-aware rank reordering."""
        L = np.asarray(layout, dtype=np.int64)
        p = L.size
        alg = select_bcast(p, message_bytes, self.tree_threshold, self.rd_threshold)
        pattern = self._pattern_for(alg)
        if rng is None:
            # order-independent deterministic seed (see AllgatherEvaluator)
            import hashlib

            blob = pattern.encode() + L.tobytes() + kind.encode()
            rng = int.from_bytes(hashlib.sha1(blob).digest()[:4], "big")
        key = (pattern, L.tobytes(), kind)
        res = self._cache.get(key)
        if res is None:
            res = reorder_ranks(pattern, L, self.distances, kind=kind, rng=rng)
            self._cache[key] = res
        return BcastReport(
            seconds=self._evaluate(alg, res.mapping, p, message_bytes),
            algorithm=alg.name,
            reorder_seconds=res.total_seconds,
            mapper=res.mapper_name,
        )

    def improvement_pct(
        self, layout: Sequence[int], message_bytes: float, kind: str = "heuristic"
    ) -> float:
        """Percent latency improvement over the default mapping."""
        base = self.default_latency(layout, message_bytes)
        tuned = self.reordered_latency(layout, message_bytes, kind)
        return 100.0 * (base.seconds - tuned.seconds) / base.seconds
