"""Cost-model calibration probes (ping-pong style micro-measurements).

Derives the *effective* per-channel latency and bandwidth the timing
engine realises — the numbers an OSU latency/bandwidth suite would
measure on the simulated machine — by pricing single messages and
saturating streams over each channel class.  Used to verify that the
constants in :mod:`repro.simmpi.costmodel` produce the behaviour table
documented there, and handy when re-calibrating the model for a
different target system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.collectives.schedule import Stage
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine
from repro.topology.cluster import ClusterTopology

__all__ = ["ChannelProbe", "calibrate", "calibration_report"]


@dataclass(frozen=True)
class ChannelProbe:
    """Measured behaviour of one channel."""

    channel: str
    latency_us: float          # zero-byte one-way latency
    pair_bandwidth_gbs: float  # single-pair large-message bandwidth
    loaded_bandwidth_gbs: float  # per-pair bandwidth with the channel saturated


def _pair_for_channel(cluster: ClusterTopology, channel: str) -> Tuple[int, int]:
    """A representative (src, dst) core pair for each channel class."""
    cps = cluster.machine.cores_per_socket
    cpn = cluster.cores_per_node
    if channel == "smem":
        if cps < 2:
            raise ValueError("need >= 2 cores per socket for an smem probe")
        return 0, 1
    if channel == "qpi":
        if cluster.machine.n_sockets < 2:
            raise ValueError("need >= 2 sockets for a qpi probe")
        return 0, cps
    if channel == "internode":
        if cluster.n_nodes < 2:
            raise ValueError("need >= 2 nodes for an internode probe")
        return 0, cpn
    raise ValueError(f"unknown channel {channel!r}")


def _saturating_stage(cluster: ClusterTopology, channel: str) -> Stage:
    """A stage that saturates the channel's shared resource."""
    cps = cluster.machine.cores_per_socket
    cpn = cluster.cores_per_node
    if channel == "smem":
        # all pairs within socket 0
        src = np.arange(0, cps - cps % 2, 2)
        return Stage(src=src, dst=src + 1, units=np.ones(src.size))
    if channel == "qpi":
        src = np.arange(cps)
        return Stage(src=src, dst=src + cps, units=np.ones(cps))
    # internode: the whole node streams out through its HCA
    src = np.arange(cpn)
    return Stage(src=src, dst=src + cpn, units=np.ones(cpn))


def calibrate(
    cluster: ClusterTopology,
    cost_model: Optional[CostModel] = None,
    probe_bytes: float = 4 << 20,
) -> Dict[str, ChannelProbe]:
    """Probe every channel class of ``cluster``.

    ``latency_us`` uses a 1-byte message (the α side); bandwidths use
    ``probe_bytes`` messages (the β side), with and without channel load.
    """
    engine = TimingEngine(cluster, cost_model)
    ranks = np.arange(cluster.n_cores, dtype=np.int64)
    out: Dict[str, ChannelProbe] = {}
    for channel in ("smem", "qpi", "internode"):
        try:
            a, b = _pair_for_channel(cluster, channel)
        except ValueError:
            continue
        single = Stage(src=np.array([a]), dst=np.array([b]), units=np.ones(1))
        lat = engine.stage_time(single, ranks, 1.0).seconds
        t_big = engine.stage_time(single, ranks, probe_bytes).seconds
        pair_bw = probe_bytes / max(t_big - lat, 1e-12)
        loaded = _saturating_stage(cluster, channel)
        t_loaded = engine.stage_time(loaded, ranks, probe_bytes).seconds
        loaded_bw = probe_bytes / max(t_loaded - lat, 1e-12)
        out[channel] = ChannelProbe(
            channel=channel,
            latency_us=lat * 1e6,
            pair_bandwidth_gbs=pair_bw / 1e9,
            loaded_bandwidth_gbs=loaded_bw / 1e9,
        )
    return out


def calibration_report(probes: Dict[str, ChannelProbe]) -> str:
    """Format probes as the OSU-style table."""
    lines = [
        f"{'channel':>10} {'latency(us)':>12} {'pair BW(GB/s)':>14} {'loaded BW(GB/s)':>16}"
    ]
    for name, p in probes.items():
        lines.append(
            f"{name:>10} {p.latency_us:>12.2f} {p.pair_bandwidth_gbs:>14.2f} "
            f"{p.loaded_bandwidth_gbs:>16.2f}"
        )
    return "\n".join(lines)
