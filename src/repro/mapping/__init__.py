"""Topology-aware rank-reordering mappers — the paper's core contribution.

The four fine-tuned heuristics (RDMH, RMH, BBMH, BGMH), the Bruck
extension (BruckMH), the general-purpose baselines (Scotch-like recursive
bipartitioning, Hoefler-Snir greedy), initial layouts, pattern graphs,
quality metrics and the :func:`reorder_ranks` entry point.
"""

from repro.mapping.analysis import StageLocality, locality_table, stage_locality
from repro.mapping.base import (
    PLACEMENT_ENGINES,
    CorePool,
    GreedyPlacementMapper,
    HierarchicalFreePool,
    Mapper,
    PoolExhaustedError,
    as_distance_lookup,
    map_batch,
)
from repro.mapping.jitkernel import JitFreePool
from repro.mapping.cache import (
    MAPPING_CACHE_ENV,
    MappingCache,
    global_mapping_cache,
    mapping_cache_key,
)
from repro.mapping.rdmh import RDMH
from repro.mapping.rmh import RMH
from repro.mapping.bbmh import BBMH
from repro.mapping.bgmh import BGMH
from repro.mapping.bruckmh import BruckMH
from repro.mapping.scotch import ScotchLikeMapper
from repro.mapping.greedy import GreedyGraphMapper
from repro.mapping.patterns import PATTERN_BUILDERS, PatternGraph, build_pattern
from repro.mapping.initial import (
    INITIAL_LAYOUTS,
    block_bunch,
    block_scatter,
    cyclic_bunch,
    cyclic_scatter,
    make_layout,
)
from repro.mapping.metrics import (
    MappingQuality,
    dilation_stats,
    hop_bytes,
    quality,
    schedule_max_congestion,
)
from repro.mapping.optimal import MAX_OPTIMAL_P, OptimalMapper
from repro.mapping.refine import RefinementResult, SwapRefiner
from repro.mapping.reorder import (
    HEURISTICS,
    MAPPER_KINDS,
    ReorderResult,
    reorder_all,
    reorder_ranks,
)

__all__ = [
    "StageLocality",
    "stage_locality",
    "locality_table",
    "CorePool",
    "HierarchicalFreePool",
    "JitFreePool",
    "map_batch",
    "PoolExhaustedError",
    "Mapper",
    "GreedyPlacementMapper",
    "PLACEMENT_ENGINES",
    "as_distance_lookup",
    "MAPPING_CACHE_ENV",
    "MappingCache",
    "global_mapping_cache",
    "mapping_cache_key",
    "RDMH",
    "RMH",
    "BBMH",
    "BGMH",
    "BruckMH",
    "ScotchLikeMapper",
    "GreedyGraphMapper",
    "PatternGraph",
    "PATTERN_BUILDERS",
    "build_pattern",
    "INITIAL_LAYOUTS",
    "block_bunch",
    "block_scatter",
    "cyclic_bunch",
    "cyclic_scatter",
    "make_layout",
    "MappingQuality",
    "hop_bytes",
    "dilation_stats",
    "quality",
    "schedule_max_congestion",
    "OptimalMapper",
    "MAX_OPTIMAL_P",
    "SwapRefiner",
    "RefinementResult",
    "HEURISTICS",
    "MAPPER_KINDS",
    "ReorderResult",
    "reorder_ranks",
    "reorder_all",
]
