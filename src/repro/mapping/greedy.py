"""Hoefler-Snir-style greedy graph mapper (second general baseline).

The greedy construction heuristic of Hoefler & Snir [3], which the paper
cites as the rationale behind BGMH (§V-A4): repeatedly take the unmapped
rank with the heaviest connection to the already-mapped set and place it
on the free core minimising the weighted sum of distances to its mapped
neighbours.  Unlike BGMH it needs the explicit pattern graph and a global
argmax per step — pattern-agnostic but more expensive.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mapping.base import Mapper, as_distance_lookup
from repro.mapping.patterns import PatternGraph
from repro.util.rng import RngLike, make_rng

__all__ = ["GreedyGraphMapper"]


class GreedyGraphMapper(Mapper):
    """Greedy heaviest-connection graph mapping."""

    pattern = "*"
    name = "greedy-graph"

    def __init__(self, graph: PatternGraph) -> None:
        self.graph = graph

    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        L = np.asarray(layout, dtype=np.int64)
        if L.size != self.graph.p:
            raise ValueError(
                f"layout has {L.size} processes but the pattern graph has {self.graph.p}"
            )
        D = as_distance_lookup(D)  # dense matrix or implicit row backend
        p = L.size
        adj = self.graph.adjacency()
        generator = make_rng(rng)

        M = np.full(p, -1, dtype=np.int64)
        M[0] = L[0]
        mapped = np.zeros(p, dtype=bool)
        mapped[0] = True
        free = np.ones(p, dtype=bool)           # over layout positions
        core_pos = {int(c): i for i, c in enumerate(L)}
        free[core_pos[int(L[0])]] = False

        # weight of each unmapped rank towards the mapped set
        pull = np.zeros(p)
        for nb, w in adj[0]:
            pull[nb] += w

        for _ in range(p - 1):
            candidates = np.flatnonzero(~mapped)
            strongest = candidates[pull[candidates] == pull[candidates].max()]
            nxt = int(strongest[0])

            free_cores = L[free]
            score = np.zeros(free_cores.size)
            for nb, w in adj[nxt]:
                if mapped[nb]:
                    score += w * D[int(M[nb]), free_cores]
            best = free_cores[score == score.min()]
            core = int(best[generator.integers(best.size)])

            M[nxt] = core
            mapped[nxt] = True
            free[core_pos[core]] = False
            for nb, w in adj[nxt]:
                if not mapped[nb]:
                    pull[nb] += w
        return self._finish(M, L)
