"""BBMH — mapping heuristic for binomial broadcast (paper Algorithm 4).

Broadcast messages have a fixed size, so only the traversal order matters.
The paper evaluates a depth-first traversal that visits *smaller subtrees
first*: the number of concurrent pair-wise transfers doubles every
broadcast stage, so later-stage (small-subtree) edges are the
contention-prone ones and deserve the close placements.  Each node is
mapped as close as possible to its tree parent, and the recursion makes
every fresh placement the reference for its own subtree.

``traversal`` selects between the paper's pick and the two alternatives
discussed in §V-A3, for the ablation bench:

* ``"small-first"`` — the paper's choice (Algorithm 4 exactly);
* ``"large-first"`` — visit big subtrees first (the rationale of
  Subramoni et al. [10]: prioritise ranks many others depend on);
* ``"bft"`` — breadth-first by broadcast stage.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.collectives import binomial
from repro.mapping.base import GreedyPlacementMapper

__all__ = ["BBMH"]

_TRAVERSALS = ("small-first", "large-first", "bft")


class BBMH(GreedyPlacementMapper):
    """Binomial-broadcast mapping heuristic; valid for any process count."""

    pattern = "binomial-bcast"
    name = "bbmh"

    def __init__(
        self,
        traversal: str = "small-first",
        tie_break: str = "random",
        engine: str = "auto",
    ) -> None:
        if traversal not in _TRAVERSALS:
            raise ValueError(f"traversal must be one of {_TRAVERSALS}, got {traversal!r}")
        super().__init__(tie_break=tie_break, engine=engine)
        self.traversal = traversal

    def placements(self, p: int) -> Iterator[Tuple[int, int]]:
        """Tree edges in the configured traversal order (child, parent).

        Returns a materialised sequence rather than a nested generator: a
        ``yield from`` recursion would route every edge through a
        ceil(log2 p)-deep generator chain, which is measurable at p=4096.
        """
        if self.traversal == "bft":
            # Stage order: every child close to its parent, earliest
            # broadcast stages first.
            return iter(
                [
                    (child, par)
                    for edges in binomial.bcast_edges_by_stage(p)
                    for par, child in edges
                ]
            )

        # Depth-first recursion of Algorithm 4.  The tree height is
        # ceil(log2 p), so plain recursion is safe at any realistic p.
        reverse = self.traversal == "large-first"
        out: list = []

        def rec(ref_rank: int) -> None:
            kids = binomial.children(ref_rank, p)  # small subtrees first
            if reverse:
                kids = list(reversed(kids))
            for _bit, child in kids:
                out.append((child, ref_rank))
                rec(child)

        rec(0)
        return iter(out)
