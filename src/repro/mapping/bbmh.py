"""BBMH — mapping heuristic for binomial broadcast (paper Algorithm 4).

Broadcast messages have a fixed size, so only the traversal order matters.
The paper evaluates a depth-first traversal that visits *smaller subtrees
first*: the number of concurrent pair-wise transfers doubles every
broadcast stage, so later-stage (small-subtree) edges are the
contention-prone ones and deserve the close placements.  Each node is
mapped as close as possible to its tree parent, and the recursion makes
every fresh placement the reference for its own subtree.

``traversal`` selects between the paper's pick and the two alternatives
discussed in §V-A3, for the ablation bench:

* ``"small-first"`` — the paper's choice (Algorithm 4 exactly);
* ``"large-first"`` — visit big subtrees first (the rationale of
  Subramoni et al. [10]: prioritise ranks many others depend on);
* ``"bft"`` — breadth-first by broadcast stage.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives import binomial
from repro.mapping.base import Mapper
from repro.util.rng import RngLike

__all__ = ["BBMH"]

_TRAVERSALS = ("small-first", "large-first", "bft")


class BBMH(Mapper):
    """Binomial-broadcast mapping heuristic; valid for any process count."""

    pattern = "binomial-bcast"
    name = "bbmh"

    def __init__(self, traversal: str = "small-first", tie_break: str = "random") -> None:
        if traversal not in _TRAVERSALS:
            raise ValueError(f"traversal must be one of {_TRAVERSALS}, got {traversal!r}")
        self.traversal = traversal
        self.tie_break = tie_break

    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        L, M, pool = self._setup(layout, D, rng, self.tie_break)
        p = L.size

        if self.traversal == "bft":
            # Stage order: every child close to its parent, earliest
            # broadcast stages first.
            for edges in binomial.bcast_edges_by_stage(p):
                for par, child in edges:
                    target = pool.closest_free(int(M[par]))
                    pool.take(target)
                    M[child] = target
            return self._finish(M, L)

        # Depth-first recursion of Algorithm 4.  The tree height is
        # ceil(log2 p), so plain recursion is safe at any realistic p.
        reverse = self.traversal == "large-first"

        def rec(ref_rank: int) -> None:
            kids = binomial.children(ref_rank, p)  # small subtrees first
            if reverse:
                kids = list(reversed(kids))
            for _bit, child in kids:
                target = pool.closest_free(int(M[ref_rank]))
                pool.take(target)
                M[child] = target
                rec(child)

        rec(0)
        return self._finish(M, L)
