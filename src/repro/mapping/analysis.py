"""Stage-locality analysis of mappings.

The paper's heuristics are argued stage-wise — "RDMH gives a higher
priority to those ranks that communicate with the reference core in
further stages" — and their effect is exactly a redistribution of which
*channels* each stage's messages use.  This module makes that visible:
for a collective schedule and a mapping, it histograms every stage's
messages by channel class (smem / qpi / leaf / line / spine), so claims
like "RDMH makes the three largest recursive-doubling stages node-local"
become checkable assertions and readable tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.collectives.schedule import Schedule
from repro.topology.cluster import ClusterTopology

__all__ = ["StageLocality", "stage_locality", "locality_table"]

CHANNELS = ("smem", "qpi", "leaf", "line", "spine")


@dataclass(frozen=True)
class StageLocality:
    """Channel histogram of one stage's messages."""

    label: str
    counts: Dict[str, int]
    units: Dict[str, float]
    repeat: int

    @property
    def n_messages(self) -> int:
        return sum(self.counts.values())

    @property
    def intra_node_fraction(self) -> float:
        """Share of messages that never leave their node."""
        local = self.counts["smem"] + self.counts["qpi"]
        return local / self.n_messages if self.n_messages else 0.0

    @property
    def intra_node_unit_fraction(self) -> float:
        """Share of payload units that never leave their node."""
        total = sum(self.units.values())
        local = self.units["smem"] + self.units["qpi"]
        return local / total if total else 0.0


def stage_locality(
    schedule: Schedule, mapping: Sequence[int], cluster: ClusterTopology
) -> List[StageLocality]:
    """Per-stage channel histograms of ``schedule`` under ``mapping``."""
    M = np.asarray(mapping, dtype=np.int64)
    out: List[StageLocality] = []
    lines = cluster.network.config.lines_per_core
    for stage in schedule.stages:
        src = M[stage.src]
        dst = M[stage.dst]
        node_s, node_d = cluster.node_of(src), cluster.node_of(dst)
        sock_s, sock_d = cluster.socket_of(src), cluster.socket_of(dst)
        leaf_s, leaf_d = cluster.leaf_of_node(node_s), cluster.leaf_of_node(node_d)
        same_node = node_s == node_d
        categories = np.where(
            same_node & (sock_s == sock_d), 0,                       # smem
            np.where(same_node, 1,                                   # qpi
            np.where(leaf_s == leaf_d, 2,                            # leaf
            np.where(leaf_s % lines == leaf_d % lines, 3, 4)))       # line/spine
        )
        counts = {}
        units = {}
        for i, name in enumerate(CHANNELS):
            mask = categories == i
            counts[name] = int(mask.sum())
            units[name] = float(stage.units[mask].sum())
        out.append(
            StageLocality(label=stage.label, counts=counts, units=units, repeat=stage.repeat)
        )
    return out


def locality_table(
    schedule: Schedule, mapping: Sequence[int], cluster: ClusterTopology
) -> str:
    """Readable per-stage locality table."""
    rows = stage_locality(schedule, mapping, cluster)
    lines = [
        f"{'stage':>20} {'msgs':>6} " + " ".join(f"{c:>6}" for c in CHANNELS) + f" {'local%':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r.label:>20} {r.n_messages:>6} "
            + " ".join(f"{r.counts[c]:>6}" for c in CHANNELS)
            + f" {100 * r.intra_node_fraction:>6.1f}%"
        )
    return "\n".join(lines)
