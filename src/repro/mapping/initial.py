"""Initial process layouts (paper §VI-A).

Resource managers offer many ways to lay a job out; the paper evaluates
the four classic ones, combining an inter-node policy with an intra-node
policy:

* **block** — adjacent ranks fill a node before moving to the next;
* **cyclic** — adjacent ranks round-robin across nodes;
* **bunch** — within a node, consecutive ranks fill a socket first;
* **scatter** — within a node, consecutive ranks round-robin across
  sockets.

A layout is an array ``L`` with ``L[rank] = global core id``.  All four
use the same core set (the first ``ceil(p / cores_per_node)`` nodes,
fully subscribed when ``p`` divides evenly), so reordering between them
is purely a rank relabelling.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.topology.cluster import ClusterTopology

__all__ = [
    "block_bunch",
    "block_scatter",
    "cyclic_bunch",
    "cyclic_scatter",
    "INITIAL_LAYOUTS",
    "make_layout",
]


def _nodes_needed(cluster: ClusterTopology, p: int) -> int:
    if p < 1:
        raise ValueError(f"need p >= 1, got {p}")
    if p > cluster.n_cores:
        raise ValueError(f"p={p} exceeds the cluster's {cluster.n_cores} cores")
    return -(-p // cluster.cores_per_node)


def _local_core(cluster: ClusterTopology, j: np.ndarray, intra: str) -> np.ndarray:
    """Within-node core index of the ``j``-th rank placed on a node."""
    if intra == "bunch":
        return j
    # scatter: round-robin over sockets, then over cores within a socket
    ns = cluster.machine.n_sockets
    cps = cluster.machine.cores_per_socket
    return (j % ns) * cps + j // ns


def _layout(cluster: ClusterTopology, p: int, inter: str, intra: str) -> np.ndarray:
    n_nodes = _nodes_needed(cluster, p)
    r = np.arange(p, dtype=np.int64)
    if inter == "block":
        node = r // cluster.cores_per_node
        j = r % cluster.cores_per_node
    else:  # cyclic
        node = r % n_nodes
        j = r // n_nodes
    local = _local_core(cluster, j, intra)
    if np.any(local >= cluster.cores_per_node):  # pragma: no cover - guarded by p check
        raise ValueError("layout overflows a node")
    return node * cluster.cores_per_node + local


def block_bunch(cluster: ClusterTopology, p: int) -> np.ndarray:
    """Fill nodes in rank order, sockets first within each node."""
    return _layout(cluster, p, "block", "bunch")


def block_scatter(cluster: ClusterTopology, p: int) -> np.ndarray:
    """Fill nodes in rank order, round-robin over sockets within a node."""
    return _layout(cluster, p, "block", "scatter")


def cyclic_bunch(cluster: ClusterTopology, p: int) -> np.ndarray:
    """Round-robin ranks across nodes, sockets filled first within a node."""
    return _layout(cluster, p, "cyclic", "bunch")


def cyclic_scatter(cluster: ClusterTopology, p: int) -> np.ndarray:
    """Round-robin across nodes and across sockets within each node."""
    return _layout(cluster, p, "cyclic", "scatter")


INITIAL_LAYOUTS: Dict[str, Callable[[ClusterTopology, int], np.ndarray]] = {
    "block-bunch": block_bunch,
    "block-scatter": block_scatter,
    "cyclic-bunch": cyclic_bunch,
    "cyclic-scatter": cyclic_scatter,
}


def make_layout(name: str, cluster: ClusterTopology, p: int) -> np.ndarray:
    """Build a named layout."""
    try:
        fn = INITIAL_LAYOUTS[name]
    except KeyError:
        raise KeyError(f"unknown layout {name!r}; known: {sorted(INITIAL_LAYOUTS)}")
    return fn(cluster, p)
