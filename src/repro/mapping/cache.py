"""Content-addressed mapping cache (in-memory LRU + optional disk tier).

"The whole rank reordering process happens only once at run-time" — but
sweeps, fault-recovery drills and repeated evaluator runs recompute the
same reordering thousands of times.  Every mapping this repo produces is
a pure function of

* the **topology fingerprint** (structural parameters + link weights,
  :meth:`~repro.topology.cluster.ClusterTopology.fingerprint`),
* the **initial layout** (the exact core array),
* the **mapper identity** (pattern, kind, constructor kwargs), and
* the **integer rng seed**,

so a sha256 over those fields addresses the result exactly.  The cache
stores entries under that key in a bounded in-memory LRU and, when a
directory is configured, as one JSON file per key written through
:mod:`repro.util.atomicio` (crash-safe, and warm across processes — the
parallel sweep driver's workers inherit the directory via the
``REPRO_MAPPING_CACHE`` environment variable).

Two deliberate exclusions from the key:

* ``engine`` — the naive, vectorised and jit executors are bit-identical
  by contract (enforced by the placement-identity tests and the CCH003
  audit probe; the jit tier replays tie-break draws through a PCG64
  replica, so even rng streams agree), so their results are
  interchangeable;
* Generator rng objects — only plain integer seeds are reproducible
  content, so :func:`repro.mapping.reorder.reorder_ranks` bypasses the
  cache entirely for live generators.

Entries are validated on the way out (the mapping must be a permutation
of the cached layout); anything torn or stale is treated as a miss and
rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.util.atomicio import atomic_write_json

__all__ = [
    "MAPPING_CACHE_ENV",
    "MappingCache",
    "global_mapping_cache",
    "mapping_cache_key",
]

#: Environment variable naming the on-disk cache directory.  Unset or
#: empty means the process-global cache is memory-only.
MAPPING_CACHE_ENV = "REPRO_MAPPING_CACHE"


def _normalise(value: Any) -> Any:
    """JSON-stable view of a mapper kwarg value."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    return value


def mapping_cache_key(
    fingerprint: str,
    pattern: str,
    kind: str,
    layout: np.ndarray,
    seed: int,
    mapper_kwargs: Optional[Mapping[str, Any]] = None,
) -> str:
    """Content address of one mapping computation.

    ``engine`` is dropped from ``mapper_kwargs``: every executor tier
    (naive, vectorized, jit) produces bit-identical placements, so the
    engine choice is not content.
    """
    kwargs = {
        k: _normalise(v)
        for k, v in sorted((mapper_kwargs or {}).items())
        if k != "engine"
    }
    payload = json.dumps(
        {
            "fingerprint": fingerprint,
            "pattern": pattern,
            "kind": kind,
            "seed": int(seed),
            "kwargs": kwargs,
        },
        sort_keys=True,
    ).encode()
    h = hashlib.sha256(payload)
    h.update(np.ascontiguousarray(np.asarray(layout, dtype=np.int64)).tobytes())
    return h.hexdigest()


class MappingCache:
    """Bounded in-memory LRU over mapping entries, with a disk tier.

    Parameters
    ----------
    directory:
        Optional on-disk tier: one ``<key>.json`` file per entry,
        written atomically.  Created on first write.
    max_memory_entries:
        In-memory LRU bound; the disk tier is unbounded.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 256,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError(f"max_memory_entries must be >= 1, got {max_memory_entries}")
        self.directory = Path(directory) if directory else None
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        # int64 (layout, mapping) views of each memory entry, built once
        # at admission so repeat hits skip list round-trips entirely.
        self._arrays: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        # Guards _memory/_arrays: the serve daemon answers warm hits from
        # its event loop thread while the pipeline lane admits entries.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    @staticmethod
    def _valid(entry: Any) -> bool:
        """True iff ``entry`` looks like an intact mapping record."""
        if not isinstance(entry, dict):
            return False
        mapping = entry.get("mapping")
        layout = entry.get("layout")
        if not isinstance(mapping, list) or not isinstance(layout, list):
            return False
        return len(mapping) == len(layout) and sorted(mapping) == sorted(layout)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Entry for ``key``, or None; corrupt entries count as misses."""
        hit = self.get_arrays(key)
        return hit[0] if hit is not None else None

    def get_arrays(
        self, key: str
    ) -> Optional[Tuple[Dict[str, Any], np.ndarray, np.ndarray]]:
        """Hit as ``(entry, layout, mapping)`` with int64 array views.

        The arrays are the cache's own (built once at admission): callers
        must treat them as read-only and copy before mutating.  This is
        the hot serving path — a warm hit does no per-element work.
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return (entry,) + self._arrays[key]
        path = self._path_for(key)
        if path is not None and path.exists():
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                entry = None
            if self._valid(entry):
                with self._lock:
                    self._remember(key, entry)
                    self.hits += 1
                    return (entry,) + self._arrays[key]
        self.misses += 1
        return None

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Store ``entry`` in memory and (when configured) on disk."""
        if not self._valid(entry):
            raise ValueError("refusing to cache an invalid mapping entry")
        with self._lock:
            self._remember(key, entry)
        path = self._path_for(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_json(path, entry)

    def peek(self, key: str) -> bool:
        """True iff ``key`` is resident in the memory tier.

        No counter updates, no LRU movement, no disk probe — this is the
        serve daemon's warm-test (safe to call from a thread other than
        the one mutating the cache, since it is one dict lookup).
        """
        return key in self._memory

    def _remember(self, key: str, entry: Dict[str, Any]) -> None:
        self._memory[key] = entry
        self._arrays[key] = (
            np.asarray(entry["layout"], dtype=np.int64),
            np.asarray(entry["mapping"], dtype=np.int64),
        )
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            gone, _ = self._memory.popitem(last=False)
            self._arrays.pop(gone, None)
            self.evictions += 1

    def clear(self) -> None:
        """Drop the in-memory tier (disk files are left in place)."""
        with self._lock:
            self._memory.clear()
            self._arrays.clear()

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot (what the daemon's ``stats`` op reports)."""
        return {
            "entries": len(self._memory),
            "max_memory_entries": self.max_memory_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "directory": str(self.directory) if self.directory else None,
        }

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.directory) if self.directory else "memory-only"
        return (
            f"MappingCache({where}, entries={len(self._memory)}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


_GLOBAL_CACHE: Optional[MappingCache] = None
_GLOBAL_CACHE_DIR: Optional[str] = None


def global_mapping_cache() -> MappingCache:
    """The process-wide cache, honouring :data:`MAPPING_CACHE_ENV`.

    Rebuilt whenever the environment variable changes, so worker
    processes (and tests) that set or clear it get a cache matching the
    current configuration rather than a stale singleton.
    """
    global _GLOBAL_CACHE, _GLOBAL_CACHE_DIR
    directory = os.environ.get(MAPPING_CACHE_ENV) or None
    if _GLOBAL_CACHE is None or directory != _GLOBAL_CACHE_DIR:
        _GLOBAL_CACHE = MappingCache(directory=directory)
        _GLOBAL_CACHE_DIR = directory
    return _GLOBAL_CACHE
