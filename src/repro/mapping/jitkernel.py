"""Compiled placement tier: the whole program walk in one jitted kernel.

:class:`~repro.mapping.base.HierarchicalFreePool` already resolves each
closest-free query in O(group), but ``execute_program`` still runs a
Python-level loop — one interpreter round trip per placement, which is
the dominant cost at p ≥ 8192.  This module moves the *entire* program
walk (level pick, candidate scan, tie-break draw, free-count updates)
into a single numba-jitted kernel over flat CSR arrays.

The hard part is the paper's random tie-breaking: the reference executor
draws ``rng.integers(k)`` from a numpy ``Generator`` per query, and the
engines are only interchangeable (and the mapping cache's ``engine``
key-exclusion only sound) if the compiled tier consumes the *same rng
stream* — placements and final ``Generator`` state bit-identical.  A
numba kernel cannot call back into numpy's ``Generator``, so the kernel
embeds a bit-exact replica of the PCG64 bounded-integer path numpy uses
for ``integers(k)``:

* the PCG64 XSL-RR step (128-bit LCG via 64-bit limb arithmetic, output
  rotated from the *new* state);
* numpy's buffered 32-bit view — ``next32`` returns the low half of a
  64-bit draw and buffers the high half in the ``has_uint32`` /
  ``uinteger`` fields of the bit-generator state;
* Lemire rejection with threshold ``(2**32 - 1 - rng) % (rng + 1)``,
  exactly `random_bounded_uint32` in numpy's distributions.c (ranges
  below 2**32, which covers every candidate count a pool can produce);
* ``integers(1)`` consumes no state, matching the reference executor's
  single-candidate skip.

The replica exists twice: a python-int twin (:func:`run_program_py`,
exercised by the no-numba test environments and pinned bit-identical to
the naive engine) and the numba kernel compiled from the same logic in
64-bit-limb form.  The Generator state is read before the kernel and
written back after, so a caller interleaving jitted and interpreted
draws sees one uninterrupted stream.

Without numba (:data:`repro.util.jit.HAS_NUMBA` false), the product
path falls back to the vectorised driver unchanged — ``engine='jit'``
then *is* the vectorized tier; the python kernel is kept for tests
(``force_python_kernel=True``), not speed.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.mapping.base import HierarchicalFreePool, PoolExhaustedError
from repro.util.jit import HAS_NUMBA, maybe_njit

__all__ = [
    "JitFreePool",
    "PoolArrays",
    "pool_arrays",
    "pcg64_state_words",
    "write_pcg64_state_words",
    "is_pcg64_generator",
    "run_program_py",
]

_M64 = (1 << 64) - 1
_M32 = 0xFFFFFFFF
#: The default PCG64 multiplier (pcg64_const in numpy's pcg64.h).
_PCG_MUL_HI = 0x2360ED051FC65DA4
_PCG_MUL_LO = 0x4385DF649FCCF645

# uint64-typed constants for the numba kernel: inside an njit'ed body a
# mixed uint64/int64 operation promotes to float64 (numpy rules), so
# every literal the kernel touches must already be a uint64 scalar.
_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U32 = np.uint64(32)
_U58 = np.uint64(58)
_U64 = np.uint64(64)
_UM32 = np.uint64(_M32)
_UMUL_HI = np.uint64(_PCG_MUL_HI)
_UMUL_LO = np.uint64(_PCG_MUL_LO)


# ----------------------------------------------------------------------
# Generator state I/O (python side)
# ----------------------------------------------------------------------
def is_pcg64_generator(rng) -> bool:
    """True iff ``rng`` is a Generator over the default PCG64 stream.

    The replica reproduces exactly numpy's PCG64 (XSL-RR) bounded path;
    other bit generators (PCG64DXSM, MT19937, ...) must keep using the
    interpreted executors.
    """
    bg = getattr(rng, "bit_generator", None)
    return type(bg).__name__ == "PCG64"


def pcg64_state_words(rng) -> np.ndarray:
    """Pack a PCG64 Generator's state into 6 uint64 kernel words.

    Layout: ``[state_hi, state_lo, inc_hi, inc_lo, has_uint32,
    uinteger]`` — the 128-bit LCG state and increment split into 64-bit
    limbs plus numpy's buffered-half-draw fields.
    """
    st = rng.bit_generator.state
    s = st["state"]["state"]
    inc = st["state"]["inc"]
    return np.array(
        [
            s >> 64,
            s & _M64,
            inc >> 64,
            inc & _M64,
            int(st["has_uint32"]),
            int(st["uinteger"]),
        ],
        dtype=np.uint64,
    )


def write_pcg64_state_words(rng, words: np.ndarray) -> None:
    """Write kernel words back into the Generator (inverse of the pack)."""
    rng.bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {
            "state": (int(words[0]) << 64) | int(words[1]),
            "inc": (int(words[2]) << 64) | int(words[3]),
        },
        "has_uint32": int(words[4]),
        "uinteger": int(words[5]),
    }


# ----------------------------------------------------------------------
# the rng replica — numba form (uint64 limbs, wrapping arithmetic)
# ----------------------------------------------------------------------
@maybe_njit(cache=True)
def _nb_next32(w):  # pragma: no cover - compiled; python twin is tested
    """numpy's buffered ``next_uint32`` over the packed state words."""
    if w[4] != _U0:
        w[4] = _U0
        return w[5]
    # state * PCG_MUL mod 2**128 via 64-bit limbs: full 64x64->128 of the
    # low limbs, wrapping cross terms for the high limb.
    sl = w[1]
    al = sl & _UM32
    ah = sl >> _U32
    bl = _UMUL_LO & _UM32
    bh = _UMUL_LO >> _U32
    ll = al * bl
    u = ah * bl + (ll >> _U32)
    v = al * bh + (u & _UM32)
    lo = (v << _U32) | (ll & _UM32)
    hi = ah * bh + (u >> _U32) + (v >> _U32)
    new_hi = hi + w[0] * _UMUL_LO + sl * _UMUL_HI
    # ... + inc mod 2**128
    new_lo = lo + w[3]
    if new_lo < w[3]:
        new_hi = new_hi + _U1
    new_hi = new_hi + w[2]
    w[0] = new_hi
    w[1] = new_lo
    # XSL-RR output on the *new* state
    xored = new_hi ^ new_lo
    rot = new_hi >> _U58
    if rot == _U0:
        out = xored
    else:
        out = (xored >> rot) | (xored << (_U64 - rot))
    w[4] = _U1
    w[5] = out >> _U32
    return out & _UM32


@maybe_njit(cache=True)
def _nb_bounded32(w, rng):  # pragma: no cover - compiled; twin is tested
    """numpy's Lemire-rejection ``integers(rng + 1)`` draw (rng >= 1)."""
    if rng == _UM32:
        return _nb_next32(w)
    rng_excl = rng + _U1
    m = _nb_next32(w) * rng_excl
    leftover = m & _UM32
    if leftover < rng_excl:
        threshold = (_UM32 - rng) % rng_excl
        while leftover < threshold:
            m = _nb_next32(w) * rng_excl
            leftover = m & _UM32
    return m >> _U32


@maybe_njit(cache=True)
def _nb_run_program(  # pragma: no cover - compiled; python twin is tested
    new_ranks,
    ref_ranks,
    M,
    cores,
    pos_of_core,
    gs_a,
    nd_a,
    lf_a,
    ln_a,
    sock_members,
    sock_indptr,
    node_members,
    node_indptr,
    leaf_members,
    leaf_indptr,
    line_members,
    line_indptr,
    all_members,
    free,
    free_sock,
    free_node,
    free_leaf,
    free_line,
    total_free,
    first,
    w,
    cpn,
    cps,
    nspn,
    npl,
    nlines,
):
    """Whole placement-program walk; mirror of :func:`run_program_py`.

    Returns ``(code, total_free, fail_step)`` with code 0 on success,
    1 on pool exhaustion, 2 on an internal candidate-count mismatch.
    """
    n_pos = pos_of_core.shape[0]
    for t in range(new_ranks.shape[0]):
        if total_free == 0:
            return 1, total_free, t
        ref_core = M[ref_ranks[t]]
        pos = pos_of_core[ref_core] if ref_core < n_pos else -1
        if pos >= 0 and free[pos]:
            # The reference itself is free: distance 0 beats every level,
            # and the reference executor's integers(1) draw consumes no
            # rng state, so no draw happens here either.
            pick = pos
        else:
            if pos >= 0:
                gs = gs_a[pos]
                nd = nd_a[pos]
                lf = lf_a[pos]
                ln = ln_a[pos]
            else:
                node = ref_core // cpn
                gs = node * nspn + (ref_core % cpn) // cps
                nd = node
                lf = node // npl
                ln = lf % nlines
            k = free_sock[gs]
            if k > 0:
                mem = sock_members
                lo_i = sock_indptr[gs]
                hi_i = sock_indptr[gs + 1]
            else:
                k = free_node[nd]
                if k > 0:
                    mem = node_members
                    lo_i = node_indptr[nd]
                    hi_i = node_indptr[nd + 1]
                else:
                    k = free_leaf[lf]
                    if k > 0:
                        mem = leaf_members
                        lo_i = leaf_indptr[lf]
                        hi_i = leaf_indptr[lf + 1]
                    else:
                        k = free_line[ln]
                        if k > 0:
                            mem = line_members
                            lo_i = line_indptr[ln]
                            hi_i = line_indptr[ln + 1]
                        else:
                            k = total_free
                            mem = all_members
                            lo_i = 0
                            hi_i = all_members.shape[0]
            # k is the candidate count the reference enumerates, so the
            # draw can happen before any candidate is materialised.
            # k == 1 skips the draw (integers(1) consumes no state).
            if first or k == 1:
                j = 0
            else:
                j = np.int64(_nb_bounded32(w, np.uint64(k - 1)))
            pick = -1
            cnt = 0
            for ii in range(lo_i, hi_i):
                mpos = mem[ii]
                if free[mpos]:
                    if cnt == j:
                        pick = mpos
                        break
                    cnt += 1
            if pick < 0:
                return 2, total_free, t
        free[pick] = False
        free_sock[gs_a[pick]] -= 1
        free_node[nd_a[pick]] -= 1
        free_leaf[lf_a[pick]] -= 1
        free_line[ln_a[pick]] -= 1
        total_free -= 1
        M[new_ranks[t]] = cores[pick]
    return 0, total_free, -1


# ----------------------------------------------------------------------
# the rng replica — python-int twin (fallback + test oracle)
# ----------------------------------------------------------------------
def _py_next32(w: list) -> int:
    """Python-int twin of :func:`_nb_next32` (same word layout)."""
    if w[4]:
        w[4] = 0
        return w[5]
    sl = w[1]
    lo = (sl * _PCG_MUL_LO) & _M64
    hi = (sl * _PCG_MUL_LO) >> 64
    new_hi = (hi + w[0] * _PCG_MUL_LO + sl * _PCG_MUL_HI) & _M64
    new_lo = (lo + w[3]) & _M64
    if new_lo < w[3]:
        new_hi += 1
    new_hi = (new_hi + w[2]) & _M64
    w[0] = new_hi
    w[1] = new_lo
    xored = new_hi ^ new_lo
    rot = new_hi >> 58
    out = ((xored >> rot) | (xored << (64 - rot))) & _M64
    w[4] = 1
    w[5] = out >> 32
    return out & _M32


def _py_bounded32(w: list, rng: int) -> int:
    """Python-int twin of :func:`_nb_bounded32` (``rng >= 1``)."""
    if rng == _M32:
        return _py_next32(w)
    rng_excl = rng + 1
    m = _py_next32(w) * rng_excl
    leftover = m & _M32
    if leftover < rng_excl:
        threshold = (_M32 - rng) % rng_excl
        while leftover < threshold:
            m = _py_next32(w) * rng_excl
            leftover = m & _M32
    return m >> 32


def run_program_py(
    new_ranks,
    ref_ranks,
    M,
    cores,
    pos_of_core,
    gs_a,
    nd_a,
    lf_a,
    ln_a,
    sock_members,
    sock_indptr,
    node_members,
    node_indptr,
    leaf_members,
    leaf_indptr,
    line_members,
    line_indptr,
    all_members,
    free,
    free_sock,
    free_node,
    free_leaf,
    free_line,
    total_free,
    first,
    w,
    cpn,
    cps,
    nspn,
    npl,
    nlines,
) -> Tuple[int, int, int]:
    """Pure-python twin of :func:`_nb_run_program` (same arrays, in place).

    This is the reference the compiled kernel is held to: the no-numba
    test environments pin it bit-identical to the naive engine, and the
    jit CI job pins the compiled kernel to the same tests.  Runs on
    python ints internally (numpy scalar arithmetic would silently
    promote the uint64 words to float64).
    """
    new_l = new_ranks.tolist()
    ref_l = ref_ranks.tolist()
    M_l = M.tolist()
    cores_l = cores.tolist()
    pos_l = pos_of_core.tolist()
    gs_l, nd_l = gs_a.tolist(), nd_a.tolist()
    lf_l, ln_l = lf_a.tolist(), ln_a.tolist()
    mem_by_level = (
        (sock_members.tolist(), sock_indptr.tolist()),
        (node_members.tolist(), node_indptr.tolist()),
        (leaf_members.tolist(), leaf_indptr.tolist()),
        (line_members.tolist(), line_indptr.tolist()),
    )
    all_l = all_members.tolist()
    free_l = free.tolist()
    fs, fn = free_sock.tolist(), free_node.tolist()
    fl, fli = free_leaf.tolist(), free_line.tolist()
    w_l = [int(x) for x in w]
    total = int(total_free)
    n_pos = len(pos_l)
    code, fail_t = 0, -1
    for t in range(len(new_l)):
        if total == 0:
            code, fail_t = 1, t
            break
        ref_core = M_l[ref_l[t]]
        pos = pos_l[ref_core] if ref_core < n_pos else -1
        if pos >= 0 and free_l[pos]:
            pick = pos
        else:
            if pos >= 0:
                gs, nd, lf, ln = gs_l[pos], nd_l[pos], lf_l[pos], ln_l[pos]
            else:
                node = ref_core // cpn
                gs = node * nspn + (ref_core % cpn) // cps
                nd, lf = node, node // npl
                ln = lf % nlines
            for level, g in enumerate((gs, nd, lf, ln)):
                k = (fs, fn, fl, fli)[level][g]
                if k > 0:
                    mem, indptr = mem_by_level[level]
                    lo_i, hi_i = indptr[g], indptr[g + 1]
                    break
            else:
                k = total
                mem, lo_i, hi_i = all_l, 0, len(all_l)
            j = 0 if (first or k == 1) else _py_bounded32(w_l, k - 1)
            pick = -1
            cnt = 0
            for ii in range(lo_i, hi_i):
                mpos = mem[ii]
                if free_l[mpos]:
                    if cnt == j:
                        pick = mpos
                        break
                    cnt += 1
            if pick < 0:
                code, fail_t = 2, t
                break
        free_l[pick] = False
        fs[gs_l[pick]] -= 1
        fn[nd_l[pick]] -= 1
        fl[lf_l[pick]] -= 1
        fli[ln_l[pick]] -= 1
        total -= 1
        M_l[new_l[t]] = cores_l[pick]
    M[:] = M_l
    free[:] = free_l
    free_sock[:] = fs
    free_node[:] = fn
    free_leaf[:] = fl
    free_line[:] = fli
    w[:] = np.array(w_l, dtype=np.uint64)
    return code, total, fail_t


# ----------------------------------------------------------------------
# flat pool arrays (derived from the shared _PoolStructure, cached on it)
# ----------------------------------------------------------------------
class PoolArrays:
    """Flat CSR mirror of a :class:`_PoolStructure` for the kernels.

    Immutable like the structure it mirrors (free state is passed into
    the kernel separately), so one instance is shared by every pool over
    the same (backend, core set) via the structure LRU.
    """

    __slots__ = (
        "pos_of_core",
        "gs",
        "nd",
        "lf",
        "ln",
        "sock_members",
        "sock_indptr",
        "node_members",
        "node_indptr",
        "leaf_members",
        "leaf_indptr",
        "line_members",
        "line_indptr",
        "all_members",
    )

    def __init__(self, st, backend) -> None:
        cores = st.cores
        n = cores.size
        n_total = int(backend.shape[0])
        self.pos_of_core = np.full(n_total, -1, dtype=np.int64)
        self.pos_of_core[cores] = np.arange(n, dtype=np.int64)
        coords = backend.coords(cores)
        self.gs = np.ascontiguousarray(coords.gsock)
        self.nd = np.ascontiguousarray(coords.node)
        self.lf = np.ascontiguousarray(coords.leaf)
        self.ln = np.ascontiguousarray(coords.line)
        self.sock_members, self.sock_indptr = self._csr(st.by_sock, len(st.sock_sizes), n)
        self.node_members, self.node_indptr = self._csr(st.by_node, len(st.node_sizes), n)
        self.leaf_members, self.leaf_indptr = self._csr(st.by_leaf, len(st.leaf_sizes), n)
        self.line_members, self.line_indptr = self._csr(st.by_line, len(st.line_sizes), n)
        self.all_members = np.arange(n, dtype=np.int64)

    @staticmethod
    def _csr(groups: Dict[int, list], bound: int, n: int):
        """Members-per-group as (values, indptr) indexed by global group id."""
        counts = np.zeros(bound, dtype=np.int64)
        for g, m in groups.items():
            counts[g] = len(m)
        indptr = np.zeros(bound + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        members = np.empty(n, dtype=np.int64)
        for g, m in groups.items():
            i0 = indptr[g]
            members[i0 : i0 + len(m)] = m
        return members, indptr


def pool_arrays(st, backend) -> PoolArrays:
    """The structure's :class:`PoolArrays`, built lazily and cached on it."""
    pa = st.jit_arrays
    if pa is None:
        pa = PoolArrays(st, backend)
        st.jit_arrays = pa
    return pa


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class JitFreePool(HierarchicalFreePool):
    """:class:`HierarchicalFreePool` whose program walk runs compiled.

    ``execute_program`` dispatches to the numba kernel when available
    and the tie-break rng (if any) is the default PCG64 stream; the
    Generator state is packed into kernel words before the walk and
    written back after, so placements *and* the rng stream are
    bit-identical to both interpreted executors.  Everything else
    (per-query ``closest_free``/``place_closest``, bookkeeping) is
    inherited.

    Without numba the walk falls through to the vectorised parent loop —
    ``engine='jit'`` degrades to the vectorized tier, never below it.
    ``force_python_kernel=True`` routes the walk through the python twin
    of the kernel instead (slow; exists so no-numba environments still
    exercise the kernel algorithm and the rng replica end to end).
    """

    def __init__(
        self,
        backend,
        cores,
        rng=0,
        tie_break: str = "random",
        force_python_kernel: bool = False,
    ) -> None:
        super().__init__(backend, cores, rng=rng, tie_break=tie_break)
        self._force_python_kernel = bool(force_python_kernel)

    @property
    def kernel_mode(self) -> Optional[str]:
        """``'numba'``, ``'python'`` or None (= interpreted fallback)."""
        if self.tie_break == "random" and not is_pcg64_generator(self.rng):
            return None
        if HAS_NUMBA:
            return "numba"
        if self._force_python_kernel:
            return "python"
        return None

    def execute_program(self, program: Iterator[Tuple[int, int]], M: list) -> None:
        mode = self.kernel_mode
        if mode is None:
            return super().execute_program(program, M)
        prog = np.asarray(list(program), dtype=np.int64)
        if prog.size == 0:
            return
        new_ranks = np.ascontiguousarray(prog[:, 0])
        ref_ranks = np.ascontiguousarray(prog[:, 1])
        pa = pool_arrays(self._st, self.D)
        # Mutable kernel state, seeded from the pool's current state (the
        # executor contract allows takes before/between program runs).
        free = np.array(self._free_l, dtype=np.bool_)
        free_sock = np.array(self._free_sock, dtype=np.int64)
        free_node = np.array(self._free_node, dtype=np.int64)
        free_leaf = np.array(self._free_leaf, dtype=np.int64)
        free_line = np.array(self._free_line, dtype=np.int64)
        M_arr = np.asarray(M, dtype=np.int64)
        use_rng = self.tie_break == "random"
        words = pcg64_state_words(self.rng) if use_rng else np.zeros(6, dtype=np.uint64)
        run = _nb_run_program if mode == "numba" else run_program_py
        code, total_free, fail_t = run(
            new_ranks,
            ref_ranks,
            M_arr,
            self._st.cores,
            pa.pos_of_core,
            pa.gs,
            pa.nd,
            pa.lf,
            pa.ln,
            pa.sock_members,
            pa.sock_indptr,
            pa.node_members,
            pa.node_indptr,
            pa.leaf_members,
            pa.leaf_indptr,
            pa.line_members,
            pa.line_indptr,
            pa.all_members,
            free,
            free_sock,
            free_node,
            free_leaf,
            free_line,
            self._total_free,
            self._first,
            words,
            self._cpn,
            self._cps,
            self._nspn,
            self._npl,
            self._nlines,
        )
        # Sync pool + caller state (also on failure: partial placements,
        # takes and rng draws all happened, exactly as in the reference).
        M[:] = M_arr.tolist()
        self._free_l = free.tolist()
        self._free_np = free
        self._dirty.clear()
        self._free_sock = free_sock.tolist()
        self._free_node = free_node.tolist()
        self._free_leaf = free_leaf.tolist()
        self._free_line = free_line.tolist()
        self._total_free = int(total_free)
        if use_rng:
            write_pcg64_state_words(self.rng, words)
        if code == 1:
            ref = M[int(ref_ranks[fail_t])]
            raise PoolExhaustedError(
                f"no free cores left in the pool ({self.cores.size} cores, all "
                f"taken); cannot place another process near core {ref}"
            )
        if code == 2:  # pragma: no cover - internal invariant
            raise RuntimeError(
                "placement kernel found fewer free candidates than the group "
                f"free-count at step {int(fail_t)} — pool bookkeeping is corrupt"
            )
