"""Mapping foundations: free-core pools, the mapper interface, the driver.

All five paper heuristics are instances of one greedy scheme (paper
Algorithm 1): fix rank 0 on its current core, then repeatedly pick the
next process by a pattern-specific priority and place it on the *free core
closest to a reference core*.  Two layers fall out of that observation:

* each heuristic's *placement program* — the ``(new_rank, ref_rank)``
  sequence, which depends only on ``p`` and the heuristic's parameters,
  never on distances or the rng (:meth:`GreedyPlacementMapper.placements`);
* one shared *executor* that walks the program against a free-core pool.

Two pool implementations serve the ``find_closest_to`` step, both
including the paper's random tie-breaking with identical rng-stream
consumption, so their placements are bit-identical:

* :class:`CorePool` — the reference executor: masked argmin over
  pool-local distance rows (dense matrix or on-demand implicit rows);
* :class:`HierarchicalFreePool` — the vectorised driver: when distances
  come from an :class:`~repro.topology.implicit.ImplicitDistances`
  backend with a strict ladder, the closest free core is found from
  hierarchy *coordinates* alone — O(1) free-count bookkeeping per level
  plus one gather over the winning annulus — no distance row is ever
  materialised.
"""

from __future__ import annotations

import time
import weakref
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import RngLike, make_rng

__all__ = [
    "PoolExhaustedError",
    "CorePool",
    "HierarchicalFreePool",
    "Mapper",
    "GreedyPlacementMapper",
    "PLACEMENT_ENGINES",
    "as_distance_lookup",
    "map_batch",
]

#: Executor choices for the program-based heuristics.  ``"auto"`` picks
#: the best supported driver for the backend: the compiled jit tier
#: (which itself degrades to the vectorised loop when numba is absent)
#: whenever the backend supports vectorised placement, else the naive
#: reference.  All engines are bit-identical, including the rng stream.
PLACEMENT_ENGINES = ("auto", "naive", "vectorized", "jit")


class PoolExhaustedError(RuntimeError):
    """Raised when a closest-free query runs against an empty pool.

    Subclasses :class:`RuntimeError` so legacy ``except RuntimeError``
    call sites (and tests matching the original message) keep working.
    """


def as_distance_lookup(D):
    """Return an object supporting ``D[i, cols]`` core-distance indexing.

    Dense arrays pass through ``np.asarray``; implicit backends (anything
    exposing a ``row`` method, i.e. :class:`~repro.topology.implicit.
    ImplicitDistances`) are returned unchanged — they already implement
    the same indexing per-row on demand.
    """
    return D if hasattr(D, "row") else np.asarray(D)


def _n_rows(D) -> int:
    """Number of cores covered by a dense or implicit distance object."""
    return int(D.shape[0])


class CorePool:
    """Free-core bookkeeping with closest-core queries (reference executor).

    Parameters
    ----------
    D:
        Core-by-core distances under full-cluster indexing: either the
        dense matrix or an :class:`~repro.topology.implicit.
        ImplicitDistances` backend (rows are then computed on demand and
        cached per reference core — no dense materialisation).
    cores:
        The candidate cores — exactly the cores the job's processes occupy
        (reordering never migrates a process to an unused core).
    rng:
        Tie-break source.  The paper breaks distance ties randomly; pass
        ``tie_break="first"`` for deterministic lowest-id behaviour in
        tests.
    """

    def __init__(
        self,
        D,
        cores: Sequence[int],
        rng: RngLike = 0,
        tie_break: str = "random",
    ) -> None:
        if tie_break not in ("random", "first"):
            raise ValueError(f"tie_break must be 'random' or 'first', got {tie_break!r}")
        self.D = as_distance_lookup(D)
        self.cores = np.asarray(cores, dtype=np.int64)
        if self.cores.size == 0:
            raise ValueError("empty core set")
        if np.unique(self.cores).size != self.cores.size:
            raise ValueError("duplicate cores in pool")
        if self.cores.max() >= _n_rows(self.D) or self.cores.min() < 0:
            raise ValueError("core id outside the distance matrix")
        self.free = np.ones(self.cores.size, dtype=bool)
        self._pos: Dict[int, int] = {int(c): i for i, c in enumerate(self.cores)}
        self.rng = make_rng(rng)
        self.tie_break = tie_break
        # pool-local distance view (ref pool index -> distances to every
        # pool core), gathered lazily on the first closest-free query
        self._pool_D: Optional[np.ndarray] = None
        # per-reference row cache for implicit backends (pool pos -> row)
        self._row_cache: Dict[int, np.ndarray] = {}

    @property
    def n_free(self) -> int:
        """Number of cores still unassigned."""
        return int(self.free.sum())

    def is_free(self, core: int) -> bool:
        """True iff ``core`` has not been assigned yet."""
        return bool(self.free[self._pos[int(core)]])

    def take(self, core: int) -> None:
        """Mark ``core`` as assigned."""
        pos = self._pos.get(int(core))
        if pos is None:
            raise KeyError(f"core {core} is not in the pool")
        if not self.free[pos]:
            raise ValueError(f"core {core} already taken")
        self.free[pos] = False

    def _distances_to(self, ref_core: int) -> np.ndarray:
        """Distances from ``ref_core`` to every pool core (pool order).

        Reference cores are almost always pool members (heuristics chain
        off already-placed cores).  With a dense matrix the pool's own
        sub-matrix is gathered once and each later query is a row *view*;
        with an implicit backend each reference's row is computed once on
        first use and cached — either way, no per-placement
        fancy-indexing of a full matrix.
        """
        pos = self._pos.get(int(ref_core))
        if hasattr(self.D, "row"):  # implicit backend: rows on demand
            if pos is None:
                return self.D.row(int(ref_core), self.cores)
            row = self._row_cache.get(pos)
            if row is None:
                row = self.D.row(int(ref_core), self.cores)
                self._row_cache[pos] = row
            return row
        if pos is None:  # reference outside the pool: direct gather
            return self.D[int(ref_core), self.cores]
        if self._pool_D is None:
            self._pool_D = self.D[np.ix_(self.cores, self.cores)]
        return self._pool_D[pos]

    def closest_free(self, ref_core: int) -> int:
        """The paper's ``find_closest_to``: free core nearest ``ref_core``.

        Ties are broken randomly ("if more than one core satisfy this
        condition, one of them is chosen randomly", §V-A) or by lowest id.
        One masked scan over the cached distance view — no rebuild of the
        free-core array per placement.

        Raises
        ------
        PoolExhaustedError
            Every pool core is already assigned.
        """
        if not self.free.any():
            raise PoolExhaustedError(
                f"no free cores left in the pool ({self.cores.size} cores, all taken); "
                f"cannot place another process near core {int(ref_core)}"
            )
        dist = self._distances_to(ref_core)
        masked = np.where(self.free, dist, np.inf)
        if self.tie_break == "first":
            return int(self.cores[int(np.argmin(masked))])
        best = masked.min()
        candidates = np.flatnonzero(masked == best)
        return int(self.cores[candidates[self.rng.integers(candidates.size)]])

    def place_closest(self, ref_core: int) -> int:
        """Fused :meth:`closest_free` + :meth:`take` (the executor hot path).

        The picked core is free by construction, so the take-side
        revalidation is skipped.
        """
        target = self.closest_free(ref_core)
        self.free[self._pos[target]] = False
        return target


class _PoolStructure:
    """Immutable placement structure shared across pools over one core set.

    Everything here depends only on (backend, cores) and is never mutated
    during a mapping run, so :class:`HierarchicalFreePool` caches and
    shares these across instances; only the free-flag/free-count state is
    rebuilt per pool.
    """

    __slots__ = (
        "cores",
        "cores_l",
        "pos",
        "keys_l",
        "by_sock",
        "by_node",
        "by_leaf",
        "by_line",
        "sock_sizes",
        "node_sizes",
        "leaf_sizes",
        "line_sizes",
        "all_positions",
        "np_members",
        "jit_arrays",
    )

    def __init__(self, backend, cores: np.ndarray) -> None:
        self.cores = cores
        if cores.size == 0:
            raise ValueError("empty core set")
        if np.unique(cores).size != cores.size:
            raise ValueError("duplicate cores in pool")
        n_cores_total = _n_rows(backend)
        if cores.max() >= n_cores_total or cores.min() < 0:
            raise ValueError("core id outside the distance matrix")
        self.cores_l = cores.tolist()
        self.pos: Dict[int, int] = {c: i for i, c in enumerate(self.cores_l)}

        coords = backend.coords(cores)
        # One (gsock, node, leaf, line) tuple per pool position: the hot
        # path unpacks a single list slot instead of indexing four lists.
        self.keys_l = list(
            zip(
                coords.gsock.tolist(),
                coords.node.tolist(),
                coords.leaf.tolist(),
                coords.line.tolist(),
            )
        )

        # Per-group member positions, ascending (stable argsort of pool
        # positions ⇒ each group slice is sorted).
        self.by_sock = self._group_members(coords.gsock)
        self.by_node = self._group_members(coords.node)
        self.by_leaf = self._group_members(coords.leaf)
        self.by_line = self._group_members(coords.line)
        # Free-count templates, list-indexed by the *global* group id
        # (group ids of any valid core are bounded by the cluster-wide
        # group counts; list indexing beats dict hashing on the hot path).
        cl = backend.cluster
        n_nodes_total = -(-n_cores_total // int(cl.cores_per_node))
        sizes = {
            "sock_sizes": (self.by_sock, n_nodes_total * int(cl.machine.n_sockets)),
            "node_sizes": (self.by_node, n_nodes_total),
            "leaf_sizes": (self.by_leaf, -(-n_nodes_total // int(cl.network.config.nodes_per_leaf))),
            "line_sizes": (self.by_line, int(cl.network.config.lines_per_core)),
        }
        for attr, (groups, bound) in sizes.items():
            counts = [0] * bound
            for g, m in groups.items():
                counts[g] = len(m)
            setattr(self, attr, counts)
        self.all_positions = list(range(cores.size))
        # numpy mirrors of large member lists, built lazily on first gather
        # (shared across pools: contents are as immutable as the lists)
        self.np_members: Dict[int, np.ndarray] = {}
        # flat CSR mirror for the compiled kernels, built lazily by
        # repro.mapping.jitkernel.pool_arrays (immutable, shared too)
        self.jit_arrays = None

    @staticmethod
    def _group_members(keys: np.ndarray) -> Dict[int, list]:
        """Ascending pool positions per group id (vectorised build)."""
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        uniq, starts = np.unique(sorted_keys, return_index=True)
        bounds = np.append(starts, sorted_keys.size)
        return {
            int(g): order[bounds[i] : bounds[i + 1]].tolist() for i, g in enumerate(uniq)
        }


class HierarchicalFreePool:
    """Vectorised closest-free pool driven by hierarchy coordinates.

    Replaces the per-placement distance-row scan of :class:`CorePool`
    with group bookkeeping: the free cores nearest a reference core are
    exactly the free members of the deepest non-empty *annulus* around it
    (same socket; rest of the node; rest of the leaf; rest of the line
    switch; everything else) — provided the distance ladder is strictly
    increasing, which :class:`~repro.topology.implicit.ImplicitDistances`
    certifies via ``supports_vectorized_placement``.

    Free counts per socket / node / leaf / line are O(1)-updated on every
    :meth:`take`, so a :meth:`closest_free` query is a constant-time level
    pick plus one boolean gather over the (sorted, cached) winning
    annulus.  Candidate enumeration order equals the masked-argmin order
    of :class:`CorePool` (ascending pool position) and the rng is
    consumed identically — one draw per query in ``"random"`` mode, none
    in ``"first"`` mode — so placements are bit-identical to the
    reference executor.
    """

    #: member lists at or below this size are scanned in pure Python;
    #: larger ones go through a numpy boolean gather (lower per-element
    #: cost, higher fixed cost)
    _SCAN_THRESHOLD = 48

    #: per-backend LRU of shared :class:`_PoolStructure` instances
    #: (the structure depends only on backend + core set and is immutable,
    #: so repeated mappings over the same layout skip the group build)
    _structure_caches: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
    _STRUCTURE_CACHE_SIZE = 32

    def __init__(
        self,
        backend,
        cores: Sequence[int],
        rng: RngLike = 0,
        tie_break: str = "random",
    ) -> None:
        if tie_break not in ("random", "first"):
            raise ValueError(f"tie_break must be 'random' or 'first', got {tie_break!r}")
        if not getattr(backend, "supports_vectorized_placement", False):
            raise ValueError(
                "HierarchicalFreePool needs an implicit distance backend with a "
                "strictly increasing ladder (ImplicitDistances.supports_vectorized_"
                "placement); pass the dense matrix to CorePool instead"
            )
        self.D = backend
        st = self._structure_for(backend, cores)
        self._st = st
        self.cores = st.cores
        self.rng = make_rng(rng)
        self._randint = self.rng.integers
        self.tie_break = tie_break
        self._first = tie_break == "first"
        n = len(st.cores_l)
        self._free_np = np.ones(n, dtype=bool)
        # positions taken since the numpy mask was last synced (the mask
        # is only needed for large-group gathers, so scalar stores are
        # batched into one fancy-index per gather instead)
        self._dirty: list = []
        self._free_l = [True] * n
        self._pos = st.pos
        self._cores_l = st.cores_l
        self._keys_l = st.keys_l
        self._by_sock, self._by_node = st.by_sock, st.by_node
        self._by_leaf, self._by_line = st.by_leaf, st.by_line
        self._all_positions = st.all_positions
        self._np_members = st.np_members

        # Pure-int coordinate arithmetic constants (the hot path must not
        # touch numpy for single-core coordinate lookups).
        cl = backend.cluster
        self._cpn = int(cl.cores_per_node)
        self._cps = int(cl.machine.cores_per_socket)
        self._nspn = int(cl.machine.n_sockets)
        self._npl = int(cl.network.config.nodes_per_leaf)
        self._nlines = int(cl.network.config.lines_per_core)

        # Mutable per-run state: free flags + per-group free counts
        # (list-indexed by global group id; see _PoolStructure).
        self._free_sock = list(st.sock_sizes)
        self._free_node = list(st.node_sizes)
        self._free_leaf = list(st.leaf_sizes)
        self._free_line = list(st.line_sizes)
        self._total_free = n
        # Telescoping free-member snapshots per large group (keyed like
        # ``np_members``): freeness only ever decreases, so the previous
        # snapshot is always a superset and each re-filter scans the
        # current free count, not the full group.
        self._free_snap: Dict[int, np.ndarray] = {}

    @classmethod
    def _structure_for(cls, backend, cores: Sequence[int]) -> "_PoolStructure":
        """Shared immutable structure for (backend, core set), LRU-cached."""
        arr = np.ascontiguousarray(np.asarray(cores, dtype=np.int64))
        per_backend = cls._structure_caches.get(backend)
        if per_backend is None:
            per_backend = OrderedDict()
            cls._structure_caches[backend] = per_backend
        key = arr.tobytes()
        st = per_backend.get(key)
        if st is not None:
            per_backend.move_to_end(key)
            return st
        st = _PoolStructure(backend, arr)
        per_backend[key] = st
        if len(per_backend) > cls._STRUCTURE_CACHE_SIZE:
            per_backend.popitem(last=False)
        return st

    def _coords_of(self, core: int) -> Tuple[int, int, int, int]:
        """(gsock, node, leaf, line) of a global core id — integer-only."""
        node = core // self._cpn
        gsock = node * self._nspn + (core % self._cpn) // self._cps
        leaf = node // self._npl
        return gsock, node, leaf, leaf % self._nlines

    @property
    def free(self) -> np.ndarray:
        """Free mask over pool positions (synced on access)."""
        dirty = self._dirty
        if dirty:
            free_np = self._free_np
            if len(dirty) < 16:
                # a scalar store beats list->array conversion at this size
                for i in dirty:
                    free_np[i] = False
            else:
                free_np[dirty] = False
            dirty.clear()
        return self._free_np

    @property
    def n_free(self) -> int:
        """Number of cores still unassigned."""
        return self._total_free

    def is_free(self, core: int) -> bool:
        """True iff ``core`` has not been assigned yet."""
        return bool(self._free_l[self._pos[int(core)]])

    def take(self, core: int) -> None:
        """Mark ``core`` as assigned (O(1) group-count updates)."""
        pos = self._pos.get(int(core))
        if pos is None:
            raise KeyError(f"core {core} is not in the pool")
        if not self._free_l[pos]:
            raise ValueError(f"core {core} already taken")
        self._free_l[pos] = False
        self._dirty.append(pos)
        gs, nd, lf, ln = self._keys_l[pos]
        self._free_sock[gs] -= 1
        self._free_node[nd] -= 1
        self._free_leaf[lf] -= 1
        self._free_line[ln] -= 1
        self._total_free -= 1

    # ------------------------------------------------------------------
    def _candidates(self, ref_core: int):
        """Ascending free pool positions nearest ``ref_core``.

        The closest free cores live in the deepest hierarchy group around
        the reference that still has one.  A level is consulted only when
        every deeper group's free count is zero, so the free members of
        the group *are* the free members of its annulus — no set
        subtraction is ever needed, and candidate order (ascending pool
        position) matches :class:`CorePool`'s masked-argmin order.
        """
        pos = self._pos.get(ref_core)
        if pos is not None:
            if self._free_l[pos]:
                # The reference itself is free: distance 0 beats every level.
                return [pos]
            gs, nd, lf, ln = self._keys_l[pos]
        else:
            gs, nd, lf, ln = self._coords_of(ref_core)
        if self._free_sock[gs] > 0:
            members = self._by_sock[gs]
        elif self._free_node[nd] > 0:
            members = self._by_node[nd]
        elif self._free_leaf[lf] > 0:
            members = self._by_leaf[lf]
        elif self._free_line[ln] > 0:
            members = self._by_line[ln]
        else:
            members = self._all_positions
        if len(members) <= self._SCAN_THRESHOLD:
            free_l = self._free_l
            return [m for m in members if free_l[m]]
        # Large group: numpy gather over a lazily-built member array.
        key = id(members)
        arr = self._np_members.get(key)
        if arr is None:
            arr = np.asarray(members, dtype=np.int64)
            self._np_members[key] = arr
        return arr[self.free[arr]]

    def closest_free(self, ref_core: int) -> int:
        """Free core nearest ``ref_core``; bit-identical to :class:`CorePool`.

        Raises
        ------
        PoolExhaustedError
            Every pool core is already assigned.
        """
        if self._total_free == 0:
            raise PoolExhaustedError(
                f"no free cores left in the pool ({self.cores.size} cores, all taken); "
                f"cannot place another process near core {int(ref_core)}"
            )
        candidates = self._candidates(int(ref_core))
        if self.tie_break == "first":
            # First free member in ascending pool position == masked argmin.
            return self._cores_l[int(candidates[0])]
        # CorePool draws unconditionally even for one candidate, but
        # integers(1) consumes no rng state, so the single-candidate draw
        # is skipped without diverging from its stream.
        n = len(candidates)
        if n == 1:
            return self._cores_l[int(candidates[0])]
        return self._cores_l[int(candidates[self.rng.integers(n)])]

    def place_closest(self, ref_core: int) -> int:
        """Fused :meth:`closest_free` + :meth:`take` (the executor hot path).

        One Python call per placement: level pick, candidate gather,
        tie-break and the O(1) free-count updates, with no revalidation
        (the pick is free by construction).

        Raises
        ------
        PoolExhaustedError
            Every pool core is already assigned.
        """
        if self._total_free == 0:
            raise PoolExhaustedError(
                f"no free cores left in the pool ({self.cores.size} cores, all taken); "
                f"cannot place another process near core {int(ref_core)}"
            )
        # The body inlines :meth:`_candidates` — at one call per placement
        # the call overhead itself is measurable at p=4096.
        ref_core = int(ref_core)
        free_l = self._free_l
        first = self._first
        pos = self._pos.get(ref_core)
        if pos is not None and free_l[pos]:
            # The reference itself is free: distance 0 beats every level.
            # CorePool draws integers(1) here, but that consumes no state
            # (mask 0 -> no bits drawn), so skipping the call keeps the
            # streams aligned; the identity tests guard this invariant.
            pick = pos
        else:
            if pos is not None:
                gs, nd, lf, ln = self._keys_l[pos]
            else:
                node = ref_core // self._cpn
                gs = node * self._nspn + (ref_core % self._cpn) // self._cps
                nd, lf = node, node // self._npl
                ln = lf % self._nlines
            if (k := self._free_sock[gs]) > 0:
                members = self._by_sock[gs]
            elif (k := self._free_node[nd]) > 0:
                members = self._by_node[nd]
            elif (k := self._free_leaf[lf]) > 0:
                members = self._by_leaf[lf]
            elif (k := self._free_line[ln]) > 0:
                members = self._by_line[ln]
            else:
                members = self._all_positions
                k = self._total_free
            # ``k`` — the group's free count — equals the number of
            # candidates CorePool enumerates, so the rng draw can happen
            # without materialising them.  ``k == 1`` skips the draw:
            # integers(1) consumes no rng state, so the streams stay
            # aligned with CorePool's unconditional draw.
            if len(members) <= self._SCAN_THRESHOLD:
                candidates = [m for m in members if free_l[m]]
                pick = candidates[0] if first or k == 1 else candidates[self._randint(k)]
            else:
                dirty = self._dirty
                free_np = self._free_np
                if dirty:
                    if len(dirty) < 16:
                        for i in dirty:
                            free_np[i] = False
                    else:
                        free_np[dirty] = False
                    dirty.clear()
                key = id(members)
                snap = self._free_snap.get(key)
                if snap is None:
                    arr = self._np_members.get(key)
                    if arr is None:
                        arr = np.asarray(members, dtype=np.int64)
                        self._np_members[key] = arr
                    snap = arr[free_np[arr]]
                else:
                    snap = snap[free_np[snap]]
                self._free_snap[key] = snap
                # snap holds exactly the k free members, ascending.
                pick = snap[0] if first or k == 1 else snap[self._randint(k)]
            pick = int(pick)
        free_l[pick] = False
        self._dirty.append(pick)
        gs, nd, lf, ln = self._keys_l[pick]
        self._free_sock[gs] -= 1
        self._free_node[nd] -= 1
        self._free_leaf[lf] -= 1
        self._free_line[ln] -= 1
        self._total_free -= 1
        return self._cores_l[pick]

    def execute_program(self, program: Iterator[Tuple[int, int]], M: list) -> None:
        """Run a whole placement program in one tight loop.

        Semantically ``for new_rank, ref_rank in program: M[new_rank] =
        self.place_closest(M[ref_rank])`` — but with every hot attribute
        hoisted into a local, which removes ~40% of the per-placement
        interpreter overhead at p=4096.  :meth:`place_closest` is the
        per-query reference for this body; keep the two in lockstep (the
        naive-vs-vectorised identity tests cover both paths).
        """
        pos_d = self._pos
        free_l = self._free_l
        keys_l = self._keys_l
        by_sock, by_node = self._by_sock, self._by_node
        by_leaf, by_line = self._by_leaf, self._by_line
        free_sock, free_node = self._free_sock, self._free_node
        free_leaf, free_line = self._free_leaf, self._free_line
        all_positions = self._all_positions
        np_members = self._np_members
        free_snap = self._free_snap
        cores_l = self._cores_l
        randint = self._randint
        first = self._first
        dirty = self._dirty
        free_np = self._free_np
        threshold = self._SCAN_THRESHOLD
        total_free = self._total_free
        try:
            for new_rank, ref_rank in program:
                if total_free == 0:
                    raise PoolExhaustedError(
                        f"no free cores left in the pool ({self.cores.size} cores, all "
                        f"taken); cannot place another process near core {M[ref_rank]}"
                    )
                ref_core = M[ref_rank]
                pos = pos_d.get(ref_core)
                if pos is not None and free_l[pos]:
                    # integers(1) consumes no rng state -> skip (see
                    # place_closest)
                    pick = pos
                else:
                    if pos is not None:
                        gs, nd, lf, ln = keys_l[pos]
                    else:
                        gs, nd, lf, ln = self._coords_of(int(ref_core))
                    if (k := free_sock[gs]) > 0:
                        members = by_sock[gs]
                    elif (k := free_node[nd]) > 0:
                        members = by_node[nd]
                    elif (k := free_leaf[lf]) > 0:
                        members = by_leaf[lf]
                    elif (k := free_line[ln]) > 0:
                        members = by_line[ln]
                    else:
                        members = all_positions
                        k = total_free
                    if len(members) <= threshold:
                        candidates = [m for m in members if free_l[m]]
                        pick = candidates[0] if first or k == 1 else candidates[randint(k)]
                    else:
                        if dirty:
                            if len(dirty) < 16:
                                for i in dirty:
                                    free_np[i] = False
                            else:
                                free_np[dirty] = False
                            dirty.clear()
                        key = id(members)
                        snap = free_snap.get(key)
                        if snap is None:
                            arr = np_members.get(key)
                            if arr is None:
                                arr = np.asarray(members, dtype=np.int64)
                                np_members[key] = arr
                            snap = arr[free_np[arr]]
                        else:
                            snap = snap[free_np[snap]]
                        free_snap[key] = snap
                        pick = snap[0] if first or k == 1 else snap[randint(k)]
                    pick = int(pick)
                free_l[pick] = False
                dirty.append(pick)
                gs, nd, lf, ln = keys_l[pick]
                free_sock[gs] -= 1
                free_node[nd] -= 1
                free_leaf[lf] -= 1
                free_line[ln] -= 1
                total_free -= 1
                M[new_rank] = cores_l[pick]
        finally:
            self._total_free = total_free


class Mapper(ABC):
    """Interface of every mapping algorithm.

    ``map`` consumes the initial layout (``layout[old_rank] = core``) and
    the distance matrix and produces the mapping array ``M`` with
    ``M[new_rank] = core`` — the paper's output ("a mapping array M
    representing the new rank for each process").  The cores of ``M`` are
    exactly those of ``layout`` and ``M[0] == layout[0]`` (rank 0 is fixed
    on its current core, Algorithm 1 step 1).
    """

    #: pattern key this mapper is fine-tuned for ("*" = pattern-agnostic)
    pattern: str = "*"
    #: short display name for reports
    name: str = "mapper"

    @abstractmethod
    def map(self, layout: Sequence[int], D, rng: RngLike = 0) -> np.ndarray:
        """Compute the mapping array ``M``."""

    # ------------------------------------------------------------------
    # shared plumbing for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _setup(layout: Sequence[int], D, rng: RngLike, tie_break: str):
        """Common Algorithm-1 initialisation: fix rank 0, open the pool."""
        L = np.asarray(layout, dtype=np.int64)
        if L.size < 1:
            raise ValueError("empty layout")
        M = np.full(L.size, -1, dtype=np.int64)
        M[0] = L[0]
        pool = CorePool(D, L, rng=rng, tie_break=tie_break)
        pool.take(int(L[0]))
        return L, M, pool

    @staticmethod
    def _finish(M: np.ndarray, layout: np.ndarray) -> np.ndarray:
        """Validate the result is a complete mapping over the same cores."""
        if np.any(M < 0):
            missing = np.flatnonzero(M < 0)[:4].tolist()
            raise RuntimeError(f"mapper left ranks unmapped: {missing}")
        if sorted(M.tolist()) != sorted(layout.tolist()):
            raise RuntimeError("mapper produced cores outside the layout")
        return M


class GreedyPlacementMapper(Mapper):
    """Shared executor for the paper's Algorithm-1 greedy heuristics.

    Subclasses supply only their *placement program* — the structural
    ``(new_rank, ref_rank)`` sequence (:meth:`placements`), which never
    depends on distances or randomness — and this base walks it against a
    free-core pool.  ``engine`` selects the executor:

    * ``"naive"`` — :class:`CorePool` masked row scans (the reference);
    * ``"vectorized"`` — :class:`HierarchicalFreePool` coordinate driver
      (requires an implicit backend with a strict ladder);
    * ``"jit"`` — :class:`~repro.mapping.jitkernel.JitFreePool`: the
      whole program walk in one numba-compiled kernel (same backend
      requirement; degrades to the vectorised loop when numba is absent
      or the rng is not the default PCG64 stream);
    * ``"auto"`` (default) — jit whenever the backend supports
      vectorised placement, else naive.

    All executors consume the rng stream identically, so the produced
    permutations are bit-identical whatever the engine.
    """

    def __init__(self, tie_break: str = "random", engine: str = "auto") -> None:
        if tie_break not in ("random", "first"):
            raise ValueError(f"tie_break must be 'random' or 'first', got {tie_break!r}")
        if engine not in PLACEMENT_ENGINES:
            raise ValueError(f"engine must be one of {PLACEMENT_ENGINES}, got {engine!r}")
        self.tie_break = tie_break
        self.engine = engine

    @abstractmethod
    def placements(self, p: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(new_rank, ref_rank)`` pairs in placement order.

        Purely structural: the sequence depends only on ``p`` and the
        heuristic's parameters, never on the distance backend or rng.
        Rank 0 is pre-placed by the executor and must not be yielded.
        """

    def _validate_p(self, p: int) -> None:
        """Hook for heuristics with process-count constraints (e.g. RDMH)."""

    def _open_pool(self, D, L: np.ndarray, rng: RngLike):
        """Instantiate the executor's pool according to ``engine``."""
        vectorizable = getattr(D, "supports_vectorized_placement", False)
        engine = self.engine
        if engine == "auto":
            engine = "jit" if vectorizable else "naive"
        if engine in ("vectorized", "jit"):
            if not vectorizable:
                raise ValueError(
                    f"engine={engine!r} needs an ImplicitDistances backend with a "
                    "strict distance ladder; got a dense matrix or a backend with "
                    "collapsed levels — use engine='naive' or 'auto'"
                )
            if engine == "jit":
                # Local import: jitkernel subclasses the pools above.
                from repro.mapping.jitkernel import JitFreePool

                return JitFreePool(D, L, rng=rng, tie_break=self.tie_break)
            return HierarchicalFreePool(D, L, rng=rng, tie_break=self.tie_break)
        return CorePool(D, L, rng=rng, tie_break=self.tie_break)

    def map(self, layout: Sequence[int], D, rng: RngLike = 0) -> np.ndarray:
        """Execute the placement program against the selected pool."""
        L = np.asarray(layout, dtype=np.int64)
        if L.size < 1:
            raise ValueError("empty layout")
        self._validate_p(L.size)
        pool = self._open_pool(D, L, rng)
        # Plain-int mapping list during the walk (one pool query + update
        # per placement; numpy scalar boxing would dominate at large p).
        M = [-1] * L.size
        M[0] = int(L[0])
        pool.take(M[0])
        run = getattr(pool, "execute_program", None)
        if run is not None:
            run(self.placements(L.size), M)
        else:
            place = pool.place_closest
            for new_rank, ref_rank in self.placements(L.size):
                M[new_rank] = place(M[ref_rank])
        return self._finish(np.asarray(M, dtype=np.int64), L)


def map_batch(mappers, layout: Sequence[int], D, rngs, seconds_out=None) -> list:
    """Run several mappers over one (layout, backend) pair in a single pass.

    The per-topology setup every :meth:`GreedyPlacementMapper.map` call
    repeats — layout validation, the shared :class:`_PoolStructure`
    (group membership, free-count templates) and, on the jit tier, the
    flat kernel arrays — is warmed exactly once here and shared by all
    mappers; only the per-run free state is rebuilt per mapper.  Each
    mapper still draws from its *own* rng (``rngs[i]``), so every result
    is bit-identical to the corresponding standalone ``map`` call — this
    is the executor under :func:`repro.mapping.reorder.reorder_all`.

    Parameters
    ----------
    mappers:
        The mapper instances to run (typically one per registered
        heuristic, all configured with the same engine).
    layout:
        The shared initial layout (``layout[old_rank] = core``).
    D:
        The shared distance backend (dense or implicit).
    rngs:
        One :data:`~repro.util.rng.RngLike` per mapper.
    seconds_out:
        Optional list; when given, the wall-clock seconds of each
        individual ``map`` call are appended to it (one entry per
        mapper), so callers can report per-heuristic timings without
        paying a second pass.

    Returns
    -------
    list of np.ndarray
        ``results[i] = mappers[i].map(layout, D, rng=rngs[i])``.
    """
    mappers = list(mappers)
    rngs = list(rngs)
    if len(rngs) != len(mappers):
        raise ValueError(f"got {len(mappers)} mappers but {len(rngs)} rngs")
    if not mappers:
        return []
    L = np.ascontiguousarray(np.asarray(layout, dtype=np.int64))
    if getattr(D, "supports_vectorized_placement", False) and any(
        m.engine != "naive" for m in mappers
    ):
        # Warm the shared immutable structure once; every pool the loop
        # below opens over (D, L) then hits the LRU instead of rebuilding
        # group membership (and the jit tier reuses its kernel arrays).
        st = HierarchicalFreePool._structure_for(D, L)
        if any(m.engine in ("auto", "jit") for m in mappers):
            from repro.mapping.jitkernel import pool_arrays

            pool_arrays(st, D)
    results = []
    for m, rng in zip(mappers, rngs):
        t0 = time.perf_counter()
        results.append(m.map(L, D, rng=rng))
        if seconds_out is not None:
            seconds_out.append(time.perf_counter() - t0)
    return results
