"""Mapping foundations: the free-core pool and the mapper interface.

All four paper heuristics are instances of one greedy scheme (paper
Algorithm 1): fix rank 0 on its current core, then repeatedly pick the
next process by a pattern-specific priority and place it on the *free core
closest to a reference core*.  :class:`CorePool` implements the shared
"find_closest_to" step — including the paper's random tie-breaking — and
:class:`Mapper` is the interface every mapping algorithm (heuristics and
baselines alike) implements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence

import numpy as np

from repro.util.rng import RngLike, make_rng

__all__ = ["CorePool", "Mapper"]


class CorePool:
    """Free-core bookkeeping with closest-core queries.

    Parameters
    ----------
    D:
        Core-by-core distance matrix (full cluster indexing).
    cores:
        The candidate cores — exactly the cores the job's processes occupy
        (reordering never migrates a process to an unused core).
    rng:
        Tie-break source.  The paper breaks distance ties randomly; pass
        ``tie_break="first"`` for deterministic lowest-id behaviour in
        tests.
    """

    def __init__(
        self,
        D: np.ndarray,
        cores: Sequence[int],
        rng: RngLike = 0,
        tie_break: str = "random",
    ) -> None:
        if tie_break not in ("random", "first"):
            raise ValueError(f"tie_break must be 'random' or 'first', got {tie_break!r}")
        self.D = np.asarray(D)
        self.cores = np.asarray(cores, dtype=np.int64)
        if self.cores.size == 0:
            raise ValueError("empty core set")
        if np.unique(self.cores).size != self.cores.size:
            raise ValueError("duplicate cores in pool")
        if self.cores.max() >= self.D.shape[0] or self.cores.min() < 0:
            raise ValueError("core id outside the distance matrix")
        self.free = np.ones(self.cores.size, dtype=bool)
        self._pos: Dict[int, int] = {int(c): i for i, c in enumerate(self.cores)}
        self.rng = make_rng(rng)
        self.tie_break = tie_break
        # pool-local distance view (ref pool index -> distances to every
        # pool core), gathered lazily on the first closest-free query
        self._pool_D: np.ndarray = None

    @property
    def n_free(self) -> int:
        return int(self.free.sum())

    def is_free(self, core: int) -> bool:
        """True iff ``core`` has not been assigned yet."""
        return bool(self.free[self._pos[int(core)]])

    def take(self, core: int) -> None:
        """Mark ``core`` as assigned."""
        pos = self._pos.get(int(core))
        if pos is None:
            raise KeyError(f"core {core} is not in the pool")
        if not self.free[pos]:
            raise ValueError(f"core {core} already taken")
        self.free[pos] = False

    def _distances_to(self, ref_core: int) -> np.ndarray:
        """Distances from ``ref_core`` to every pool core (pool order).

        Reference cores are almost always pool members (heuristics chain
        off already-placed cores), so the pool's own distance sub-matrix
        is gathered once and each later query is a row *view* — no
        per-placement fancy-indexing of the full matrix.
        """
        pos = self._pos.get(int(ref_core))
        if pos is None:  # reference outside the pool: direct gather
            return self.D[int(ref_core), self.cores]
        if self._pool_D is None:
            self._pool_D = self.D[np.ix_(self.cores, self.cores)]
        return self._pool_D[pos]

    def closest_free(self, ref_core: int) -> int:
        """The paper's ``find_closest_to``: free core nearest ``ref_core``.

        Ties are broken randomly ("if more than one core satisfy this
        condition, one of them is chosen randomly", §V-A) or by lowest id.
        One masked scan over the cached distance view — no rebuild of the
        free-core array per placement.
        """
        if not self.free.any():
            raise RuntimeError("no free cores left")
        dist = self._distances_to(ref_core)
        masked = np.where(self.free, dist, np.inf)
        if self.tie_break == "first":
            return int(self.cores[int(np.argmin(masked))])
        best = masked.min()
        candidates = np.flatnonzero(masked == best)
        return int(self.cores[candidates[self.rng.integers(candidates.size)]])


class Mapper(ABC):
    """Interface of every mapping algorithm.

    ``map`` consumes the initial layout (``layout[old_rank] = core``) and
    the distance matrix and produces the mapping array ``M`` with
    ``M[new_rank] = core`` — the paper's output ("a mapping array M
    representing the new rank for each process").  The cores of ``M`` are
    exactly those of ``layout`` and ``M[0] == layout[0]`` (rank 0 is fixed
    on its current core, Algorithm 1 step 1).
    """

    #: pattern key this mapper is fine-tuned for ("*" = pattern-agnostic)
    pattern: str = "*"
    #: short display name for reports
    name: str = "mapper"

    @abstractmethod
    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        """Compute the mapping array ``M``."""

    # ------------------------------------------------------------------
    # shared plumbing for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _setup(layout: Sequence[int], D: np.ndarray, rng: RngLike, tie_break: str):
        """Common Algorithm-1 initialisation: fix rank 0, open the pool."""
        L = np.asarray(layout, dtype=np.int64)
        if L.size < 1:
            raise ValueError("empty layout")
        M = np.full(L.size, -1, dtype=np.int64)
        M[0] = L[0]
        pool = CorePool(D, L, rng=rng, tie_break=tie_break)
        pool.take(int(L[0]))
        return L, M, pool

    @staticmethod
    def _finish(M: np.ndarray, layout: np.ndarray) -> np.ndarray:
        """Validate the result is a complete mapping over the same cores."""
        if np.any(M < 0):
            missing = np.flatnonzero(M < 0)[:4].tolist()
            raise RuntimeError(f"mapper left ranks unmapped: {missing}")
        if sorted(M.tolist()) != sorted(layout.tolist()):
            raise RuntimeError("mapper produced cores outside the layout")
        return M
