"""Communication-pattern graphs for the general-purpose mappers.

The fine-tuned heuristics never materialise these ("with fine-tuned
heuristics, it is not required to build a process topology graph", paper
§V) — that is one of their advantages.  The Scotch-like and greedy
baselines *do* need an explicit weighted guest graph, which is what the
builders here provide; building it is deliberately part of the mappers'
measured overhead, as in the paper's Fig. 7(b) comparison.

Edge weights are total block-units exchanged between a rank pair over the
whole collective, which is the byte-proportional weighting both baselines
optimise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.collectives import binomial
from repro.util.bits import ceil_log2, ilog2, is_power_of_two

__all__ = ["PatternGraph", "build_pattern", "PATTERN_BUILDERS"]


@dataclass
class PatternGraph:
    """Weighted undirected communication graph over ``p`` ranks."""

    p: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if not (self.src.shape == self.dst.shape == self.weight.shape):
            raise ValueError("src/dst/weight shape mismatch")
        if self.src.size and (
            min(self.src.min(), self.dst.min()) < 0
            or max(self.src.max(), self.dst.max()) >= self.p
        ):
            raise ValueError("edge endpoint out of range")

    @property
    def n_edges(self) -> int:
        return int(self.src.size)

    def total_weight(self) -> float:
        """Total block-units exchanged over the whole collective."""
        return float(self.weight.sum())

    def adjacency(self) -> List[List[Tuple[int, float]]]:
        """Per-vertex (neighbour, weight) lists."""
        adj: List[List[Tuple[int, float]]] = [[] for _ in range(self.p)]
        for u, v, w in zip(self.src, self.dst, self.weight):
            adj[int(u)].append((int(v), float(w)))
            adj[int(v)].append((int(u), float(w)))
        return adj

    def degree_weights(self) -> np.ndarray:
        """Total incident edge weight per vertex."""
        out = np.zeros(self.p)
        np.add.at(out, self.src, self.weight)
        np.add.at(out, self.dst, self.weight)
        return out


def _from_edge_dict(p: int, edges: Dict[Tuple[int, int], float]) -> PatternGraph:
    if not edges:
        return PatternGraph(p, np.empty(0), np.empty(0), np.empty(0))
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array(list(edges.values()), dtype=np.float64)
    return PatternGraph(p, src, dst, w)


def _canon(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def recursive_doubling_pattern(p: int) -> PatternGraph:
    """Pairs ``(i, i XOR 2^s)`` weighted by the stage-s message size 2^s.

    This is the graph of the paper's Fig. 1 (with weights added).
    """
    if not is_power_of_two(p):
        raise ValueError(f"recursive doubling pattern needs power-of-two p, got {p}")
    edges: Dict[Tuple[int, int], float] = {}
    for s in range(ilog2(p)):
        dist = 1 << s
        for i in range(p):
            j = i ^ dist
            if i < j:
                edges[(i, j)] = edges.get((i, j), 0.0) + float(dist)
    return _from_edge_dict(p, edges)


def ring_pattern(p: int) -> PatternGraph:
    """Successor edges; each pair exchanges one block in each of p-1 stages."""
    if p < 2:
        raise ValueError(f"need p >= 2, got {p}")
    edges: Dict[Tuple[int, int], float] = {}
    for i in range(p):
        edges[_canon(i, (i + 1) % p)] = float(p - 1)
    return _from_edge_dict(p, edges)


def binomial_bcast_pattern(p: int) -> PatternGraph:
    """Binomial tree edges, unit weight (fixed broadcast message size)."""
    edges: Dict[Tuple[int, int], float] = {}
    for _bit, par, child in binomial.tree_edges(p):
        edges[_canon(par, child)] = 1.0
    return _from_edge_dict(p, edges)


def binomial_gather_pattern(p: int) -> PatternGraph:
    """Binomial tree edges weighted by the child's subtree size."""
    edges: Dict[Tuple[int, int], float] = {}
    for _bit, par, child in binomial.tree_edges(p):
        edges[_canon(par, child)] = float(binomial.subtree_size(child, p))
    return _from_edge_dict(p, edges)


def bruck_pattern(p: int) -> PatternGraph:
    """Bruck shift edges ``(i, i - 2^s)`` weighted by the stage send count."""
    if p < 2:
        raise ValueError(f"need p >= 2, got {p}")
    edges: Dict[Tuple[int, int], float] = {}
    for s in range(ceil_log2(p)):
        dist = 1 << s
        count = float(min(dist, p - dist))
        for i in range(p):
            key = _canon(i, (i - dist) % p)
            if key[0] != key[1]:
                edges[key] = edges.get(key, 0.0) + count
    return _from_edge_dict(p, edges)


PATTERN_BUILDERS = {
    "recursive-doubling": recursive_doubling_pattern,
    "ring": ring_pattern,
    "binomial-bcast": binomial_bcast_pattern,
    "binomial-gather": binomial_gather_pattern,
    "bruck": bruck_pattern,
}


def build_pattern(name: str, p: int) -> PatternGraph:
    """Build the named communication-pattern graph over ``p`` ranks."""
    try:
        builder = PATTERN_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; known: {sorted(PATTERN_BUILDERS)}"
        )
    return builder(p)
