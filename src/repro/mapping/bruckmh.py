"""BruckMH — mapping heuristic for the Bruck allgather pattern.

The paper's §VII names extending the heuristics to Bruck as future work;
this is that extension, built on the same Algorithm-1 scheme.  Bruck's
stage-``s`` exchange pairs rank ``r`` with ``(r ± 2^s) mod p`` and its
send count doubles with ``s`` (capped near the end for non-power-of-two
sizes), so — exactly like RDMH — the heuristic prioritises the partners
of the *latest* stages and promotes the reference after two placements.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.mapping.base import Mapper
from repro.util.bits import ceil_log2
from repro.util.rng import RngLike

__all__ = ["BruckMH"]


class BruckMH(Mapper):
    """Bruck-pattern mapping heuristic; valid for any process count."""

    pattern = "bruck"
    name = "bruckmh"

    def __init__(self, update_after: int = 2, tie_break: str = "random") -> None:
        if update_after < 1:
            raise ValueError(f"update_after must be >= 1, got {update_after}")
        self.update_after = update_after
        self.tie_break = tie_break

    @staticmethod
    def _partners(rank: int, p: int) -> List[int]:
        """Partners of ``rank`` ordered by decreasing stage (message size)."""
        out: List[int] = []
        for s in reversed(range(ceil_log2(p))):
            dist = 1 << s
            for cand in ((rank + dist) % p, (rank - dist) % p):
                if cand != rank and cand not in out:
                    out.append(cand)
        return out

    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        L, M, pool = self._setup(layout, D, rng, self.tie_break)
        p = L.size
        if p == 1:
            return self._finish(M, L)

        mapped = np.zeros(p, dtype=bool)
        mapped[0] = True
        mapped_order = [0]
        ref = 0
        placed_for_ref = 0
        n_mapped = 1
        while n_mapped < p:
            new_rank = self._first_unmapped_partner(ref, p, mapped)
            if new_rank is None:
                new_rank, ref = self._rewind(mapped_order, mapped, p)
                placed_for_ref = 0
            target = pool.closest_free(int(M[ref]))
            pool.take(target)
            M[new_rank] = target
            mapped[new_rank] = True
            mapped_order.append(new_rank)
            n_mapped += 1
            placed_for_ref += 1
            if placed_for_ref >= self.update_after:
                ref = new_rank
                placed_for_ref = 0
        return self._finish(M, L)

    def _first_unmapped_partner(self, ref: int, p: int, mapped: np.ndarray) -> Optional[int]:
        for cand in self._partners(ref, p):
            if not mapped[cand]:
                return cand
        return None

    def _rewind(self, mapped_order, mapped: np.ndarray, p: int):
        """Most recent placement with an unmapped partner (or any unmapped)."""
        for r in reversed(mapped_order):
            cand = self._first_unmapped_partner(r, p, mapped)
            if cand is not None:
                return cand, r
        # Fully disconnected leftovers cannot happen (the shift graph is
        # connected), but keep a hard failure just in case.
        raise RuntimeError("no rank with unmapped partners, yet ranks remain")
