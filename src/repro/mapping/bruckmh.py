"""BruckMH — mapping heuristic for the Bruck allgather pattern.

The paper's §VII names extending the heuristics to Bruck as future work;
this is that extension, built on the same Algorithm-1 scheme.  Bruck's
stage-``s`` exchange pairs rank ``r`` with ``(r ± 2^s) mod p`` and its
send count doubles with ``s`` (capped near the end for non-power-of-two
sizes), so — exactly like RDMH — the heuristic prioritises the partners
of the *latest* stages and promotes the reference after two placements.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.mapping.base import GreedyPlacementMapper
from repro.util.bits import ceil_log2

__all__ = ["BruckMH"]


class BruckMH(GreedyPlacementMapper):
    """Bruck-pattern mapping heuristic; valid for any process count."""

    pattern = "bruck"
    name = "bruckmh"

    def __init__(
        self, update_after: int = 2, tie_break: str = "random", engine: str = "auto"
    ) -> None:
        if update_after < 1:
            raise ValueError(f"update_after must be >= 1, got {update_after}")
        super().__init__(tie_break=tie_break, engine=engine)
        self.update_after = update_after

    def placements(self, p: int) -> Iterator[Tuple[int, int]]:
        """Latest-stage partners first, reference promoted every two placements.

        Partner scans resume from a per-reference cursor: ``mapped`` only
        ever grows, so every candidate before the previous hit stays
        mapped and never needs re-checking — the total scan work is
        linear in the scan sequence length instead of quadratic.
        """
        if p == 1:
            return
        nst = ceil_log2(p)
        seq_len = 2 * nst
        mapped = [False] * p
        mapped[0] = True
        mapped_order = [0]
        cursors: dict = {}

        def first_unmapped(ref: int) -> Optional[int]:
            # Decreasing-stage candidate order (+dist then -dist), resumable.
            i = cursors.get(ref, 0)
            while i < seq_len:
                dist = 1 << (nst - 1 - (i >> 1))
                cand = (ref + dist) % p if (i & 1) == 0 else (ref - dist) % p
                if not mapped[cand] and cand != ref:
                    cursors[ref] = i
                    return cand
                i += 1
            cursors[ref] = i
            return None

        ref = 0
        placed_for_ref = 0
        n_mapped = 1
        while n_mapped < p:
            new_rank = first_unmapped(ref)
            if new_rank is None:
                for r in reversed(mapped_order):
                    new_rank = first_unmapped(r)
                    if new_rank is not None:
                        ref = r
                        break
                else:
                    # Fully disconnected leftovers cannot happen (the shift
                    # graph is connected), but keep a hard failure just in case.
                    raise RuntimeError("no rank with unmapped partners, yet ranks remain")
                placed_for_ref = 0
            yield new_rank, ref
            mapped[new_rank] = True
            mapped_order.append(new_rank)
            n_mapped += 1
            placed_for_ref += 1
            if placed_for_ref >= self.update_after:
                ref = new_rank
                placed_for_ref = 0
