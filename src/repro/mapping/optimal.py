"""Exhaustive optimal mapper for miniature instances.

Topology mapping is NP-hard in general; at miniature scale it is merely
expensive, and an exact optimum is a useful yardstick: how much quality
do the paper's greedy single-pass heuristics actually leave on the
table?  This mapper enumerates all assignments (rank 0 pinned, matching
the heuristics' contract) with branch-and-bound pruning on partial
hop-bytes, minimising the same objective the metrics module measures.

Practical limit is around ``p = 10`` (9! = 362 880 leaves before
pruning); the constructor enforces it.  Used by the optimality-gap tests
and the ``bench_ablation_optimality`` bench.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.mapping.base import Mapper
from repro.mapping.patterns import PatternGraph
from repro.util.rng import RngLike

__all__ = ["OptimalMapper", "MAX_OPTIMAL_P"]

#: Largest instance the exhaustive search accepts.
MAX_OPTIMAL_P = 10


class OptimalMapper(Mapper):
    """Branch-and-bound exact hop-bytes minimiser (tiny ``p`` only)."""

    pattern = "*"
    name = "optimal"

    def __init__(self, graph: PatternGraph) -> None:
        if graph.p > MAX_OPTIMAL_P:
            raise ValueError(
                f"exhaustive search supports p <= {MAX_OPTIMAL_P}, got {graph.p}"
            )
        self.graph = graph
        self._adj = graph.adjacency()

    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        """Find the hop-bytes-optimal assignment with rank 0 pinned."""
        L = np.asarray(layout, dtype=np.int64)
        p = L.size
        if p != self.graph.p:
            raise ValueError(
                f"layout has {p} processes but the pattern graph has {self.graph.p}"
            )
        D = np.asarray(D, dtype=np.float64)

        best_cost = np.inf
        best: List[int] = []
        M = np.full(p, -1, dtype=np.int64)
        M[0] = L[0]
        used = {int(L[0])}
        cores = [int(c) for c in L]

        def incremental(rank: int, core: int) -> float:
            """Hop-bytes of rank's edges to already-placed neighbours."""
            total = 0.0
            for nb, w in self._adj[rank]:
                if M[nb] >= 0:
                    total += w * D[core, M[nb]]
            return total

        def search(rank: int, cost: float) -> None:
            nonlocal best_cost, best
            if cost >= best_cost:
                return  # prune: partial cost already worse
            if rank == p:
                best_cost = cost
                best = M.tolist()
                return
            for core in cores:
                if core in used:
                    continue
                delta = incremental(rank, core)
                if cost + delta >= best_cost:
                    continue
                M[rank] = core
                used.add(core)
                search(rank + 1, cost + delta)
                used.discard(core)
                M[rank] = -1

        search(1, 0.0)
        if not best:  # pragma: no cover - p == 1
            best = M.tolist()
        return self._finish(np.asarray(best, dtype=np.int64), L)

    def optimal_cost(self, layout: Sequence[int], D: np.ndarray) -> float:
        """Hop-bytes of the optimal assignment (convenience)."""
        from repro.mapping.metrics import hop_bytes

        return hop_bytes(self.graph, self.map(layout, D), np.asarray(D))
