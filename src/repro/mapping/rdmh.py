"""RDMH — mapping heuristic for recursive doubling (paper Algorithm 2).

Recursive doubling doubles its message size every stage, so the pairs of
the *last* stages matter most.  RDMH therefore walks partners in
decreasing stage order: starting from rank 0, it places ``0 XOR p/2``
(rank 0's last-stage partner) as close as possible to rank 0, then
``0 XOR p/4``, and so on — and after placing two processes with respect to
the current reference it promotes the newest placement to be the new
reference and restarts from the last stage.  The paper motivates the
cadence of two: the newest rank lets the next choice come from the
largest-message stage *and* its partner already touches two mapped ranks.

``update_after`` parameterises that cadence for the ablation bench
(``benchmarks/bench_ablation_rdmh_refcore.py``); 2 is the paper's value.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mapping.base import Mapper
from repro.util.bits import is_power_of_two
from repro.util.rng import RngLike

__all__ = ["RDMH"]


class RDMH(Mapper):
    """Recursive-doubling mapping heuristic."""

    pattern = "recursive-doubling"
    name = "rdmh"

    def __init__(self, update_after: int = 2, tie_break: str = "random") -> None:
        if update_after < 1:
            raise ValueError(f"update_after must be >= 1, got {update_after}")
        self.update_after = update_after
        self.tie_break = tie_break

    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        L, M, pool = self._setup(layout, D, rng, self.tie_break)
        p = L.size
        if p == 1:
            return self._finish(M, L)
        if not is_power_of_two(p):
            raise ValueError(f"RDMH requires a power-of-two process count, got {p}")

        mapped = np.zeros(p, dtype=bool)
        mapped[0] = True
        mapped_order = [0]
        ref = 0
        i = p // 2  # start from the last stage
        placed_for_ref = 0
        n_mapped = 1
        while n_mapped < p:
            # Fall back to earlier stages only once later-stage partners
            # of the reference are exhausted (paper Alg. 2 lines 5-7).
            while i >= 1 and mapped[ref ^ i]:
                i //= 2
            if i < 1:
                # All partners of the reference are mapped.  The paper's
                # pseudo-code assumes this never happens before completion;
                # guard it by rewinding to the most recent placement that
                # still has an unmapped partner (keeps the same spirit:
                # prefer recent, large-message placements).
                ref = self._rewind(mapped_order, mapped, p)
                i = p // 2
                placed_for_ref = 0
                continue
            new_rank = ref ^ i
            target = pool.closest_free(int(M[ref]))
            pool.take(target)
            M[new_rank] = target
            mapped[new_rank] = True
            mapped_order.append(new_rank)
            n_mapped += 1
            placed_for_ref += 1
            if placed_for_ref >= self.update_after:
                ref = new_rank       # promote the newest placement
                i = p // 2           # and restart from the last stage
                placed_for_ref = 0
        return self._finish(M, L)

    @staticmethod
    def _rewind(mapped_order, mapped: np.ndarray, p: int) -> int:
        """Most recently mapped rank that still has an unmapped partner."""
        for r in reversed(mapped_order):
            i = p // 2
            while i >= 1:
                if not mapped[r ^ i]:
                    return r
                i //= 2
        raise RuntimeError("no rank with unmapped partners, yet ranks remain")
