"""RDMH — mapping heuristic for recursive doubling (paper Algorithm 2).

Recursive doubling doubles its message size every stage, so the pairs of
the *last* stages matter most.  RDMH therefore walks partners in
decreasing stage order: starting from rank 0, it places ``0 XOR p/2``
(rank 0's last-stage partner) as close as possible to rank 0, then
``0 XOR p/4``, and so on — and after placing two processes with respect to
the current reference it promotes the newest placement to be the new
reference and restarts from the last stage.  The paper motivates the
cadence of two: the newest rank lets the next choice come from the
largest-message stage *and* its partner already touches two mapped ranks.

``update_after`` parameterises that cadence for the ablation bench
(``benchmarks/bench_ablation_rdmh_refcore.py``); 2 is the paper's value.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.mapping.base import GreedyPlacementMapper
from repro.util.bits import is_power_of_two

__all__ = ["RDMH"]


class RDMH(GreedyPlacementMapper):
    """Recursive-doubling mapping heuristic."""

    pattern = "recursive-doubling"
    name = "rdmh"

    def __init__(
        self, update_after: int = 2, tie_break: str = "random", engine: str = "auto"
    ) -> None:
        if update_after < 1:
            raise ValueError(f"update_after must be >= 1, got {update_after}")
        super().__init__(tie_break=tie_break, engine=engine)
        self.update_after = update_after

    def _validate_p(self, p: int) -> None:
        if p > 1 and not is_power_of_two(p):
            raise ValueError(f"RDMH requires a power-of-two process count, got {p}")

    def placements(self, p: int) -> Iterator[Tuple[int, int]]:
        """Partners in decreasing stage order with reference promotion."""
        if p == 1:
            return
        mapped = [False] * p
        mapped[0] = True
        mapped_order = [0]
        ref = 0
        i = p // 2  # start from the last stage
        placed_for_ref = 0
        n_mapped = 1
        while n_mapped < p:
            # Fall back to earlier stages only once later-stage partners
            # of the reference are exhausted (paper Alg. 2 lines 5-7).
            while i >= 1 and mapped[ref ^ i]:
                i //= 2
            if i < 1:
                # All partners of the reference are mapped.  The paper's
                # pseudo-code assumes this never happens before completion;
                # guard it by rewinding to the most recent placement that
                # still has an unmapped partner (keeps the same spirit:
                # prefer recent, large-message placements).
                ref = self._rewind(mapped_order, mapped, p)
                i = p // 2
                placed_for_ref = 0
                continue
            new_rank = ref ^ i
            yield new_rank, ref
            mapped[new_rank] = True
            mapped_order.append(new_rank)
            n_mapped += 1
            placed_for_ref += 1
            if placed_for_ref >= self.update_after:
                ref = new_rank       # promote the newest placement
                i = p // 2           # and restart from the last stage
                placed_for_ref = 0

    @staticmethod
    def _rewind(mapped_order, mapped, p: int) -> int:
        """Most recently mapped rank that still has an unmapped partner."""
        for r in reversed(mapped_order):
            i = p // 2
            while i >= 1:
                if not mapped[r ^ i]:
                    return r
                i //= 2
        raise RuntimeError("no rank with unmapped partners, yet ranks remain")
