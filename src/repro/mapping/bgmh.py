"""BGMH — mapping heuristic for binomial gather (paper Algorithm 5).

In a binomial gather the message over an edge equals the child's whole
subtree, so edge weights grow toward the root.  BGMH therefore picks the
*heaviest remaining edge* each time and maps its unmapped endpoint next to
the mapped one — the same rationale as Hoefler & Snir's general greedy
mapper, but with the edge order derived in closed form from the tree
structure instead of a process-topology graph (paper §V-A4).

Concretely: for ``i = p/2, p/4, ..., 1`` and every already-placed
reference ``r`` with ``r + i < p``, place rank ``r + i`` as close as
possible to ``r``; every new placement joins the reference set.  The
reference set is snapshotted per ``i`` so a rank placed at step ``i``
first becomes a reference at the next (smaller) ``i`` — exactly the
binomial-tree edges.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.mapping.base import GreedyPlacementMapper
from repro.util.bits import ceil_log2

__all__ = ["BGMH"]


class BGMH(GreedyPlacementMapper):
    """Binomial-gather mapping heuristic; valid for any process count."""

    pattern = "binomial-gather"
    name = "bgmh"

    def placements(self, p: int) -> Iterator[Tuple[int, int]]:
        """Binomial-tree edges by decreasing weight (``i``), refs snapshotted."""
        if p == 1:
            return
        refs = [0]  # the set V of potential reference cores
        i = 1 << (ceil_log2(p) - 1)
        while i > 0:
            for ref in list(refs):  # snapshot: new placements join at the next i
                new_rank = ref + i
                if new_rank >= p:
                    continue
                yield new_rank, ref
                refs.append(new_rank)
            i //= 2
