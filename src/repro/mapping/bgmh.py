"""BGMH — mapping heuristic for binomial gather (paper Algorithm 5).

In a binomial gather the message over an edge equals the child's whole
subtree, so edge weights grow toward the root.  BGMH therefore picks the
*heaviest remaining edge* each time and maps its unmapped endpoint next to
the mapped one — the same rationale as Hoefler & Snir's general greedy
mapper, but with the edge order derived in closed form from the tree
structure instead of a process-topology graph (paper §V-A4).

Concretely: for ``i = p/2, p/4, ..., 1`` and every already-placed
reference ``r`` with ``r + i < p``, place rank ``r + i`` as close as
possible to ``r``; every new placement joins the reference set.  The
reference set is snapshotted per ``i`` so a rank placed at step ``i``
first becomes a reference at the next (smaller) ``i`` — exactly the
binomial-tree edges.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mapping.base import Mapper
from repro.util.bits import ceil_log2
from repro.util.rng import RngLike

__all__ = ["BGMH"]


class BGMH(Mapper):
    """Binomial-gather mapping heuristic; valid for any process count."""

    pattern = "binomial-gather"
    name = "bgmh"

    def __init__(self, tie_break: str = "random") -> None:
        self.tie_break = tie_break

    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        L, M, pool = self._setup(layout, D, rng, self.tie_break)
        p = L.size
        if p == 1:
            return self._finish(M, L)

        refs = [0]  # the set V of potential reference cores
        i = 1 << (ceil_log2(p) - 1)
        while i > 0:
            for ref in list(refs):  # snapshot: new placements join at the next i
                new_rank = ref + i
                if new_rank >= p:
                    continue
                target = pool.closest_free(int(M[ref]))
                pool.take(target)
                M[new_rank] = target
                refs.append(new_rank)
            i //= 2
        return self._finish(M, L)
