"""RMH — mapping heuristic for the ring (paper Algorithm 3).

In the ring every rank talks to exactly one fixed successor in all
``p - 1`` stages, so the heuristic is a simple chain: map rank 1 as close
as possible to rank 0, rank 2 as close as possible to rank 1, and so on,
updating the reference at every step.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.mapping.base import GreedyPlacementMapper

__all__ = ["RMH"]


class RMH(GreedyPlacementMapper):
    """Ring mapping heuristic; valid for any process count."""

    pattern = "ring"
    name = "rmh"

    def placements(self, p: int) -> Iterator[Tuple[int, int]]:
        """The chain: each rank placed next to its ring predecessor."""
        for ref in range(p - 1):
            yield ref + 1, ref
