"""RMH — mapping heuristic for the ring (paper Algorithm 3).

In the ring every rank talks to exactly one fixed successor in all
``p - 1`` stages, so the heuristic is a simple chain: map rank 1 as close
as possible to rank 0, rank 2 as close as possible to rank 1, and so on,
updating the reference at every step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mapping.base import Mapper
from repro.util.rng import RngLike

__all__ = ["RMH"]


class RMH(Mapper):
    """Ring mapping heuristic; valid for any process count."""

    pattern = "ring"
    name = "rmh"

    def __init__(self, tie_break: str = "random") -> None:
        self.tie_break = tie_break

    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        L, M, pool = self._setup(layout, D, rng, self.tie_break)
        p = L.size
        ref = 0
        for _ in range(p - 1):
            new_rank = (ref + 1) % p
            target = pool.closest_free(int(M[ref]))
            pool.take(target)
            M[new_rank] = target
            ref = new_rank
        return self._finish(M, L)
