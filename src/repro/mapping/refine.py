"""Pairwise-swap refinement of mappings (extension).

A local-search post-pass applicable to *any* mapper's output: repeatedly
swap the cores of two ranks when doing so lowers the pattern's hop-bytes.
The paper's heuristics are construction-only (greedy, one placement per
rank); this refiner quantifies how much a cheap improvement phase adds on
top — the classic construction-vs-refinement question in topology mapping
(cf. Hoefler & Snir [3]).  The refinement ablation bench compares raw vs
refined heuristics on quality, latency and cost.

The swap neighbourhood is restricted to ranks incident to the heaviest
stretched edges, so a pass is ``O(k · p)`` rather than ``O(p^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mapping.patterns import PatternGraph
from repro.util.rng import RngLike, make_rng

__all__ = ["SwapRefiner", "RefinementResult"]


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of one refinement run."""

    mapping: np.ndarray
    initial_hop_bytes: float
    final_hop_bytes: float
    swaps: int
    passes: int

    @property
    def improvement_pct(self) -> float:
        if self.initial_hop_bytes == 0:
            return 0.0
        return 100.0 * (self.initial_hop_bytes - self.final_hop_bytes) / self.initial_hop_bytes


class SwapRefiner:
    """Hop-bytes-descent refinement over rank-pair swaps.

    Parameters
    ----------
    graph:
        The communication pattern whose hop-bytes is minimised.
    max_passes:
        Upper bound on sweeps over the candidate set.
    candidates_per_pass:
        How many of the heaviest stretched edges seed each sweep.
    """

    def __init__(
        self,
        graph: PatternGraph,
        max_passes: int = 4,
        candidates_per_pass: int = 64,
    ) -> None:
        if max_passes < 1:
            raise ValueError(f"max_passes must be >= 1, got {max_passes}")
        if candidates_per_pass < 1:
            raise ValueError(f"candidates_per_pass must be >= 1, got {candidates_per_pass}")
        self.graph = graph
        self.max_passes = max_passes
        self.candidates_per_pass = candidates_per_pass
        self._adj = graph.adjacency()

    # ------------------------------------------------------------------
    def _rank_cost(self, rank: int, M: np.ndarray, D: np.ndarray) -> float:
        """Hop-bytes of all edges incident to ``rank`` under ``M``."""
        total = 0.0
        for nb, w in self._adj[rank]:
            total += w * D[M[rank], M[nb]]
        return total

    def _swap_gain(self, a: int, b: int, M: np.ndarray, D: np.ndarray) -> float:
        """Hop-bytes saved by swapping the cores of ranks ``a`` and ``b``."""
        before = self._rank_cost(a, M, D) + self._rank_cost(b, M, D)
        M[a], M[b] = M[b], M[a]
        after = self._rank_cost(a, M, D) + self._rank_cost(b, M, D)
        M[a], M[b] = M[b], M[a]
        # edges between a and b are counted twice on both sides — harmless
        # for the sign of the gain (their contribution changes by the same
        # amount in both terms).
        return before - after

    # ------------------------------------------------------------------
    def refine(
        self, mapping: Sequence[int], D: np.ndarray, rng: RngLike = 0
    ) -> RefinementResult:
        """Refine ``mapping`` in place-semantics-free fashion (copy)."""
        M = np.asarray(mapping, dtype=np.int64).copy()
        D = np.asarray(D)
        generator = make_rng(rng)
        g = self.graph
        if g.n_edges == 0:
            return RefinementResult(M, 0.0, 0.0, 0, 0)

        def total_hop_bytes() -> float:
            return float(np.sum(g.weight * D[M[g.src], M[g.dst]]))

        initial = total_hop_bytes()
        swaps = 0
        passes = 0
        for _ in range(self.max_passes):
            passes += 1
            improved = False
            # seed with the heaviest stretched edges under the current M
            stretch = g.weight * D[M[g.src], M[g.dst]]
            order = np.argsort(stretch)[::-1][: self.candidates_per_pass]
            seeds = set()
            for e in order:
                seeds.add(int(g.src[e]))
                seeds.add(int(g.dst[e]))
            partners = generator.permutation(M.size)
            for a in seeds:
                # try swapping a with each of a small random partner sample
                best_gain, best_b = 0.0, -1
                for b in partners[:32]:
                    b = int(b)
                    if b == a:
                        continue
                    gain = self._swap_gain(a, b, M, D)
                    if gain > best_gain + 1e-12:
                        best_gain, best_b = gain, b
                if best_b >= 0:
                    M[a], M[best_b] = M[best_b], M[a]
                    swaps += 1
                    improved = True
            if not improved:
                break
        return RefinementResult(
            mapping=M,
            initial_hop_bytes=initial,
            final_hop_bytes=total_hop_bytes(),
            swaps=swaps,
            passes=passes,
        )
