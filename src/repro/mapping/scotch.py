"""Scotch-like general-purpose graph mapper (the paper's baseline).

Scotch [12] maps a *guest* graph (the communication pattern) onto a *host*
architecture by dual recursive bipartitioning: recursively split the guest
graph minimising edge cut while splitting the host into topologically
close halves, and assign the parts to each other.  This module implements
that flow honestly from scratch:

* the host (core set) is split by distance structure — two far-apart seed
  cores, every core joins the nearer seed's half;
* the guest is split by greedy graph growing followed by
  Kernighan-Lin-style pairwise-swap refinement;
* recursion bottoms out at singleton rank-core assignments.

Like the real Scotch, this mapper (a) must be handed an explicitly built
pattern graph (the overhead the paper's heuristics avoid), (b) knows
nothing about the pattern's stage/message-size structure beyond edge
weights, and (c) does orders of magnitude more work than the closed-form
heuristics — the three properties behind the Fig. 3-7 comparisons.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.mapping.base import Mapper, as_distance_lookup
from repro.mapping.patterns import PatternGraph
from repro.util.rng import RngLike, make_rng

__all__ = ["ScotchLikeMapper"]


class ScotchLikeMapper(Mapper):
    """Dual-recursive-bipartitioning mapper over an explicit pattern graph.

    Parameters
    ----------
    graph:
        The guest communication graph (see :mod:`repro.mapping.patterns`).
    refine_passes:
        KL refinement passes per bipartition level.
    """

    pattern = "*"
    name = "scotch-like"

    def __init__(self, graph: PatternGraph, refine_passes: int = 4) -> None:
        if refine_passes < 0:
            raise ValueError(f"refine_passes must be >= 0, got {refine_passes}")
        self.graph = graph
        self.refine_passes = refine_passes

    # ------------------------------------------------------------------
    def map(self, layout: Sequence[int], D: np.ndarray, rng: RngLike = 0) -> np.ndarray:
        L = np.asarray(layout, dtype=np.int64)
        if L.size != self.graph.p:
            raise ValueError(
                f"layout has {L.size} processes but the pattern graph has {self.graph.p}"
            )
        generator = make_rng(rng)
        M = np.full(L.size, -1, dtype=np.int64)
        adj = self.graph.adjacency()
        self._recurse(
            np.arange(L.size, dtype=np.int64), L.copy(), M, adj, as_distance_lookup(D), generator
        )
        return self._finish(M, L)

    # ------------------------------------------------------------------
    def _recurse(
        self,
        ranks: np.ndarray,
        cores: np.ndarray,
        M: np.ndarray,
        adj: List[List[Tuple[int, float]]],
        D: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        n = ranks.size
        if n == 1:
            M[ranks[0]] = cores[0]
            return
        if n == 2:
            # Trivial level: orientation is arbitrary for a 2-core host.
            M[ranks[0]] = cores[0]
            M[ranks[1]] = cores[1]
            return
        n_a = n // 2
        cores_a, cores_b = self._split_cores(cores, n_a, D)
        side = self._split_ranks(ranks, n_a, adj, rng)
        self._recurse(ranks[~side], cores_a, M, adj, D, rng)
        self._recurse(ranks[side], cores_b, M, adj, D, rng)

    # ------------------------------------------------------------------
    @staticmethod
    def _split_cores(cores: np.ndarray, n_a: int, D: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split the host cores into two topologically coherent halves.

        Seeds: the first core and the core farthest from it; every core is
        ranked by (distance-to-seed-A minus distance-to-seed-B) and the
        closest ``n_a`` to seed A form the first half.
        """
        c1 = int(cores[0])
        d1 = D[c1, cores]
        c2 = int(cores[int(np.argmax(d1))])
        score = d1 - D[c2, cores]
        order = np.argsort(score, kind="stable")
        return cores[order[:n_a]], cores[order[n_a:]]

    # ------------------------------------------------------------------
    def _split_ranks(
        self,
        ranks: np.ndarray,
        n_a: int,
        adj: List[List[Tuple[int, float]]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Bipartition the induced guest subgraph, minimising edge cut.

        Returns a boolean array over ``ranks``: False = part A (size
        ``n_a``), True = part B.
        """
        n = ranks.size
        local = {int(r): i for i, r in enumerate(ranks)}
        # Induced weighted adjacency in local indices.
        ladj: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for i, r in enumerate(ranks):
            for nb, w in adj[int(r)]:
                j = local.get(nb)
                if j is not None:
                    ladj[i].append((j, w))

        side = self._grow_initial(n, n_a, ladj)
        for _ in range(self.refine_passes):
            if not self._kl_pass(side, ladj, rng):
                break
        return side

    @staticmethod
    def _grow_initial(n: int, n_a: int, ladj: List[List[Tuple[int, float]]]) -> np.ndarray:
        """Greedy graph growing: grow part A from vertex 0 by max connection."""
        side = np.ones(n, dtype=bool)  # True = B
        conn = np.zeros(n)
        in_a = np.zeros(n, dtype=bool)
        frontier_pick = 0
        for _ in range(n_a):
            in_a[frontier_pick] = True
            side[frontier_pick] = False
            conn[frontier_pick] = -np.inf
            for nb, w in ladj[frontier_pick]:
                if not in_a[nb]:
                    conn[nb] += w
            nxt = int(np.argmax(conn))
            if conn[nxt] == -np.inf:  # pragma: no cover - n_a == n guard
                break
            if conn[nxt] <= 0.0:
                # Disconnected remainder: take the lowest unassigned vertex.
                unassigned = np.flatnonzero(~in_a & (conn > -np.inf))
                if unassigned.size == 0:
                    break
                nxt = int(unassigned[0])
            frontier_pick = nxt
        return side

    @staticmethod
    def _kl_pass(
        side: np.ndarray, ladj: List[List[Tuple[int, float]]], rng: np.random.Generator
    ) -> bool:
        """One Kernighan-Lin pairwise-swap pass; True if anything improved."""
        n = side.size
        # D(v) = external - internal incident weight.
        dval = np.zeros(n)
        for v in range(n):
            for nb, w in ladj[v]:
                dval[v] += w if side[nb] != side[v] else -w
        improved = False
        max_swaps = max(1, n // 4)
        for _ in range(max_swaps):
            a_idx = np.flatnonzero(~side)
            b_idx = np.flatnonzero(side)
            if a_idx.size == 0 or b_idx.size == 0:
                break
            u = int(a_idx[int(np.argmax(dval[a_idx]))])
            v = int(b_idx[int(np.argmax(dval[b_idx]))])
            w_uv = 0.0
            for nb, w in ladj[u]:
                if nb == v:
                    w_uv += w
            gain = dval[u] + dval[v] - 2.0 * w_uv
            if gain <= 1e-12:
                break
            # Swap u and v across the cut and update D values locally.
            side[u], side[v] = True, False
            improved = True
            for x in (u, v):
                dval[x] = 0.0
                for nb, w in ladj[x]:
                    dval[x] += w if side[nb] != side[x] else -w
            for nb, w in ladj[u]:
                if nb not in (u, v):
                    dval[nb] += 2.0 * w if side[nb] != side[u] else -2.0 * w
            for nb, w in ladj[v]:
                if nb not in (u, v):
                    dval[nb] += 2.0 * w if side[nb] != side[v] else -2.0 * w
        return improved
