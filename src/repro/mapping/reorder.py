"""Run-time rank reordering (paper §IV).

The top of the mapping stack: given a communication-pattern name, an
initial layout and the distance matrix, produce a
:class:`~repro.collectives.correctness.RankReordering` — timing both the
mapping algorithm itself and (for the graph-based baselines) the
pattern-graph construction, since avoiding that construction is one of
the heuristics' selling points (§V, Fig. 7b).

"The whole rank reordering process happens only once at run-time": callers
cache the returned reordering per (communicator, pattern) and reuse it for
every subsequent collective call, which is what
:class:`repro.simmpi.communicator.VirtualComm` does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Type

import numpy as np

from repro.collectives.correctness import RankReordering
from repro.mapping.base import Mapper, map_batch
from repro.mapping.bbmh import BBMH
from repro.mapping.bgmh import BGMH
from repro.mapping.bruckmh import BruckMH
from repro.mapping.cache import MappingCache, global_mapping_cache, mapping_cache_key
from repro.mapping.greedy import GreedyGraphMapper
from repro.mapping.patterns import build_pattern
from repro.mapping.rdmh import RDMH
from repro.mapping.rmh import RMH
from repro.mapping.scotch import ScotchLikeMapper
from repro.util.rng import RngLike

__all__ = [
    "HEURISTICS",
    "MAPPER_KINDS",
    "ReorderResult",
    "reorder_ranks",
    "reorder_all",
]

#: The paper's fine-tuned heuristic for each communication pattern.
HEURISTICS: Dict[str, Type[Mapper]] = {
    "recursive-doubling": RDMH,
    "ring": RMH,
    "binomial-bcast": BBMH,
    "binomial-gather": BGMH,
    "bruck": BruckMH,
}

MAPPER_KINDS = ("heuristic", "scotch", "greedy")


@dataclass
class ReorderResult:
    """Outcome of one reordering: the permutation plus its overheads."""

    reordering: RankReordering
    pattern: str
    mapper_name: str
    map_seconds: float
    graph_seconds: float = 0.0
    #: True when the permutation came out of the mapping cache; the
    #: recorded seconds are then those of the original computation.
    cached: bool = False

    @property
    def total_seconds(self) -> float:
        """Full mapping overhead (graph construction + mapping)."""
        return self.map_seconds + self.graph_seconds

    @property
    def mapping(self) -> np.ndarray:
        return self.reordering.mapping


def _cache_for(cache) -> "MappingCache | None":
    """Resolve the ``cache`` argument of :func:`reorder_ranks`."""
    if cache == "auto":
        return global_mapping_cache()
    if cache == "off" or cache is None:
        return None
    if isinstance(cache, MappingCache):
        return cache
    raise ValueError(f"cache must be 'auto', 'off', or a MappingCache, got {cache!r}")


def reorder_ranks(
    pattern: str,
    layout: Sequence[int],
    D: np.ndarray,
    kind: str = "heuristic",
    rng: RngLike = 0,
    cache="auto",
    **mapper_kwargs,
) -> ReorderResult:
    """Compute a rank reordering for ``pattern``.

    Parameters
    ----------
    pattern:
        One of :data:`HEURISTICS`'s keys ("recursive-doubling", "ring",
        "binomial-bcast", "binomial-gather", "bruck").
    layout:
        Initial layout ``L[old_rank] = core``.
    D:
        Core-by-core distances: the dense matrix, or an
        :class:`~repro.topology.implicit.ImplicitDistances` backend.
    kind:
        ``"heuristic"`` — the paper's fine-tuned mapper for the pattern;
        ``"scotch"`` — the Scotch-like recursive-bipartitioning baseline;
        ``"greedy"`` — the Hoefler-Snir-style greedy baseline.
    cache:
        ``"auto"`` (default) — consult the process-global
        :func:`~repro.mapping.cache.global_mapping_cache` whenever the
        result is content-addressable: ``D`` carries a topology
        fingerprint and ``rng`` is a plain integer seed.  ``"off"``
        disables caching; a :class:`~repro.mapping.cache.MappingCache`
        instance uses that cache.
    mapper_kwargs:
        Forwarded to the mapper constructor (e.g. ``tie_break="first"``,
        ``traversal=...``, ``update_after=...``).
    """
    if kind not in MAPPER_KINDS:
        raise ValueError(f"kind must be one of {MAPPER_KINDS}, got {kind!r}")
    L = np.asarray(layout, dtype=np.int64)
    p = L.size

    cache_obj = _cache_for(cache)
    key = None
    if cache_obj is not None:
        fp = getattr(D, "fingerprint", None)
        if callable(fp):  # ClusterTopology-style callable fingerprints
            fp = fp()
        if isinstance(fp, str) and isinstance(rng, (int, np.integer)):
            key = mapping_cache_key(fp, pattern, kind, L, int(rng), mapper_kwargs)
            hit = cache_obj.get_arrays(key)
            if hit is not None:
                entry, cached_layout, cached_mapping = hit
                if np.array_equal(cached_layout, L):
                    return ReorderResult(
                        reordering=RankReordering(
                            # Copy: the arrays are the cache's own views.
                            layout=L, mapping=cached_mapping.copy()
                        ),
                        pattern=pattern,
                        mapper_name=entry.get("mapper_name", "mapper"),
                        map_seconds=float(entry.get("map_seconds", 0.0)),
                        graph_seconds=float(entry.get("graph_seconds", 0.0)),
                        cached=True,
                    )

    graph_seconds = 0.0
    if kind == "heuristic":
        try:
            mapper_cls = HEURISTICS[pattern]
        except KeyError:
            raise KeyError(f"no fine-tuned heuristic for pattern {pattern!r}")
        mapper: Mapper = mapper_cls(**mapper_kwargs)
    else:
        # General-purpose mappers must build the process-topology graph
        # first — that construction is part of their measured overhead.
        t0 = time.perf_counter()
        graph = build_pattern(pattern, p)
        graph_seconds = time.perf_counter() - t0
        if kind == "scotch":
            mapper = ScotchLikeMapper(graph, **mapper_kwargs)
        else:
            mapper = GreedyGraphMapper(graph, **mapper_kwargs)

    t0 = time.perf_counter()
    M = mapper.map(L, D, rng=rng)
    map_seconds = time.perf_counter() - t0

    if key is not None:
        cache_obj.put(
            key,
            {
                "mapping": M.tolist(),
                "layout": L.tolist(),
                "pattern": pattern,
                "kind": kind,
                "mapper_name": mapper.name,
                "map_seconds": map_seconds,
                "graph_seconds": graph_seconds,
            },
        )

    return ReorderResult(
        reordering=RankReordering(layout=L, mapping=M),
        pattern=pattern,
        mapper_name=mapper.name,
        map_seconds=map_seconds,
        graph_seconds=graph_seconds,
    )


def reorder_all(
    layout: Sequence[int],
    D,
    patterns: "Sequence[str] | None" = None,
    rng: RngLike = 0,
    cache="auto",
    **mapper_kwargs,
) -> Dict[str, ReorderResult]:
    """Reorder one topology under every fine-tuned heuristic in one pass.

    Batched equivalent of one :func:`reorder_ranks` call per pattern
    with ``kind="heuristic"`` — same results, same cache entries, same
    rng-stream consumption (patterns are processed in the given order,
    so a shared live ``Generator`` draws exactly as the sequential calls
    would) — but the per-topology setup is paid once instead of once per
    heuristic: the backend fingerprint and layout serialisation for the
    cache keys, and (via :func:`repro.mapping.base.map_batch`) the
    pool's group structure and the jit tier's kernel arrays.

    This is the entry point the evaluator, the sweep cells and the
    fault-recovery comparison use whenever they need several patterns'
    reorderings of the same layout.

    Parameters
    ----------
    layout / D / cache / mapper_kwargs:
        As in :func:`reorder_ranks`.
    rng:
        One :data:`~repro.util.rng.RngLike` shared by every pattern — an
        integer seed (each heuristic then draws from its own fresh
        stream, exactly like sequential calls with the same seed) or a
        live Generator (shared, consumed in pattern order; bypasses the
        cache) — or a ``{pattern: RngLike}`` mapping for callers whose
        seeds are pattern-derived (e.g. fault recovery).
    patterns:
        The patterns to map, default: every key of :data:`HEURISTICS`.

    Returns
    -------
    dict
        ``{pattern: ReorderResult}`` in ``patterns`` order.
    """
    if patterns is None:
        patterns = tuple(HEURISTICS)
    unknown = [pt for pt in patterns if pt not in HEURISTICS]
    if unknown:
        raise KeyError(f"no fine-tuned heuristic for pattern(s) {unknown!r}")
    L = np.asarray(layout, dtype=np.int64)
    if isinstance(rng, Mapping):
        missing_rng = [pt for pt in patterns if pt not in rng]
        if missing_rng:
            raise KeyError(f"rng mapping lacks entries for pattern(s) {missing_rng!r}")
        rng_of = dict(rng)
    else:
        rng_of = {pt: rng for pt in patterns}

    # --- cache lookups (fingerprint + layout serialised once) ---------
    cache_obj = _cache_for(cache)
    keys: Dict[str, object] = {}
    results: Dict[str, ReorderResult] = {}
    if cache_obj is not None:
        fp = getattr(D, "fingerprint", None)
        if callable(fp):
            fp = fp()
        if isinstance(fp, str):
            for pt in patterns:
                if not isinstance(rng_of[pt], (int, np.integer)):
                    continue  # live Generators bypass the cache
                key = mapping_cache_key(
                    fp, pt, "heuristic", L, int(rng_of[pt]), mapper_kwargs
                )
                keys[pt] = key
                hit = cache_obj.get_arrays(key)
                if hit is not None:
                    entry, cached_layout, cached_mapping = hit
                    if not np.array_equal(cached_layout, L):
                        continue
                    results[pt] = ReorderResult(
                        reordering=RankReordering(
                            layout=L, mapping=cached_mapping.copy()
                        ),
                        pattern=pt,
                        mapper_name=entry.get("mapper_name", "mapper"),
                        map_seconds=float(entry.get("map_seconds", 0.0)),
                        graph_seconds=float(entry.get("graph_seconds", 0.0)),
                        cached=True,
                    )

    # --- batched mapping of the misses --------------------------------
    misses = [pt for pt in patterns if pt not in results]
    if misses:
        mappers = [HEURISTICS[pt](**mapper_kwargs) for pt in misses]
        seconds: list = []
        mappings = map_batch(
            mappers, L, D, [rng_of[pt] for pt in misses], seconds_out=seconds
        )
        for pt, mapper, M, secs in zip(misses, mappers, mappings, seconds):
            key = keys.get(pt)
            if key is not None:
                cache_obj.put(
                    key,
                    {
                        "mapping": M.tolist(),
                        "layout": L.tolist(),
                        "pattern": pt,
                        "kind": "heuristic",
                        "mapper_name": mapper.name,
                        "map_seconds": secs,
                        "graph_seconds": 0.0,
                    },
                )
            results[pt] = ReorderResult(
                reordering=RankReordering(layout=L, mapping=M),
                pattern=pt,
                mapper_name=mapper.name,
                map_seconds=secs,
                graph_seconds=0.0,
            )

    return {pt: results[pt] for pt in patterns}
