"""Mapping-quality metrics, independent of the timing engine.

Classic topology-aware-mapping objectives: hop-bytes (weighted
communication volume times distance), dilation (per-edge distance), and
schedule-level link congestion.  Used by tests to assert that a heuristic
actually improves its target pattern and by the ablation benches to
compare mappers without going through latency simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.collectives.schedule import Schedule
from repro.mapping.patterns import PatternGraph
from repro.simmpi.engine import TimingEngine

__all__ = ["hop_bytes", "dilation_stats", "schedule_max_congestion", "MappingQuality", "quality"]


def hop_bytes(graph: PatternGraph, mapping: Sequence[int], D: np.ndarray) -> float:
    """Σ over edges of weight × distance between the mapped endpoints."""
    M = np.asarray(mapping, dtype=np.int64)
    if graph.n_edges == 0:
        return 0.0
    return float(np.sum(graph.weight * np.asarray(D)[M[graph.src], M[graph.dst]]))


def dilation_stats(graph: PatternGraph, mapping: Sequence[int], D: np.ndarray):
    """(mean, max) unweighted edge distance under the mapping."""
    M = np.asarray(mapping, dtype=np.int64)
    if graph.n_edges == 0:
        return 0.0, 0.0
    d = np.asarray(D)[M[graph.src], M[graph.dst]]
    return float(d.mean()), float(d.max())


def schedule_max_congestion(
    engine: TimingEngine, schedule: Schedule, mapping: Sequence[int], block_bytes: float
) -> float:
    """Largest per-link byte load over all stages (repeats not multiplied)."""
    M = np.asarray(mapping, dtype=np.int64)
    worst = 0.0
    for stage in schedule.stages:
        worst = max(worst, float(engine.link_loads(stage, M, block_bytes).max()))
    return worst


@dataclass(frozen=True)
class MappingQuality:
    """Bundle of the three metrics for one (pattern, mapping) pair."""

    hop_bytes: float
    mean_dilation: float
    max_dilation: float

    def __str__(self) -> str:
        return (
            f"hop-bytes={self.hop_bytes:.1f} "
            f"dilation(mean/max)={self.mean_dilation:.2f}/{self.max_dilation:.2f}"
        )


def quality(graph: PatternGraph, mapping: Sequence[int], D: np.ndarray) -> MappingQuality:
    """Compute all metrics at once."""
    mean_d, max_d = dilation_stats(graph, mapping, D)
    return MappingQuality(
        hop_bytes=hop_bytes(graph, mapping, D),
        mean_dilation=mean_d,
        max_dilation=max_d,
    )
