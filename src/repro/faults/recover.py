"""Shrink-and-remap recovery, priced policy-by-policy.

After a fail-stop fault (:class:`~repro.faults.plan.FaultStopError`) a
runtime has three options, and this module prices all of them
side-by-side so the trade-off the paper never had to face — a *stale*
topology-aware reordering after the machine changed under it — becomes
measurable:

* **fail-stop** — abort the job (MPI's default).  Latency: infinite.
* **shrink-keep-mapping** — ULFM shrink only: dead ranks drop out, the
  survivors keep whatever (possibly reordered) binding they had, holes
  and all.  The old mapping was optimised for a communicator that no
  longer exists.
* **shrink-remap** — shrink, then re-run the registered
  topology-aware heuristic (RDMH/RMH/BBMH/BGMH/BruckMH — whatever
  matches the pattern) on the surviving core pool, exactly as the
  paper's §IV reordering ran at startup.  The remapped binding is
  *hedged*: recovery prices both candidates on the simulated engine and
  adopts the remap only where it is no slower than keeping the old
  mapping, so shrink-remap is never worse than shrink-keep-mapping.

Degradations from the same :class:`~repro.faults.plan.FaultPlan`
(retrained HCAs, damaged cables) persist into the recovered run: the
post-recovery engine is built with the plan's final bandwidth-scale
vector.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from repro.collectives.allgather_bruck import BruckAllgather
from repro.collectives.allgather_rd import RecursiveDoublingAllgather
from repro.collectives.allgather_rd_nonpow2 import FoldedRecursiveDoublingAllgather
from repro.collectives.allgather_ring import RingAllgather
from repro.collectives.bcast_binomial import BinomialBroadcast
from repro.collectives.gather_binomial import BinomialGather
from repro.collectives.schedule import CollectiveAlgorithm
from repro.faults.plan import FaultPlan
from repro.faults.shrink import shrink_layout
from repro.mapping.reorder import HEURISTICS, ReorderResult, reorder_all, reorder_ranks
from repro.simmpi.costmodel import CostModel
from repro.simmpi.engine import TimingEngine
from repro.topology.cluster import ClusterTopology
from repro.util.bits import is_power_of_two

__all__ = [
    "RECOVERY_POLICIES",
    "PolicyPricing",
    "RecoveryComparison",
    "recover",
    "compare_recovery_policies",
]

RECOVERY_POLICIES = ("fail-stop", "shrink-keep", "shrink-remap")


def _seed_for(*parts) -> int:
    """Deterministic recovery seed (content-derived, order-independent)."""
    blob = "|".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.sha1(blob).digest()[:4], "big")


def _pricing_algorithm(pattern: str, p: int) -> CollectiveAlgorithm:
    """The collective used to price a pattern's mapping at size ``p``.

    Each registered heuristic pattern gets the matching registered
    algorithm; recursive doubling falls back to its folded non-power-of-
    two variant, since shrink rarely leaves a power-of-two communicator.
    """
    if pattern == "recursive-doubling":
        if is_power_of_two(p):
            return RecursiveDoublingAllgather()
        return FoldedRecursiveDoublingAllgather()
    if pattern == "ring":
        return RingAllgather()
    if pattern == "bruck":
        return BruckAllgather()
    if pattern == "binomial-bcast":
        return BinomialBroadcast()
    if pattern == "binomial-gather":
        return BinomialGather()
    raise KeyError(f"no pricing algorithm for pattern {pattern!r}")


def recover(
    cluster: ClusterTopology,
    layout: Sequence[int],
    failed_nodes: Iterable[int],
    pattern: str,
    D: Optional[np.ndarray] = None,
    kind: str = "heuristic",
    rng: Optional[int] = None,
) -> ReorderResult:
    """Shrink ``layout`` past the dead nodes and re-run the mapper.

    This is the paper's §IV run-time reordering, re-invoked on the
    surviving core pool — the core of the *shrink-remap* policy.  The
    returned result's ``layout`` is the shrunken (keep-mapping) binding
    and its ``mapping`` the freshly remapped one.
    """
    survivors = shrink_layout(cluster, layout, failed_nodes)
    if D is None:
        # Implicit backend: no dense matrix, and its fingerprint makes the
        # remap content-addressable in the mapping cache, so repeated
        # recovery drills over the same survivor pool hit the cache.
        D = cluster.implicit_distances()
    if rng is None:
        rng = _seed_for("recover", pattern, kind, survivors.tobytes().hex())
    map_pattern = pattern
    if pattern == "recursive-doubling" and not is_power_of_two(survivors.size):
        # Shrink rarely leaves a power of two, where both RDMH and the RD
        # pattern graph are undefined.  The folded variant that actually
        # runs at such sizes communicates in bruck-style 2^s shifts, so
        # map with the bruck pattern (BruckMH / bruck graph) instead.
        map_pattern = "bruck"
    return reorder_ranks(map_pattern, survivors, D, kind=kind, rng=rng)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyPricing:
    """One policy's latency across the priced sizes."""

    policy: str
    completed: bool
    seconds: np.ndarray                        # per size; +inf when aborted
    mapper: str = "none"
    remap_adopted: Optional[np.ndarray] = None  # per size (shrink-remap only)


@dataclass
class RecoveryComparison:
    """Three recovery policies priced side-by-side for one pattern."""

    pattern: str
    heuristic: str
    p_before: int
    p_after: int
    failed_nodes: tuple
    sizes: np.ndarray
    policies: Dict[str, PolicyPricing]

    def summary(self) -> str:
        """Readable per-size policy table."""
        keep = self.policies["shrink-keep"].seconds
        remap = self.policies["shrink-remap"].seconds
        adopted = self.policies["shrink-remap"].remap_adopted
        lines = [
            f"{self.pattern} [{self.heuristic}] after node(s) "
            f"{list(self.failed_nodes)} fail: p {self.p_before} -> {self.p_after}"
        ]
        lines.append(
            f"  {'size':>10} {'fail-stop':>10} {'shrink-keep':>13} "
            f"{'shrink-remap':>13} {'gain':>7}  remapped"
        )
        for k, bb in enumerate(self.sizes):
            gain = (
                100.0 * (keep[k] - remap[k]) / keep[k] if keep[k] > 0 else 0.0
            )
            lines.append(
                f"  {int(bb):>10} {'aborted':>10} {keep[k] * 1e6:>11.1f}us "
                f"{remap[k] * 1e6:>11.1f}us {gain:>6.1f}%  "
                f"{'yes' if adopted is not None and adopted[k] else 'no'}"
            )
        return "\n".join(lines)


def compare_recovery_policies(
    cluster: ClusterTopology,
    layout: Sequence[int],
    faults: Union[FaultPlan, Iterable[int]],
    sizes: Sequence[float],
    patterns: Optional[Sequence[str]] = None,
    kind: str = "heuristic",
    cost_model: Optional[CostModel] = None,
    D: Optional[np.ndarray] = None,
) -> List[RecoveryComparison]:
    """Price fail-stop / shrink-keep / shrink-remap for every heuristic.

    ``faults`` is either a :class:`FaultPlan` (dead nodes come from its
    node-fail events; its degradations persist into the recovered
    engine) or a plain collection of failed node ids.  One
    :class:`RecoveryComparison` is returned per pattern in ``patterns``
    (default: every registered heuristic pattern), each priced through
    the batched multi-size engine pipeline.
    """
    if isinstance(faults, FaultPlan):
        faults.validate(cluster)
        failed: Set[int] = set(faults.failed_nodes)
        scale = faults.final_beta_scale(cluster)
    else:
        failed = {int(n) for n in faults}
        scale = None
    if not failed:
        raise ValueError("fault scenario contains no node failures to recover from")

    L = np.asarray(layout, dtype=np.int64)
    survivors = shrink_layout(cluster, L, failed)
    if D is None:
        D = cluster.implicit_distances()
    engine = TimingEngine(cluster, cost_model, link_beta_scale=scale)
    sz = np.asarray(list(sizes), dtype=np.float64)
    aborted = np.full(sz.size, np.inf)
    failed_tuple = tuple(sorted(failed))

    pattern_list = list(patterns) if patterns is not None else sorted(HEURISTICS)
    # Batch the remaps: every pattern that maps under its own name (no
    # non-power-of-two recursive-doubling -> bruck substitution) runs
    # through one reorder_all pass over the survivor pool — shared
    # fingerprinting and pool structure, per-pattern content-derived
    # seeds, identical results and cache entries to recover() itself.
    remapped: Dict[str, ReorderResult] = {}
    if kind == "heuristic":
        batchable = [
            pt
            for pt in pattern_list
            if pt in HEURISTICS
            and not (pt == "recursive-doubling" and not is_power_of_two(survivors.size))
        ]
        if batchable:
            seeds = {
                pt: _seed_for("recover", pt, kind, survivors.tobytes().hex())
                for pt in batchable
            }
            remapped = reorder_all(survivors, D, patterns=batchable, rng=seeds)

    out: List[RecoveryComparison] = []
    for pattern in pattern_list:
        alg = _pricing_algorithm(pattern, survivors.size)
        sched = alg.schedule(survivors.size)
        keep = engine.evaluate_sizes(sched, survivors, sz).total_seconds
        res = remapped.get(pattern)
        if res is None:
            res = recover(cluster, L, failed, pattern, D=D, kind=kind)
        fresh = engine.evaluate_sizes(sched, res.mapping, sz).total_seconds
        adopted = fresh <= keep
        hedged = np.where(adopted, fresh, keep)
        heuristic = res.mapper_name
        out.append(
            RecoveryComparison(
                pattern=pattern,
                heuristic=heuristic,
                p_before=int(L.size),
                p_after=int(survivors.size),
                failed_nodes=failed_tuple,
                sizes=sz,
                policies={
                    "fail-stop": PolicyPricing(
                        policy="fail-stop", completed=False, seconds=aborted
                    ),
                    "shrink-keep": PolicyPricing(
                        policy="shrink-keep",
                        completed=True,
                        seconds=keep,
                        mapper="keep",
                    ),
                    "shrink-remap": PolicyPricing(
                        policy="shrink-remap",
                        completed=True,
                        seconds=hedged,
                        mapper=heuristic,
                        remap_adopted=adopted,
                    ),
                },
            )
        )
    return out
