"""Fault injection and shrink-and-remap recovery.

The paper computes one reordered communicator at startup and assumes the
cluster stays healthy; this package models what happens when it does not
(see ``docs/robustness.md``):

* :mod:`repro.faults.plan` — declarative fault scenarios (node
  failures, HCA retrains, cable degradations, each with an onset) that
  both timing engines accept via their ``fault_plan`` argument;
* :mod:`repro.faults.shrink` — ULFM-style rank-space contraction past
  the dead nodes;
* :mod:`repro.faults.recover` — the fail-stop / shrink-keep-mapping /
  shrink-remap policies priced side-by-side, with the paper's mapping
  heuristics re-run on the surviving core pool.
"""

from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    FaultStopError,
    cable_degradation,
    hca_retrain,
    single_node_failure,
)
from repro.faults.recover import (
    RECOVERY_POLICIES,
    PolicyPricing,
    RecoveryComparison,
    compare_recovery_policies,
    recover,
)
from repro.faults.shrink import (
    shrink_layout,
    shrink_reordering,
    surviving_ranks,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultStopError",
    "single_node_failure",
    "hca_retrain",
    "cable_degradation",
    "RECOVERY_POLICIES",
    "PolicyPricing",
    "RecoveryComparison",
    "recover",
    "compare_recovery_policies",
    "shrink_layout",
    "shrink_reordering",
    "surviving_ranks",
]
