"""ULFM-style communicator shrink.

MPI's User-Level Failure Mitigation recovers from a fail-stop fault by
building a new communicator from the survivors (``MPI_Comm_shrink``):
dead processes are dropped and the remaining ranks are renumbered
densely, preserving their relative order.  The physical fabric is
unchanged — dead nodes still occupy their leaf ports, survivors keep
their cores — so all routing, distances and link ids stay valid; only
the *rank space* contracts.

This module implements that contraction over the repo's layout/mapping
arrays, and :meth:`repro.simmpi.communicator.VirtualComm.shrink` /
:meth:`repro.topology.cluster.ClusterTopology.shrink` expose it on the
user-facing objects.
"""

from __future__ import annotations

from typing import Iterable, Set

import numpy as np

from repro.collectives.correctness import RankReordering

__all__ = [
    "check_failed_nodes",
    "surviving_ranks",
    "shrink_layout",
    "shrink_reordering",
]


def check_failed_nodes(cluster, failed_nodes: Iterable[int]) -> Set[int]:
    """Validate and normalise a failed-node collection."""
    failed = {int(n) for n in np.asarray(list(failed_nodes), dtype=np.int64)}
    for node in failed:
        if not 0 <= node < cluster.n_nodes:
            raise ValueError(f"node {node} out of range [0, {cluster.n_nodes})")
    if len(failed) >= cluster.n_nodes:
        raise ValueError("cannot shrink: every node failed")
    return failed


def surviving_ranks(cluster, layout, failed_nodes: Iterable[int]) -> np.ndarray:
    """Old ranks (indices into ``layout``) hosted on surviving nodes.

    Ascending — survivors keep their relative order, the ULFM contract.
    """
    L = np.asarray(layout, dtype=np.int64)
    failed = check_failed_nodes(cluster, failed_nodes)
    nodes = cluster.node_of(L)
    alive = ~np.isin(nodes, np.array(sorted(failed), dtype=np.int64))
    survivors = np.flatnonzero(alive)
    if survivors.size == 0:
        raise ValueError("no surviving ranks (every process was on a failed node)")
    return survivors


def shrink_layout(cluster, layout, failed_nodes: Iterable[int]) -> np.ndarray:
    """The survivors' cores, densely renumbered in old-rank order.

    The result is a valid layout for a ``p' = len(result)`` communicator:
    new rank ``r`` is the ``r``-th surviving old rank, still bound to the
    core it always had (processes do not migrate during recovery).
    """
    L = np.asarray(layout, dtype=np.int64)
    return L[surviving_ranks(cluster, L, failed_nodes)]


def shrink_reordering(
    cluster, reordering: RankReordering, failed_nodes: Iterable[int]
) -> RankReordering:
    """Shrink a (possibly reordered) communicator's rank binding.

    Both the original layout and the current mapping are restricted to
    the surviving processes; each side keeps its own rank order, so a
    previously reordered communicator stays reordered (with holes closed
    up) — the *shrink-keep-mapping* recovery policy.
    """
    layout = shrink_layout(cluster, reordering.layout, failed_nodes)
    mapping = shrink_layout(cluster, reordering.mapping, failed_nodes)
    return RankReordering(layout=layout, mapping=mapping)
