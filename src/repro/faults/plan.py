"""Dynamic fault plans (what breaks, and when).

``simmpi.noise`` models *static* degradation: the whole run is priced
with a fixed ``link_beta_scale``.  Real faults have an onset — a node
dies between stage 3 and 4, an HCA retrains halfway through a long ring
— and the paper's one-shot reordering cannot react to them.  This module
describes such scenarios declaratively:

* a :class:`FaultEvent` is one fault (node failure, HCA retrain to a
  lower rate, or cable degradation) with an onset expressed as a
  communication *round index* — the schedule's stage list with per-stage
  ``repeat`` counts expanded, so a ring's ``p-1`` iterations are
  individually addressable — and optionally as *simulated seconds* (the
  event engine's clock);
* a :class:`FaultPlan` is an ordered collection of events plus the
  queries both engines need: which nodes are dead at a given point, and
  the cumulative bandwidth-scale vector of all active degradations.

Faults are permanent once active (no repair mid-collective).  A failed
node participating in a stage makes the collective undeliverable — the
engines raise :class:`FaultStopError`, which is the *fail-stop* policy's
outcome and the trigger for :mod:`repro.faults.recover`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultStopError",
    "single_node_failure",
    "hca_retrain",
    "cable_degradation",
]

#: Recognised fault kinds.
FAULT_KINDS = ("node-fail", "hca-retrain", "cable-degrade")


class FaultStopError(RuntimeError):
    """A failed node was asked to communicate (fail-stop abort).

    Carries enough context for a recovery layer to shrink and retry:
    the dead nodes, and where in the schedule the abort happened.
    """

    def __init__(
        self,
        failed_nodes: Iterable[int],
        stage_index: int,
        schedule_name: str = "",
        at_seconds: Optional[float] = None,
    ) -> None:
        self.failed_nodes = tuple(sorted(int(n) for n in failed_nodes))
        self.stage_index = int(stage_index)
        self.schedule_name = schedule_name
        self.at_seconds = at_seconds
        where = f"stage {self.stage_index}"
        if at_seconds is not None:
            where += f" (t={at_seconds * 1e6:.1f} us)"
        super().__init__(
            f"collective {schedule_name or '<schedule>'} aborted at {where}: "
            f"node(s) {list(self.failed_nodes)} failed"
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fault with its onset.

    ``onset_stage`` counts communication rounds: the schedule's stage
    list with each stage's ``repeat`` expanded (for schedules without
    repeats it is simply the stage index).  A fault with
    ``onset_stage=k`` is active from round ``k`` on; ``0`` means present
    from the start.  ``onset_seconds``, when given, is the activation
    time on the event engine's simulated clock; the event engine falls
    back to ``onset_stage`` when it is ``None``.
    """

    kind: str
    onset_stage: int = 0
    onset_seconds: Optional[float] = None
    node: Optional[int] = None        # node-fail / hca-retrain target
    links: Tuple[int, ...] = ()       # cable-degrade targets (network link ids)
    factor: float = 1.0               # bandwidth division factor (degradations)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.onset_stage < 0:
            raise ValueError(f"onset_stage must be >= 0, got {self.onset_stage}")
        if self.onset_seconds is not None and self.onset_seconds < 0:
            raise ValueError(f"onset_seconds must be >= 0, got {self.onset_seconds}")
        if self.kind in ("node-fail", "hca-retrain") and self.node is None:
            raise ValueError(f"{self.kind} event needs a target node")
        if self.kind == "cable-degrade" and not self.links:
            raise ValueError("cable-degrade event needs at least one link id")
        if self.kind != "node-fail" and self.factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {self.factor}")

    def active_at_stage(self, stage_index: int) -> bool:
        return stage_index >= self.onset_stage

    def active_at_time(self, seconds: float, stage_index: int) -> bool:
        if self.onset_seconds is not None:
            return seconds >= self.onset_seconds
        return self.active_at_stage(stage_index)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form (round-trips via :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "onset_stage": int(self.onset_stage),
            "onset_seconds": (
                None if self.onset_seconds is None else float(self.onset_seconds)
            ),
            "node": None if self.node is None else int(self.node),
            "links": [int(x) for x in self.links],
            "factor": float(self.factor),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output (re-validates)."""
        return cls(
            kind=data["kind"],
            onset_stage=int(data.get("onset_stage", 0)),
            onset_seconds=(
                None
                if data.get("onset_seconds") is None
                else float(data["onset_seconds"])
            ),
            node=None if data.get("node") is None else int(data["node"]),
            links=tuple(int(x) for x in data.get("links", ())),
            factor=float(data.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault events, queried by both engines."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(
                    f"FaultPlan events must be FaultEvent instances, got "
                    f"{type(ev).__name__} (note: the scenario builders "
                    f"already return complete FaultPlans)"
                )

    def __len__(self) -> int:
        return len(self.events)

    def with_event(self, event: FaultEvent) -> "FaultPlan":
        return FaultPlan(self.events + (event,))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form: sweep configs and audit artifacts."""
        return {"events": [ev.to_dict() for ev in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (re-validates events)."""
        return cls(tuple(FaultEvent.from_dict(e) for e in data.get("events", ())))

    # ------------------------------------------------------------------
    def validate(self, cluster) -> None:
        """Check every target exists on ``cluster`` (raises ValueError)."""
        for ev in self.events:
            if ev.node is not None and not 0 <= ev.node < cluster.n_nodes:
                raise ValueError(
                    f"fault targets node {ev.node}, cluster has {cluster.n_nodes} nodes"
                )
            for lid in ev.links:
                if not 0 <= int(lid) < cluster.n_links:
                    raise ValueError(
                        f"fault targets link {lid}, cluster has {cluster.n_links} links"
                    )

    @property
    def failed_nodes(self) -> FrozenSet[int]:
        """Every node that fails at any point of the plan."""
        return frozenset(
            int(ev.node) for ev in self.events if ev.kind == "node-fail"
        )

    def failed_nodes_at_stage(self, stage_index: int) -> FrozenSet[int]:
        return frozenset(
            int(ev.node)
            for ev in self.events
            if ev.kind == "node-fail" and ev.active_at_stage(stage_index)
        )

    def failed_nodes_at_time(self, seconds: float, stage_index: int) -> FrozenSet[int]:
        return frozenset(
            int(ev.node)
            for ev in self.events
            if ev.kind == "node-fail" and ev.active_at_time(seconds, stage_index)
        )

    # ------------------------------------------------------------------
    def _scale_for(self, cluster, active: Sequence[FaultEvent]) -> Optional[np.ndarray]:
        degradations = [ev for ev in active if ev.kind != "node-fail"]
        if not degradations:
            return None
        scale = np.ones(cluster.n_links)
        for ev in degradations:
            if ev.kind == "hca-retrain":
                ids = [int(cluster.hca_up(ev.node)), int(cluster.hca_down(ev.node))]
            else:
                ids = [int(lid) for lid in ev.links]
            for lid in ids:
                # concurrent degradations of one link compound
                scale[lid] *= ev.factor
        return scale

    def beta_scale_at_stage(self, cluster, stage_index: int) -> Optional[np.ndarray]:
        """Cumulative bandwidth-scale vector of degradations active at a stage.

        ``None`` when no degradation is active (the common fast path).
        """
        return self._scale_for(
            cluster, [ev for ev in self.events if ev.active_at_stage(stage_index)]
        )

    def degradations_active_at(
        self, seconds: float, stage_index: int
    ) -> Tuple[FaultEvent, ...]:
        """Active degradation events on the event engine's clock."""
        return tuple(
            ev
            for ev in self.events
            if ev.kind != "node-fail" and ev.active_at_time(seconds, stage_index)
        )

    def beta_scale_for(self, cluster, events: Sequence[FaultEvent]) -> Optional[np.ndarray]:
        """Scale vector of an explicit event subset (event-engine tracking)."""
        return self._scale_for(cluster, list(events))

    def final_beta_scale(self, cluster) -> Optional[np.ndarray]:
        """Scale vector once every degradation has set in.

        This is what a *recovered* run keeps living with: shrink removes
        the dead nodes, but retrained HCAs and degraded cables persist.
        """
        return self._scale_for(cluster, self.events)


# ----------------------------------------------------------------------
# scenario builders
# ----------------------------------------------------------------------
def single_node_failure(
    node: int, onset_stage: int = 0, onset_seconds: Optional[float] = None
) -> FaultPlan:
    """The canonical scenario: one node dies at the given onset."""
    return FaultPlan(
        (
            FaultEvent(
                kind="node-fail",
                node=int(node),
                onset_stage=onset_stage,
                onset_seconds=onset_seconds,
            ),
        )
    )


def hca_retrain(
    node: int,
    factor: float,
    onset_stage: int = 0,
    onset_seconds: Optional[float] = None,
) -> FaultPlan:
    """One node's adapter retrains to ``1/factor`` of its bandwidth."""
    return FaultPlan(
        (
            FaultEvent(
                kind="hca-retrain",
                node=int(node),
                factor=float(factor),
                onset_stage=onset_stage,
                onset_seconds=onset_seconds,
            ),
        )
    )


def cable_degradation(
    links: Iterable[int],
    factor: float,
    onset_stage: int = 0,
    onset_seconds: Optional[float] = None,
) -> FaultPlan:
    """Specific switch cables degrade to ``1/factor`` of their bandwidth."""
    return FaultPlan(
        (
            FaultEvent(
                kind="cable-degrade",
                links=tuple(int(x) for x in links),
                factor=float(factor),
                onset_stage=onset_stage,
                onset_seconds=onset_seconds,
            ),
        )
    )
