"""Data executor: runs schedules with real payload movement.

The timing engine prices schedules; this module *executes* them, moving
actual payload values between per-rank buffers so tests can assert that an
algorithm delivers every block to every rank — including under rank
reordering with the paper's order-restoration mechanisms (§V-B).

The model: an allgather output buffer has ``p`` *slots*.  Rank ``r``
initially fills slot ``r`` with its input payload; messages copy slot
contents between ranks.  The executor enforces two invariants on every
message, so malformed schedules fail loudly:

* a rank may only send slots it has already filled;
* a received slot must be empty or already hold the identical value
  (re-delivery is tolerated, corruption is not).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.collectives.schedule import Stage

__all__ = ["DataExecutor", "ScheduleExecutionError"]

#: Sentinel for an empty slot.
EMPTY = np.int64(np.iinfo(np.int64).min)


class ScheduleExecutionError(RuntimeError):
    """A schedule violated a data-movement invariant."""


class DataExecutor:
    """Executes stages over ``(p_ranks, n_slots)`` payload buffers.

    Parameters
    ----------
    p:
        Number of ranks.
    n_slots:
        Slots per rank buffer (defaults to ``p``, the allgather case; a
        gather/broadcast over the same block ids also fits).
    """

    def __init__(self, p: int, n_slots: Optional[int] = None) -> None:
        if p < 1:
            raise ValueError(f"need p >= 1, got {p}")
        self.p = p
        self.n_slots = p if n_slots is None else int(n_slots)
        self.values = np.full((p, self.n_slots), EMPTY, dtype=np.int64)

    # ------------------------------------------------------------------
    def fill(self, rank: int, slot: int, value: int) -> None:
        """Place an initial payload value into a rank's slot."""
        if value == EMPTY:
            raise ValueError("payload value collides with the EMPTY sentinel")
        self.values[rank, slot] = value

    def fill_identity(self, payload=lambda slot: slot * 1000003 + 7) -> None:
        """Standard allgather initialisation: rank r fills slot r."""
        for r in range(self.p):
            self.fill(r, r, payload(r))

    # ------------------------------------------------------------------
    def run_stage(self, stage: Stage) -> None:
        """Execute one stage; messages within a stage read pre-stage state.

        Reading pre-stage state enforces true stage semantics: a rank
        cannot forward data it only receives in the same stage.
        """
        if stage.blocks is None:
            raise ScheduleExecutionError(
                f"stage {stage.label!r} has no block lists; data execution "
                "requires the uncompressed stages() view"
            )
        snapshot = self.values.copy()
        for i in range(stage.n_messages):
            src = int(stage.src[i])
            dst = int(stage.dst[i])
            blocks = list(stage.blocks[i])
            payload = snapshot[src, blocks]
            if np.any(payload == EMPTY):
                missing = [b for b, v in zip(blocks, payload) if v == EMPTY]
                raise ScheduleExecutionError(
                    f"stage {stage.label!r}: rank {src} sends unowned slots {missing}"
                )
            current = self.values[dst, blocks]
            conflict = (current != EMPTY) & (current != payload)
            if np.any(conflict):
                bad = [b for b, c in zip(blocks, conflict) if c]
                raise ScheduleExecutionError(
                    f"stage {stage.label!r}: rank {dst} slot(s) {bad} would be corrupted"
                )
            self.values[dst, blocks] = payload

    def run(self, stages: Iterable[Stage]) -> None:
        """Execute a sequence of stages in order."""
        for stage in stages:
            self.run_stage(stage)

    # ------------------------------------------------------------------
    def slot(self, rank: int, slot: int) -> int:
        """Payload value at (rank, slot); raises if still empty."""
        v = self.values[rank, slot]
        if v == EMPTY:
            raise ScheduleExecutionError(f"rank {rank} slot {slot} never filled")
        return int(v)

    def owned(self, rank: int) -> np.ndarray:
        """Boolean mask of filled slots at ``rank``."""
        return self.values[rank] != EMPTY

    def all_full(self) -> bool:
        """True iff every slot of every rank is filled (allgather post)."""
        return bool(np.all(self.values != EMPTY))

    def assert_allgather_complete(self, payload=lambda slot: slot * 1000003 + 7) -> None:
        """Assert the canonical allgather postcondition after fill_identity."""
        expected = np.array([payload(s) for s in range(self.n_slots)], dtype=np.int64)
        if not np.array_equal(self.values, np.broadcast_to(expected, self.values.shape)):
            bad_ranks = np.flatnonzero((self.values != expected).any(axis=1))
            raise ScheduleExecutionError(
                f"allgather incomplete/incorrect at ranks {bad_ranks[:8].tolist()}"
            )
