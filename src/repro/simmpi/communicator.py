"""mpi4py-flavoured virtual communicators with run-time rank reordering.

This is the user-facing face of the simulated MPI runtime: a
:class:`Session` owns a cluster and an initial layout, hands out a
``COMM_WORLD``-like :class:`VirtualComm`, and supports the paper's §IV
workflow:

>>> sess = Session(small_cluster(), layout="cyclic-bunch")
>>> comm = sess.comm_world()
>>> ring = comm.reordered("ring")            # reorder once at "run time"
>>> out = ring.allgather_data()              # functionally correct output
>>> t = ring.allgather_latency(block_bytes=65536)   # simulated latency

Reordering honours the paper's info-key idea ("we could also use an info
key to allow the programmer to enable/disable the whole approach for each
communicator separately"): communicators carry an ``info`` dict and
``reordered()`` is a no-op when ``info["topo_reorder"] == "false"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.collectives.correctness import (
    OrderStrategy,
    RankReordering,
    execute_reordered_allgather,
)
from repro.collectives.registry import select_allgather
from repro.evaluation.evaluator import AllgatherEvaluator
from repro.mapping.initial import make_layout
from repro.mapping.reorder import reorder_ranks
from repro.simmpi.costmodel import CostModel
from repro.topology.cluster import ClusterTopology
from repro.util.rng import RngLike, make_rng

__all__ = ["Session", "VirtualComm"]


class Session:
    """A simulated MPI job: cluster + initial layout + evaluator."""

    def __init__(
        self,
        cluster: ClusterTopology,
        layout="block-bunch",
        n_processes: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
        rng: RngLike = 0,
    ) -> None:
        self.cluster = cluster
        p = cluster.n_cores if n_processes is None else int(n_processes)
        if isinstance(layout, str):
            self.layout = make_layout(layout, cluster, p)
        else:
            self.layout = np.asarray(layout, dtype=np.int64)
            if self.layout.size != p:
                raise ValueError("explicit layout length disagrees with n_processes")
        self.evaluator = AllgatherEvaluator(cluster, cost_model=cost_model, rng=rng)
        self._bcast_evaluator = None
        self.rng = make_rng(rng)

    def comm_world(self, info: Optional[Dict[str, str]] = None) -> "VirtualComm":
        """The world communicator over the initial layout."""
        return VirtualComm(
            session=self,
            reordering=RankReordering.identity(self.layout),
            info=dict(info or {}),
        )


@dataclass
class VirtualComm:
    """A communicator: a binding of ranks to cores plus collective ops."""

    session: Session
    reordering: RankReordering
    info: Dict[str, str] = field(default_factory=dict)
    pattern: str = ""

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of processes (``MPI_Comm_size``)."""
        return self.reordering.p

    def core_of_rank(self, rank: int) -> int:
        """Physical core hosting ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return int(self.reordering.mapping[rank])

    def is_reordered(self) -> bool:
        """True iff any rank's core binding differs from the layout."""
        return not self.reordering.is_identity()

    # ------------------------------------------------------------------
    def reordered(
        self,
        pattern: str,
        kind: str = "heuristic",
        rng: Optional[RngLike] = None,
        **mapper_kwargs,
    ) -> "VirtualComm":
        """Create the rank-reordered copy of this communicator (paper §IV).

        Happens once; the returned communicator is reused by subsequent
        collective calls.  Disabled (returns ``self``) when the info key
        ``topo_reorder`` is set to ``"false"``.
        """
        if self.info.get("topo_reorder", "true").lower() == "false":
            return self
        if rng is None:
            rng = int(self.session.rng.integers(2**31))
        result = reorder_ranks(
            pattern,
            self.reordering.mapping,
            self.session.evaluator.distances,
            kind=kind,
            rng=rng,
            **mapper_kwargs,
        )
        return VirtualComm(
            session=self.session,
            reordering=RankReordering(
                layout=self.reordering.layout, mapping=result.mapping
            ),
            info=dict(self.info),
            pattern=pattern,
        )

    # ------------------------------------------------------------------
    def shrink(self, failed_nodes: Sequence[int]) -> "VirtualComm":
        """ULFM ``MPI_Comm_shrink``: drop ranks hosted on dead nodes.

        Survivors are renumbered densely in rank order; a reordered
        communicator stays reordered with the holes closed up (the
        *shrink-keep-mapping* recovery state).  Chain with
        :meth:`reordered` to realise *shrink-remap*:

        >>> healed = comm.shrink([3]).reordered("ring")
        """
        from repro.faults.shrink import shrink_reordering

        return VirtualComm(
            session=self.session,
            reordering=shrink_reordering(
                self.session.cluster, self.reordering, failed_nodes
            ),
            info=dict(self.info),
            pattern=self.pattern,
        )

    # ------------------------------------------------------------------
    def split(self, colors: Sequence[int]) -> Dict[int, "VirtualComm"]:
        """MPI_Comm_split: partition ranks by colour, keeping rank order.

        ``colors[rank]`` assigns each rank a colour; returns one
        sub-communicator per colour.  The canonical use is the node
        communicator of the hierarchical algorithms:

        >>> node_comms = comm.split(cluster.node_of(layout))
        """
        colors = np.asarray(colors)
        if colors.shape != (self.size,):
            raise ValueError(f"colors must have shape ({self.size},), got {colors.shape}")
        out: Dict[int, "VirtualComm"] = {}
        for color in np.unique(colors):
            members = np.flatnonzero(colors == color)
            # the sub-communicator starts unreordered relative to its own
            # rank order (like a fresh MPI communicator); its processes
            # are this communicator's current rank->core binding
            cores = self.reordering.mapping[members]
            out[int(color)] = VirtualComm(
                session=self.session,
                reordering=RankReordering.identity(cores),
                info=dict(self.info),
            )
        return out

    def node_comms(self) -> Dict[int, "VirtualComm"]:
        """Split into per-node communicators (the hierarchical building block)."""
        nodes = self.session.cluster.node_of(self.reordering.mapping)
        return self.split(nodes)

    # ------------------------------------------------------------------
    def allgather_latency(
        self,
        block_bytes: float,
        strategy: str = "initcomm",
        algorithm=None,
    ) -> float:
        """Simulated latency of one MPI_Allgather on this communicator."""
        ev = self.session.evaluator
        p = self.size
        alg = algorithm if algorithm is not None else select_allgather(p, block_bytes)
        coll = ev.engine.evaluate(
            alg.schedule(p), self.reordering.mapping, block_bytes
        ).total_seconds
        _, restore = ev._restore(
            OrderStrategy.parse(strategy), alg, self.reordering, block_bytes
        )
        return coll + restore

    def bcast_latency(self, message_bytes: float, kind: str = "none") -> float:
        """Simulated latency of one MPI_Bcast from rank 0.

        ``kind="none"`` prices the current binding; a mapper kind
        ("heuristic", "scotch", "greedy") prices a freshly reordered one
        (BBMH for the tree regime, per the §V claim).
        """
        from repro.evaluation.bcast import BcastEvaluator

        if self.session._bcast_evaluator is None:
            self.session._bcast_evaluator = BcastEvaluator(
                self.session.cluster, cost_model=self.session.evaluator.cost
            )
        ev = self.session._bcast_evaluator
        if kind == "none":
            return ev.default_latency(self.reordering.mapping, message_bytes).seconds
        return ev.reordered_latency(self.reordering.mapping, message_bytes, kind).seconds

    def allgather_data(
        self,
        strategy: str = "initcomm",
        algorithm=None,
        block_bytes: float = 64,
    ) -> np.ndarray:
        """Run the allgather on real data; rows are per-process outputs.

        The output of every process is in original-rank order, whatever
        the reordering — this is the §V-B guarantee, actually executed.
        """
        p = self.size
        alg = algorithm if algorithm is not None else select_allgather(p, block_bytes)
        strat = OrderStrategy.parse(strategy)
        if self.reordering.is_identity():
            strat = OrderStrategy.NONE
        elif getattr(alg, "supports_inline_placement", False):
            strat = OrderStrategy.INLINE
        return execute_reordered_allgather(alg, self.reordering, strat)

    def __repr__(self) -> str:
        tag = f" reordered[{self.pattern}]" if self.is_reordered() else ""
        return f"VirtualComm(size={self.size}{tag})"
