"""Failure injection and noise robustness.

Real clusters are not uniform: cables degrade, adapters retrain to lower
rates, and OS noise jitters every stage.  This module provides

* **link degradation builders** — per-link bandwidth-scale vectors to
  feed the engines' ``link_beta_scale`` (a factor of ``k`` divides that
  link's bandwidth by ``k``), targeting random network cables, specific
  nodes' HCAs, or whole link classes;
* **jittered evaluation** — repeated pricing with multiplicative
  log-normal noise on stage times, to check that a comparison (e.g.
  "reordered beats default") survives realistic timing variance.

Used by ``benchmarks/bench_ext_degraded.py`` and the robustness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.collectives.schedule import Schedule
from repro.simmpi.engine import TimingEngine
from repro.topology.cluster import ClusterTopology
from repro.util.rng import RngLike, make_rng

__all__ = [
    "no_degradation",
    "degrade_links",
    "degrade_node_hca",
    "degrade_random_cables",
    "JitterResult",
    "evaluate_with_jitter",
]


def no_degradation(cluster: ClusterTopology) -> np.ndarray:
    """The identity scale vector (all links at full bandwidth)."""
    return np.ones(cluster.n_links)


def degrade_links(
    cluster: ClusterTopology, link_ids: Iterable[int], factor: float
) -> np.ndarray:
    """Divide the bandwidth of specific links by ``factor``."""
    if factor < 1.0:
        raise ValueError(f"degradation factor must be >= 1, got {factor}")
    scale = no_degradation(cluster)
    for lid in link_ids:
        lid = int(lid)  # accept numpy integers
        if not 0 <= lid < cluster.n_links:
            raise ValueError(f"link id {lid} out of range")
        scale[lid] = factor
    return scale


def degrade_node_hca(
    cluster: ClusterTopology, nodes: Iterable[int], factor: float
) -> np.ndarray:
    """Degrade the HCA (both directions) of the given nodes.

    Models an adapter that retrained to a lower rate — a common real
    fault that makes one node a collective-wide straggler.
    """
    ids = []
    for node in nodes:
        node = int(node)  # accept numpy integers
        if not 0 <= node < cluster.n_nodes:
            raise ValueError(f"node {node} out of range")
        ids.append(int(cluster.hca_up(node)))
        ids.append(int(cluster.hca_down(node)))
    return degrade_links(cluster, ids, factor)


def degrade_random_cables(
    cluster: ClusterTopology, fraction: float, factor: float, rng: RngLike = 0
) -> np.ndarray:
    """Degrade a random fraction of the fat-tree's switch cables."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    # n_links may arrive as a numpy integer; Generator.choice needs a
    # builtin int for its population argument on some numpy versions
    n_net = int(cluster.network.n_links)
    k = int(round(fraction * n_net))
    picks = make_rng(rng).choice(n_net, size=k, replace=False) if k else []
    return degrade_links(cluster, [int(x) for x in picks], factor)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JitterResult:
    """Distribution of jittered schedule latencies."""

    mean_seconds: float
    std_seconds: float
    min_seconds: float
    max_seconds: float
    n_trials: int


def evaluate_with_jitter(
    engine: TimingEngine,
    schedule: Schedule,
    mapping: Sequence[int],
    block_bytes: float,
    sigma: float = 0.2,
    n_trials: int = 25,
    rng: RngLike = 0,
) -> JitterResult:
    """Price a schedule under multiplicative log-normal stage noise.

    Every stage instance (repeats included) draws an independent factor
    ``exp(N(0, sigma))`` — the coarse signature of OS noise and network
    background traffic.  Returns the latency distribution.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    generator = make_rng(rng)
    M = np.asarray(mapping, dtype=np.int64)

    base = [engine.stage_time(s, M, block_bytes) for s in schedule.stages]
    copy = engine.cost.copy_cost(schedule.local_copy_units * block_bytes)
    totals = np.empty(n_trials)
    for t in range(n_trials):
        total = copy
        for st in base:
            factors = np.exp(generator.normal(0.0, sigma, size=st.repeat))
            total += st.seconds * float(factors.sum())
        totals[t] = total
    return JitterResult(
        mean_seconds=float(totals.mean()),
        std_seconds=float(totals.std()),
        min_seconds=float(totals.min()),
        max_seconds=float(totals.max()),
        n_trials=n_trials,
    )
