"""Simulated MPI runtime substrate.

The stand-in for MVAPICH-on-InfiniBand: a congestion-aware cost model
(:mod:`~repro.simmpi.costmodel`), a vectorised stage-synchronous timing
engine (:mod:`~repro.simmpi.engine`), a data executor that moves real
payloads for correctness testing (:mod:`~repro.simmpi.data`), and an
mpi4py-flavoured communicator facade (:mod:`~repro.simmpi.communicator`).
"""

from repro.simmpi.costmodel import CostModel, DEFAULT_ALPHA, DEFAULT_BETA
from repro.simmpi.engine import StageTiming, TimingEngine, TimingResult
from repro.simmpi.data import DataExecutor, ScheduleExecutionError
from repro.simmpi.eventsim import EventDrivenEngine, EventTimingResult
from repro.simmpi.noise import (
    JitterResult,
    degrade_links,
    degrade_node_hca,
    degrade_random_cables,
    evaluate_with_jitter,
    no_degradation,
)
from repro.simmpi.profiler import HotLink, ScheduleProfile, profile_schedule
from repro.simmpi.traceexport import (
    MessageEvent,
    export_chrome_trace,
    record_timeline,
    to_chrome_trace,
)


def __getattr__(name):
    # Session/VirtualComm import lazily to avoid a circular import with
    # repro.evaluation (which itself imports repro.simmpi).
    if name in ("Session", "VirtualComm"):
        from repro.simmpi import communicator

        return getattr(communicator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Session",
    "VirtualComm",
    "CostModel",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "TimingEngine",
    "TimingResult",
    "EventDrivenEngine",
    "EventTimingResult",
    "StageTiming",
    "DataExecutor",
    "ScheduleExecutionError",
    "ScheduleProfile",
    "HotLink",
    "profile_schedule",
    "no_degradation",
    "degrade_links",
    "degrade_node_hca",
    "degrade_random_cables",
    "JitterResult",
    "evaluate_with_jitter",
    "MessageEvent",
    "record_timeline",
    "to_chrome_trace",
    "export_chrome_trace",
]
