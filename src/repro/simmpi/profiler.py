"""Link-utilisation profiling of collective schedules.

Answers the diagnostic questions behind the paper's analysis commentary
("this is mainly because an initial cyclic mapping along with the
underlying ring algorithm result in higher congestion across network
links", §VI-A1): for a given schedule and mapping, how many bytes cross
each channel class, which individual links are hottest, and which stage
dominates the total.

The profiler reuses the timing engine's vectorised machinery, so
profiling a 4096-process schedule costs about as much as pricing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.collectives.schedule import Schedule
from repro.simmpi.engine import TimingEngine
from repro.topology.cluster import LinkClass

__all__ = ["ScheduleProfile", "HotLink", "profile_schedule"]


@dataclass(frozen=True)
class HotLink:
    """One heavily loaded link."""

    link_id: int
    link_class: str
    bytes: float
    description: str


@dataclass
class ScheduleProfile:
    """Aggregate utilisation of one schedule under one mapping."""

    schedule_name: str
    total_seconds: float
    bytes_by_class: Dict[str, float]
    stage_seconds: List[Tuple[str, float]]
    hot_links: List[HotLink]

    @property
    def dominant_class(self) -> str:
        """Channel class carrying the most bytes."""
        return max(self.bytes_by_class, key=self.bytes_by_class.get)

    @property
    def dominant_stage(self) -> Tuple[str, float]:
        """(label, seconds) of the costliest stage (repeats included)."""
        return max(self.stage_seconds, key=lambda kv: kv[1])

    def report(self) -> str:
        """Human-readable profile."""
        lines = [f"profile of {self.schedule_name}: {self.total_seconds * 1e6:.1f} us"]
        lines.append("bytes by channel class:")
        total = sum(self.bytes_by_class.values()) or 1.0
        for cls, b in sorted(self.bytes_by_class.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {cls:<11} {b / 1e6:>12.3f} MB  ({100 * b / total:5.1f}%)")
        lines.append("hottest links:")
        for hl in self.hot_links:
            lines.append(
                f"  link {hl.link_id:>6} [{hl.link_class:<10}] {hl.bytes / 1e6:>10.3f} MB  {hl.description}"
            )
        label, secs = self.dominant_stage
        lines.append(f"dominant stage: {label} ({secs * 1e6:.1f} us)")
        return "\n".join(lines)


def _describe_link(engine: TimingEngine, link_id: int) -> str:
    """Best-effort human name for a link."""
    cluster = engine.cluster
    if link_id < cluster.network.n_links:
        a, b = cluster.network.endpoints(link_id)
        return f"{a} -> {b}"
    cls = LinkClass(cluster.link_class[link_id])
    if cls == LinkClass.HCA:
        node = (link_id - cluster._hca_up0) % cluster.n_nodes
        direction = "up" if link_id < cluster._hca_dn0 else "down"
        return f"node{node} HCA {direction}"
    if cls == LinkClass.MEM:
        sock = link_id - cluster._mem0
        return f"socket{sock} memory bus"
    if cls == LinkClass.QPI:
        base = cluster._qpi_up0 if link_id < cluster._qpi_dn0 else cluster._qpi_dn0
        return f"core{link_id - base} QPI lane"
    base = cluster._core_up0 if link_id < cluster._core_dn0 else cluster._core_dn0
    return f"core{link_id - base} copy path"


def profile_schedule(
    engine: TimingEngine,
    schedule: Schedule,
    mapping: Sequence[int],
    block_bytes: float,
    top_links: int = 5,
) -> ScheduleProfile:
    """Profile ``schedule`` under ``mapping``.

    Byte counts include stage repeats (a ring stage that repeats ``p - 1``
    times contributes all of its rounds).
    """
    M = np.asarray(mapping, dtype=np.int64)
    cluster = engine.cluster
    total_loads = np.zeros(cluster.n_links)
    stage_seconds: List[Tuple[str, float]] = []
    for stage in schedule.stages:
        loads = engine.link_loads(stage, M, block_bytes)
        total_loads += loads * stage.repeat
        timing = engine.stage_time(stage, M, block_bytes)
        stage_seconds.append((stage.label or "<stage>", timing.total_seconds))

    by_class: Dict[str, float] = {cls.name: 0.0 for cls in LinkClass}
    for cls in LinkClass:
        mask = cluster.link_class == int(cls)
        by_class[cls.name] = float(total_loads[mask].sum())

    order = np.argsort(total_loads)[::-1][:top_links]
    hot = [
        HotLink(
            link_id=int(lid),
            link_class=LinkClass(cluster.link_class[lid]).name,
            bytes=float(total_loads[lid]),
            description=_describe_link(engine, int(lid)),
        )
        for lid in order
        if total_loads[lid] > 0
    ]
    total = sum(s for _, s in stage_seconds) + engine.cost.copy_cost(
        schedule.local_copy_units * block_bytes
    )
    return ScheduleProfile(
        schedule_name=schedule.name,
        total_seconds=total,
        bytes_by_class=by_class,
        stage_seconds=stage_seconds,
        hot_links=hot,
    )
