"""Export simulated collective timelines as Chrome trace events.

Runs a schedule through the event-driven engine while recording every
message's (start, finish, route class) and emits the Chrome/Perfetto
trace-event JSON format (``chrome://tracing``, https://ui.perfetto.dev),
one track per rank — the standard way to eyeball pipelining, stragglers
and the hotspots the profiler reports numerically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.collectives.schedule import Schedule
from repro.simmpi.costmodel import CostModel
from repro.simmpi.eventsim import EventDrivenEngine
from repro.topology.cluster import ClusterTopology
from repro.util.atomicio import atomic_write_text

__all__ = ["MessageEvent", "record_timeline", "to_chrome_trace", "export_chrome_trace"]


@dataclass(frozen=True)
class MessageEvent:
    """One transferred message with its simulated interval."""

    src_rank: int
    dst_rank: int
    start: float
    finish: float
    nbytes: float
    label: str
    channel: str


class _RecordingEngine(EventDrivenEngine):
    """Event engine that also captures per-message intervals."""

    def __init__(self, cluster, cost_model=None):
        super().__init__(cluster, cost_model)
        self.events: List[MessageEvent] = []

    def _run_round(self, stage, M, block_bytes, done, link_free, round_idx=0, faults=None):
        src_cores = M[stage.src]
        dst_cores = M[stage.dst]
        routes = self.cluster.routes_for(src_cores, dst_cores)
        nbytes = stage.units * block_bytes
        starts = np.maximum(done[stage.src], done[stage.dst]) + self.cost.stage_overhead
        order = np.argsort(starts, kind="stable")

        new_done = done.copy()
        for i in order:
            links = [int(l) for l in routes[i] if l >= 0]
            ready = float(starts[i])
            if faults is None:
                beta = self._beta
            else:
                faults.check_alive(ready, round_idx, int(src_cores[i]), int(dst_cores[i]))
                beta = faults.beta_at(ready, round_idx)
            start_tx = ready
            for link in links:
                start_tx = max(start_tx, link_free.get(link, 0.0))
            alpha = float(sum(self._alpha[l] for l in links))
            beta_max = float(max(beta[l] for l in links)) if links else 0.0
            finish = start_tx + alpha + float(nbytes[i]) * beta_max
            for link in links:
                lf = max(link_free.get(link, 0.0), ready)
                link_free[link] = lf + float(nbytes[i]) * beta[link]
            s, d = int(stage.src[i]), int(stage.dst[i])
            new_done[s] = max(new_done[s], finish)
            new_done[d] = max(new_done[d], finish)
            self.events.append(
                MessageEvent(
                    src_rank=s,
                    dst_rank=d,
                    start=start_tx,
                    finish=finish,
                    nbytes=float(nbytes[i]),
                    label=stage.label or "<stage>",
                    channel=self.cluster.channel_of(int(src_cores[i]), int(dst_cores[i])),
                )
            )
        return new_done


def record_timeline(
    cluster: ClusterTopology,
    schedule: Schedule,
    mapping: Sequence[int],
    block_bytes: float,
    cost_model: Optional[CostModel] = None,
) -> List[MessageEvent]:
    """Event-engine run that returns every message's simulated interval."""
    engine = _RecordingEngine(cluster, cost_model)
    engine.evaluate(schedule, mapping, block_bytes)
    return engine.events


def to_chrome_trace(events: List[MessageEvent]) -> dict:
    """Convert message events to the Chrome trace-event JSON dict.

    Sender-side complete events ("X" phase) on one track per rank, with
    flow metadata in ``args``; timestamps in microseconds as the format
    requires.
    """
    trace_events = []
    for i, ev in enumerate(events):
        trace_events.append(
            {
                "name": f"{ev.label} -> r{ev.dst_rank}",
                "cat": ev.channel,
                "ph": "X",
                "ts": ev.start * 1e6,
                "dur": max(ev.finish - ev.start, 1e-9) * 1e6,
                "pid": 0,
                "tid": ev.src_rank,
                "args": {
                    "dst_rank": ev.dst_rank,
                    "bytes": ev.nbytes,
                    "channel": ev.channel,
                },
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    cluster: ClusterTopology,
    schedule: Schedule,
    mapping: Sequence[int],
    block_bytes: float,
    path: Union[str, Path],
    cost_model: Optional[CostModel] = None,
) -> Path:
    """Record and write a Chrome trace for one collective run."""
    events = record_timeline(cluster, schedule, mapping, block_bytes, cost_model)
    return atomic_write_text(Path(path), json.dumps(to_chrome_trace(events)))
