"""Event-driven (non-barrier) schedule timing.

The default :class:`~repro.simmpi.engine.TimingEngine` prices schedules
stage-synchronously: every rank waits for the slowest message of the
round.  Real MPI collectives pipeline — a ring rank forwards as soon as
*its* predecessor delivered, regardless of stragglers elsewhere.  This
module prices the same schedules under relaxed, per-rank dependencies:

* a rank's stage-``s`` operations start once it finished its own
  stage-``s-1`` operations (sends and receives), not everyone else's;
* a message starts at the later of its sender's and receiver's readiness
  (rendezvous semantics);
* links are serial resources with cut-through forwarding: a message
  waits until every link on its route is free (FIFO behind earlier
  traffic), then takes ``sum(alpha) + bytes x beta_bottleneck`` end to
  end while keeping each link busy for that link's own serialisation
  time — contention emerges from the timeline instead of a per-stage
  fair-share approximation.  An uncontended single message costs exactly
  what the barrier engine charges, so the engines differ only in how
  they model sharing.

The two engines bracket reality from different sides: the barrier model
is pessimistic about stragglers (everyone waits for the slowest message
of a round) but optimistic about sharing (fair-share drain); the event
model relaxes the barrier but serialises contending messages FIFO, which
is pessimistic about sharing.  They agree exactly on uncontended
traffic.  The ``bench_ablation_engines`` bench reports both for the
paper's key configurations and asserts the reproduction's conclusions
are invariant to the choice.

Complexity is O(total messages x route length) in Python, so this engine
targets moderate scales (it expands stage ``repeat`` counts); the
vectorised barrier engine remains the default for 4096-process sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.runtime import maybe_verify_schedule
from repro.collectives.schedule import Schedule, Stage
from repro.simmpi.costmodel import CostModel
from repro.topology.cluster import ClusterTopology
from repro.util.validation import check_positive

__all__ = ["EventDrivenEngine", "EventTimingResult"]

#: Refuse runs that would melt the Python interpreter.
MAX_MESSAGE_OPS = 2_000_000


@dataclass
class EventTimingResult:
    """Outcome of one event-driven evaluation."""

    schedule_name: str
    total_seconds: float
    rank_finish_seconds: np.ndarray
    n_messages: int

    @property
    def finish_spread(self) -> float:
        """Gap between the first and last rank to finish (pipelining slack)."""
        return float(self.rank_finish_seconds.max() - self.rank_finish_seconds.min())


class EventDrivenEngine:
    """Per-rank-dependency, serial-link schedule pricing."""

    def __init__(
        self,
        cluster: ClusterTopology,
        cost_model: Optional[CostModel] = None,
        link_beta_scale: Optional[np.ndarray] = None,
    ) -> None:
        self.cluster = cluster
        self.cost = cost_model if cost_model is not None else CostModel()
        cls = cluster.link_class.astype(np.int64)
        self._alpha = self.cost.alpha_by_class()[cls]
        self._beta = self.cost.beta_by_class()[cls]
        if link_beta_scale is not None:
            scale = np.asarray(link_beta_scale, dtype=np.float64)
            if scale.shape != (cluster.n_links,):
                raise ValueError(
                    f"link_beta_scale must have shape ({cluster.n_links},), got {scale.shape}"
                )
            if np.any(scale <= 0):
                raise ValueError("link_beta_scale entries must be positive")
            self._beta = self._beta * scale

    # ------------------------------------------------------------------
    def evaluate(
        self,
        schedule: Schedule,
        mapping: Sequence[int],
        block_bytes: float,
        fault_plan=None,
    ) -> EventTimingResult:
        """Price ``schedule`` under ``mapping`` with event semantics.

        ``fault_plan`` (a :class:`repro.faults.plan.FaultPlan`) injects
        dynamic faults on the simulated clock: degradations apply to
        messages starting at or after their onset, and a message touching
        a failed node raises :class:`repro.faults.plan.FaultStopError`.
        Events with ``onset_seconds`` unset activate by communication
        round (stages expanded by their ``repeat`` counts, matching the
        barrier engine's fault clock).
        """
        check_positive("block_bytes", block_bytes)
        maybe_verify_schedule(schedule)  # opt-in static guard (REPRO_VERIFY=1)
        M = np.asarray(mapping, dtype=np.int64)
        if schedule.p > M.size:
            raise ValueError(
                f"schedule for p={schedule.p} but mapping covers only {M.size} ranks"
            )
        n_ops = schedule.n_messages()
        if n_ops > MAX_MESSAGE_OPS:
            raise ValueError(
                f"{n_ops} message events exceed the event engine's limit "
                f"({MAX_MESSAGE_OPS}); use the vectorised TimingEngine"
            )
        faults = None
        if fault_plan is not None:
            fault_plan.validate(self.cluster)
            faults = _FaultTracker(self, fault_plan, schedule.name)

        done = np.zeros(M.size)              # per-rank readiness
        link_free = {}                        # link id -> next free time
        total_msgs = 0

        round_idx = 0
        for stage in schedule.stages:
            for _ in range(stage.repeat):
                done = self._run_round(
                    stage, M, block_bytes, done, link_free, round_idx, faults
                )
                total_msgs += stage.n_messages
                round_idx += 1

        copy = self.cost.copy_cost(schedule.local_copy_units * block_bytes)
        finish = done + copy
        return EventTimingResult(
            schedule_name=schedule.name,
            total_seconds=float(finish.max()),
            rank_finish_seconds=finish,
            n_messages=total_msgs,
        )

    # ------------------------------------------------------------------
    def _run_round(
        self,
        stage: Stage,
        M: np.ndarray,
        block_bytes: float,
        done: np.ndarray,
        link_free: dict,
        round_idx: int = 0,
        faults: "Optional[_FaultTracker]" = None,
    ) -> np.ndarray:
        src_cores = M[stage.src]
        dst_cores = M[stage.dst]
        routes = self.cluster.routes_for(src_cores, dst_cores)
        nbytes = stage.units * block_bytes

        # rendezvous start times, then FIFO processing order
        starts = np.maximum(done[stage.src], done[stage.dst]) + self.cost.stage_overhead
        order = np.argsort(starts, kind="stable")

        new_done = done.copy()
        for i in order:
            links = [int(lid) for lid in routes[i] if lid >= 0]
            # cut-through: the stream completes once every link has pushed
            # its share through, queueing FIFO behind earlier traffic
            ready = float(starts[i])
            if faults is None:
                beta = self._beta
            else:
                faults.check_alive(
                    ready, round_idx, int(src_cores[i]), int(dst_cores[i])
                )
                beta = faults.beta_at(ready, round_idx)
            start_tx = ready
            for link in links:
                start_tx = max(start_tx, link_free.get(link, 0.0))
            alpha = float(sum(self._alpha[lid] for lid in links))
            beta_max = float(max(beta[lid] for lid in links)) if links else 0.0
            finish = start_tx + alpha + float(nbytes[i]) * beta_max
            for link in links:
                # each link serialises only its own share, from the moment
                # *it* could take the stream — reserving from the whole-path
                # start would let one busy link phantom-block idle links
                # downstream and convoy the entire schedule
                lf = max(link_free.get(link, 0.0), ready)
                link_free[link] = lf + float(nbytes[i]) * beta[link]
            s, d = int(stage.src[i]), int(stage.dst[i])
            new_done[s] = max(new_done[s], finish)
            new_done[d] = max(new_done[d], finish)
        return new_done


class _FaultTracker:
    """Incremental fault activation on the event engine's timeline.

    Message start times are non-decreasing within a round and fault
    activation is monotone (no repair), so the effective beta table only
    changes when a new degradation sets in — track the active event set
    and rebuild the table on transitions instead of per message.
    """

    def __init__(self, engine: EventDrivenEngine, plan, schedule_name: str) -> None:
        self.engine = engine
        self.plan = plan
        self.schedule_name = schedule_name
        self._active = ()
        self._beta = engine._beta

    def beta_at(self, seconds: float, round_idx: int) -> np.ndarray:
        active = self.plan.degradations_active_at(seconds, round_idx)
        if active != self._active:
            self._active = active
            scale = self.plan.beta_scale_for(self.engine.cluster, active)
            self._beta = (
                self.engine._beta if scale is None else self.engine._beta * scale
            )
        return self._beta

    def check_alive(
        self, seconds: float, round_idx: int, src_core: int, dst_core: int
    ) -> None:
        failed = self.plan.failed_nodes_at_time(seconds, round_idx)
        if not failed:
            return
        touched = {
            int(self.engine.cluster.node_of(src_core)),
            int(self.engine.cluster.node_of(dst_core)),
        }
        dead = touched & set(failed)
        if dead:
            # Local import: repro.faults imports the engine modules.
            from repro.faults.plan import FaultStopError

            raise FaultStopError(dead, round_idx, self.schedule_name, at_seconds=seconds)
