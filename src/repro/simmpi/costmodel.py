"""Per-channel communication cost model.

Each directed link carries an α (per-traversal latency) and β (seconds per
byte) taken from its :class:`~repro.topology.cluster.LinkClass`.  The model
is a congestion-aware α-β (Hockney) model:

* a message's latency term is the sum of the α of every link on its route
  (switch hops add latency — "messages that pass across a larger number of
  links suffer more", paper §I);
* its bandwidth term is governed by the *most contended* link of the
  route: if a link must carry ``B`` bytes in a stage, fair sharing drains
  it in ``β·B`` seconds, so the message finishes no earlier than
  ``max over route links of β_link · B_link``.

The default constants are order-of-magnitude calibrations for the paper's
GPC hardware (2009-era dual-socket Xeons, QDR InfiniBand), producing the
per-pair / aggregate bandwidths that drive every relative result in the
paper:

==================  =======================================================
channel             behaviour
==================  =======================================================
intra-socket pair   ~3 GB/s (private per-core copy-path links)
cross-socket pair   ~2.2 GB/s (per-core QPI lane is the slowest hop)
socket aggregate    ~16 GB/s memory bus shared by all messages touching
                    the socket (each crossing counts; an intra-socket
                    message crosses twice)
inter-node pair     ~2.7 GB/s (QDR InfiniBand)
node aggregate      the single HCA serialises all the node's network
                    traffic — the paper's dominant contention effect
==================  =======================================================

Absolute values do not matter for the reproduction — only their ordering
and rough ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.topology.cluster import LinkClass
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["CostModel", "DEFAULT_ALPHA", "DEFAULT_BETA"]

#: Per-link-traversal latency (seconds).
DEFAULT_ALPHA: Dict[LinkClass, float] = {
    LinkClass.SMEM: 150e-9,       # core <-> L3/memory complex
    LinkClass.MEM: 0.0,           # capacity only; latency lives in SMEM
    LinkClass.QPI: 250e-9,        # cross-socket hop
    LinkClass.HCA: 700e-9,        # PCIe + HCA processing
    LinkClass.LEAF_LINE: 120e-9,  # IB switch hop
    LinkClass.LINE_SPINE: 120e-9,
}

#: Seconds per byte (1 / bandwidth).
DEFAULT_BETA: Dict[LinkClass, float] = {
    LinkClass.SMEM: 1.0 / 3.0e9,        # per-pair shared-memory copy path
    LinkClass.MEM: 1.0 / 16.0e9,        # per-socket aggregate memory bus
    LinkClass.QPI: 1.0 / 2.2e9,         # per-core cross-socket lane
    LinkClass.HCA: 1.0 / 2.7e9,         # QDR IB effective ~2.7 GB/s
    LinkClass.LEAF_LINE: 1.0 / 2.7e9,
    LinkClass.LINE_SPINE: 1.0 / 2.7e9,
}


@dataclass
class CostModel:
    """α-β-with-congestion model over link classes.

    Parameters
    ----------
    alpha, beta:
        Per-class overrides merged over the defaults.
    copy_alpha, copy_beta:
        Local memory-copy cost (used for endShfl shuffles and Bruck's final
        rotation): ``copy_alpha + bytes * copy_beta`` per moved block.
    stage_overhead:
        Fixed per-stage cost (progress-engine / synchronisation slack).
    """

    alpha: Dict[LinkClass, float] = field(default_factory=dict)
    beta: Dict[LinkClass, float] = field(default_factory=dict)
    copy_alpha: float = 50e-9
    copy_beta: float = 1.0 / 8.0e9   # streaming memcpy ~8 GB/s
    stage_overhead: float = 100e-9

    def __post_init__(self) -> None:
        merged_a = dict(DEFAULT_ALPHA)
        merged_a.update(self.alpha)
        merged_b = dict(DEFAULT_BETA)
        merged_b.update(self.beta)
        self.alpha = merged_a
        self.beta = merged_b
        for cls in LinkClass:
            check_nonnegative(f"alpha[{cls.name}]", self.alpha[cls])
            check_positive(f"beta[{cls.name}]", self.beta[cls])
        check_nonnegative("copy_alpha", self.copy_alpha)
        check_positive("copy_beta", self.copy_beta)
        check_nonnegative("stage_overhead", self.stage_overhead)

    # ------------------------------------------------------------------
    def alpha_by_class(self) -> np.ndarray:
        """α indexed by LinkClass value (dense array for vectorisation)."""
        out = np.zeros(len(LinkClass), dtype=np.float64)
        for cls in LinkClass:
            out[int(cls)] = self.alpha[cls]
        return out

    def beta_by_class(self) -> np.ndarray:
        """β indexed by LinkClass value."""
        out = np.zeros(len(LinkClass), dtype=np.float64)
        for cls in LinkClass:
            out[int(cls)] = self.beta[cls]
        return out

    def copy_cost(self, nbytes: float) -> float:
        """Cost of one local memory move of ``nbytes`` bytes."""
        if nbytes <= 0:
            return 0.0
        return self.copy_alpha + nbytes * self.copy_beta

    def describe(self) -> str:
        """Tabular summary (for reports)."""
        lines = ["link class     alpha (us)   bandwidth (GB/s)"]
        for cls in LinkClass:
            lines.append(
                f"{cls.name:<13} {self.alpha[cls] * 1e6:>9.3f}   {1.0 / self.beta[cls] / 1e9:>12.2f}"
            )
        lines.append(
            f"{'memcpy':<13} {self.copy_alpha * 1e6:>9.3f}   {1.0 / self.copy_beta / 1e9:>12.2f}"
        )
        return "\n".join(lines)
