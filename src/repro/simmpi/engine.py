"""Vectorised stage-synchronous timing engine.

Evaluates the latency of a collective :class:`~repro.collectives.schedule.Schedule`
on a :class:`~repro.topology.cluster.ClusterTopology` under a given rank-to-core
mapping.  Per stage:

1. ranks are bound to cores through the mapping array ``M``;
2. every message's route is fetched as a padded row of directed link ids;
3. per-link byte loads are a single ``np.bincount``;
4. message time = Σ α(link) + max over route links of β(link)·bytes(link);
5. stage time = max message time (stage-synchronous barrier semantics);
6. schedule time = Σ stage time · repeat, plus local-copy cost.

This is the substitute for running on the paper's InfiniBand testbed: it
keeps the two effects that produce every result in the paper — channel
heterogeneity (α/β per class) and link contention — while remaining fast
enough to sweep 4096-process schedules on one machine.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.runtime import maybe_verify_schedule
from repro.collectives.schedule import Schedule, Stage
from repro.simmpi.costmodel import CostModel
from repro.topology.cluster import ClusterTopology
from repro.util.validation import check_positive

__all__ = [
    "TimingEngine",
    "TimingResult",
    "StageTiming",
    "StagePricing",
    "SchedulePricing",
    "BatchTimingResult",
]

#: (schedule, mapping) pricing tables kept per engine (LRU).
PRICING_CACHE_SIZE = 64


@dataclass(frozen=True)
class StageTiming:
    """Cost breakdown of one stage (single instance, before `repeat`)."""

    label: str
    seconds: float
    repeat: int
    n_messages: int
    max_link_load_bytes: float

    @property
    def total_seconds(self) -> float:
        return self.seconds * self.repeat


@dataclass
class TimingResult:
    """Latency of a full schedule under one mapping."""

    schedule_name: str
    total_seconds: float
    stage_timings: List[StageTiming] = field(default_factory=list)
    local_copy_seconds: float = 0.0

    def breakdown(self) -> str:
        """Readable per-stage table."""
        lines = [f"{self.schedule_name}: {self.total_seconds * 1e6:.2f} us total"]
        for st in self.stage_timings:
            lines.append(
                f"  {st.label or '<stage>':<18} {st.seconds * 1e6:>10.2f} us"
                f" x{st.repeat:<5d} ({st.n_messages} msgs)"
            )
        if self.local_copy_seconds:
            lines.append(f"  {'local copies':<18} {self.local_copy_seconds * 1e6:>10.2f} us")
        return "\n".join(lines)


def _pareto_envelope(alpha_sum: np.ndarray, unit_drain: np.ndarray):
    """Upper envelope of the per-message lines ``alpha + size * drain``.

    For any size >= 0 the stage maximum is attained by a message whose
    (alpha_sum, unit_drain) pair is not dominated by another message with
    both a larger alpha-sum and a larger drain.  Keeping only the
    non-dominated staircase compresses thousands of messages down to a
    handful of candidate lines, and — because max() and multiplication by
    a non-negative size are monotone in floating point too — evaluating
    the envelope gives exactly the same maximum as scanning every message.
    """
    u_drain, inverse = np.unique(unit_drain, return_inverse=True)
    u_alpha = np.full(u_drain.size, -np.inf)
    np.maximum.at(u_alpha, inverse, alpha_sum)
    # Drop any line whose alpha-sum is beaten at an equal-or-larger drain.
    suffix_max = np.maximum.accumulate(u_alpha[::-1])[::-1]
    keep = u_alpha >= suffix_max
    return u_alpha[keep], u_drain[keep]


@dataclass(frozen=True)
class StagePricing:
    """Size-independent pricing tables of one stage under one mapping.

    ``env_alpha``/``env_drain`` hold the Pareto envelope of the stage's
    per-message ``alpha_sum + block_bytes * unit_drain`` lines, where the
    unit drain is the bandwidth term for a 1-byte block: one instance of
    the stage costs ``max(env_alpha + block_bytes * env_drain)`` plus the
    fixed stage overhead, for *any* block size.
    """

    label: str
    repeat: int
    n_messages: int
    env_alpha: np.ndarray      # seconds (per-message route alpha-sums)
    env_drain: np.ndarray      # seconds per block byte (bottleneck drain)
    unit_load_max: float       # max per-link byte load at block_bytes = 1

    def seconds_for(self, sizes: np.ndarray, stage_overhead: float) -> np.ndarray:
        """Single-instance stage seconds for a vector of block sizes."""
        per_size = (
            self.env_alpha[None, :] + sizes[:, None] * self.env_drain[None, :]
        ).max(axis=1)
        return per_size + stage_overhead

    def timing_for(self, block_bytes: float, stage_overhead: float) -> StageTiming:
        """Per-size :class:`StageTiming` view (reports / trace tooling)."""
        sizes = np.asarray([block_bytes], dtype=np.float64)
        return StageTiming(
            label=self.label,
            seconds=float(self.seconds_for(sizes, stage_overhead)[0]),
            repeat=self.repeat,
            n_messages=self.n_messages,
            max_link_load_bytes=self.unit_load_max * float(block_bytes),
        )


@dataclass
class BatchTimingResult:
    """Latency of one schedule under one mapping for a vector of sizes.

    ``total_seconds[k]`` corresponds to ``sizes[k]`` and agrees with
    :meth:`TimingEngine.evaluate` at that block size to floating-point
    tolerance (the batched path factors the shared ``block_bytes`` out of
    the bincount, so the rounding order differs slightly).
    """

    schedule_name: str
    sizes: np.ndarray              # float64, the priced block sizes
    total_seconds: np.ndarray      # per size
    local_copy_seconds: np.ndarray  # per size
    pricing: "SchedulePricing"

    def result(self, k: int) -> TimingResult:
        """Expand entry ``k`` into a full per-size :class:`TimingResult`."""
        overhead = self.pricing.cost.stage_overhead
        bb = float(self.sizes[k])
        return TimingResult(
            schedule_name=self.schedule_name,
            total_seconds=float(self.total_seconds[k]),
            stage_timings=[s.timing_for(bb, overhead) for s in self.pricing.stages],
            local_copy_seconds=float(self.local_copy_seconds[k]),
        )


class SchedulePricing:
    """Reusable pricing tables for one (schedule, mapping) pair.

    Built once from the schedule's routes; pricing any block size
    afterwards is a small envelope evaluation with no route construction,
    no bincount and no per-message scan.  Obtained (and cached) via
    :meth:`TimingEngine.pricing`.
    """

    def __init__(self, engine: "TimingEngine", schedule: Schedule, mapping: np.ndarray):
        self.schedule_name = schedule.name
        self.p = schedule.p
        self.local_copy_units = float(schedule.local_copy_units)
        self.cost = engine.cost
        self.stages: List[StagePricing] = engine._price_schedule(schedule, mapping)
        # Fused evaluation tables: every stage's Pareto envelope
        # concatenated into one flat alpha/drain pair plus the reduceat
        # segment starts, so pricing a size vector is one broadcast and
        # one segmented max instead of a numpy pass per stage.  Envelopes
        # are never empty for non-empty stages (the Pareto keep-mask
        # always retains at least one line), but reduceat cannot express
        # empty segments, so empty schedules — or a degenerate stage with
        # no messages — keep the reference path.
        if self.stages and all(s.env_alpha.size > 0 for s in self.stages):
            self._fused_alpha = np.concatenate([s.env_alpha for s in self.stages])
            self._fused_drain = np.concatenate([s.env_drain for s in self.stages])
            counts = np.array([s.env_alpha.size for s in self.stages], dtype=np.int64)
            self._fused_starts = np.concatenate(([0], np.cumsum(counts[:-1])))
            self._fused_repeats = [float(s.repeat) for s in self.stages]
        else:
            self._fused_alpha = None

    def evaluate_sizes(
        self, sizes: Sequence[float], extra_copy_bytes: float = 0.0
    ) -> BatchTimingResult:
        """Price the whole size vector in one fused stage-concatenated pass.

        Bit-identical to :meth:`evaluate_sizes_reference` (the per-stage
        walk): the per-line ``alpha + size * drain`` terms are the same
        elementwise operations on the same values, the segmented
        ``np.maximum.reduceat`` computes each stage's envelope max over
        exactly the elements the per-stage ``max`` sees (max is
        rounding-free), and the accumulation below walks the stages in
        the reference's left-to-right order, so every intermediate
        rounding matches.
        """
        if self._fused_alpha is None:
            return self.evaluate_sizes_reference(sizes, extra_copy_bytes)
        sz = self._check_sizes(sizes)
        vals = self._fused_alpha[None, :] + sz[:, None] * self._fused_drain[None, :]
        stage_max = np.maximum.reduceat(vals, self._fused_starts, axis=1)
        overhead = self.cost.stage_overhead
        total = np.zeros(sz.size, dtype=np.float64)
        for j, repeat in enumerate(self._fused_repeats):
            total += (stage_max[:, j] + overhead) * repeat
        return self._finish_sizes(sz, total, extra_copy_bytes)

    def evaluate_sizes_reference(
        self, sizes: Sequence[float], extra_copy_bytes: float = 0.0
    ) -> BatchTimingResult:
        """Per-stage envelope walk — the oracle for the fused pass."""
        sz = self._check_sizes(sizes)
        overhead = self.cost.stage_overhead
        total = np.zeros(sz.size, dtype=np.float64)
        for stage in self.stages:
            total += stage.seconds_for(sz, overhead) * stage.repeat
        return self._finish_sizes(sz, total, extra_copy_bytes)

    @staticmethod
    def _check_sizes(sizes: Sequence[float]) -> np.ndarray:
        sz = np.asarray(list(sizes), dtype=np.float64)
        if sz.ndim != 1 or sz.size == 0:
            raise ValueError("sizes must be a non-empty 1-D sequence")
        if np.any(sz <= 0):
            raise ValueError("block sizes must be positive")
        return sz

    def _finish_sizes(
        self, sz: np.ndarray, total: np.ndarray, extra_copy_bytes: float
    ) -> BatchTimingResult:
        copy_bytes = self.local_copy_units * sz + extra_copy_bytes
        copy_seconds = np.where(
            copy_bytes > 0, self.cost.copy_alpha + copy_bytes * self.cost.copy_beta, 0.0
        )
        return BatchTimingResult(
            schedule_name=self.schedule_name,
            sizes=sz,
            total_seconds=total + copy_seconds,
            local_copy_seconds=copy_seconds,
            pricing=self,
        )


def _schedule_fingerprint(schedule: Schedule) -> bytes:
    """Content hash of a schedule (stage arrays, repeats, copy units)."""
    h = hashlib.sha1()
    h.update(
        f"{schedule.p}|{schedule.name}|{schedule.local_copy_units}".encode()
    )
    for s in schedule.stages:
        h.update(f"|{s.repeat}|{s.src.size}".encode())
        h.update(np.ascontiguousarray(s.src).tobytes())
        h.update(np.ascontiguousarray(s.dst).tobytes())
        h.update(np.ascontiguousarray(s.units).tobytes())
    return h.digest()


class TimingEngine:
    """Binds schedules + mappings to the cluster and prices them."""

    def __init__(
        self,
        cluster: ClusterTopology,
        cost_model: Optional[CostModel] = None,
        link_beta_scale: Optional[np.ndarray] = None,
    ) -> None:
        self.cluster = cluster
        self.cost = cost_model if cost_model is not None else CostModel()
        # Dense per-link α/β tables (link id -> coefficient).
        cls = cluster.link_class.astype(np.int64)
        self._alpha = self.cost.alpha_by_class()[cls]
        self._beta = self.cost.beta_by_class()[cls]
        if link_beta_scale is not None:
            scale = np.asarray(link_beta_scale, dtype=np.float64)
            if scale.shape != (cluster.n_links,):
                raise ValueError(
                    f"link_beta_scale must have shape ({cluster.n_links},), got {scale.shape}"
                )
            if np.any(scale <= 0):
                raise ValueError("link_beta_scale entries must be positive")
            # a scale of k divides the link's bandwidth by k (degradation)
            self._beta = self._beta * scale
        self._pricing_cache: "OrderedDict[tuple, SchedulePricing]" = OrderedDict()
        self.pricing_hits = 0
        self.pricing_misses = 0
        self.pricing_evictions = 0

    # ------------------------------------------------------------------
    def stage_time(self, stage: Stage, mapping: np.ndarray, block_bytes: float) -> StageTiming:
        """Price a single instance of ``stage`` under ``mapping``."""
        return self._stage_time(stage, mapping, block_bytes, self._beta)

    def _stage_time(
        self, stage: Stage, mapping: np.ndarray, block_bytes: float, beta: np.ndarray
    ) -> StageTiming:
        """Stage pricing against an explicit per-link beta table.

        The fault-injection path swaps ``beta`` per stage as degradations
        set in; the healthy path always passes ``self._beta``.
        """
        src_cores = mapping[stage.src]
        dst_cores = mapping[stage.dst]
        routes = self.cluster.routes_for(src_cores, dst_cores)
        valid = routes >= 0
        safe = np.where(valid, routes, 0)
        nbytes = stage.units * block_bytes

        # Per-link byte load in this stage.
        weights = np.broadcast_to(nbytes[:, None], routes.shape)[valid]
        load = np.bincount(routes[valid], weights=weights, minlength=self.cluster.n_links)

        alpha_sum = np.where(valid, self._alpha[safe], 0.0).sum(axis=1)
        drain = np.where(valid, beta[safe] * load[safe], 0.0).max(axis=1)
        per_msg = alpha_sum + drain
        return StageTiming(
            label=stage.label,
            seconds=float(per_msg.max()) + self.cost.stage_overhead,
            repeat=stage.repeat,
            n_messages=stage.n_messages,
            max_link_load_bytes=float(load.max()) if load.size else 0.0,
        )

    def evaluate(
        self,
        schedule: Schedule,
        mapping: Sequence[int],
        block_bytes: float,
        extra_copy_bytes: float = 0.0,
        fault_plan=None,
    ) -> TimingResult:
        """Total latency of ``schedule``.

        Parameters
        ----------
        schedule:
            Rank-space schedule from a collective algorithm.
        mapping:
            Array ``M`` with ``M[rank] = core`` (a permutation when the job
            fully subscribes its cores, which is the paper's setting).
        block_bytes:
            Size of one block (the per-rank allgather message size).
        extra_copy_bytes:
            Additional local data movement to price (endShfl shuffles).
        fault_plan:
            Optional :class:`repro.faults.plan.FaultPlan`.  Degradations
            take effect from their onset stage; a failed node that is
            asked to communicate raises
            :class:`repro.faults.plan.FaultStopError` (fail-stop
            semantics — catch it and shrink via ``repro.faults``).
        """
        check_positive("block_bytes", block_bytes)
        maybe_verify_schedule(schedule)  # opt-in static guard (REPRO_VERIFY=1)
        M = self._check_mapping(schedule, mapping)
        if fault_plan is not None:
            return self._evaluate_with_faults(
                schedule, M, block_bytes, extra_copy_bytes, fault_plan
            )

        timings = [self.stage_time(s, M, block_bytes) for s in schedule.stages]
        copy_bytes = schedule.local_copy_units * block_bytes + extra_copy_bytes
        copy_seconds = self.cost.copy_cost(copy_bytes)
        total = sum(t.total_seconds for t in timings) + copy_seconds
        return TimingResult(
            schedule_name=schedule.name,
            total_seconds=total,
            stage_timings=timings,
            local_copy_seconds=copy_seconds,
        )

    def _evaluate_with_faults(
        self,
        schedule: Schedule,
        M: np.ndarray,
        block_bytes: float,
        extra_copy_bytes: float,
        fault_plan,
    ) -> TimingResult:
        """Round-wise pricing under a dynamic fault plan.

        Fault onsets are indexed by communication *round* (the stage list
        with per-stage ``repeat`` counts expanded, so a ring's p-1
        iterations are p-1 distinct onsets).  Each round is priced with
        the beta table of the degradations active at its index; the
        first round in which a failed node must send or receive aborts
        the collective.  Fault activation is monotone, so rounds are
        re-priced only when the active event set changes.
        """
        # Local import: repro.faults imports this module at package level.
        from dataclasses import replace

        from repro.faults.plan import FaultStopError

        fault_plan.validate(self.cluster)
        timings: List[StageTiming] = []
        round_idx = 0
        for stage in schedule.stages:
            state = None
            timing: Optional[StageTiming] = None
            for _ in range(stage.repeat):
                key = tuple(
                    ev.active_at_stage(round_idx) for ev in fault_plan.events
                )
                if timing is None or key != state:
                    state = key
                    failed = fault_plan.failed_nodes_at_stage(round_idx)
                    if failed:
                        touched = set(
                            int(n)
                            for n in np.union1d(
                                self.cluster.node_of(M[stage.src]),
                                self.cluster.node_of(M[stage.dst]),
                            )
                        )
                        dead = touched & set(failed)
                        if dead:
                            raise FaultStopError(dead, round_idx, schedule.name)
                    scale = fault_plan.beta_scale_at_stage(self.cluster, round_idx)
                    beta = self._beta if scale is None else self._beta * scale
                    timing = replace(
                        self._stage_time(stage, M, block_bytes, beta), repeat=1
                    )
                timings.append(timing)
                round_idx += 1
        copy_bytes = schedule.local_copy_units * block_bytes + extra_copy_bytes
        copy_seconds = self.cost.copy_cost(copy_bytes)
        total = sum(t.total_seconds for t in timings) + copy_seconds
        return TimingResult(
            schedule_name=schedule.name,
            total_seconds=total,
            stage_timings=timings,
            local_copy_seconds=copy_seconds,
        )

    # ------------------------------------------------------------------
    # batched multi-size pricing
    # ------------------------------------------------------------------
    def _check_mapping(self, schedule: Schedule, mapping: Sequence[int]) -> np.ndarray:
        M = np.asarray(mapping, dtype=np.int64)
        if schedule.p > M.size:
            raise ValueError(
                f"schedule for p={schedule.p} but mapping covers only {M.size} ranks"
            )
        if M.min(initial=0) < 0 or M.max(initial=0) >= self.cluster.n_cores:
            raise ValueError("mapping references cores outside the cluster")
        return M

    def _price_stage(self, stage: Stage, mapping: np.ndarray) -> StagePricing:
        """Size-independent route / alpha / unit-load tables for one stage."""
        src_cores = mapping[stage.src]
        dst_cores = mapping[stage.dst]
        routes = self.cluster.routes_for(src_cores, dst_cores)
        valid = routes >= 0
        safe = np.where(valid, routes, 0)

        # Per-link load for a 1-byte block; the real load is linear in the
        # block size, so one bincount serves every size.
        unit_weights = np.broadcast_to(stage.units[:, None], routes.shape)[valid]
        unit_load = np.bincount(
            routes[valid], weights=unit_weights, minlength=self.cluster.n_links
        )
        alpha_sum = np.where(valid, self._alpha[safe], 0.0).sum(axis=1)
        unit_drain = np.where(valid, self._beta[safe] * unit_load[safe], 0.0).max(axis=1)
        env_alpha, env_drain = _pareto_envelope(alpha_sum, unit_drain)
        return StagePricing(
            label=stage.label,
            repeat=stage.repeat,
            n_messages=stage.n_messages,
            env_alpha=env_alpha,
            env_drain=env_drain,
            unit_load_max=float(unit_load.max()) if unit_load.size else 0.0,
        )

    def _price_schedule(self, schedule: Schedule, mapping: np.ndarray) -> List[StagePricing]:
        """Price every stage of ``schedule`` in one vectorised pass.

        All stage messages are concatenated so the route lookup and the
        per-link unit-load bincount run once per schedule instead of once
        per stage; per-stage loads live in disjoint ``stage * n_links``
        bins.  Per-bin summation order matches the per-stage path, so the
        tables are bit-identical to pricing each stage alone.
        """
        stages = schedule.stages
        if len(stages) <= 1:
            return [self._price_stage(s, mapping) for s in stages]
        counts = np.array([s.src.size for s in stages], dtype=np.int64)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        src = np.concatenate([np.asarray(s.src) for s in stages])
        dst = np.concatenate([np.asarray(s.dst) for s in stages])
        units = np.concatenate([np.asarray(s.units, dtype=np.float64) for s in stages])

        routes = self.cluster.routes_for(mapping[src], mapping[dst])
        valid = routes >= 0
        safe = np.where(valid, routes, 0)
        n_links = self.cluster.n_links
        stage_idx = np.repeat(np.arange(len(stages), dtype=np.int64), counts)
        flat = stage_idx[:, None] * n_links + safe

        unit_weights = np.broadcast_to(units[:, None], routes.shape)[valid]
        unit_load = np.bincount(
            flat[valid], weights=unit_weights, minlength=len(stages) * n_links
        )
        alpha_sum = np.where(valid, self._alpha[safe], 0.0).sum(axis=1)
        unit_drain = np.where(valid, self._beta[safe] * unit_load[flat], 0.0).max(axis=1)

        priced: List[StagePricing] = []
        for i, stage in enumerate(stages):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            env_alpha, env_drain = _pareto_envelope(alpha_sum[lo:hi], unit_drain[lo:hi])
            seg_load = unit_load[i * n_links : (i + 1) * n_links]
            priced.append(
                StagePricing(
                    label=stage.label,
                    repeat=stage.repeat,
                    n_messages=stage.n_messages,
                    env_alpha=env_alpha,
                    env_drain=env_drain,
                    unit_load_max=float(seg_load.max()) if seg_load.size else 0.0,
                )
            )
        return priced

    def pricing(self, schedule: Schedule, mapping: Sequence[int]) -> SchedulePricing:
        """Cached :class:`SchedulePricing` for a (schedule, mapping) pair.

        Keyed on content fingerprints, so equal schedules rebuilt by
        different callers (or the same schedule priced under the same
        mapping again) share one table.  The cache is bounded LRU.
        """
        maybe_verify_schedule(schedule)  # opt-in static guard (REPRO_VERIFY=1)
        M = self._check_mapping(schedule, mapping)
        m_used = np.ascontiguousarray(M[: schedule.p])
        key = (_schedule_fingerprint(schedule), hashlib.sha1(m_used.tobytes()).digest())
        hit = self._pricing_cache.get(key)
        if hit is not None:
            self._pricing_cache.move_to_end(key)
            self.pricing_hits += 1
            return hit
        self.pricing_misses += 1
        pricing = SchedulePricing(self, schedule, M)
        self._pricing_cache[key] = pricing
        if len(self._pricing_cache) > PRICING_CACHE_SIZE:
            self._pricing_cache.popitem(last=False)
            self.pricing_evictions += 1
        return pricing

    def pricing_cache_stats(self) -> dict:
        """Pricing-LRU counter snapshot (the daemon's ``stats`` op)."""
        return {
            "entries": len(self._pricing_cache),
            "capacity": PRICING_CACHE_SIZE,
            "hits": self.pricing_hits,
            "misses": self.pricing_misses,
            "evictions": self.pricing_evictions,
        }

    def evaluate_sizes(
        self,
        schedule: Schedule,
        mapping: Sequence[int],
        sizes: Sequence[float],
        extra_copy_bytes: float = 0.0,
    ) -> BatchTimingResult:
        """Price ``schedule`` for every block size in ``sizes`` at once.

        Routes, alpha-sums and per-link unit-byte loads are computed once
        (and cached across calls); each size then costs one envelope
        evaluation.  Agrees with per-size :meth:`evaluate` to floating
        point tolerance.
        """
        return self.pricing(schedule, mapping).evaluate_sizes(sizes, extra_copy_bytes)

    # ------------------------------------------------------------------
    def link_loads(self, stage: Stage, mapping: np.ndarray, block_bytes: float) -> np.ndarray:
        """Per-link byte loads of one stage (diagnostics / tests)."""
        src_cores = np.asarray(mapping, dtype=np.int64)[stage.src]
        dst_cores = np.asarray(mapping, dtype=np.int64)[stage.dst]
        routes = self.cluster.routes_for(src_cores, dst_cores)
        valid = routes >= 0
        nbytes = stage.units * block_bytes
        weights = np.broadcast_to(nbytes[:, None], routes.shape)[valid]
        return np.bincount(routes[valid], weights=weights, minlength=self.cluster.n_links)
