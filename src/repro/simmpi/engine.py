"""Vectorised stage-synchronous timing engine.

Evaluates the latency of a collective :class:`~repro.collectives.schedule.Schedule`
on a :class:`~repro.topology.cluster.ClusterTopology` under a given rank-to-core
mapping.  Per stage:

1. ranks are bound to cores through the mapping array ``M``;
2. every message's route is fetched as a padded row of directed link ids;
3. per-link byte loads are a single ``np.bincount``;
4. message time = Σ α(link) + max over route links of β(link)·bytes(link);
5. stage time = max message time (stage-synchronous barrier semantics);
6. schedule time = Σ stage time · repeat, plus local-copy cost.

This is the substitute for running on the paper's InfiniBand testbed: it
keeps the two effects that produce every result in the paper — channel
heterogeneity (α/β per class) and link contention — while remaining fast
enough to sweep 4096-process schedules on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.runtime import maybe_verify_schedule
from repro.collectives.schedule import Schedule, Stage
from repro.simmpi.costmodel import CostModel
from repro.topology.cluster import ClusterTopology
from repro.util.validation import check_positive

__all__ = ["TimingEngine", "TimingResult", "StageTiming"]


@dataclass(frozen=True)
class StageTiming:
    """Cost breakdown of one stage (single instance, before `repeat`)."""

    label: str
    seconds: float
    repeat: int
    n_messages: int
    max_link_load_bytes: float

    @property
    def total_seconds(self) -> float:
        return self.seconds * self.repeat


@dataclass
class TimingResult:
    """Latency of a full schedule under one mapping."""

    schedule_name: str
    total_seconds: float
    stage_timings: List[StageTiming] = field(default_factory=list)
    local_copy_seconds: float = 0.0

    def breakdown(self) -> str:
        """Readable per-stage table."""
        lines = [f"{self.schedule_name}: {self.total_seconds * 1e6:.2f} us total"]
        for st in self.stage_timings:
            lines.append(
                f"  {st.label or '<stage>':<18} {st.seconds * 1e6:>10.2f} us"
                f" x{st.repeat:<5d} ({st.n_messages} msgs)"
            )
        if self.local_copy_seconds:
            lines.append(f"  {'local copies':<18} {self.local_copy_seconds * 1e6:>10.2f} us")
        return "\n".join(lines)


class TimingEngine:
    """Binds schedules + mappings to the cluster and prices them."""

    def __init__(
        self,
        cluster: ClusterTopology,
        cost_model: Optional[CostModel] = None,
        link_beta_scale: Optional[np.ndarray] = None,
    ) -> None:
        self.cluster = cluster
        self.cost = cost_model if cost_model is not None else CostModel()
        # Dense per-link α/β tables (link id -> coefficient).
        cls = cluster.link_class.astype(np.int64)
        self._alpha = self.cost.alpha_by_class()[cls]
        self._beta = self.cost.beta_by_class()[cls]
        if link_beta_scale is not None:
            scale = np.asarray(link_beta_scale, dtype=np.float64)
            if scale.shape != (cluster.n_links,):
                raise ValueError(
                    f"link_beta_scale must have shape ({cluster.n_links},), got {scale.shape}"
                )
            if np.any(scale <= 0):
                raise ValueError("link_beta_scale entries must be positive")
            # a scale of k divides the link's bandwidth by k (degradation)
            self._beta = self._beta * scale

    # ------------------------------------------------------------------
    def stage_time(self, stage: Stage, mapping: np.ndarray, block_bytes: float) -> StageTiming:
        """Price a single instance of ``stage`` under ``mapping``."""
        src_cores = mapping[stage.src]
        dst_cores = mapping[stage.dst]
        routes = self.cluster.route_matrix(src_cores, dst_cores)
        valid = routes >= 0
        safe = np.where(valid, routes, 0)
        nbytes = stage.units * block_bytes

        # Per-link byte load in this stage.
        weights = np.broadcast_to(nbytes[:, None], routes.shape)[valid]
        load = np.bincount(routes[valid], weights=weights, minlength=self.cluster.n_links)

        alpha_sum = np.where(valid, self._alpha[safe], 0.0).sum(axis=1)
        drain = np.where(valid, self._beta[safe] * load[safe], 0.0).max(axis=1)
        per_msg = alpha_sum + drain
        return StageTiming(
            label=stage.label,
            seconds=float(per_msg.max()) + self.cost.stage_overhead,
            repeat=stage.repeat,
            n_messages=stage.n_messages,
            max_link_load_bytes=float(load.max()) if load.size else 0.0,
        )

    def evaluate(
        self,
        schedule: Schedule,
        mapping: Sequence[int],
        block_bytes: float,
        extra_copy_bytes: float = 0.0,
    ) -> TimingResult:
        """Total latency of ``schedule``.

        Parameters
        ----------
        schedule:
            Rank-space schedule from a collective algorithm.
        mapping:
            Array ``M`` with ``M[rank] = core`` (a permutation when the job
            fully subscribes its cores, which is the paper's setting).
        block_bytes:
            Size of one block (the per-rank allgather message size).
        extra_copy_bytes:
            Additional local data movement to price (endShfl shuffles).
        """
        check_positive("block_bytes", block_bytes)
        maybe_verify_schedule(schedule)  # opt-in static guard (REPRO_VERIFY=1)
        M = np.asarray(mapping, dtype=np.int64)
        if schedule.p > M.size:
            raise ValueError(
                f"schedule for p={schedule.p} but mapping covers only {M.size} ranks"
            )
        if M.min(initial=0) < 0 or M.max(initial=0) >= self.cluster.n_cores:
            raise ValueError("mapping references cores outside the cluster")

        timings = [self.stage_time(s, M, block_bytes) for s in schedule.stages]
        copy_bytes = schedule.local_copy_units * block_bytes + extra_copy_bytes
        copy_seconds = self.cost.copy_cost(copy_bytes)
        total = sum(t.total_seconds for t in timings) + copy_seconds
        return TimingResult(
            schedule_name=schedule.name,
            total_seconds=total,
            stage_timings=timings,
            local_copy_seconds=copy_seconds,
        )

    # ------------------------------------------------------------------
    def link_loads(self, stage: Stage, mapping: np.ndarray, block_bytes: float) -> np.ndarray:
        """Per-link byte loads of one stage (diagnostics / tests)."""
        src_cores = np.asarray(mapping, dtype=np.int64)[stage.src]
        dst_cores = np.asarray(mapping, dtype=np.int64)[stage.dst]
        routes = self.cluster.route_matrix(src_cores, dst_cores)
        valid = routes >= 0
        nbytes = stage.units * block_bytes
        weights = np.broadcast_to(nbytes[:, None], routes.shape)[valid]
        return np.bincount(routes[valid], weights=weights, minlength=self.cluster.n_links)
