"""Unified cluster topology: one directed link graph over the whole system.

Every communication channel the paper cares about is a *link* with a dense
integer id and a :class:`LinkClass`:

* ``SMEM``       per-core copy-path links (core <-> its socket's L3/memory
  complex) — they bound a single pair's shared-memory bandwidth;
* ``MEM``        one shared memory-bus link per socket — every message
  touching the socket crosses it (twice for an intra-socket message: the
  sender's write and the receiver's read), bounding the socket's
  *aggregate* messaging bandwidth;
* ``QPI``        per-core lanes crossed when a message changes sockets
  inside a node (the inter-socket interconnect);
* ``HCA``        node <-> leaf switch (the node's InfiniBand adapter,
  shared by all the node's processes — the big serialisation point);
* ``LEAF_LINE`` / ``LINE_SPINE``  fat-tree switch cables.

A message from core *a* to core *b* follows the unique deterministic route
through this graph (up the source node's hierarchy, across the fat-tree,
down the destination's).  Two things fall out of the same structure:

* the **distance matrix** ``D`` the heuristics consume (paper §IV): the
  sum of per-class weights along the route, giving the strict hierarchy
  same-socket < cross-socket < same-leaf < same-line < cross-spine;
* the **route matrix** the timing engine consumes: per-message padded rows
  of directed link ids, so per-stage link loads are a single
  ``np.bincount``.

Routes are fully vectorised; the per-node-pair network segment is
precomputed once (``O(n_nodes^2)`` int32, ~4 MB for the paper's 512-node
runs).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from enum import IntEnum
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.topology.fattree import FatTreeConfig, FatTreeNetwork
from repro.topology.hardware import MachineTopology
from repro.util.validation import check_positive

__all__ = [
    "LinkClass",
    "ClusterTopology",
    "MAX_ROUTE_LEN",
    "ROUTE_CACHE_SIZE",
    "DEFAULT_DISTANCE_WEIGHTS",
]

#: Route tables kept in each cluster's batch-route cache (LRU entries).
#: A table is ~``n_msgs x 12`` int64, so 128 entries of 4096-message
#: stages are ~50 MB — bounded regardless of sweep length.
ROUTE_CACHE_SIZE = 128

#: Maximum number of directed links on any core-to-core route: core-up,
#: src-mem, qpi-up, hca-up, 4 network links, hca-down, qpi-down, dst-mem,
#: core-down.
MAX_ROUTE_LEN = 12


class LinkClass(IntEnum):
    """Channel class of a directed link (orders the cost hierarchy)."""

    SMEM = 0
    MEM = 1
    QPI = 2
    HCA = 3
    LEAF_LINE = 4
    LINE_SPINE = 5


#: Per-class contribution to the physical distance metric.  Chosen so the
#: route sums produce the strictly increasing ladder
#: 0 (self) < 1 (same socket) < 3 (cross socket) < 5 (same leaf)
#: < 7 (same line switch) < 9 (via spine).  The shared memory bus does not
#: count towards distance (it is a capacity, not a locality level).
DEFAULT_DISTANCE_WEIGHTS: Dict[LinkClass, float] = {
    LinkClass.SMEM: 0.5,
    LinkClass.MEM: 0.0,
    LinkClass.QPI: 1.0,
    LinkClass.HCA: 2.0,
    LinkClass.LEAF_LINE: 1.0,
    LinkClass.LINE_SPINE: 1.0,
}


class ClusterTopology:
    """A cluster of identical nodes attached to a fat-tree network.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes in use (must fit the network's capacity).
    machine:
        Per-node topology (sockets x cores).
    network:
        The fat-tree; nodes fill leaves in order (node ``i`` hangs off leaf
        ``i // nodes_per_leaf``), which is how schedulers allocate
        contiguous jobs on GPC.
    distance_weights:
        Optional override of :data:`DEFAULT_DISTANCE_WEIGHTS`.
    """

    def __init__(
        self,
        n_nodes: int,
        machine: Optional[MachineTopology] = None,
        network: Optional[FatTreeNetwork] = None,
        distance_weights: Optional[Dict[LinkClass, float]] = None,
    ) -> None:
        check_positive("n_nodes", n_nodes)
        self.machine = machine if machine is not None else MachineTopology()
        if network is None:
            # Size a default network just big enough for the requested nodes.
            cfg = FatTreeConfig(
                n_leaves=max(1, -(-n_nodes // FatTreeConfig().nodes_per_leaf)),
            )
            network = FatTreeNetwork(cfg)
        self.network = network
        cap = network.config.max_nodes
        if n_nodes > cap:
            raise ValueError(f"{n_nodes} nodes exceed network capacity {cap}")
        self.n_nodes = int(n_nodes)
        self.cores_per_node = self.machine.n_cores
        self.n_cores = self.n_nodes * self.cores_per_node
        self.weights = dict(DEFAULT_DISTANCE_WEIGHTS)
        if distance_weights:
            self.weights.update(distance_weights)

        # ---- directed link id layout -------------------------------------
        net = network.n_links
        n_sockets_total = self.n_nodes * self.machine.n_sockets
        self._hca_up0 = net
        self._hca_dn0 = net + self.n_nodes
        self._mem0 = net + 2 * self.n_nodes                    # one per socket
        self._qpi_up0 = self._mem0 + n_sockets_total           # one per core
        self._qpi_dn0 = self._qpi_up0 + self.n_cores
        self._core_up0 = self._qpi_dn0 + self.n_cores
        self._core_dn0 = self._core_up0 + self.n_cores
        self.n_links = self._core_dn0 + self.n_cores

        # ---- per-link class table ----------------------------------------
        cls = np.empty(self.n_links, dtype=np.int8)
        for lid in range(net):
            cls[lid] = (
                LinkClass.LEAF_LINE if network.is_leaf_line(lid) else LinkClass.LINE_SPINE
            )
        cls[self._hca_up0 : self._mem0] = LinkClass.HCA
        cls[self._mem0 : self._qpi_up0] = LinkClass.MEM
        cls[self._qpi_up0 : self._core_up0] = LinkClass.QPI
        cls[self._core_up0 :] = LinkClass.SMEM
        self.link_class = cls

        self._net_routes: Optional[np.ndarray] = None
        self._distance_matrix: Optional[np.ndarray] = None
        self._implicit_distances = None  # lazy ImplicitDistances view
        self._fingerprint: Optional[str] = None
        self._route_cache: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        #: set False to make routes_for() rebuild every table (benchmarks
        #: use this to time the uncached pre-PR pipeline)
        self.cache_routes: bool = True

    # ------------------------------------------------------------------
    # core / node / socket arithmetic
    # ------------------------------------------------------------------
    def node_of(self, core) -> np.ndarray:
        """Node index of global core id(s)."""
        return np.asarray(core, dtype=np.int64) // self.cores_per_node

    def local_core(self, core) -> np.ndarray:
        """Within-node core index of global core id(s)."""
        return np.asarray(core, dtype=np.int64) % self.cores_per_node

    def socket_of(self, core) -> np.ndarray:
        """Socket index (within the node) of global core id(s)."""
        return self.local_core(core) // self.machine.cores_per_socket

    def global_socket_of(self, core) -> np.ndarray:
        """Globally unique socket index of global core id(s)."""
        return self.node_of(core) * self.machine.n_sockets + self.socket_of(core)

    def leaf_of_node(self, node) -> np.ndarray:
        """Leaf switch of node id(s)."""
        return np.asarray(node, dtype=np.int64) // self.network.config.nodes_per_leaf

    def leaf_of(self, core) -> np.ndarray:
        """Leaf switch of global core id(s)."""
        return self.leaf_of_node(self.node_of(core))

    def cores_of_node(self, node: int) -> range:
        """Global core ids on ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        start = node * self.cores_per_node
        return range(start, start + self.cores_per_node)

    # ------------------------------------------------------------------
    # link ids (scalar and vectorised — all accept arrays)
    # ------------------------------------------------------------------
    def hca_up(self, node):
        """Directed link id: node hub -> leaf switch (the HCA send side)."""
        return self._hca_up0 + np.asarray(node, dtype=np.int64)

    def hca_down(self, node):
        """Directed link id: leaf switch -> node hub (the HCA receive side)."""
        return self._hca_dn0 + np.asarray(node, dtype=np.int64)

    def mem_bus(self, core):
        """Shared memory-bus link of the socket hosting ``core``."""
        return self._mem0 + self.global_socket_of(core)

    def qpi_up(self, core):
        """Per-core QPI lane leaving the core's socket."""
        return self._qpi_up0 + np.asarray(core, dtype=np.int64)

    def qpi_down(self, core):
        """Per-core QPI lane entering the core's socket."""
        return self._qpi_dn0 + np.asarray(core, dtype=np.int64)

    def core_up(self, core):
        """Directed link id: core -> its socket's L3/memory complex."""
        return self._core_up0 + np.asarray(core, dtype=np.int64)

    def core_down(self, core):
        """Directed link id: socket's L3/memory complex -> core."""
        return self._core_dn0 + np.asarray(core, dtype=np.int64)

    # ------------------------------------------------------------------
    # network segment routes (node pair -> up to 4 switch-level links)
    # ------------------------------------------------------------------
    def _build_net_routes(self) -> np.ndarray:
        """Precompute the fat-tree segment for every ordered node pair.

        Returns an int32 array of shape (n_nodes, n_nodes, 4) holding
        [leaf-line up, line-spine up, line-spine down, leaf-line down],
        ``-1``-padded; same-node and same-leaf pairs are fully ``-1``
        (their messages never enter the switch fabric beyond the leaf).
        """
        cfg = self.network.config
        n = self.n_nodes
        na = np.arange(n, dtype=np.int64)[:, None]
        nb = np.arange(n, dtype=np.int64)[None, :]
        leaf_a = na // cfg.nodes_per_leaf
        leaf_b = nb // cfg.nodes_per_leaf
        # Destination-based choices (mirrors FatTreeNetwork.route).
        port = nb % (cfg.n_core_switches * cfg.leaf_uplinks_per_core)
        core = port // cfg.leaf_uplinks_per_core
        up_cable = port % cfg.leaf_uplinks_per_core
        dn_cable = nb % cfg.leaf_uplinks_per_core
        line_src = leaf_a % cfg.lines_per_core
        line_dst = leaf_b % cfg.lines_per_core
        spine = leaf_b % cfg.spines_per_core
        ls_cable = nb % cfg.line_spine_multiplicity

        net = self.network
        ll_up = net._ll_up0 + ((leaf_a * cfg.n_core_switches + core) * cfg.leaf_uplinks_per_core + up_cable)
        ll_dn = net._ll_dn0 + ((leaf_b * cfg.n_core_switches + core) * cfg.leaf_uplinks_per_core + dn_cable)
        ls_up = net._ls_up0 + (
            ((core * cfg.lines_per_core + line_src) * cfg.spines_per_core + spine)
            * cfg.line_spine_multiplicity
            + ls_cable
        )
        ls_dn = net._ls_dn0 + (
            ((core * cfg.lines_per_core + line_dst) * cfg.spines_per_core + spine)
            * cfg.line_spine_multiplicity
            + ls_cable
        )

        routes = np.full((n, n, 4), -1, dtype=np.int32)
        diff_leaf = leaf_a != leaf_b
        same_line = line_src == line_dst
        routes[..., 0] = np.where(diff_leaf, ll_up, -1)
        routes[..., 1] = np.where(diff_leaf & ~same_line, ls_up, -1)
        routes[..., 2] = np.where(diff_leaf & ~same_line, ls_dn, -1)
        routes[..., 3] = np.where(diff_leaf, ll_dn, -1)
        return routes

    @property
    def net_routes(self) -> np.ndarray:
        """Lazily built per-node-pair network segment table."""
        if self._net_routes is None:
            self._net_routes = self._build_net_routes()
        return self._net_routes

    # ------------------------------------------------------------------
    # full routes
    # ------------------------------------------------------------------
    def route_matrix(self, src: Sequence[int], dst: Sequence[int]) -> np.ndarray:
        """Padded directed-link routes for a batch of messages.

        Parameters are global core ids (equal length); self-messages are
        rejected because no collective schedule emits them.  Returns an
        int64 array of shape ``(n_msgs, MAX_ROUTE_LEN)``, ``-1``-padded.
        An intra-socket message crosses its socket's memory bus twice
        (sender write + receiver read), so the bus id appears in both the
        source-side and destination-side columns.
        """
        s = np.asarray(src, dtype=np.int64)
        d = np.asarray(dst, dtype=np.int64)
        if s.shape != d.shape or s.ndim != 1:
            raise ValueError("src and dst must be equal-length 1-D arrays")
        if np.any(s == d):
            raise ValueError("self-message (src == dst) has no route")
        if s.size and (s.min() < 0 or d.min() < 0 or max(s.max(), d.max()) >= self.n_cores):
            raise ValueError("core id out of range")

        node_s, node_d = self.node_of(s), self.node_of(d)
        inter_node = node_s != node_d
        # QPI lanes are crossed only when changing sockets inside a node.
        cross_socket = (~inter_node) & (self.socket_of(s) != self.socket_of(d))

        rows = np.full((s.size, MAX_ROUTE_LEN), -1, dtype=np.int64)
        rows[:, 0] = self.core_up(s)
        rows[:, 1] = self.mem_bus(s)
        rows[:, 2] = np.where(cross_socket, self.qpi_up(s), -1)
        rows[:, 3] = np.where(inter_node, self.hca_up(node_s), -1)
        rows[:, 4:8] = self.net_routes[node_s, node_d]
        rows[:, 8] = np.where(inter_node, self.hca_down(node_d), -1)
        rows[:, 9] = np.where(cross_socket, self.qpi_down(d), -1)
        rows[:, 10] = self.mem_bus(d)
        rows[:, 11] = self.core_down(d)
        return rows

    def routes_for(self, src: Sequence[int], dst: Sequence[int]) -> np.ndarray:
        """Memoized :meth:`route_matrix` for a batch of messages.

        The route table of a stage depends only on the (src, dst) core
        vectors — not on message sizes — so sweeps that re-price the same
        (schedule, mapping) across many sizes, engines or exporters keep
        rebuilding identical 12-column tables.  This entry point keys the
        table on a content fingerprint of the two vectors and serves a
        shared **read-only** array (callers must not mutate it; they only
        ever scan it).  Bounded LRU of :data:`ROUTE_CACHE_SIZE` entries.
        """
        s = np.ascontiguousarray(np.asarray(src, dtype=np.int64))
        d = np.ascontiguousarray(np.asarray(dst, dtype=np.int64))
        if not self.cache_routes:
            return self.route_matrix(s, d)
        h = hashlib.sha1(s.size.to_bytes(8, "little"))
        h.update(s.tobytes())
        h.update(d.tobytes())
        key = h.digest()
        hit = self._route_cache.get(key)
        if hit is not None:
            self._route_cache.move_to_end(key)
            return hit
        rows = self.route_matrix(s, d)
        rows.setflags(write=False)
        self._route_cache[key] = rows
        if len(self._route_cache) > ROUTE_CACHE_SIZE:
            self._route_cache.popitem(last=False)
        return rows

    def route(self, src: int, dst: int) -> List[int]:
        """Readable single-message route (list of directed link ids)."""
        row = self.route_matrix([src], [dst])[0]
        return [int(x) for x in row if x >= 0]

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def _pair_distance(self, s: np.ndarray, d: np.ndarray) -> np.ndarray:
        """Vectorised core-to-core distance (no route materialisation)."""
        w = self.weights
        node_s, node_d = self.node_of(s), self.node_of(d)
        gsock_s, gsock_d = self.global_socket_of(s), self.global_socket_of(d)
        leaf_s, leaf_d = self.leaf_of_node(node_s), self.leaf_of_node(node_d)
        lines = self.network.config.lines_per_core
        line_s, line_d = leaf_s % lines, leaf_d % lines

        out = np.zeros(np.broadcast(s, d).shape, dtype=np.float64)
        same_core = s == d
        diff_node = node_s != node_d
        cross_socket = (~diff_node) & (gsock_s != gsock_d)
        diff_leaf = leaf_s != leaf_d
        diff_line = diff_leaf & (line_s != line_d)

        out += np.where(same_core, 0.0, 2 * w[LinkClass.SMEM])
        out += np.where(cross_socket, 2 * w[LinkClass.QPI], 0.0)
        out += np.where(diff_node, 2 * w[LinkClass.HCA], 0.0)
        out += np.where(diff_leaf, 2 * w[LinkClass.LEAF_LINE], 0.0)
        out += np.where(diff_line, 2 * w[LinkClass.LINE_SPINE], 0.0)
        return out

    def distance(self, src, dst) -> np.ndarray:
        """Distance between core id(s) ``src`` and ``dst`` (broadcasting)."""
        s = np.asarray(src, dtype=np.int64)
        d = np.asarray(dst, dtype=np.int64)
        return self._pair_distance(s, d)

    def distance_row(self, core: int) -> np.ndarray:
        """Distances from ``core`` to every core (length ``n_cores``)."""
        all_cores = np.arange(self.n_cores, dtype=np.int64)
        return self._pair_distance(np.int64(core), all_cores)

    def distance_matrix(self) -> np.ndarray:
        """The full core-by-core distance matrix ``D`` (float32, cached).

        This is the object the paper extracts once via hwloc + IB tools and
        saves for future reference (§IV).
        """
        if self._distance_matrix is None:
            cores = np.arange(self.n_cores, dtype=np.int64)
            self._distance_matrix = self._pair_distance(
                cores[:, None], cores[None, :]
            ).astype(np.float32)
        return self._distance_matrix

    def implicit_distances(self):
        """Row-on-demand distance backend (no dense D materialisation).

        Returns the cluster's cached :class:`repro.topology.implicit.
        ImplicitDistances` view — the scalable alternative to
        :meth:`distance_matrix` for large core counts.  Rows computed by
        the view are bit-identical to the dense matrix.
        """
        if self._implicit_distances is None:
            # Local import: implicit.py imports this module at top level.
            from repro.topology.implicit import ImplicitDistances

            self._implicit_distances = ImplicitDistances(self)
        return self._implicit_distances

    def fingerprint(self) -> str:
        """Stable identity of this cluster's structure (shape + wiring + weights).

        Two clusters with equal fingerprints produce identical distance
        matrices, routes and link layouts; the mapping cache and the
        persisted distance files key on this value.
        """
        if self._fingerprint is None:
            cfg = self.network.config
            payload = {
                "n_nodes": self.n_nodes,
                "n_sockets": self.machine.n_sockets,
                "cores_per_socket": self.machine.cores_per_socket,
                "n_leaves": cfg.n_leaves,
                "nodes_per_leaf": cfg.nodes_per_leaf,
                "n_core_switches": cfg.n_core_switches,
                "lines_per_core": cfg.lines_per_core,
                "spines_per_core": cfg.spines_per_core,
                "leaf_uplinks_per_core": cfg.leaf_uplinks_per_core,
                "line_spine_multiplicity": cfg.line_spine_multiplicity,
                "weights": {k.name: v for k, v in sorted(self.weights.items())},
            }
            blob = json.dumps(payload, sort_keys=True).encode()
            self._fingerprint = hashlib.sha256(blob).hexdigest()[:16]
        return self._fingerprint

    # ------------------------------------------------------------------
    # fault recovery
    # ------------------------------------------------------------------
    def shrink(self, failed_nodes: Sequence[int]) -> np.ndarray:
        """ULFM-style shrink: the usable cores once ``failed_nodes`` died.

        The physical fabric is unchanged (dead nodes keep their leaf
        ports, so every link id, route and distance stays valid); what
        contracts is the *usable core pool*.  Returns the surviving
        global core ids in ascending order — feed them to
        :mod:`repro.faults.shrink` to renumber a communicator's ranks.
        """
        failed = {int(n) for n in np.asarray(failed_nodes, dtype=np.int64).ravel()}
        for node in failed:
            if not 0 <= node < self.n_nodes:
                raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        if len(failed) >= self.n_nodes:
            raise ValueError("cannot shrink: every node failed")
        cores = np.arange(self.n_cores, dtype=np.int64)
        alive = ~np.isin(self.node_of(cores), np.array(sorted(failed), dtype=np.int64))
        return cores[alive]

    # ------------------------------------------------------------------
    # channel classification (reporting / tests)
    # ------------------------------------------------------------------
    def channel_of(self, src: int, dst: int) -> str:
        """Coarse name of the dominant channel between two cores."""
        if not (0 <= src < self.n_cores and 0 <= dst < self.n_cores):
            raise ValueError("core id out of range")
        if src == dst:
            return "self"
        if self.node_of(src) == self.node_of(dst):
            return "smem" if self.socket_of(src) == self.socket_of(dst) else "qpi"
        leaf_s, leaf_d = int(self.leaf_of(src)), int(self.leaf_of(dst))
        hops = self.network.switch_hops(leaf_s, leaf_d)
        return {0: "leaf", 2: "line", 4: "spine"}[hops]

    def __repr__(self) -> str:
        return (
            f"ClusterTopology({self.n_nodes} nodes x {self.cores_per_node} cores = "
            f"{self.n_cores} cores; {self.network.describe()})"
        )
