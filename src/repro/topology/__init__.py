"""Hardware topology substrate.

Models everything the paper's heuristics and evaluation need from the
physical system:

* :mod:`repro.topology.hardware` — the intra-node hierarchy (sockets/NUMA
  domains, cores), playing the role hwloc plays in the paper;
* :mod:`repro.topology.fattree` — the InfiniBand fat-tree network (leaf /
  line / spine switches, link multiplicities, deterministic up/down
  routing), playing the role of the IB subnet tools;
* :mod:`repro.topology.cluster` — the unified cluster: one directed link
  graph spanning cores, sockets, HCAs and switches, with per-link channel
  classes, routes and the core-to-core distance matrix;
* :mod:`repro.topology.distances` — the simulated one-time distance
  extraction step (paper §IV / Fig. 7a);
* :mod:`repro.topology.implicit` — the row-on-demand distance backend
  (no dense matrix), carrying coordinates and the topology fingerprint
  for the vectorised mapping driver and the mapping cache;
* :mod:`repro.topology.gpc` — ready-made cluster configurations, including
  the SciNet GPC system of the paper's evaluation.
"""

from repro.topology.hardware import MachineTopology
from repro.topology.fattree import FatTreeNetwork, FatTreeConfig
from repro.topology.cluster import ClusterTopology, LinkClass
from repro.topology.distances import DistanceExtractor, ExtractionReport
from repro.topology.implicit import CoreCoords, ImplicitDistances
from repro.topology.gpc import gpc_cluster, small_cluster, single_node_cluster
from repro.topology.persist import (
    load_distances,
    load_reordering,
    save_distances,
    save_reordering,
    topology_fingerprint,
)
from repro.topology.slurm import Distribution, layout_from_distribution, parse_distribution
from repro.topology.visualize import render_node, render_tree, render_wiring

__all__ = [
    "MachineTopology",
    "FatTreeNetwork",
    "FatTreeConfig",
    "ClusterTopology",
    "LinkClass",
    "DistanceExtractor",
    "ExtractionReport",
    "ImplicitDistances",
    "CoreCoords",
    "gpc_cluster",
    "small_cluster",
    "single_node_cluster",
    "Distribution",
    "parse_distribution",
    "layout_from_distribution",
    "topology_fingerprint",
    "save_distances",
    "load_distances",
    "save_reordering",
    "load_reordering",
    "render_node",
    "render_tree",
    "render_wiring",
]
