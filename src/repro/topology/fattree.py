"""InfiniBand fat-tree network model with deterministic up/down routing.

This reproduces the network of the paper's Fig. 2: compute nodes hang off
36-port *leaf* switches; each leaf switch has a bundle of parallel uplinks
into each of the *core* switches; each core switch is internally a two-level
fat-tree of *line* and *spine* switches.  On GPC, each leaf connects to one
line switch per core switch with 3 parallel cables, and each line switch
connects to every spine of its core switch with 2 parallel cables.

Routing is destination-based, mirroring InfiniBand's LID-forwarding-table
(ftree) routing: the output port a switch uses depends only on the
destination node, so a fixed (src, dst) pair always takes the same path and
different destinations spread over parallel cables and spines.  This
determinism is what makes congestion patterns stable — the property the
paper's heuristics exploit.

The network owns its own directed-link id space (leaf-line and line-spine
cables only; node-to-leaf HCA cables belong to the cluster layer).  Link
ids are dense integers so the timing engine can vectorise over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.util.validation import check_positive

__all__ = ["FatTreeConfig", "FatTreeNetwork"]


@dataclass(frozen=True)
class FatTreeConfig:
    """Shape parameters of the fat-tree.

    The defaults are the GPC values from the paper (§VI): two core
    switches, each internally 18 line + 9 spine switches; each leaf has 3
    parallel uplinks to one line switch per core switch; each line-spine
    pair is joined by 2 parallel cables.
    """

    n_leaves: int = 31
    nodes_per_leaf: int = 30
    n_core_switches: int = 2
    lines_per_core: int = 18
    spines_per_core: int = 9
    leaf_uplinks_per_core: int = 3
    line_spine_multiplicity: int = 2

    def __post_init__(self) -> None:
        for name in (
            "n_leaves",
            "nodes_per_leaf",
            "n_core_switches",
            "lines_per_core",
            "spines_per_core",
            "leaf_uplinks_per_core",
            "line_spine_multiplicity",
        ):
            check_positive(name, getattr(self, name))

    @property
    def max_nodes(self) -> int:
        """Capacity of the network in compute nodes."""
        return self.n_leaves * self.nodes_per_leaf


class FatTreeNetwork:
    """A concrete fat-tree instance: wiring, link ids and routes.

    Directed links are laid out in two dense blocks:

    * **leaf-line** cables: for leaf ``l``, core switch ``c``, parallel
      cable ``k`` there is an *up* link (leaf -> line) and a *down* link
      (line -> leaf).
    * **line-spine** cables: for core switch ``c``, line ``i``, spine
      ``j``, parallel cable ``k``: *up* (line -> spine) and *down*.

    Leaf ``l`` attaches to line switch ``l % lines_per_core`` inside every
    core switch (all its parallel cables to that core switch land on the
    same line switch, as on GPC's director switches).
    """

    def __init__(self, config: FatTreeConfig = FatTreeConfig()) -> None:
        self.config = config
        c = config
        # Block sizes of the directed-link id space.
        self._n_leaf_line = c.n_leaves * c.n_core_switches * c.leaf_uplinks_per_core
        self._n_line_spine = (
            c.n_core_switches * c.lines_per_core * c.spines_per_core * c.line_spine_multiplicity
        )
        # Layout: [leaf-line up | leaf-line down | line-spine up | line-spine down]
        self._ll_up0 = 0
        self._ll_dn0 = self._n_leaf_line
        self._ls_up0 = 2 * self._n_leaf_line
        self._ls_dn0 = 2 * self._n_leaf_line + self._n_line_spine
        self.n_links = 2 * self._n_leaf_line + 2 * self._n_line_spine

    # ------------------------------------------------------------------
    # link id computations
    # ------------------------------------------------------------------
    def _ll_index(self, leaf: int, core: int, cable: int) -> int:
        c = self.config
        if not 0 <= leaf < c.n_leaves:
            raise ValueError(f"leaf {leaf} out of range [0, {c.n_leaves})")
        if not 0 <= core < c.n_core_switches:
            raise ValueError(f"core switch {core} out of range")
        if not 0 <= cable < c.leaf_uplinks_per_core:
            raise ValueError(f"cable {cable} out of range")
        return (leaf * c.n_core_switches + core) * c.leaf_uplinks_per_core + cable

    def leaf_line_up(self, leaf: int, core: int, cable: int) -> int:
        """Directed link id: leaf switch -> line switch."""
        return self._ll_up0 + self._ll_index(leaf, core, cable)

    def leaf_line_down(self, leaf: int, core: int, cable: int) -> int:
        """Directed link id: line switch -> leaf switch."""
        return self._ll_dn0 + self._ll_index(leaf, core, cable)

    def _ls_index(self, core: int, line: int, spine: int, cable: int) -> int:
        c = self.config
        if not 0 <= line < c.lines_per_core:
            raise ValueError(f"line {line} out of range")
        if not 0 <= spine < c.spines_per_core:
            raise ValueError(f"spine {spine} out of range")
        if not 0 <= cable < c.line_spine_multiplicity:
            raise ValueError(f"cable {cable} out of range")
        return ((core * c.lines_per_core + line) * c.spines_per_core + spine) * c.line_spine_multiplicity + cable

    def line_spine_up(self, core: int, line: int, spine: int, cable: int) -> int:
        """Directed link id: line switch -> spine switch."""
        return self._ls_up0 + self._ls_index(core, line, spine, cable)

    def line_spine_down(self, core: int, line: int, spine: int, cable: int) -> int:
        """Directed link id: spine switch -> line switch."""
        return self._ls_dn0 + self._ls_index(core, line, spine, cable)

    def line_of_leaf(self, leaf: int) -> int:
        """Line switch (within any core switch) that serves ``leaf``."""
        return leaf % self.config.lines_per_core

    def is_leaf_line(self, link_id: int) -> bool:
        """True iff ``link_id`` is a leaf-line cable (either direction)."""
        if not 0 <= link_id < self.n_links:
            raise ValueError(f"link id {link_id} out of range")
        return link_id < self._ls_up0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, src_leaf: int, dst_leaf: int, dst_node: int) -> List[int]:
        """Directed link ids between two leaf switches.

        Destination-based, like InfiniBand ftree routing: every choice
        (core switch, parallel cable, spine) is a function of the
        destination only, so forwarding tables are consistent and a given
        destination always pulls traffic over the same ports.

        Returns an empty route when ``src_leaf == dst_leaf`` (the message
        turns around inside the leaf switch).
        """
        if src_leaf == dst_leaf:
            return []
        c = self.config
        # Destination picks the core switch and the parallel cables.
        port = dst_node % (c.n_core_switches * c.leaf_uplinks_per_core)
        core = port // c.leaf_uplinks_per_core
        up_cable = port % c.leaf_uplinks_per_core
        dn_cable = dst_node % c.leaf_uplinks_per_core
        line_src = self.line_of_leaf(src_leaf)
        line_dst = self.line_of_leaf(dst_leaf)
        route = [self.leaf_line_up(src_leaf, core, up_cable)]
        if line_src != line_dst:
            spine = dst_leaf % c.spines_per_core
            ls_cable = dst_node % c.line_spine_multiplicity
            route.append(self.line_spine_up(core, line_src, spine, ls_cable))
            route.append(self.line_spine_down(core, line_dst, spine, ls_cable))
        route.append(self.leaf_line_down(dst_leaf, core, dn_cable))
        return route

    def switch_hops(self, src_leaf: int, dst_leaf: int) -> int:
        """Number of switch-to-switch hops between two leaves.

        0 within a leaf, 2 when both leaves share a line switch of the
        chosen core switch, 4 otherwise (up to a spine and back down).
        """
        if src_leaf == dst_leaf:
            return 0
        if self.line_of_leaf(src_leaf) == self.line_of_leaf(dst_leaf):
            return 2
        return 4

    # ------------------------------------------------------------------
    # structural summaries (used by tests and docs)
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable one-line summary."""
        c = self.config
        return (
            f"fat-tree: {c.n_leaves} leaves x {c.nodes_per_leaf} nodes, "
            f"{c.n_core_switches} core switches ({c.lines_per_core} line + "
            f"{c.spines_per_core} spine each), {self.n_links} directed links"
        )

    def all_link_ids(self) -> np.ndarray:
        """All directed link ids as an array."""
        return np.arange(self.n_links, dtype=np.int64)

    def endpoints(self, link_id: int) -> Tuple[str, str]:
        """Human-readable (source, target) switch names of a link."""
        c = self.config
        if link_id < self._ll_dn0:
            idx = link_id - self._ll_up0
            cable = idx % c.leaf_uplinks_per_core
            rest = idx // c.leaf_uplinks_per_core
            core, leaf = rest % c.n_core_switches, rest // c.n_core_switches
            return (f"leaf{leaf}", f"core{core}/line{self.line_of_leaf(leaf)}[{cable}]")
        if link_id < self._ls_up0:
            idx = link_id - self._ll_dn0
            cable = idx % c.leaf_uplinks_per_core
            rest = idx // c.leaf_uplinks_per_core
            core, leaf = rest % c.n_core_switches, rest // c.n_core_switches
            return (f"core{core}/line{self.line_of_leaf(leaf)}[{cable}]", f"leaf{leaf}")
        if link_id < self._ls_dn0:
            idx = link_id - self._ls_up0
        else:
            idx = link_id - self._ls_dn0
        cable = idx % c.line_spine_multiplicity
        rest = idx // c.line_spine_multiplicity
        spine = rest % c.spines_per_core
        rest //= c.spines_per_core
        line = rest % c.lines_per_core
        core = rest // c.lines_per_core
        a, b = f"core{core}/line{line}[{cable}]", f"core{core}/spine{spine}"
        return (a, b) if link_id < self._ls_dn0 else (b, a)
