"""ASCII rendering of cluster topologies.

Draws the hierarchy the heuristics see — fat-tree wiring down to nodes,
and the socket/core structure of a node — so a reader can eyeball the
machine a sweep ran on (``python -m repro topo`` uses it).
"""

from __future__ import annotations


from repro.topology.cluster import ClusterTopology

__all__ = ["render_tree", "render_node", "render_wiring"]


def render_node(cluster: ClusterTopology, node: int = 0) -> str:
    """One compute node: sockets and cores (hwloc-lstopo flavoured)."""
    m = cluster.machine
    if not 0 <= node < cluster.n_nodes:
        raise ValueError(f"node {node} out of range [0, {cluster.n_nodes})")
    base = node * cluster.cores_per_node
    lines = [f"node{node}"]
    for s in range(m.n_sockets):
        cores = [base + c for c in m.cores_of_socket(s)]
        core_str = " ".join(f"[core {c}]" for c in cores)
        lines.append(f"  socket{s} (L3): {core_str}")
    return "\n".join(lines)


def render_tree(cluster: ClusterTopology, max_leaves: int = 4, max_nodes: int = 4) -> str:
    """The switch hierarchy with per-level fan-outs (elided with ``...``)."""
    cfg = cluster.network.config
    lines = [
        f"{cfg.n_core_switches} core switches "
        f"(each: {cfg.lines_per_core} line + {cfg.spines_per_core} spine, "
        f"{cfg.line_spine_multiplicity} cable(s) per line-spine pair)"
    ]
    n_leaves_used = -(-cluster.n_nodes // cfg.nodes_per_leaf)
    shown_leaves = min(n_leaves_used, max_leaves)
    for leaf in range(shown_leaves):
        line = cluster.network.line_of_leaf(leaf)
        lines.append(
            f"└─ leaf{leaf} ({cfg.leaf_uplinks_per_core} cables to line{line} "
            f"of each core switch)"
        )
        first = leaf * cfg.nodes_per_leaf
        nodes = [n for n in range(first, min(first + cfg.nodes_per_leaf, cluster.n_nodes))]
        for n in nodes[:max_nodes]:
            cores = cluster.cores_of_node(n)
            lines.append(f"   └─ node{n} (cores {cores.start}-{cores.stop - 1})")
        if len(nodes) > max_nodes:
            lines.append(f"   └─ ... {len(nodes) - max_nodes} more nodes")
    if n_leaves_used > shown_leaves:
        lines.append(f"└─ ... {n_leaves_used - shown_leaves} more leaves")
    return "\n".join(lines)


def render_wiring(cluster: ClusterTopology) -> str:
    """Oversubscription summary: the numbers behind the blocking factor."""
    cfg = cluster.network.config
    uplinks = cfg.n_core_switches * cfg.leaf_uplinks_per_core
    blocking = cfg.nodes_per_leaf / uplinks
    lines = [
        f"nodes per leaf:        {cfg.nodes_per_leaf}",
        f"uplinks per leaf:      {uplinks} "
        f"({cfg.leaf_uplinks_per_core} to each of {cfg.n_core_switches} core switches)",
        f"blocking factor:       {blocking:g}:1",
        f"directed links total:  {cluster.n_links} "
        f"({cluster.network.n_links} switch cables)",
    ]
    return "\n".join(lines)
