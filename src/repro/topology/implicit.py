"""Implicit (row-on-demand) distance backend — no dense D materialisation.

The paper's pipeline extracts the full core-by-core distance matrix once
(§IV); faithful, but O(cores²) memory and build time — 128 MB of float64
intermediates at the paper's 4096-process scale before a single mapping
step runs.  Every quantity the heuristics actually consume is derivable
in O(1) per pair from the *coordinates* of the two cores (node, socket,
leaf switch, line switch), because the fat-tree distance ladder depends
only on the deepest hierarchy level the pair shares.

:class:`ImplicitDistances` packages that observation as a drop-in
``D``-like object:

* ``shape`` / ``dtype`` / ``D[i, cols]`` / ``D[i]`` — the indexing the
  mappers and graph baselines use, served per-row (vectorised, float32,
  bit-identical to ``cluster.distance_matrix()``);
* :meth:`coords` — per-core hierarchy coordinates, the input of the
  vectorised placement driver in :mod:`repro.mapping.base`;
* :meth:`ladder` — the distance value of each hierarchy level, and
  :attr:`has_strict_ladder` — whether the levels are strictly increasing
  (true for the default weights; custom weights may collapse levels, in
  which case the mappers fall back to explicit row scans);
* ``fingerprint`` — the owning cluster's structural fingerprint, which
  makes mapping results content-addressable (see
  :mod:`repro.mapping.cache`);
* :meth:`dense` — the reference oracle: the full matrix, kept behind this
  explicit call for tests and small-scale tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.topology.cluster import ClusterTopology
from repro.util.jit import HAS_NUMBA, maybe_njit

__all__ = ["CoreCoords", "ImplicitDistances"]


@maybe_njit(cache=True)
def _ladder_row_kernel(  # pragma: no cover - compiled; numpy twin is tested
    core, cols, out, ladder, cpn, cps, nspn, npl, nlines
):
    """Fill ``out[i] = ladder[shared_level(core, cols[i])]`` (compiled).

    One integer-arithmetic pass per column, no intermediate arrays —
    the jit twin of the vectorised level scan in
    :meth:`ImplicitDistances.row`.  The float64 ladder value is cast to
    float32 on store, the same single rounding the numpy path applies.
    """
    node_s = core // cpn
    gs_s = node_s * nspn + (core % cpn) // cps
    lf_s = node_s // npl
    ln_s = lf_s % nlines
    for i in range(cols.shape[0]):
        c = cols[i]
        if c == core:
            lvl = 0
        else:
            node = c // cpn
            if node == node_s:
                lvl = 1 if node * nspn + (c % cpn) // cps == gs_s else 2
            else:
                lf = node // npl
                if lf == lf_s:
                    lvl = 3
                elif lf % nlines == ln_s:
                    lvl = 4
                else:
                    lvl = 5
        out[i] = ladder[lvl]
    return out


@dataclass(frozen=True)
class CoreCoords:
    """Hierarchy coordinates of a set of cores (parallel int64 arrays).

    ``gsock`` is globally unique (node * sockets_per_node + socket), so
    equality of any single coordinate array answers "same socket / node /
    leaf / line switch?" directly.
    """

    gsock: np.ndarray
    node: np.ndarray
    leaf: np.ndarray
    line: np.ndarray


class ImplicitDistances:
    """Distance-matrix view over a cluster, computed per-row on demand.

    Parameters
    ----------
    cluster:
        The owning topology.  The view holds no O(cores²) state; rows are
        recomputed from coordinates on every access (callers that want
        reuse cache rows themselves, as :class:`repro.mapping.base.
        CorePool` does).
    """

    def __init__(self, cluster: ClusterTopology) -> None:
        self.cluster = cluster
        n = cluster.n_cores
        self.shape: Tuple[int, int] = (n, n)
        self.ndim = 2
        self.dtype = np.dtype(np.float32)
        self.fingerprint = cluster.fingerprint()
        self._ladder = self._build_ladder(cluster)
        # integer constants for the ladder-scan paths of row():
        # (cores_per_node, cores_per_socket, sockets_per_node,
        #  nodes_per_leaf, lines_per_core)
        self._coord_consts = (
            int(cluster.cores_per_node),
            int(cluster.machine.cores_per_socket),
            int(cluster.machine.n_sockets),
            int(cluster.network.config.nodes_per_leaf),
            int(cluster.network.config.lines_per_core),
        )

    # ------------------------------------------------------------------
    # the distance ladder
    # ------------------------------------------------------------------
    @staticmethod
    def _build_ladder(cluster: ClusterTopology) -> np.ndarray:
        """Distance of each hierarchy level, same arithmetic as the dense path.

        Levels: 0 same core, 1 same socket, 2 same node (cross socket),
        3 same leaf (cross node), 4 same line switch (cross leaf),
        5 cross line (via spine).
        """
        from repro.topology.cluster import LinkClass

        w = cluster.weights
        smem = 2 * w[LinkClass.SMEM]
        qpi = 2 * w[LinkClass.QPI]
        hca = 2 * w[LinkClass.HCA]
        leaf_line = 2 * w[LinkClass.LEAF_LINE]
        line_spine = 2 * w[LinkClass.LINE_SPINE]
        return np.array(
            [
                0.0,
                smem,
                smem + qpi,
                smem + hca,
                smem + hca + leaf_line,
                smem + hca + leaf_line + line_spine,
            ],
            dtype=np.float64,
        )

    def ladder(self) -> np.ndarray:
        """Per-level distances (copy; index = hierarchy level, 6 entries)."""
        return self._ladder.copy()

    @property
    def has_strict_ladder(self) -> bool:
        """True iff deeper sharing is always strictly closer.

        Holds for the default weights (0 < 1 < 3 < 5 < 7 < 9) but custom
        ``distance_weights`` can collapse or invert levels; the strictness
        must also survive the float32 cast the dense matrix applies, since
        the two paths are compared bit-for-bit.
        """
        lad32 = self._ladder.astype(np.float32)
        return bool(np.all(np.diff(self._ladder) > 0) and np.all(np.diff(lad32) > 0))

    @property
    def supports_vectorized_placement(self) -> bool:
        """Duck-typing hook read by the mapping layer's placement driver."""
        return self.has_strict_ladder

    # ------------------------------------------------------------------
    # coordinates
    # ------------------------------------------------------------------
    def coords(self, cores) -> CoreCoords:
        """Hierarchy coordinates of ``cores`` (vectorised)."""
        c = np.asarray(cores, dtype=np.int64)
        cl = self.cluster
        node = cl.node_of(c)
        gsock = cl.global_socket_of(c)
        leaf = cl.leaf_of_node(node)
        line = leaf % cl.network.config.lines_per_core
        return CoreCoords(gsock=gsock, node=node, leaf=leaf, line=line)

    # ------------------------------------------------------------------
    # D-like indexing
    # ------------------------------------------------------------------
    def row(self, core: int, cols=None) -> np.ndarray:
        """Distances from ``core`` to ``cols`` (default: every core), float32.

        Bit-identical to ``cluster.distance_matrix()[core, cols]``: every
        pair's distance is the ladder value of the deepest level the pair
        shares, and each ladder entry is accumulated in the same float64
        addition order as the dense path (the skipped terms there are
        exact ``+ 0.0``s) before the same final float32 cast.  Served by
        the compiled ladder-scan kernel when numba is available, else by
        one vectorised level scan.
        """
        core = int(core)
        if cols is None:
            cols = np.arange(self.shape[1], dtype=np.int64)
        else:
            cols = np.ascontiguousarray(np.asarray(cols, dtype=np.int64))
        if HAS_NUMBA:
            out = np.empty(cols.size, dtype=np.float32)
            return _ladder_row_kernel(
                core, cols, out, self._ladder, *self._coord_consts
            )
        # Shared-level scan: the level masks are nested (same socket =>
        # same node => same leaf => same line switch), so the deepest
        # shared level is 5 minus the count of satisfied masks.
        cc = self.coords(cols)
        cpn, cps, nspn, npl, nlines = self._coord_consts
        node_s = core // cpn
        gs_s = node_s * nspn + (core % cpn) // cps
        lf_s = node_s // npl
        lvl = 5 - (
            (cc.line == lf_s % nlines).astype(np.int64)
            + (cc.leaf == lf_s)
            + (cc.node == node_s)
            + (cc.gsock == gs_s)
            + (cols == core)
        )
        return self._ladder[lvl].astype(np.float32)

    def __getitem__(self, idx) -> Union[np.ndarray, float]:
        """Support the mappers' access patterns: ``D[i, cols]`` and ``D[i]``."""
        if isinstance(idx, tuple):
            if len(idx) != 2:
                raise IndexError(f"ImplicitDistances supports 2-D indexing, got {idx!r}")
            r, c = idx
            out = self.cluster.distance(r, c).astype(np.float32)
            return float(out) if np.ndim(out) == 0 else out
        return self.row(idx)

    def dense(self) -> np.ndarray:
        """The reference oracle: the full dense matrix (delegated, cached)."""
        return self.cluster.distance_matrix()

    def __repr__(self) -> str:
        return (
            f"ImplicitDistances({self.shape[0]} cores, fingerprint={self.fingerprint}, "
            f"strict_ladder={self.has_strict_ladder})"
        )
