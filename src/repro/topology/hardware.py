"""Intra-node hardware model (the role hwloc plays in the paper).

A compute node is modelled as a small tree: machine -> sockets (each a NUMA
domain with a shared L3) -> cores.  The paper's GPC nodes are two quad-core
Xeon sockets; :class:`MachineTopology` is parameterised so tests and the
future-work experiments ("systems having a more complicated intra-node
topology with a larger number of cores per node", paper §VII) can model
wider nodes too.

Distances follow the hwloc convention the paper relies on: hierarchy level
at which two cores first share an ancestor.  The concrete weights live in
:class:`~repro.topology.cluster.ClusterTopology`; this module only answers
structural queries (which socket a core is on, which cores share a socket,
an hwloc-like object tree for the simulated extraction step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.util.validation import check_positive

__all__ = ["MachineTopology", "TopoObject"]


@dataclass
class TopoObject:
    """One vertex of the hwloc-like object tree.

    ``kind`` is an hwloc-ish type string ("Machine", "Package", "L3",
    "Core"); ``os_index`` numbers objects of the same kind within the
    machine.  The tree exists so the simulated distance-extraction step
    (:mod:`repro.topology.distances`) has something real to traverse, the
    way the paper's implementation walks the hwloc topology.
    """

    kind: str
    os_index: int
    children: List["TopoObject"] = field(default_factory=list)

    def walk(self) -> Iterator["TopoObject"]:
        """Depth-first iterator over this object and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TopoObject({self.kind}#{self.os_index}, {len(self.children)} children)"


class MachineTopology:
    """Topology of a single compute node.

    Parameters
    ----------
    n_sockets:
        Number of CPU packages; each is its own NUMA domain with a shared
        L3 cache (matching the paper's GPC nodes).
    cores_per_socket:
        Cores per package.
    """

    def __init__(self, n_sockets: int = 2, cores_per_socket: int = 4) -> None:
        check_positive("n_sockets", n_sockets)
        check_positive("cores_per_socket", cores_per_socket)
        self.n_sockets = int(n_sockets)
        self.cores_per_socket = int(cores_per_socket)

    @property
    def n_cores(self) -> int:
        """Total cores in the node."""
        return self.n_sockets * self.cores_per_socket

    def socket_of(self, core: int) -> int:
        """Socket index hosting local core index ``core``."""
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range [0, {self.n_cores})")
        return core // self.cores_per_socket

    def cores_of_socket(self, socket: int) -> range:
        """Local core indices belonging to ``socket``."""
        if not 0 <= socket < self.n_sockets:
            raise ValueError(f"socket {socket} out of range [0, {self.n_sockets})")
        start = socket * self.cores_per_socket
        return range(start, start + self.cores_per_socket)

    def same_socket(self, a: int, b: int) -> bool:
        """True iff local cores ``a`` and ``b`` share a socket."""
        return self.socket_of(a) == self.socket_of(b)

    def hierarchy_level(self, a: int, b: int) -> int:
        """hwloc-style separation level between two local cores.

        0 = same core, 1 = same socket (shared L3), 2 = different sockets
        (traffic crosses the inter-socket QPI interconnect).
        """
        if a == b:
            return 0
        return 1 if self.same_socket(a, b) else 2

    def object_tree(self) -> TopoObject:
        """Build the hwloc-like object tree for this node."""
        machine = TopoObject("Machine", 0)
        for s in range(self.n_sockets):
            package = TopoObject("Package", s)
            l3 = TopoObject("L3", s)
            package.children.append(l3)
            for c in self.cores_of_socket(s):
                l3.children.append(TopoObject("Core", c))
            machine.children.append(package)
        return machine

    def core_pairs(self) -> Iterator[Tuple[int, int]]:
        """All unordered local core pairs (used by extraction and tests)."""
        n = self.n_cores
        for a in range(n):
            for b in range(a + 1, n):
                yield a, b

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MachineTopology)
            and self.n_sockets == other.n_sockets
            and self.cores_per_socket == other.cores_per_socket
        )

    def __repr__(self) -> str:
        return f"MachineTopology(n_sockets={self.n_sockets}, cores_per_socket={self.cores_per_socket})"
