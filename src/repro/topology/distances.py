"""Simulated one-time physical-distance extraction (paper §IV, Fig. 7a).

On the real system the paper extracts core-to-core distances once, using
hwloc for the intra-node part and InfiniBand subnet tools for the inter-node
part, then saves the matrix for future reference.  Here the hardware is a
model, but the extraction step still *does the work*: each process walks the
hwloc-like object tree of its node to locate its core, queries the simulated
subnet manager for its node's switch coordinates, and the per-rank position
records are then combined into the full distance matrix.  The cost is linear
in the number of processes (as in Fig. 7a) plus a vectorised O(p^2) matrix
assembly.

:class:`DistanceExtractor` is the public entry point; it returns both the
matrix and an :class:`ExtractionReport` with the measured wall time, which
``benchmarks/bench_fig7_overheads.py`` uses to regenerate Fig. 7(a).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.topology.cluster import ClusterTopology
from repro.util.validation import check_square_matrix, check_symmetric_matrix

__all__ = ["DistanceExtractor", "ExtractionReport", "CorePosition"]


@dataclass(frozen=True)
class CorePosition:
    """Physical coordinates of one process, as a real extraction would see.

    Combines the hwloc view (node, socket, core) with the subnet-manager
    view (leaf switch, line switch).
    """

    core: int
    node: int
    socket: int
    local_core: int
    leaf: int
    line: int


@dataclass(frozen=True)
class ExtractionReport:
    """Outcome of one extraction run."""

    n_processes: int
    seconds: float
    per_process_seconds: float


class DistanceExtractor:
    """Extracts the core-to-core distance matrix for a set of processes.

    Parameters
    ----------
    cluster:
        The system to interrogate.
    """

    def __init__(self, cluster: ClusterTopology) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    def locate(self, core: int) -> CorePosition:
        """Locate one core the way a process would at start-up.

        Walks the node's hwloc-like object tree to find the Core object
        (what ``hwloc_get_obj_by_type`` + ancestor walks do in the paper's
        implementation), then asks the network model for the node's switch
        coordinates (what ``ibtracert``-style tools provide).
        """
        cl = self.cluster
        if not 0 <= core < cl.n_cores:
            raise ValueError(f"core {core} out of range [0, {cl.n_cores})")
        node = int(cl.node_of(core))
        local = int(cl.local_core(core))
        tree = cl.machine.object_tree()
        socket = -1
        found = False
        for obj in tree.walk():
            if obj.kind == "Package":
                socket = obj.os_index
            elif obj.kind == "Core" and obj.os_index == local:
                found = True
                break
        if not found:  # pragma: no cover - structural invariant
            raise RuntimeError(f"core {local} not present in machine tree")
        leaf = int(cl.leaf_of_node(node))
        line = cl.network.line_of_leaf(leaf)
        return CorePosition(core=core, node=node, socket=socket, local_core=local, leaf=leaf, line=line)

    def gather_positions(self, cores: Optional[List[int]] = None) -> List[CorePosition]:
        """Per-process position records (the allgathered extraction data)."""
        if cores is None:
            cores = list(range(self.cluster.n_cores))
        return [self.locate(c) for c in cores]

    def extract(
        self, cores: Optional[List[int]] = None
    ) -> Tuple[np.ndarray, ExtractionReport]:
        """Run the full one-time extraction.

        Returns the distance matrix restricted to ``cores`` (all cores by
        default, in the given order) and the timing report.
        """
        t0 = time.perf_counter()
        positions = self.gather_positions(cores)
        idx = np.array([p.core for p in positions], dtype=np.int64)
        dist = self.cluster.distance(idx[:, None], idx[None, :]).astype(np.float32)
        check_square_matrix("distance matrix", dist)
        check_symmetric_matrix("distance matrix", dist)
        dt = time.perf_counter() - t0
        report = ExtractionReport(
            n_processes=len(positions),
            seconds=dt,
            per_process_seconds=dt / max(1, len(positions)),
        )
        return dist, report
