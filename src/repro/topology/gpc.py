"""Ready-made cluster configurations.

:func:`gpc_cluster` reconstructs the SciNet GPC system the paper evaluated
on (§VI): dual-socket quad-core Xeon nodes (each socket a NUMA domain with
a shared L3) on a QDR InfiniBand fat-tree — 36-port leaf switches serving
30 nodes each with 3 parallel uplinks into one line switch of each of two
core switches; each core switch internally 18 line + 9 spine switches with
2 parallel cables per line-spine pair.

The paper's largest runs use 4096 processes = 512 fully subscribed nodes,
which is what ``gpc_cluster()`` returns by default; pass ``n_nodes`` for
the smaller 1024/2048-process configurations of Fig. 5-7.
"""

from __future__ import annotations

from repro.topology.cluster import ClusterTopology
from repro.topology.fattree import FatTreeConfig, FatTreeNetwork
from repro.topology.hardware import MachineTopology

__all__ = ["gpc_cluster", "small_cluster", "single_node_cluster"]

#: Cores per GPC node (2 sockets x 4 cores).
GPC_CORES_PER_NODE = 8


def gpc_cluster(n_nodes: int = 512) -> ClusterTopology:
    """The paper's GPC system, sized to ``n_nodes`` compute nodes.

    ``n_nodes=512`` hosts the 4096-process experiments; 128 and 256 host
    the 1024- and 2048-process ones.
    """
    machine = MachineTopology(n_sockets=2, cores_per_socket=4)
    nodes_per_leaf = 30
    n_leaves = max(2, -(-n_nodes // nodes_per_leaf))
    network = FatTreeNetwork(
        FatTreeConfig(
            n_leaves=n_leaves,
            nodes_per_leaf=nodes_per_leaf,
            n_core_switches=2,
            lines_per_core=18,
            spines_per_core=9,
            leaf_uplinks_per_core=3,
            line_spine_multiplicity=2,
        )
    )
    return ClusterTopology(n_nodes=n_nodes, machine=machine, network=network)


def small_cluster(
    n_nodes: int = 4,
    n_sockets: int = 2,
    cores_per_socket: int = 2,
    nodes_per_leaf: int = 2,
) -> ClusterTopology:
    """A laptop-scale cluster for tests and examples.

    Defaults: 4 nodes x 4 cores on 2 leaf switches — big enough to exercise
    every channel class (smem, QPI, leaf, line/spine) yet small enough for
    exhaustive property tests.
    """
    machine = MachineTopology(n_sockets=n_sockets, cores_per_socket=cores_per_socket)
    n_leaves = max(2, -(-n_nodes // nodes_per_leaf))
    network = FatTreeNetwork(
        FatTreeConfig(
            n_leaves=n_leaves,
            nodes_per_leaf=nodes_per_leaf,
            n_core_switches=2,
            lines_per_core=3,
            spines_per_core=2,
            leaf_uplinks_per_core=2,
            line_spine_multiplicity=1,
        )
    )
    return ClusterTopology(n_nodes=n_nodes, machine=machine, network=network)


def single_node_cluster(n_sockets: int = 2, cores_per_socket: int = 4) -> ClusterTopology:
    """One node only — for intra-node (BGMH/BBMH) experiments."""
    machine = MachineTopology(n_sockets=n_sockets, cores_per_socket=cores_per_socket)
    network = FatTreeNetwork(FatTreeConfig(n_leaves=1, nodes_per_leaf=1))
    return ClusterTopology(n_nodes=1, machine=machine, network=network)
