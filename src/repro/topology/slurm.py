"""SLURM-style process distribution (paper §I motivation).

"Resource management tools such as SLURM [7] and Hydra [8] provide
various options for choosing the number and order of nodes, sockets, and
cores assigned to a job."  This module models SLURM's ``--distribution``
option: a colon-separated pair of policies, the first for ranks across
*nodes*, the second for ranks across *sockets* within a node:

* node level: ``block`` (fill a node before the next) or ``cyclic``
  (round-robin over nodes);
* socket level: ``block`` (fill a socket first — the paper's *bunch*) or
  ``cyclic`` / ``fcyclic`` (round-robin over sockets — the paper's
  *scatter*);
* additionally ``plane=N``: dispatch blocks of N consecutive ranks per
  node in round-robin order (SLURM's plane distribution).

``layout_from_distribution(cluster, p, "cyclic:block")`` is therefore the
generalisation of the four named layouts in :mod:`repro.mapping.initial`
(``block:block`` = block-bunch, ``cyclic:fcyclic`` = cyclic-scatter, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.cluster import ClusterTopology

__all__ = ["Distribution", "parse_distribution", "layout_from_distribution"]

_NODE_POLICIES = ("block", "cyclic", "plane")
_SOCKET_POLICIES = ("block", "cyclic", "fcyclic")


@dataclass(frozen=True)
class Distribution:
    """A parsed ``--distribution`` value."""

    node_policy: str
    socket_policy: str
    plane_size: int = 0

    def __str__(self) -> str:
        first = f"plane={self.plane_size}" if self.node_policy == "plane" else self.node_policy
        return f"{first}:{self.socket_policy}"


def parse_distribution(spec: str) -> Distribution:
    """Parse a SLURM-style distribution string.

    Accepts ``"block"``, ``"cyclic:fcyclic"``, ``"plane=4:block"``, etc.
    The socket part defaults to ``block`` (SLURM's default) when omitted.
    """
    if not spec or not isinstance(spec, str):
        raise ValueError(f"empty distribution spec {spec!r}")
    parts = spec.lower().split(":")
    if len(parts) > 2:
        raise ValueError(f"too many levels in distribution {spec!r}")
    node_part = parts[0].strip()
    socket_part = parts[1].strip() if len(parts) == 2 else "block"

    plane_size = 0
    if node_part.startswith("plane"):
        node_policy = "plane"
        if "=" not in node_part:
            raise ValueError(f"plane distribution needs a size: {spec!r}")
        try:
            plane_size = int(node_part.split("=", 1)[1])
        except ValueError:
            raise ValueError(f"bad plane size in {spec!r}")
        if plane_size < 1:
            raise ValueError(f"plane size must be >= 1, got {plane_size}")
    else:
        node_policy = node_part
        if node_policy not in ("block", "cyclic"):
            raise ValueError(f"unknown node-level policy {node_part!r}")

    if socket_part not in _SOCKET_POLICIES:
        raise ValueError(f"unknown socket-level policy {socket_part!r}")
    return Distribution(node_policy=node_policy, socket_policy=socket_part, plane_size=plane_size)


def _socket_local_core(cluster: ClusterTopology, j: np.ndarray, policy: str) -> np.ndarray:
    """Within-node core index of the j-th rank assigned to a node."""
    if policy == "block":
        return j
    ns = cluster.machine.n_sockets
    cps = cluster.machine.cores_per_socket
    return (j % ns) * cps + j // ns


def layout_from_distribution(
    cluster: ClusterTopology, p: int, spec: str
) -> np.ndarray:
    """Build a layout array ``L[rank] = core`` from a distribution spec."""
    if p < 1:
        raise ValueError(f"need p >= 1, got {p}")
    if p > cluster.n_cores:
        raise ValueError(f"p={p} exceeds the cluster's {cluster.n_cores} cores")
    dist = parse_distribution(spec)
    cpn = cluster.cores_per_node
    n_nodes = -(-p // cpn)
    r = np.arange(p, dtype=np.int64)

    if dist.node_policy == "block":
        node = r // cpn
        j = r % cpn
    elif dist.node_policy == "cyclic":
        node = r % n_nodes
        j = r // n_nodes
    else:  # plane
        plane = dist.plane_size
        block_id = r // plane
        node = block_id % n_nodes
        j = (block_id // n_nodes) * plane + r % plane
        if np.any(j >= cpn):
            raise ValueError(
                f"plane={plane} over {n_nodes} nodes overflows a node for p={p}; "
                f"add nodes or shrink the plane"
            )

    local = _socket_local_core(cluster, j, dist.socket_policy)
    layout = node * cpn + local
    if np.unique(layout).size != p:  # pragma: no cover - structural invariant
        raise RuntimeError("distribution produced a non-injective layout")
    return layout
